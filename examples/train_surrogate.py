#!/usr/bin/env python
"""Configurable surrogate training driver.

The example-scale equivalent of the paper's offline training stage
(§III-D): generate (or reuse) solver archives, build the augmented
sliding-window dataset, train with Adam + cosine warmup + gradient
clipping, validate each epoch, and checkpoint the best model.

Run:  python examples/train_surrogate.py --epochs 8 --batch-size 2
      python examples/train_surrogate.py --use-checkpoint   # SW-MSA ckpt
"""

import argparse
from pathlib import Path

import numpy as np

import _bootstrap  # noqa: F401  (src-checkout path setup)

from repro.data import DataLoader, SlidingWindowDataset, build_archives
from repro.ocean import OceanConfig
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.train import (
    Adam,
    CosineWarmup,
    Trainer,
    TrainerConfig,
    save_checkpoint,
)


def parse_args() -> argparse.Namespace:
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--workdir", type=Path,
                   default=Path(".train_example"),
                   help="archive + checkpoint directory")
    p.add_argument("--train-days", type=float, default=1.0)
    p.add_argument("--epochs", type=int, default=8)
    p.add_argument("--batch-size", type=int, default=2)
    p.add_argument("--lr", type=float, default=2e-3)
    p.add_argument("--window", type=int, default=4,
                   help="episode length T")
    p.add_argument("--stride", type=int, default=2,
                   help="sliding-window stride (paper uses 6)")
    p.add_argument("--workers", type=int, default=1,
                   help="prefetch workers (paper uses 6)")
    p.add_argument("--use-checkpoint", action="store_true",
                   help="activation checkpointing on SW-MSA paths")
    return p.parse_args()


def main() -> None:
    args = parse_args()
    args.workdir.mkdir(parents=True, exist_ok=True)

    ocean_cfg = OceanConfig(nx=14, ny=15, nz=6,
                            length_x=14_000.0, length_y=15_000.0)
    print("preparing archives...")
    bundle = build_archives(args.workdir / "archives", ocean_cfg,
                            train_days=args.train_days, test_days=0.25,
                            spinup_days=0.25)
    store = bundle.open_train()
    norm = bundle.open_normalizer()

    model_cfg = SurrogateConfig(
        mesh=(16, 16, 6), time_steps=args.window,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=8, num_heads=(2, 4, 8),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
        use_checkpoint=args.use_checkpoint)
    model = CoastalSurrogate(model_cfg)
    print(f"model: {model.parameter_breakdown()} "
          f"(checkpointing={'on' if args.use_checkpoint else 'off'})")

    dataset = SlidingWindowDataset(store, norm, window=args.window,
                                   stride=args.stride)
    train_ds, val_ds = dataset.split(0.9, seed=0)   # the paper's 9:1
    train_loader = DataLoader(train_ds, batch_size=args.batch_size,
                              shuffle=True, num_workers=args.workers,
                              prefetch_factor=2, pin_memory=True, seed=0)
    val_loader = DataLoader(val_ds, batch_size=1, shuffle=False) \
        if len(val_ds) else None

    optimizer = Adam(model.parameters(), lr=args.lr)
    total_steps = max(2, args.epochs * len(train_loader))
    schedule = CosineWarmup(optimizer, warmup_steps=total_steps // 10 + 1,
                            total_steps=total_steps)
    trainer = Trainer(model, TrainerConfig(lr=args.lr, grad_clip=1.0),
                      optimizer=optimizer, schedule=schedule)

    best = np.inf
    ckpt = args.workdir / "best_model.npz"

    def on_epoch(stats):
        nonlocal best
        val = stats.val_loss if stats.val_loss is not None \
            else stats.train_loss
        marker = ""
        if val < best:
            best = val
            save_checkpoint(ckpt, model, optimizer,
                            extra={"epoch": stats.epoch, "val": val})
            marker = "  * saved"
        print(f"epoch {stats.epoch:2d}: train {stats.train_loss:.4f} "
              f"val {val:.4f}  {stats.throughput:.2f} inst/s{marker}")

    trainer.fit(train_loader, val_loader, epochs=args.epochs,
                on_epoch=on_epoch)
    print(f"best checkpoint: {ckpt} (val loss {best:.4f})")


if __name__ == "__main__":
    main()
