#!/usr/bin/env python
"""Quickstart: the full paper pipeline in two minutes at toy scale.

1. Simulate a small tidal estuary with the ROMS-like solver.
2. Archive snapshots, fit normalisation, build sliding-window episodes.
3. Train a small 4-D Swin Transformer surrogate.
4. Forecast an episode, verify mass conservation, report errors.

Run:  python examples/quickstart.py
"""

from pathlib import Path
import tempfile

import numpy as np

import _bootstrap  # noqa: F401  (src-checkout path setup)

from repro.data import DataLoader, SlidingWindowDataset, build_archives
from repro.eval import compute_errors, format_sci
from repro.ocean import OceanConfig, RomsLikeModel
from repro.physics import Verifier
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.train import Trainer, TrainerConfig
from repro.workflow import FieldWindow, SurrogateForecaster


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_quickstart_"))
    print(f"workspace: {workdir}")

    # ------------------------------------------------------------------
    # 1–2. simulate and archive (a small Charlotte-Harbor-like estuary)
    # ------------------------------------------------------------------
    ocean_cfg = OceanConfig(nx=14, ny=15, nz=6,
                            length_x=14_000.0, length_y=15_000.0)
    print("simulating tidal circulation (spin-up + 0.75 days)...")
    bundle = build_archives(workdir, ocean_cfg, train_days=0.5,
                            test_days=0.25, spinup_days=0.25)
    store = bundle.open_train()
    norm = bundle.open_normalizer()
    print(f"  train snapshots: {len(store)}, "
          f"mesh {store.meta.mesh}, dtype {store.meta.dtype}")

    # ------------------------------------------------------------------
    # 3. train the surrogate (IC + boundary rims → interior forecast)
    # ------------------------------------------------------------------
    model_cfg = SurrogateConfig(
        mesh=(16, 16, 6), time_steps=4,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=8, num_heads=(2, 4, 8),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2))
    model = CoastalSurrogate(model_cfg)
    print(f"surrogate parameters: {model.parameter_breakdown()}")

    dataset = SlidingWindowDataset(store, norm, window=4, stride=2)
    loader = DataLoader(dataset, batch_size=2, shuffle=True, seed=0)
    trainer = Trainer(model, TrainerConfig(lr=2e-3))
    print("training 8 epochs...")
    for stats in trainer.fit(loader, epochs=8):
        print(f"  epoch {stats.epoch}: loss {stats.train_loss:.4f} "
              f"({stats.throughput:.2f} inst/s)")

    # ------------------------------------------------------------------
    # 4. forecast, verify, evaluate
    # ------------------------------------------------------------------
    test_store = bundle.open_test()
    w = test_store.read_window(0, 4)
    reference = FieldWindow(
        w["u3"].astype(np.float64), w["v3"].astype(np.float64),
        w["w3"].astype(np.float64), w["zeta"].astype(np.float64))

    forecaster = SurrogateForecaster(model, norm)
    result = forecaster.forecast_episode(reference)
    print(f"forecast inference: {result.inference_seconds * 1e3:.1f} ms")

    ocean = RomsLikeModel(ocean_cfg)
    verifier = Verifier(ocean.grid, ocean.depth,
                        dt=ocean_cfg.snapshot_interval)
    verdict = verifier.verify(result.fields.zeta, result.fields.u3,
                              result.fields.v3)
    print(f"physics verification: {verdict}")

    errors = compute_errors(result.fields, reference,
                            wet=ocean.solver.wet)
    print("forecast errors (vs solver truth, wet cells):")
    for var in ("u", "v", "w", "zeta"):
        print(f"  {var:>4}: MAE {format_sci(errors.mae[var])}  "
              f"RMSE {format_sci(errors.rmse[var])}")


if __name__ == "__main__":
    main()
