#!/usr/bin/env python
"""Ensemble uncertainty quantification (the paper's §V future work).

The surrogate's 450× speedup is motivated by "an ensemble of tens of
thousands of models for uncertainty quantification" (§I).  This example
runs an initial-condition-perturbation ensemble through a trained
surrogate and produces the early-warning products: forecast mean,
spread, and water-level exceedance probabilities.

Run:  python examples/ensemble_uncertainty.py
"""

from pathlib import Path
import tempfile
import time

import numpy as np

import _bootstrap  # noqa: F401  (src-checkout path setup)

from repro.data import DataLoader, SlidingWindowDataset, build_archives
from repro.eval import format_table
from repro.ocean import OceanConfig, RomsLikeModel
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.train import Trainer, TrainerConfig
from repro.workflow import EnsembleForecaster, FieldWindow, SurrogateForecaster

T = 4
N_MEMBERS = 8


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_ensemble_"))
    ocean_cfg = OceanConfig(nx=14, ny=15, nz=6,
                            length_x=14_000.0, length_y=15_000.0)
    bundle = build_archives(workdir, ocean_cfg, train_days=0.5,
                            test_days=0.25, spinup_days=0.25)
    norm = bundle.open_normalizer()

    print("training surrogate...")
    cfg = SurrogateConfig(
        mesh=(16, 16, 6), time_steps=T,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=8, num_heads=(2, 4, 8),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2))
    model = CoastalSurrogate(cfg)
    ds = SlidingWindowDataset(bundle.open_train(), norm, window=T, stride=2)
    Trainer(model, TrainerConfig(lr=2e-3)).fit(
        DataLoader(ds, batch_size=2, shuffle=True, seed=0), epochs=8)

    w = bundle.open_test().read_window(0, T)
    reference = FieldWindow(
        w["u3"].astype(np.float64), w["v3"].astype(np.float64),
        w["w3"].astype(np.float64), w["zeta"].astype(np.float64))

    ocean = RomsLikeModel(ocean_cfg)
    forecaster = SurrogateForecaster(model, norm)
    ensemble = EnsembleForecaster(
        forecaster,
        n_members=N_MEMBERS, zeta_sigma=0.03, velocity_sigma=0.02)
    print(f"running {N_MEMBERS}-member ensemble (one batched forward)...")
    t0 = time.perf_counter()
    out = ensemble.forecast(reference, wet=ocean.solver.wet)
    batched_seconds = time.perf_counter() - t0
    print(f"  batched: {batched_seconds:.2f} s "
          f"({batched_seconds / N_MEMBERS:.3f} s/member, model forward "
          f"{out.inference_seconds:.2f} s)")

    # the same members one at a time — the pre-batching cost
    t0 = time.perf_counter()
    for m in range(N_MEMBERS):
        forecaster.forecast_episode(
            ensemble._perturbed(reference, m, ocean.solver.wet))
    serial_seconds = time.perf_counter() - t0
    print(f"  serial loop for comparison: {serial_seconds:.2f} s "
          f"({serial_seconds / batched_seconds:.1f}x slower)")

    wet = ocean.solver.wet
    rows = []
    for t in range(1, T):
        spread = out.spread.zeta[t][wet]
        err = np.abs(out.mean.zeta[t] - reference.zeta[t])[wet]
        rows.append([t, f"{spread.mean():.4f}", f"{spread.max():.4f}",
                     f"{err.mean():.4f}"])
    print()
    print(format_table(
        ["Step", "Mean spread [m]", "Max spread [m]", "Mean |err| [m]"],
        rows, title="Ensemble ζ spread vs forecast error by lead time"))

    level = float(np.quantile(reference.zeta[-1][wet], 0.9))
    p = out.exceedance_probability(level)[-1]
    frac = (p[wet] > 0.5).mean()
    print(f"\nP(ζ > {level:.3f} m) at final step: "
          f"{frac * 100:.1f}% of wet cells exceed with p > 0.5")


if __name__ == "__main__":
    main()
