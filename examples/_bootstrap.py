"""Make ``repro`` importable when examples run from a source checkout.

A no-op once the package is installed (``pip install -e .``); otherwise
falls back to the repository's ``src/`` layout, so
``python examples/<name>.py`` works without any PYTHONPATH setup.
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
