#!/usr/bin/env python
"""The hybrid AI + solver workflow with physics verification.

Reproduces the paper's Fig. 1 loop at example scale: every surrogate
episode is checked against the water-mass conservation law; failures
revert to the ROMS-like solver.  Sweeping the acceptance threshold
shows the cost/reliability trade-off of the paper's Fig. 8.

Run:  python examples/hybrid_workflow.py
"""

from pathlib import Path
import tempfile
import time

import numpy as np

import _bootstrap  # noqa: F401  (src-checkout path setup)

from repro.data import DataLoader, SlidingWindowDataset, build_archives
from repro.eval import format_table
from repro.ocean import OceanConfig, RomsLikeModel
from repro.physics import Verifier
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.train import Trainer, TrainerConfig
from repro.workflow import FieldWindow, HybridWorkflow, SurrogateForecaster

T = 4
N_EPISODES = 4


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_hybrid_"))
    ocean_cfg = OceanConfig(nx=14, ny=15, nz=6,
                            length_x=14_000.0, length_y=15_000.0)
    bundle = build_archives(workdir, ocean_cfg, train_days=0.5,
                            test_days=0.25, spinup_days=0.25)
    norm = bundle.open_normalizer()

    print("training surrogate...")
    cfg = SurrogateConfig(
        mesh=(16, 16, 6), time_steps=T,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=8, num_heads=(2, 4, 8),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2))
    model = CoastalSurrogate(cfg)
    ds = SlidingWindowDataset(bundle.open_train(), norm, window=T, stride=2)
    Trainer(model, TrainerConfig(lr=2e-3)).fit(
        DataLoader(ds, batch_size=2, shuffle=True, seed=0), epochs=8)

    # reference horizon + solver states at each episode start
    ocean = RomsLikeModel(ocean_cfg)
    st = ocean.spinup(duration=0.25 * 86400.0)
    snaps, states, _ = ocean.simulate_with_states(
        st, N_EPISODES * T, every=T)
    x3, x2 = ocean.stack_fields(snaps)
    window = FieldWindow(
        np.moveaxis(x3[0], -1, 0), np.moveaxis(x3[1], -1, 0),
        np.moveaxis(x3[2], -1, 0), np.moveaxis(x2[0], -1, 0))

    verifier = Verifier(ocean.grid, ocean.depth,
                        dt=ocean_cfg.snapshot_interval)
    workflow = HybridWorkflow(SurrogateForecaster(model, norm), ocean,
                              verifier)

    # pure-solver baseline cost for the same horizon
    t0 = time.perf_counter()
    ocean.forecast(states[0], N_EPISODES * T - 1)
    solver_seconds = time.perf_counter() - t0

    # probe surrogate residuals to place the thresholds meaningfully:
    # all probe episodes in one batched forward + one batched verify
    refs = [FieldWindow(window.u3[ep * T:(ep + 1) * T],
                        window.v3[ep * T:(ep + 1) * T],
                        window.w3[ep * T:(ep + 1) * T],
                        window.zeta[ep * T:(ep + 1) * T])
            for ep in range(N_EPISODES)]
    preds = workflow.forecaster.forecast_batch(refs)
    probe = [v.mean_residual for v in verifier.verify_batch(
        [p.fields.zeta for p in preds], [p.fields.u3 for p in preds],
        [p.fields.v3 for p in preds])]
    thresholds = np.quantile(probe, [0.0, 0.5, 1.0]) * [0.99, 1.0, 1.01]

    rows = []
    for thr in thresholds:
        fields, report = workflow.run(window, states, threshold=float(thr))
        rows.append([
            f"{thr:.2e}",
            f"{report.pass_rate:.2f}",
            report.n_fallbacks,
            f"{report.total_seconds:.2f}",
            f"{solver_seconds / report.total_seconds:.1f}x",
        ])
    print()
    print(format_table(
        ["Threshold [m/s]", "Pass rate", "Fallbacks", "Time [s]",
         "Speedup vs solver"],
        rows,
        title=f"Hybrid workflow over {N_EPISODES} episodes "
              f"(pure solver: {solver_seconds:.2f} s)"))


if __name__ == "__main__":
    main()
