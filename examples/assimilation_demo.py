#!/usr/bin/env python
"""Storm-parameter assimilation through the served gradient endpoint.

A twin experiment: a "true" parametric cyclone forces the surrogate and
its surge field becomes the synthetic observation; a mis-specified
first-guess cyclone is then calibrated against that observation by
gradient descent, with every gradient evaluated by the serving tier
(``ForecastServer.submit_sensitivity`` — the adjoint runs inside the
same micro-batching/caching machinery that serves forecasts, see
``docs/differentiation.md``).

Each iteration submits one ``GradientRequest`` with
``diagnostic="surge_mse"`` and ``wrt=("storm",)``: the response carries
d(mse)/d(parameter) for all six cyclone parameters, chained through
the storm overlay, the input normalisation, and the full surrogate
forward.  Descent runs in a scaled parameter space (metres and pascals
need very different step sizes) and recovers the storm centre and
intensity from the surge signal alone.

Run:  python examples/assimilation_demo.py
"""

import numpy as np

import _bootstrap  # noqa: F401  (src-checkout path setup)

from repro.data import Normalizer
from repro.serve import ForecastServer
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.workflow import (
    FieldWindow,
    ForecastEngine,
    GradientRequest,
    StormOverlay,
)

T, H, W, D = 4, 15, 14, 6
VARS = ("u3", "v3", "w3", "zeta")

#: parameters being assimilated and the characteristic scale of each
#: (descent steps are taken in units of these scales)
FREE = ("x0", "y0", "max_wind")
SCALES = {"x0": 1000.0, "y0": 1000.0, "max_wind": 5.0}


def build_engine(seed: int = 1) -> ForecastEngine:
    cfg = SurrogateConfig(
        mesh=(16, 16, D), time_steps=T,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=8, num_heads=(2, 4, 8), depths=(2, 2, 2),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
    )
    model = CoastalSurrogate(cfg)
    rng = np.random.default_rng(seed)
    state = {k: (v + rng.normal(scale=0.02, size=v.shape)).astype(v.dtype)
             for k, v in model.state_dict().items()}
    model.load_state_dict(state)
    norm = Normalizer({v: 0.1 for v in VARS}, {v: 1.5 for v in VARS})
    return ForecastEngine(model, norm)


def make_window(seed: int = 7) -> FieldWindow:
    rng = np.random.default_rng(seed)
    return FieldWindow(
        rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W, D)),
        rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W)))


def main() -> None:
    engine = build_engine()
    window = make_window()

    # -- the truth and its synthetic observation ------------------------
    truth = StormOverlay(x0=6000.0, y0=7000.0, vx=500.0, vy=300.0,
                         max_wind=60.0, radius_max_wind=8000.0,
                         central_pressure_drop=20000.0, dt=3.0)
    observation = engine.forecast_batch([truth.apply(window)])[0].fields.zeta

    # -- mis-specified first guess: centre off by kilometres, winds weak
    guess = truth.replace(x0=2500.0, y0=10000.0, max_wind=45.0)

    print("twin-experiment assimilation over the served gradient endpoint")
    print(f"  truth : x0={truth.x0:7.0f}m  y0={truth.y0:7.0f}m  "
          f"max_wind={truth.max_wind:4.1f}m/s")
    print(f"  guess : x0={guess.x0:7.0f}m  y0={guess.y0:7.0f}m  "
          f"max_wind={guess.max_wind:4.1f}m/s\n")

    # Adam in scaled space: the mse responds orders of magnitude more
    # strongly to the storm centre than to peak wind, so a global step
    # would freeze max_wind — per-parameter moment normalisation keeps
    # every component moving
    iters, lr, b1, b2 = 40, 0.35, 0.9, 0.999
    m = {p: 0.0 for p in FREE}
    v = {p: 0.0 for p in FREE}
    with ForecastServer(engine, max_wait=0.001) as server:
        for it in range(iters):
            request = GradientRequest(
                window, diagnostic="surge_mse", wrt=("storm",),
                observation=observation, storm=guess)
            result = server.submit_sensitivity(request).result(timeout=300)

            g = {p: result.d_storm[p] * SCALES[p] for p in FREE}
            decay = lr * (1.0 - it / iters)   # linear cooldown
            updates = {}
            for p in FREE:
                m[p] = b1 * m[p] + (1 - b1) * g[p]
                v[p] = b2 * v[p] + (1 - b2) * g[p] * g[p]
                mh = m[p] / (1 - b1 ** (it + 1))
                vh = v[p] / (1 - b2 ** (it + 1))
                step = decay * mh / (np.sqrt(vh) + 1e-12)
                updates[p] = getattr(guess, p) - step * SCALES[p]
            guess = guess.replace(**updates)

            if it % 5 == 0 or it == iters - 1:
                gnorm = float(np.sqrt(sum(x * x for x in g.values())))
                print(f"  iter {it:2d}: mse={result.value:10.3e}  "
                      f"x0={guess.x0:7.0f}  y0={guess.y0:7.0f}  "
                      f"max_wind={guess.max_wind:4.1f}  "
                      f"|grad|={gnorm:.2e}")

        final = server.submit_sensitivity(GradientRequest(
            window, diagnostic="surge_mse", wrt=("storm",),
            observation=observation, storm=guess)).result(timeout=300)
        grad_batches = server.metrics()["grad_batches"]

    print(f"\n  recovered: x0={guess.x0:7.0f}m (truth {truth.x0:.0f})  "
          f"y0={guess.y0:7.0f}m (truth {truth.y0:.0f})  "
          f"max_wind={guess.max_wind:4.1f}m/s (truth {truth.max_wind:.1f})")
    print(f"  final mse: {final.value:.3e}  "
          f"({grad_batches} gradient micro-batches served)")

    err_km = np.hypot(guess.x0 - truth.x0, guess.y0 - truth.y0) / 1000.0
    print(f"  centre error: {err_km:.2f} km")
    assert final.value < 1e-4, "assimilation failed to reduce the misfit"
    print("OK")


if __name__ == "__main__":
    main()
