"""Serving demo: micro-batched, sharded forecasts for concurrent users.

Stands up a :class:`~repro.serve.server.ForecastServer` over a pool of
two engine replicas (key-affinity sharding, so duplicate scenarios meet
on one replica) and replays a synthetic request trace with three user
behaviours mixed together:

* a *bursty crowd* asking for the handful of currently-trending
  scenarios (deduplicated by the keyed result cache),
* a steady stream of *unique* scenario requests (coalesced by each
  replica's micro-batching scheduler into shared forwards),
* one *ensemble* user whose members shard across the pool's batch
  slots.

Mid-trace, a new model version is **hot-swapped** through the pool
(``server.deploy``): the replicas roll one at a time — surge a warmed
new-version replica, drain the old one — so the crowd never notices,
and every in-flight request finishes bitwise-identical on the version
that admitted it.

Prints the per-request latency, batch-occupancy, sharding, cache and
version metrics the server exports, plus the fitted capacity model —
the same numbers ``benchmarks/bench_serving.py`` and
``benchmarks/bench_operations.py`` sweep systematically.
"""

import threading
import time

import numpy as np

import _bootstrap  # noqa: F401

from repro.data import Normalizer
from repro.hpc import ServingCapacityModel
from repro.serve import ForecastServer
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.workflow import ForecastEngine
from repro.workflow.engine import FieldWindow

T, H, W, D = 4, 15, 14, 6
VARS = ("u3", "v3", "w3", "zeta")


def make_window(rng):
    return FieldWindow(
        rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W, D)),
        rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W)))


def main():
    cfg = SurrogateConfig(
        mesh=(16, 16, D), time_steps=T,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=8, num_heads=(2, 4, 8), depths=(2, 2, 2),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
    )
    norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
    engine = ForecastEngine(CoastalSurrogate(cfg), norm)
    # the server warms the whole max_batch bucket set (1/2/4/8 here),
    # and a partial flush pads into the nearest bucket — every
    # micro-batch replays allocation-free, bitwise ≡ eager

    rng = np.random.default_rng(0)
    trending = [make_window(rng) for _ in range(3)]   # the hot scenarios
    print("serving 40 requests from 3 user behaviours "
          "(2 replicas, key-affinity sharding, max_batch=8, "
          "max_wait=15ms, 16 MiB result cache)…")

    with ForecastServer(engine, workers=2, router="key-affinity",
                        max_batch=8, max_wait=0.015,
                        cache_bytes=16 << 20) as server:
        futures, lock = [], threading.Lock()

        def crowd():
            """20 users hammering the 3 trending scenarios."""
            crowd_rng = np.random.default_rng(1)
            for _ in range(20):
                time.sleep(float(crowd_rng.uniform(0, 0.004)))
                with lock:
                    futures.append(server.submit(
                        trending[int(crowd_rng.integers(3))]))

        def steady():
            """16 unique scenario requests, steadily paced."""
            steady_rng = np.random.default_rng(2)
            for _ in range(16):
                time.sleep(0.003)
                with lock:
                    futures.append(server.submit(make_window(steady_rng)))

        ensemble = server.submit_ensemble(trending[0], n_members=4, seed=7)
        threads = [threading.Thread(target=crowd),
                   threading.Thread(target=steady)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        results = [f.result(timeout=120) for f in futures]
        ens = ensemble.result(timeout=120)

        # the crowd comes back: trending scenarios are now resident in
        # the result cache, so the replay never touches the engine
        replay = [server.submit(trending[k % 3]) for k in range(10)]
        hits = sum(f.cache_hit for f in replay)
        results += [f.result(timeout=120) for f in replay]

        # a new checkpoint lands: hot-swap it through the live pool.
        # The roll surges a warmed version-2 replica before draining
        # each version-1 replica, so capacity never drops; the result
        # cache is invalidated (its entries came from the old weights)
        retrained = CoastalSurrogate(cfg)
        version = server.deploy(retrained)
        swapped = server.forecast(trending[0])
        direct = ForecastEngine(retrained, norm).forecast_batch(
            [trending[0]])[0]
        assert np.array_equal(swapped.fields.zeta, direct.fields.zeta), \
            "post-swap responses must be the new version's numbers"
        metrics = server.metrics()

    print(f"\n  answered {len(results)} plain requests "
          f"+ 1 ensemble ({ens.n_members} members, "
          f"spread ζ max {ens.spread.zeta.max():.3f} m)")
    print(f"  engine forwards        : {metrics['batches']:.0f} "
          f"(mean occupancy {metrics['mean_occupancy']:.2f}, "
          f"max {metrics['max_occupancy']:.0f})")
    print(f"  compiled plan replays  : {metrics['plan_batches']:.0f} "
          f"of {metrics['batches']:.0f} forwards "
          f"(bucket set warmed, partial batches padded in; "
          f"pad fraction {metrics['bucket_pad_fraction']:.2f}; "
          f"bitwise ≡ eager)")
    print(f"  latency p50 / p95      : {metrics['latency_p50_ms']:.1f} / "
          f"{metrics['latency_p95_ms']:.1f} ms")
    print(f"  cache hits / misses    : {metrics['cache_hits']:.0f} / "
          f"{metrics['cache_misses']:.0f} "
          f"(hit rate {metrics['cache_hit_rate']:.0%}; "
          f"replay wave {hits}/10 hits)")
    print(f"  in-flight dedups       : {metrics['deduped_requests']:.0f} "
          f"duplicate requests rode a leader's forward")
    print(f"  hot-swap               : now serving version "
          f"{metrics['engine_version']:.0f} ({version.source}; "
          f"{metrics['deploys']:.0f} deploy, zero downtime, "
          f"post-swap forecast bitwise ≡ new model)")
    by_worker = server.pool.metrics.requests_by_worker()
    print(f"  sharding               : "
          + ", ".join(f"replica {w} served {n}"
                      for w, n in sorted(by_worker.items()))
          + f"; {metrics['shed_requests']:.0f} shed")

    batches = server.pool.metrics.batches
    if len({b.size for b in batches}) > 1:
        model = ServingCapacityModel.from_batch_log(batches)
        print(f"  capacity model         : "
              f"{1e3 * model.dispatch_seconds:.1f}ms dispatch + "
              f"{1e3 * model.per_request_seconds:.1f}ms/request "
              f"→ ≈{model.saturation_throughput:.0f} req/s saturated")


if __name__ == "__main__":
    main()
