"""Serving demo: a multi-basin storm scenario through the full stack.

Builds a :class:`~repro.scenario.ScenarioFactory` — four named
Gulf-coast basins with heterogeneous native meshes, tidal regimes, and
parametric storm tracks, all pinned by one seed — and samples a
tenant-weighted Poisson arrival trace with a storm-spike burst on one
basin (:func:`~repro.scenario.simulate_trace`).  The trace replays
through a :class:`~repro.serve.server.ForecastServer` over two
key-affinity replicas (:func:`~repro.scenario.replay_trace`), so the
demo exercises what production traffic would:

* each basin's rolling-forecast requests pin to one replica (router
  affinity) and their between-advance duplicates are answered by the
  result cache / in-flight dedup instead of the engine,
* cache-busting *unique* requests coalesce into micro-batched
  forwards,
* the report accounts for every request exactly:
  ``offered == served + cached + shed``.

An ensemble request rides along, and mid-demo a new model version is
**hot-swapped** through the pool (``server.deploy``) with zero
downtime.  Prints the per-basin accounting next to the server's
latency, occupancy, cache, and version metrics — the same numbers
``benchmarks/bench_operations.py`` sweeps systematically.
"""

import numpy as np

import _bootstrap  # noqa: F401

from repro.data import Normalizer
from repro.hpc import ServingCapacityModel
from repro.scenario import (
    ScenarioFactory,
    StormSpike,
    TrafficModel,
    replay_trace,
    simulate_trace,
)
from repro.serve import ForecastServer
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.workflow import ForecastEngine

T, D = 4, 6
VARS = ("u3", "v3", "w3", "zeta")


def main():
    cfg = SurrogateConfig(
        mesh=(16, 16, D), time_steps=T,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=8, num_heads=(2, 4, 8), depths=(2, 2, 2),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
    )
    norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
    engine = ForecastEngine(CoastalSurrogate(cfg), norm)

    # one seed pins the whole scenario: basins, bathymetry, tides,
    # storm tracks, and the arrival trace
    factory = ScenarioFactory(seed=0)
    model = TrafficModel.from_factory(
        factory, base_rate=4.0, unique_fraction=0.25,
        advance_every_s=1.0,
        spikes={"boca-grande": StormSpike(center_s=2.0, width_s=0.4,
                                          amplitude=6.0)})
    trace = simulate_trace(model, duration_s=4.0, seed=0)
    print(f"scenario: {len(factory.basin_names)} basins "
          f"({', '.join(factory.basin_names)}), "
          f"{trace.n_requests} requests over {trace.duration_s:.0f}s "
          f"with a storm spike on boca-grande;\n"
          f"serving on 2 key-affinity replicas "
          f"(max_batch=8, max_wait=15ms, 16 MiB result cache)…")

    with ForecastServer(engine, workers=2, router="key-affinity",
                        max_batch=8, max_wait=0.015,
                        cache_bytes=16 << 20) as server:
        # replay at 4x speed; the harness paces arrivals, routes each
        # request by its basin name, and accounts for every one
        report = replay_trace(trace, server, factory, mode="wall",
                              time_scale=0.25)
        report.check()      # offered == served + cached + shed, exactly

        # an ensemble request rides the same pool: members shard
        # across the replicas' batch slots
        storm_window = factory.basin("boca-grande").window(2.0 * 600.0)
        ens = server.submit_ensemble(storm_window, n_members=4,
                                     seed=7).result(timeout=120)

        # the crowd comes back for the trending basin: its rolling
        # window is resident in the result cache, so the replay wave
        # never touches the engine
        trending = factory.rolling("punta-gorda").current
        replay_wave = [server.submit(trending, route_key="punta-gorda")
                       for _ in range(10)]
        wave_results = [f.result(timeout=120) for f in replay_wave]
        hits = sum(f.cache_hit for f in replay_wave)
        assert all(np.array_equal(wave_results[0].fields.zeta,
                                  r.fields.zeta) for r in wave_results)

        # a new checkpoint lands: hot-swap it through the live pool.
        # The roll surges a warmed version-2 replica before draining
        # each version-1 replica, so capacity never drops; the result
        # cache is invalidated (its entries came from the old weights)
        retrained = CoastalSurrogate(cfg)
        version = server.deploy(retrained)
        swapped = server.forecast(storm_window)
        direct = ForecastEngine(retrained, norm).forecast_batch(
            [storm_window])[0]
        assert np.array_equal(swapped.fields.zeta, direct.fields.zeta), \
            "post-swap responses must be the new version's numbers"
        metrics = server.metrics()

    acc = report.accounting()
    print(f"\n  accounting             : offered {acc['offered']} == "
          f"served {acc['served']} + cached {acc['cached']} + "
          f"shed {acc['shed']} (lost {acc['lost']})")
    for name in factory.basin_names:
        b = report.per_basin[name]
        mesh = "x".join(map(str, factory.basin(name).native_mesh))
        workers = ",".join(map(str, sorted(b.workers))) or "-"
        print(f"    {name:<14s} ({mesh:>7s}): offered {b.offered:>3d}  "
              f"hit rate {b.hit_rate:4.0%}  replica[{workers}]  "
              f"p95 {b.latency_p95_ms:.0f}ms")
    print(f"  sustained              : {report.sustained_qps():.0f} req/s "
          f"at 4x replay speed")
    print(f"  ensemble               : {ens.n_members} members, "
          f"spread ζ max {ens.spread.zeta.max():.3f} m")
    print(f"  engine forwards        : {metrics['batches']:.0f} "
          f"(mean occupancy {metrics['mean_occupancy']:.2f}, "
          f"max {metrics['max_occupancy']:.0f})")
    print(f"  compiled plan replays  : {metrics['plan_batches']:.0f} "
          f"of {metrics['batches']:.0f} forwards "
          f"(bucket set warmed, partial batches padded in; "
          f"pad fraction {metrics['bucket_pad_fraction']:.2f}; "
          f"bitwise ≡ eager)")
    print(f"  latency p50 / p95      : {metrics['latency_p50_ms']:.1f} / "
          f"{metrics['latency_p95_ms']:.1f} ms")
    print(f"  cache hits / misses    : {metrics['cache_hits']:.0f} / "
          f"{metrics['cache_misses']:.0f} "
          f"(hit rate {metrics['cache_hit_rate']:.0%}; "
          f"replay wave {hits}/10 hits)")
    print(f"  in-flight dedups       : {metrics['deduped_requests']:.0f} "
          f"duplicate requests rode a leader's forward")
    print(f"  hot-swap               : now serving version "
          f"{metrics['engine_version']:.0f} ({version.source}; "
          f"{metrics['deploys']:.0f} deploy, zero downtime, "
          f"post-swap forecast bitwise ≡ new model)")

    batches = server.pool.metrics.batches
    if len({b.size for b in batches}) > 1:
        model = ServingCapacityModel.from_batch_log(batches)
        print(f"  capacity model         : "
              f"{1e3 * model.dispatch_seconds:.1f}ms dispatch + "
              f"{1e3 * model.per_request_seconds:.1f}ms/request "
              f"→ ≈{model.saturation_throughput:.0f} req/s saturated")


if __name__ == "__main__":
    main()
