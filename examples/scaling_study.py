#!/usr/bin/env python
"""HPC performance study: every systems result of the paper in one run.

Prints, with no training required:

* Table I    — the ROMS cost model vs. every published row;
* Table II   — memory per pipeline stage at the paper's full mesh;
* Figure 9   — the training-throughput ablation (analytic model);
* Figure 10  — multi-GPU weak scaling with/without checkpointing;
* the MPI-decomposition verification: the decomposed solver is
  bit-identical to the global solver while halo traffic is accounted.

Run:  python examples/scaling_study.py
"""

import numpy as np

import _bootstrap  # noqa: F401  (src-checkout path setup)

from repro.eval import format_table
from repro.hpc import (
    DecomposedShallowWater,
    NodeSpec,
    PipelineParams,
    RomsPerfModel,
    ScalingModel,
    TrainingPipelineModel,
    pipeline_memory_table,
)
from repro.ocean import (
    SWEConfig,
    ShallowWaterSolver,
    TidalForcing,
    make_charlotte_grid,
    synth_estuary_bathymetry,
)
from repro.swin import SurrogateConfig


def table1() -> None:
    model = RomsPerfModel.calibrated_to_paper()
    rows = [[r["solution"], f"{r['mesh'][0]}x{r['mesh'][1]}x{r['mesh'][2]}",
             f"{r['horizon_days']:g}", r["cores"],
             f"{r['paper_seconds']:,.0f}", f"{r['model_seconds']:,.0f}"]
            for r in model.table1()]
    print(format_table(
        ["Solution", "Mesh", "Days", "Cores", "Paper [s]", "Model [s]"],
        rows, title="TABLE I — ROMS cost model (calibrated on the paper's "
                    "512-core row; other rows ran on different hardware)"))
    print()


def table2() -> None:
    rows = [[f.stage, f"{f.gigabytes:.1f} GB", f.path,
             f"{f.bandwidth / 1e9:.0f} GB/s"]
            for f in pipeline_memory_table(SurrogateConfig.paper(),
                                           NodeSpec(), batch=1)]
    print(format_table(
        ["Stage", "Memory", "Data stores", "Throughput"],
        rows, title="TABLE II — pipeline memory at the paper's mesh "
                    "(paper: 4 / 42 / 12 GB)"))
    print()


def figure9() -> None:
    model = TrainingPipelineModel(PipelineParams())
    paper = {"Our method": 1.36, "w/o activation ckpt": 0.81,
             "w/o pin memory": 0.74, "w/o prefetch": 0.45}
    rows = [[r["name"], f"{r['throughput']:.2f}",
             f"{paper[r['name']]:.2f}", r["batch_size"]]
            for r in model.figure9()]
    print(format_table(
        ["Configuration", "Model [inst/s]", "Paper [inst/s]", "Batch"],
        rows, title="FIGURE 9 — training-throughput ablation"))
    print()


def figure10() -> None:
    model = ScalingModel()
    rows = [[r["gpus"], f"{r['with_ckpt']:.2f}", f"{r['without_ckpt']:.2f}",
             f"{r['allreduce_ms']:.3f}"]
            for r in model.figure10()]
    print(format_table(
        ["GPUs", "w/ ckpt [inst/s]", "w/o ckpt [inst/s]", "allreduce [ms]"],
        rows, title="FIGURE 10 — weak scaling of surrogate training"))
    print()


def mpi_verification() -> None:
    grid = make_charlotte_grid(24, 20, 24_000.0, 20_000.0)
    depth = synth_estuary_bathymetry(grid)
    solver = ShallowWaterSolver(grid, depth, TidalForcing(), SWEConfig())
    state = solver.initial_state()
    for _ in range(50):
        state = solver.step(state)

    dec = DecomposedShallowWater(solver, pr=2, pc=2)
    sg, sd = state.copy(), state.copy()
    for _ in range(20):
        sg = solver.step(sg)
        sd = dec.step(sd)
    err = max(np.abs(sg.zeta - sd.zeta).max(), np.abs(sg.u - sd.u).max())
    print("MPI domain decomposition (2x2 ranks, halo 2):")
    print(f"  max |global − decomposed| after 20 steps: {err:.2e}")
    print(f"  halo traffic: {dec.decomp.halo_bytes_per_exchange() / 1024:.1f}"
          f" KiB/step, {dec.comm.n_messages} messages total")
    print()


def main() -> None:
    table1()
    table2()
    figure9()
    figure10()
    mpi_verification()


if __name__ == "__main__":
    main()
