#!/usr/bin/env python
"""Storm surge: tide + parametric cyclone through the estuary.

The paper motivates the surrogate with hurricane early warning (§I)
and names storm surge as the first model extension (§V).  This example
exercises that extension: a Holland-profile cyclone crosses the
Charlotte-Harbor-like domain and the surge (storm-minus-tide water
level) is tracked against the tide-only run.

Run:  python examples/storm_surge.py
"""

import numpy as np

import _bootstrap  # noqa: F401  (src-checkout path setup)

from repro.eval import format_table
from repro.ocean import (
    OceanConfig,
    ParametricCyclone,
    RomsLikeModel,
    StormForcedSolver,
)

HOURS = 3600.0


def main() -> None:
    cfg = OceanConfig(nx=30, ny=30, nz=6,
                      length_x=30_000.0, length_y=30_000.0)
    ocean = RomsLikeModel(cfg)
    print("spinning up the tide (12 h)...")
    state0 = ocean.spinup(duration=12 * HOURS)

    storm = ParametricCyclone(
        x0=-20_000.0, y0=15_000.0,     # approaching from offshore (west)
        vx=6.0, vy=0.5,                # ~22 km/h translation
        max_wind=33.0,                 # category-1 winds
        radius_max_wind=12_000.0,
        central_pressure_drop=4_500.0)
    surge_solver = StormForcedSolver(ocean.solver, storm)

    wet = ocean.solver.wet
    tide = state0.copy()
    withstorm = state0.copy()

    rows = []
    for hour in range(0, 10):
        tide = ocean.solver.run(tide, HOURS)
        withstorm = surge_solver.run(withstorm, HOURS)
        surge = withstorm.zeta - tide.zeta
        cx = storm._center(withstorm.t - state0.t)[0] / 1000.0
        rows.append([
            hour + 1,
            f"{cx:+.0f} km",
            f"{surge[wet].max():+.3f}",
            f"{surge[wet].min():+.3f}",
            f"{withstorm.zeta[wet].max():+.3f}",
        ])

    print()
    print(format_table(
        ["Hour", "Storm x", "Max surge [m]", "Min surge [m]",
         "Max total ζ [m]"],
        rows, title="Cyclone transit: surge relative to the tide-only run"))

    peak = max(float(r[2].replace("+", "")) for r in rows)
    print(f"\npeak surge during transit: {peak:.3f} m "
          f"(tide-only range ≈ ±{np.abs(tide.zeta[wet]).max():.2f} m)")


if __name__ == "__main__":
    main()
