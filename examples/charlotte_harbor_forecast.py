#!/usr/bin/env python
"""Long-horizon tidal forecasting with the dual-model scheme.

Reproduces the paper's §III-A forecasting setup at example scale: a
coarse-interval surrogate forecasts the full horizon, each coarse
snapshot seeds the fine-interval surrogate, and the composite forecast
is compared with the solver truth at three estuary locations (the
paper's Fig. 6 experiment).

Run:  python examples/charlotte_harbor_forecast.py
"""

from pathlib import Path
import tempfile

import numpy as np

import _bootstrap  # noqa: F401  (src-checkout path setup)

from repro.data import (
    DataLoader,
    SlidingWindowDataset,
    build_archives,
    resample_store,
)
from repro.eval import extract_series, format_table, series_skill
from repro.ocean import OceanConfig, RomsLikeModel
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.train import Trainer, TrainerConfig
from repro.workflow import DualModelForecaster, FieldWindow, SurrogateForecaster

T = 6                 # snapshots per episode
RATIO = 6             # coarse interval = 6 fine intervals
HORIZON = T * RATIO   # full forecast horizon in fine steps


def train_surrogate(store, norm, epochs=6, stride=2):
    cfg = SurrogateConfig(
        mesh=(16, 16, 6), time_steps=T,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=8, num_heads=(2, 4, 8),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2))
    model = CoastalSurrogate(cfg)
    ds = SlidingWindowDataset(store, norm, window=T, stride=stride)
    Trainer(model, TrainerConfig(lr=2e-3)).fit(
        DataLoader(ds, batch_size=2, shuffle=True, seed=0), epochs=epochs)
    return model


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_charlotte_"))
    ocean_cfg = OceanConfig(nx=14, ny=15, nz=6,
                            length_x=14_000.0, length_y=15_000.0)

    print("generating solver archives...")
    bundle = build_archives(workdir, ocean_cfg, train_days=1.0,
                            test_days=0.8, spinup_days=0.25)
    norm = bundle.open_normalizer()
    coarse_store = resample_store(bundle.open_train(),
                                  workdir / "train_coarse", every=RATIO)

    print("training fine (30-min) model...")
    fine = train_surrogate(bundle.open_train(), norm)
    print("training coarse (3-hour) model...")
    coarse = train_surrogate(coarse_store, norm, stride=1)

    dual = DualModelForecaster(
        SurrogateForecaster(coarse, norm),
        SurrogateForecaster(fine, norm), coarse_ratio=RATIO)

    # reference window from the test year
    test_store = bundle.open_test()
    w = test_store.read_window(0, HORIZON)
    reference = FieldWindow(
        w["u3"].astype(np.float64), w["v3"].astype(np.float64),
        w["w3"].astype(np.float64), w["zeta"].astype(np.float64))

    print(f"running dual-model forecast ({HORIZON} half-hour steps)...")
    out = dual.forecast(reference)
    print(f"  {out.episodes} surrogate episodes, "
          f"{out.inference_seconds:.2f} s total inference")

    # Fig.-6-style comparison at three wet locations
    ocean = RomsLikeModel(ocean_cfg)
    wet = ocean.solver.wet
    grid = ocean.grid
    locations = []
    for frac in (0.25, 0.5, 0.75):
        j = int(frac * grid.ny)
        cols = np.flatnonzero(wet[j])
        locations.append(grid.lonlat(j, int(cols[len(cols) // 2]))[::-1])

    series = extract_series(grid, reference, out.fields,
                            locations=locations)
    rows = []
    for k, s in enumerate(series):
        sk = series_skill(s)
        rows.append([f"Location {k + 1}",
                     f"{s.lat:.2f}N {abs(s.lon):.2f}W",
                     f"{sk['rmse']:.3f}", f"{sk['corr']:.3f}",
                     f"{sk['amp_ratio']:.3f}"])
    print()
    print(format_table(
        ["Location", "Position", "ζ RMSE [m]", "Corr", "Amp ratio"],
        rows, title="Solver vs surrogate ζ series over the horizon"))


if __name__ == "__main__":
    main()
