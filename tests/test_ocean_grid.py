"""Grid geometry: stretched axes, metrics, staggering operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ocean import StretchedAxis, make_charlotte_grid


class TestStretchedAxis:
    def test_uniform_spacing_without_focus(self):
        ax = StretchedAxis(10, 100.0)
        np.testing.assert_allclose(ax.spacing, 10.0)

    def test_spacing_sums_to_length(self):
        ax = StretchedAxis(37, 1234.5, focus=(0.3, 0.7))
        assert abs(ax.spacing.sum() - 1234.5) < 1e-9

    def test_focus_refines_locally(self):
        ax = StretchedAxis(100, 100.0, focus=(0.5,), strength=3.0)
        mid = ax.spacing[45:55].mean()
        edge = ax.spacing[:10].mean()
        assert mid < edge

    def test_centers_inside_faces(self):
        ax = StretchedAxis(20, 50.0, focus=(0.2,))
        assert np.all(ax.centers > ax.faces[:-1])
        assert np.all(ax.centers < ax.faces[1:])

    def test_face_spacing_length(self):
        ax = StretchedAxis(10, 100.0)
        assert len(ax.face_spacing) == 11

    def test_from_spacing_preserves_origin(self):
        parent = StretchedAxis(10, 100.0, focus=(0.5,))
        sub = StretchedAxis.from_spacing(parent.spacing[3:7],
                                         origin=parent.faces[3])
        np.testing.assert_allclose(sub.centers, parent.centers[3:7])
        np.testing.assert_allclose(sub.spacing, parent.spacing[3:7])

    @given(st.integers(2, 40), st.floats(10.0, 1e5))
    @settings(max_examples=40, deadline=None)
    def test_spacing_positive_and_complete(self, n, length):
        ax = StretchedAxis(n, length, focus=(0.4,))
        assert np.all(ax.spacing > 0)
        assert abs(ax.spacing.sum() - length) < 1e-6 * length


class TestGridOperators:
    @pytest.fixture()
    def grid(self):
        return make_charlotte_grid(12, 10, 12_000.0, 10_000.0)

    def test_area_positive(self, grid):
        assert np.all(grid.area > 0)

    def test_center_to_u_constant_field(self, grid):
        c = np.full((grid.ny, grid.nx), 3.0)
        np.testing.assert_allclose(grid.center_to_u(c), 3.0)

    def test_center_to_v_constant_field(self, grid):
        c = np.full((grid.ny, grid.nx), -1.5)
        np.testing.assert_allclose(grid.center_to_v(c), -1.5)

    def test_u_to_center_inverse_of_constant(self, grid):
        u = np.full((grid.ny, grid.nx + 1), 2.0)
        np.testing.assert_allclose(grid.u_to_center(u), 2.0)

    def test_ddx_of_linear_field_is_constant(self, grid):
        # c = a·x ⇒ ∂c/∂x = a at every interior u face
        a = 0.003
        c = a * np.broadcast_to(grid.x_axis.centers[None, :],
                                (grid.ny, grid.nx))
        d = grid.ddx_at_u(c)
        np.testing.assert_allclose(d[:, 1:-1], a, rtol=1e-9)
        assert np.all(d[:, 0] == 0) and np.all(d[:, -1] == 0)

    def test_ddy_of_linear_field_is_constant(self, grid):
        a = -0.002
        c = a * np.broadcast_to(grid.y_axis.centers[:, None],
                                (grid.ny, grid.nx))
        d = grid.ddy_at_v(c)
        np.testing.assert_allclose(d[1:-1, :], a, rtol=1e-9)

    def test_flux_divergence_of_uniform_flux_is_zero(self, grid):
        fx = np.full((grid.ny, grid.nx + 1), 2.0)
        fy = np.zeros((grid.ny + 1, grid.nx))
        div = grid.flux_divergence(fx, fy)
        np.testing.assert_allclose(div, 0.0, atol=1e-12)

    def test_flux_divergence_units(self, grid):
        """A unit source at one west face raises exactly one cell."""
        fx = np.zeros((grid.ny, grid.nx + 1))
        fx[3, 0] = 1.0  # m²/s into cell (3, 0)
        div = grid.flux_divergence(fx, np.zeros((grid.ny + 1, grid.nx)))
        expected = -1.0 * grid.y_axis.spacing[3] / grid.area[3, 0]
        np.testing.assert_allclose(div[3, 0], expected, rtol=1e-12)
        assert np.count_nonzero(div) == 1

    def test_lonlat_nearest_cell_roundtrip(self, grid):
        lon, lat = grid.lonlat(5, 7)
        j, i = grid.nearest_cell(lon, lat)
        assert (j, i) == (5, 7)

    def test_min_spacing(self, grid):
        assert grid.min_spacing <= grid.x_axis.spacing.min() + 1e-12


class TestCharlotteGrid:
    def test_default_dimensions(self):
        g = make_charlotte_grid()
        assert (g.ny, g.nx) == (90, 60)

    def test_refinement_near_inlets(self):
        g = make_charlotte_grid()
        # x refinement near fractions 0.35 and 0.65
        mid = int(0.35 * g.nx)
        assert g.x_axis.spacing[mid] < g.x_axis.spacing[2]
