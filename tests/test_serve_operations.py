"""Serving operations: hot-swap, version pinning, rollback, autoscaling.

The control plane must move the pool between states without ever
touching the numbers: a deploy rolls a new engine version through the
replicas while every in-flight request finishes bitwise-identical on
the version that admitted it; a failed warmup (or a checkpoint that
does not load) leaves serving exactly as it was; and the autoscaler
grows/shrinks the live worker count from observed load without losing
a single admitted request.  Manual modes (pool ``autostart=False``,
autoscaler ``tick()``) make every scenario deterministic.
"""

import threading

import numpy as np
import pytest
from conftest import (  # noqa: F401 — shared serving fixtures
    assert_windows_equal,
    make_window,
)

from repro.hpc import PoolCapacityModel, ServingCapacityModel
from repro.serve import (
    AutoScaler,
    DeploymentError,
    EngineWorkerPool,
    ForecastServer,
    LoadSample,
)
from repro.train import load_model_like, save_checkpoint


@pytest.fixture()
def engine_pair(engine_factory):
    """Two engines over same-config models with *different* weights."""
    # distinct perturbation seeds force v1 vs v2 outputs apart
    return engine_factory(perturb=71), engine_factory(perturb=72)


def manual_pool(engine, **kwargs):
    kwargs.setdefault("replicas", 2)
    kwargs.setdefault("max_batch", 2)
    kwargs.setdefault("max_wait", 10.0)
    return EngineWorkerPool(engine, autostart=False, **kwargs)


def assert_batches_match_engine(pool, engines_by_version, by_request):
    """Every executed micro-batch (live + retired workers) must equal
    the direct ``forecast_batch`` of the *admitting worker's version*
    on its exact composition — the bitwise version-pinning guarantee."""
    checked = 0
    for worker in pool._all_workers():
        engine = engines_by_version[worker.version]
        for batch in worker.scheduler.metrics.batches:
            windows = [by_request[(worker.worker_id, rid)][0]
                       for rid in batch.request_ids]
            direct = engine.forecast_batch(windows)
            for rid, d in zip(batch.request_ids, direct):
                window, fut = by_request[(worker.worker_id, rid)]
                assert fut.engine_version == worker.version
                assert_windows_equal(fut.result(timeout=5).fields, d.fields)
                checked += 1
    return checked


class TestHotSwap:
    def test_inflight_requests_pinned_bitwise_to_old_version(
            self, engine_pair):
        e1, e2 = engine_pair
        pool = manual_pool(e1)
        # admitted under version 1, still queued when the deploy starts
        inflight = [(make_window(s), None) for s in range(5)]
        inflight = [(w, pool.submit(w)) for w, _ in inflight]
        record = pool.deploy(e2, source="swap")
        assert record.version == 2 and pool.current_version == 2
        # the deploy itself drained them — on the admitting version
        for w, fut in inflight:
            assert fut.done() and fut.engine_version == 1
        after = [(make_window(100 + s), None) for s in range(3)]
        after = [(w, pool.submit(w)) for w, _ in after]
        pool.flush()
        by_request = {}
        for w, fut in inflight + after:
            by_request[(fut.worker_id, fut.request_id)] = (w, fut)
        checked = assert_batches_match_engine(
            pool, {1: e1, 2: e2}, by_request)
        assert checked == 8
        # both versions actually served traffic, and v1 != v2 numerically
        versions = {fut.engine_version for _, fut in inflight + after}
        assert versions == {1, 2}
        r1 = e1.forecast_batch([after[0][0]])[0]
        r2 = e2.forecast_batch([after[0][0]])[0]
        assert not np.array_equal(r1.fields.zeta, r2.fields.zeta)
        pool.close()

    def test_deploy_events_and_metrics_survive_worker_turnover(
            self, engine_pair):
        e1, e2 = engine_pair
        with manual_pool(e1) as pool:
            pool.forecast_batch([make_window(s) for s in range(4)])
            served_before = pool.metrics.n_requests
            pool.deploy(e2)
            # every original replica was retired, yet history remains
            assert pool.metrics.n_requests == served_before == 4
            assert {w.version for w in pool.workers} == {2}
            kinds = [e.kind for e in pool.events]
            assert kinds[0] == "deploy-begin" and kinds[-1] == "deploy-done"
            assert kinds.count("deploy-surge") == 2
            assert kinds.count("deploy-drain") == 2
            summary = pool.metrics.summary()
            assert summary["engine_version"] == 2
            assert summary["deploys"] == 1
            assert summary["workers"] == 2
            assert pool.metrics.requests_by_version() == {1: 4, 2: 0}

    def test_zero_shed_during_manual_deploy(self, engine_pair):
        e1, e2 = engine_pair
        with manual_pool(e1, max_queue=2) as pool:
            for s in range(4):              # both replicas at their bound
                pool.submit(make_window(s))
            pool.deploy(e2)
            assert pool.shed_requests == 0

    def test_warmup_failure_rolls_back_untouched(self, engine_pair):
        e1, _ = engine_pair

        class BrokenEngine:
            time_steps = e1.time_steps

            def forecast_batch(self, refs):
                raise AssertionError("must never serve")

            def compile(self, batch):
                raise RuntimeError("bad weights: warmup exploded")

        with manual_pool(e1) as pool:
            before_ids = [w.worker_id for w in pool.workers]
            with pytest.raises(DeploymentError, match="warmup"):
                pool.deploy(BrokenEngine(), warm=True)
            # nothing serving-visible changed
            assert [w.worker_id for w in pool.workers] == before_ids
            assert pool.current_version == 1
            assert sorted(pool.versions) == [1]
            res = pool.forecast(make_window(0))
            direct = e1.forecast_batch([make_window(0)])[0]
            assert_windows_equal(res.fields, direct.fields)

    def test_midroll_failure_rolls_back_to_old_version(self, engine_pair,
                                                       monkeypatch):
        e1, e2 = engine_pair
        with manual_pool(e1) as pool:
            pool.forecast_batch([make_window(s) for s in range(3)])
            real_add = pool.add_worker
            calls = {"n": 0}

            def flaky_add(*args, **kwargs):
                if kwargs.get("kind") == "deploy-surge":
                    calls["n"] += 1
                    if calls["n"] == 2:
                        raise RuntimeError("replica spawn failed")
                return real_add(*args, **kwargs)

            monkeypatch.setattr(pool, "add_worker", flaky_add)
            with pytest.raises(DeploymentError, match="rolled back"):
                pool.deploy(e2)
            assert pool.current_version == 1
            assert sorted(pool.versions) == [1]
            live = [w for w in pool.workers if not w.draining]
            assert len(live) == 2
            assert {w.version for w in live} == {1}
            assert any(e.kind == "deploy-rollback" for e in pool.events)
            # and the pool still serves version-1 numbers
            res = pool.forecast(make_window(11))
            direct = e1.forecast_batch([make_window(11)])[0]
            assert_windows_equal(res.fields, direct.fields)

    def test_deploy_rejects_mismatched_episode_length(self, engine_pair):
        e1, _ = engine_pair

        class WrongT:
            time_steps = e1.time_steps + 1

            def forecast_batch(self, refs):
                return []

        with manual_pool(e1) as pool:
            with pytest.raises(ValueError, match="time_steps"):
                pool.deploy(WrongT())
            assert pool.current_version == 1


class TestServerDeploy:
    def test_checkpoint_deploy_swaps_numbers_and_cache(
            self, engine_pair, tmp_path):
        e1, e2 = engine_pair
        path = tmp_path / "next.npz"
        save_checkpoint(path, e2.model)
        window = make_window(1)
        with ForecastServer(e1, max_batch=4, max_wait=0.005,
                            cache_bytes=1 << 22) as server:
            before = server.forecast(window)
            assert_windows_equal(before.fields,
                                 e1.forecast_batch([window])[0].fields)
            record = server.deploy(path)
            assert record.version == 2
            assert str(path) in record.source
            # the cache was invalidated: same request, new weights
            after = server.forecast(window)
            assert_windows_equal(after.fields,
                                 e2.forecast_batch([window])[0].fields)
            assert not np.array_equal(after.fields.zeta,
                                      before.fields.zeta)
            m = server.metrics()
            assert m["engine_version"] == 2 and m["deploys"] == 1

    def test_bad_checkpoint_leaves_server_serving(self, engine_pair,
                                                  tmp_path):
        e1, _ = engine_pair
        path = tmp_path / "corrupt.npz"
        np.savez_compressed(path, **{"model/garbage": np.zeros(3)})
        with ForecastServer(e1, max_batch=4, max_wait=0.005) as server:
            with pytest.raises(KeyError):
                server.deploy(path)
            assert server.pool.current_version == 1
            window = make_window(2)
            assert_windows_equal(
                server.forecast(window).fields,
                e1.forecast_batch([window])[0].fields)

    def test_late_settle_of_old_version_cannot_repopulate_cache(
            self, engine_pair):
        """A request pinned to the outgoing version whose completion
        callback fires *after* deploy() invalidated the cache must not
        reinstate old-weights results as cache hits."""
        e1, e2 = engine_pair
        from repro.serve import window_key
        window = make_window(5)
        key = window_key(window)
        with ForecastServer(e1, max_batch=4, max_wait=0.005,
                            cache_bytes=1 << 22) as server:
            old_future = server.submit(window)    # admitted under v1
            old_future.result(timeout=30)
            server.deploy(e2)                     # invalidates the cache
            assert server.cache.get(key) is None
            # the late-settle interleaving: a v1 completion lands after
            # the deploy's clear()
            server._settle(key, old_future)
            assert server.cache.get(key) is None, \
                "stale version-1 result settled into the cleared cache"
            after = server.forecast(window)
            assert_windows_equal(after.fields,
                                 e2.forecast_batch([window])[0].fields)

    def test_load_model_like_restores_bitwise(self, engine_pair, tmp_path):
        e1, e2 = engine_pair
        path = tmp_path / "weights.npz"
        save_checkpoint(path, e2.model)
        clone = load_model_like(path, e1.model)
        assert clone is not e2.model
        for k, v in clone.state_dict().items():
            np.testing.assert_array_equal(v, e2.model.state_dict()[k])

    def test_no_request_loss_across_deploy_under_concurrent_load(
            self, engine_pair, tmp_path):
        """Acceptance: a threaded server under sustained load completes
        a deploy with zero shed and zero lost requests, and every
        response is bitwise-equal to its pinned version's direct
        ``forecast_batch`` output."""
        e1, e2 = engine_pair
        path = tmp_path / "v2.npz"
        save_checkpoint(path, e2.model)
        server = ForecastServer(e1, workers=2, max_batch=4,
                                max_wait=0.002, max_queue=512)
        tagged, lock = [], threading.Lock()
        deploy_started = threading.Event()

        def client(cid):
            for k in range(12):
                w = make_window(1000 + 100 * cid + k)
                fut = server.submit(w)
                with lock:
                    tagged.append((w, fut))
                if cid == 0 and k == 3:
                    deploy_started.set()

        threads = [threading.Thread(target=client, args=(c,))
                   for c in range(3)]
        for t in threads:
            t.start()
        deploy_started.wait(timeout=30)
        record = server.deploy(path)
        for t in threads:
            t.join()
        # a guaranteed post-deploy request so version 2 definitely serves
        w_last = make_window(9999)
        tagged.append((w_last, server.submit(w_last)))
        for _, fut in tagged:
            fut.result(timeout=60)
        assert record.version == 2
        assert server.pool.shed_requests == 0
        assert server.metrics()["failed_batches"] == 0
        by_request = {(fut.worker_id, fut.request_id): (w, fut)
                      for w, fut in tagged}
        assert len(by_request) == len(tagged)        # nothing lost
        # the deploy's with_model engine serves v2; compare against an
        # equivalent direct engine over the same weights
        v2_engine = server.pool.versions[2].engines[0]
        checked = assert_batches_match_engine(
            server.pool, {1: e1, 2: v2_engine}, by_request)
        assert checked == len(tagged)
        versions = {fut.engine_version for _, fut in tagged}
        assert versions == {1, 2}
        server.close()


class TestAutoScaler:
    def test_scripted_load_spike_grows_then_shrinks(self, engine_pair):
        """Acceptance: across a scripted spike the live worker count
        demonstrably grows and then shrinks, with every transition
        recorded."""
        e1, _ = engine_pair
        with manual_pool(e1, replicas=1, max_queue=4) as pool:
            scaler = AutoScaler(pool, min_workers=1, max_workers=3,
                                high_water=0.5, low_water=0.25,
                                scale_down_patience=2)
            history = [pool.n_workers]

            def spike(n):
                futures = []
                for s in range(n):
                    try:
                        futures.append(pool.submit(make_window(s)))
                    except Exception:
                        pass             # shed pressure is part of the script
                return futures

            # load spike: saturate the single replica → grow
            spike(4)
            history.append(scaler.tick())
            assert history[-1] == 2
            spike(8)
            history.append(scaler.tick())
            assert history[-1] == 3
            pool.flush()                 # spike over: drain everything
            # quiet windows: patience, then shrink one per tick
            for _ in range(6):
                history.append(scaler.tick())
            assert history[-1] == scaler.min_workers == 1
            assert max(history) == 3
            ups = [e for e in scaler.events if e.action == "up"]
            downs = [e for e in scaler.events if e.action == "down"]
            assert len(ups) == 2 and len(downs) == 2
            for e in downs:
                assert e.workers_after == e.workers_before - 1
            # the pool-side event log saw the same transitions
            kinds = [e.kind for e in pool.events]
            assert kinds.count("scale-up") == 2
            assert kinds.count("scale-down") == 2
            assert pool.metrics.summary()["scale_events"] == 4

    def test_scale_up_sheds_trigger_and_served_by_new_worker(
            self, engine_pair):
        e1, _ = engine_pair
        with manual_pool(e1, replicas=1, max_queue=2) as pool:
            scaler = AutoScaler(pool, min_workers=1, max_workers=2,
                                high_water=0.9, low_water=0.1)
            pool.submit(make_window(0))
            pool.submit(make_window(1))
            with pytest.raises(Exception):
                pool.submit(make_window(2))
            assert scaler.tick() == 2    # shed in window → grow
            assert scaler.events[-1].sample.shed == 1
            fut = pool.submit(make_window(3))
            pool.flush()
            direct = e1.forecast_batch([make_window(3)])[0]
            assert_windows_equal(fut.result(timeout=5).fields,
                                 direct.fields)

    def test_decide_is_pure_and_scriptable(self, engine_pair):
        e1, _ = engine_pair
        with manual_pool(e1, replicas=1) as pool:
            scaler = AutoScaler(pool, min_workers=1, max_workers=4,
                                high_water=0.5, low_water=0.1)

            def sample(workers, outstanding, shed=0, arrived=0,
                       seconds=1.0):
                return LoadSample(seconds=seconds, arrived=arrived,
                                  completed=0, shed=shed,
                                  outstanding=outstanding,
                                  workers=workers,
                                  queue_slots=workers * 32)
            # shed always grows, regardless of utilisation
            n, why = scaler.decide(sample(2, 0, shed=3))
            assert n == 3 and "shed" in why
            # high utilisation grows
            n, why = scaler.decide(sample(2, 40))
            assert n == 3 and "utilization" in why
            # clamped at max_workers
            n, _ = scaler.decide(sample(4, 128, shed=1))
            assert n == 4
            # low utilisation proposes shrink, clamped at min_workers
            n, _ = scaler.decide(sample(2, 0))
            assert n == 1
            n, _ = scaler.decide(sample(1, 0))
            assert n == 1
            # mid-band holds
            n, why = scaler.decide(sample(2, 20))
            assert n == 2 and why == "within band"

    def test_decide_uses_capacity_model_for_sizing(self, engine_pair):
        e1, _ = engine_pair
        replica = ServingCapacityModel(dispatch_seconds=0.0,
                                       per_request_seconds=0.01)
        model = PoolCapacityModel(replica, contention=0.0)   # X1 = 100
        with manual_pool(e1, replicas=1) as pool:
            scaler = AutoScaler(pool, min_workers=1, max_workers=8,
                                high_water=0.5, low_water=0.1,
                                target_utilization=0.5,
                                capacity_model=model)
            # 200 req/s at 50% target utilisation needs 400 req/s of
            # capacity → 4 replicas; the model sizes the jump directly
            s = LoadSample(seconds=1.0, arrived=200, completed=0,
                           shed=1, outstanding=0, workers=1,
                           queue_slots=32)
            n, why = scaler.decide(s)
            assert n == 4 and "model wants 4" in why
            # unreachable demand clamps to max_workers
            s = LoadSample(seconds=1.0, arrived=10_000, completed=0,
                           shed=1, outstanding=0, workers=1,
                           queue_slots=32)
            n, _ = scaler.decide(s)
            assert n == scaler.max_workers

    def test_patience_gates_scale_down(self, engine_pair):
        e1, _ = engine_pair
        with manual_pool(e1, replicas=2) as pool:
            scaler = AutoScaler(pool, min_workers=1, max_workers=2,
                                high_water=0.5, low_water=0.2,
                                scale_down_patience=3)
            assert scaler.tick() == 2    # quiet tick 1: hold
            assert scaler.tick() == 2    # quiet tick 2: hold
            assert scaler.tick() == 1    # quiet tick 3: shrink
            assert scaler.events[-1].action == "down"

    def test_threaded_autoscaler_on_server(self, engine_pair):
        """enable_autoscaling wires a background scaler that reacts to
        a real threaded load spike, then the server closes cleanly."""
        e1, _ = engine_pair
        with ForecastServer(e1, workers=1, max_batch=4, max_wait=0.001,
                            max_queue=4) as server:
            scaler = server.enable_autoscaling(
                min_workers=1, max_workers=3, high_water=0.25,
                low_water=0.05, scale_down_patience=1, interval=0.02)
            futures = []
            for s in range(48):
                while True:
                    try:
                        futures.append(server.submit(make_window(s)))
                        break
                    except Exception:
                        pass             # saturated: the spike is real
            for f in futures:
                f.result(timeout=60)
            assert any(e.action == "up" for e in scaler.events), \
                "a sustained saturating spike must trigger a scale-up"
            assert server.pool.metrics.n_requests == 48   # none lost
        assert scaler._thread is None    # closed with the server

    def test_validates_knobs(self, engine_pair):
        e1, _ = engine_pair
        with manual_pool(e1, replicas=1) as pool:
            for bad in (dict(min_workers=0),
                        dict(min_workers=3, max_workers=2),
                        dict(low_water=0.5, high_water=0.5),
                        dict(scale_down_patience=0),
                        dict(target_utilization=0.0)):
                with pytest.raises(ValueError):
                    AutoScaler(pool, **bad)


class TestPoolTopology:
    def test_add_and_remove_worker_keep_history(self, engine_pair):
        e1, _ = engine_pair
        with manual_pool(e1, replicas=1) as pool:
            pool.forecast_batch([make_window(s) for s in range(3)])
            w = pool.add_worker()
            assert pool.n_workers == 2 and w.version == 1
            pool.forecast_batch([make_window(s) for s in range(3, 6)])
            pool.remove_worker(w.worker_id)
            assert pool.n_workers == 1
            assert pool.metrics.n_requests == 6     # nothing forgotten
            assert w.worker_id in pool.metrics.requests_by_worker()

    def test_remove_worker_drains_backlog_on_old_worker(self, engine_pair):
        e1, _ = engine_pair
        with manual_pool(e1, replicas=2, max_queue=8) as pool:
            target = pool.workers[0]
            futures = [pool.submit(make_window(s)) for s in range(6)]
            victims = [f for f in futures
                       if f.worker_id == target.worker_id]
            assert victims                           # it got traffic
            pool.remove_worker(target.worker_id)
            for f in victims:                        # served, not dropped
                f.result(timeout=5)
            pool.flush()

    def test_cannot_remove_last_replica(self, engine_pair):
        e1, _ = engine_pair
        with manual_pool(e1, replicas=1) as pool:
            with pytest.raises(ValueError, match="last"):
                pool.remove_worker(pool.workers[0].worker_id)
            with pytest.raises(ValueError, match="no live worker"):
                pool.remove_worker(worker_id=999)

    def test_required_workers_capacity_model(self):
        replica = ServingCapacityModel(dispatch_seconds=0.004,
                                       per_request_seconds=0.001)
        model = PoolCapacityModel(replica, contention=0.0)   # X1 = 1000
        assert model.required_workers(1000.0, target_utilization=1.0) == 1
        assert model.required_workers(1000.0, target_utilization=0.5) == 2
        assert model.required_workers(9000.0, target_utilization=0.9,
                                      max_workers=4) is None
        with pytest.raises(ValueError, match="target_utilization"):
            model.required_workers(100.0, target_utilization=0.0)
