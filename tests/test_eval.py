"""Evaluation: error metrics, series extraction, report formatting."""

import numpy as np
import pytest

from repro.eval import (
    PAPER_LOCATIONS,
    aggregate_errors,
    compare_surface_fields,
    compute_errors,
    extract_series,
    format_sci,
    format_series,
    format_table,
    series_skill,
)
from repro.workflow import FieldWindow


def _window(rng, T=4, H=6, W=5, D=3, scale=1.0):
    return FieldWindow(
        u3=scale * rng.normal(size=(T, H, W, D)),
        v3=scale * rng.normal(size=(T, H, W, D)),
        w3=scale * 1e-4 * rng.normal(size=(T, H, W, D)),
        zeta=scale * rng.normal(size=(T, H, W)),
    )


class TestMetrics:
    def test_zero_error_for_identical(self, rng):
        w = _window(rng)
        e = compute_errors(w, w)
        assert all(v == 0.0 for v in e.mae.values())
        assert all(v == 0.0 for v in e.rmse.values())

    def test_rmse_ge_mae(self, rng):
        a, b = _window(rng), _window(rng)
        e = compute_errors(a, b)
        for var in ("u", "v", "w", "zeta"):
            assert e.rmse[var] >= e.mae[var]

    def test_known_constant_offset(self, rng):
        a = _window(rng)
        b = FieldWindow(a.u3 + 0.5, a.v3.copy(), a.w3.copy(), a.zeta.copy())
        e = compute_errors(b, a)
        assert e.mae["u"] == pytest.approx(0.5)
        assert e.rmse["u"] == pytest.approx(0.5)
        assert e.mae["v"] == 0.0

    def test_skip_initial_excludes_slot0(self, rng):
        a = _window(rng)
        b = FieldWindow(a.u3.copy(), a.v3.copy(), a.w3.copy(),
                        a.zeta.copy())
        b.u3[0] += 100.0    # corrupt only the IC slot
        e = compute_errors(b, a, skip_initial=True)
        assert e.mae["u"] == 0.0
        e_all = compute_errors(b, a, skip_initial=False)
        assert e_all.mae["u"] > 0.0

    def test_wet_mask_restricts(self, rng):
        a, b = _window(rng), _window(rng)
        wet = np.zeros((6, 5), dtype=bool)
        wet[2, 2] = True
        e = compute_errors(a, b, wet=wet)
        diff = np.abs(a.zeta[1:, 2, 2] - b.zeta[1:, 2, 2])
        assert e.mae["zeta"] == pytest.approx(diff.mean())

    def test_aggregate_means(self, rng):
        a, b = _window(rng), _window(rng)
        e1 = compute_errors(a, b)
        agg = aggregate_errors([e1, e1])
        assert agg.mae == e1.mae

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_errors([])

    def test_row_ordering(self, rng):
        e = compute_errors(_window(rng), _window(rng))
        row = e.row("mae")
        assert row == [e.mae["u"], e.mae["v"], e.mae["w"], e.mae["zeta"]]


class TestTimeseries:
    def test_extract_at_paper_locations(self, tiny_ocean, rng):
        T = 5
        H, W = tiny_ocean.grid.ny, tiny_ocean.grid.nx
        ref = FieldWindow(np.zeros((T, H, W, 2)), np.zeros((T, H, W, 2)),
                          np.zeros((T, H, W, 2)),
                          rng.normal(size=(T, H, W)))
        series = extract_series(tiny_ocean.grid, ref, ref,
                                locations=PAPER_LOCATIONS)
        assert len(series) == 3
        for s in series:
            assert s.reference.shape == (T,)
            np.testing.assert_array_equal(s.reference, s.forecast)

    def test_skill_perfect_forecast(self, tiny_ocean, rng):
        T, H, W = 20, tiny_ocean.grid.ny, tiny_ocean.grid.nx
        z = rng.normal(size=(T, H, W))
        ref = FieldWindow(np.zeros((T, H, W, 1)), np.zeros((T, H, W, 1)),
                          np.zeros((T, H, W, 1)), z)
        s = extract_series(tiny_ocean.grid, ref, ref)[0]
        skill = series_skill(s)
        assert skill["rmse"] == 0.0
        assert skill["corr"] == pytest.approx(1.0)
        assert skill["amp_ratio"] == pytest.approx(1.0)

    def test_skill_degrades_with_noise(self, tiny_ocean, rng):
        T, H, W = 50, tiny_ocean.grid.ny, tiny_ocean.grid.nx
        z = np.sin(np.linspace(0, 8 * np.pi, T))[:, None, None] \
            * np.ones((T, H, W))
        noisy = z + 0.8 * rng.normal(size=z.shape)
        ref = FieldWindow(np.zeros((T, H, W, 1)), np.zeros((T, H, W, 1)),
                          np.zeros((T, H, W, 1)), z)
        fore = FieldWindow(np.zeros((T, H, W, 1)), np.zeros((T, H, W, 1)),
                           np.zeros((T, H, W, 1)), noisy)
        s = extract_series(tiny_ocean.grid, ref, fore)[0]
        skill = series_skill(s)
        assert skill["rmse"] > 0.1
        assert skill["corr"] < 0.99

    def test_compare_surface_fields(self, tiny_ocean, rng):
        T, H, W, D = 3, tiny_ocean.grid.ny, tiny_ocean.grid.nx, 4
        a = FieldWindow(rng.normal(size=(T, H, W, D)),
                        rng.normal(size=(T, H, W, D)),
                        rng.normal(size=(T, H, W, D)),
                        rng.normal(size=(T, H, W)))
        wet = tiny_ocean.solver.wet
        cmp = compare_surface_fields(a, a, t=1, wet=wet)
        assert {c.variable for c in cmp} == {"u", "v", "zeta"}
        for c in cmp:
            assert c.diff_mae == 0.0
            assert c.pattern_corr == pytest.approx(1.0)


@pytest.fixture(scope="module")
def tiny_ocean():
    from repro.ocean import OceanConfig, RomsLikeModel
    return RomsLikeModel(OceanConfig(nx=14, ny=15, nz=6,
                                     length_x=14_000.0,
                                     length_y=15_000.0))


class TestReporting:
    def test_format_sci(self):
        assert format_sci(0.018) == "1.80E-02"
        assert format_sci(9.6e-05) == "9.60E-05"

    def test_table_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_series(self):
        out = format_series([1, 2], [10.0, 20.0], "x", "y")
        assert "10.0" in out and "20.0" in out

    def test_table_handles_empty_rows(self):
        out = format_table(["h"], [])
        assert "h" in out
