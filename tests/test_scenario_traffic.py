"""Scenario factory + traffic simulator: determinism, statistics,
trace persistence, and exact request accounting.

The contracts under test: one seed pins the whole scenario set bitwise
(basins, windows, arrival trace); the arrival process has the Poisson
statistics it claims (rate, spike shape, tenant mix); a trace survives
a JSONL round-trip exactly; and a replay through the serving stack —
thread or process backend, virtual or wall clock — accounts for every
offered request exactly once: ``offered == served + cached + shed``,
zero lost, zero double-served.
"""

import numpy as np
import pytest

from repro.scenario import (
    BasinLoad,
    BasinSpec,
    DiurnalCycle,
    ScenarioFactory,
    StormSpike,
    TrafficModel,
    TrafficTrace,
    replay_trace,
    simulate_trace,
)
from repro.serve import EngineWorkerPool, ForecastServer
from repro.workflow.engine import FieldWindow

VARS = ("u3", "v3", "w3", "zeta")


@pytest.fixture(scope="module")
def factory():
    return ScenarioFactory(seed=42)


# ----------------------------------------------------------------------
# scenario factory: one seed, bitwise basins
# ----------------------------------------------------------------------
class TestFactory:
    def test_same_seed_bitwise_identical_windows(self, factory):
        other = ScenarioFactory(seed=42)
        for name in factory.basin_names:
            for t in (0.0, 1800.0, 7200.0):
                a = factory.basin(name).window(t)
                b = other.basin(name).window(t)
                for var in VARS:
                    np.testing.assert_array_equal(getattr(a, var),
                                                  getattr(b, var))

    def test_different_seed_differs(self, factory):
        other = ScenarioFactory(seed=43)
        a = factory.basin("punta-gorda").window(0.0)
        b = other.basin("punta-gorda").window(0.0)
        assert not np.array_equal(a.zeta, b.zeta)

    def test_windows_staged_onto_wire_mesh(self, factory):
        """Fields live inside the native extent, zero beyond it."""
        T = factory.time_steps
        H, W, D = factory.wire_mesh
        for name in factory.basin_names:
            basin = factory.basin(name)
            ny, nx, nz = basin.native_mesh
            win = basin.window(900.0)
            assert win.zeta.shape == (T, H, W)
            assert win.u3.shape == (T, H, W, D)
            # something is happening inside the basin...
            assert np.abs(win.zeta[:, :ny, :nx]).max() > 0.0
            assert np.abs(win.u3[:, :ny, :nx, :nz]).max() > 0.0
            # ...and nothing beyond its native extent
            assert np.all(win.zeta[:, ny:, :] == 0.0)
            assert np.all(win.zeta[:, :, nx:] == 0.0)
            assert np.all(win.u3[:, ny:, :, :] == 0.0)
            assert np.all(win.u3[:, :, nx:, :] == 0.0)
            assert np.all(win.u3[:, :, :, nz:] == 0.0)

    def test_basins_are_heterogeneous(self, factory):
        meshes = {factory.basin(n).native_mesh for n in factory.basin_names}
        assert len(meshes) == len(factory.basin_names)

    def test_fields_physically_plausible(self, factory):
        win = factory.basin("boca-grande").window(0.0)
        assert np.abs(win.zeta).max() < 5.0        # metres of surge+tide
        assert np.abs(win.u3).max() < 10.0         # m/s currents

    def test_rejects_native_mesh_exceeding_wire(self):
        too_big = (BasinSpec("huge", ny=99, nx=4, nz=2),)
        with pytest.raises(ValueError, match="exceeds wire mesh"):
            ScenarioFactory(seed=0, basins=too_big)

    def test_rejects_duplicate_basin_names(self):
        dup = (BasinSpec("a", ny=4, nx=4, nz=2),
               BasinSpec("a", ny=5, nx=5, nz=2))
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioFactory(seed=0, basins=dup)

    def test_rolling_current_is_stable_and_advance_slides(self, factory):
        roll = factory.rolling("matlacha")
        first = roll.current
        assert roll.current is first               # exact-duplicate requests
        nxt = roll.advance()
        assert nxt is roll.current
        assert not np.array_equal(first.zeta, nxt.zeta)
        # open-loop advance is just the window at the shifted time
        basin = factory.basin("matlacha")
        np.testing.assert_array_equal(
            nxt.zeta, basin.window(basin.dt_seconds).zeta)

    def test_advance_warm_start_is_exact_half_blend(self, factory):
        basin = factory.basin("san-carlos")
        roll = factory.rolling("san-carlos")
        fake = FieldWindow(*(np.full_like(getattr(roll.current, v), 0.25)
                             for v in VARS))
        blended = roll.advance(forecast=fake)
        open_loop = basin.window(basin.dt_seconds)
        for var in VARS:
            got, obs = getattr(blended, var), getattr(open_loop, var)
            np.testing.assert_array_equal(
                got[0], 0.5 * (obs[0] + getattr(fake, var)[-1]))
            np.testing.assert_array_equal(got[1:], obs[1:])


# ----------------------------------------------------------------------
# traffic simulation: determinism + arrival statistics
# ----------------------------------------------------------------------
class TestTraffic:
    def test_same_seed_same_trace_different_seed_differs(self, factory):
        model = TrafficModel.from_factory(factory, base_rate=10.0)
        a = simulate_trace(model, duration_s=5.0, seed=7)
        b = simulate_trace(model, duration_s=5.0, seed=7)
        c = simulate_trace(model, duration_s=5.0, seed=8)
        assert a == b
        assert a != c
        assert a.n_requests > 0

    def test_poisson_rate_within_confidence_bounds(self):
        """Homogeneous single-basin stream: count ≈ Poisson(λT)."""
        lam, duration = 50.0, 20.0
        model = TrafficModel((BasinLoad("b"),), base_rate=lam,
                             unique_fraction=0.0)
        trace = simulate_trace(model, duration_s=duration, seed=3)
        expected = lam * duration
        # 4.5σ two-sided bound: deterministic test, negligible flake
        assert abs(trace.n_requests - expected) < 4.5 * np.sqrt(expected)

    def test_tenant_weights_shape_the_mix(self, factory):
        model = TrafficModel.from_factory(factory, base_rate=30.0)
        trace = simulate_trace(model, duration_s=20.0, seed=5)
        counts = trace.requests_by_basin()
        for spec in factory.specs:
            expected = 30.0 * spec.weight * 20.0
            assert abs(counts[spec.name] - expected) \
                < 4.5 * np.sqrt(expected)

    def test_storm_spike_concentrates_arrivals(self):
        spike = StormSpike(center_s=50.0, width_s=5.0, amplitude=4.0)
        model = TrafficModel((BasinLoad("b", spike=spike),),
                             base_rate=10.0, unique_fraction=0.0)
        trace = simulate_trace(model, duration_s=100.0, seed=9)
        times = trace.arrival_times()
        in_spike = np.sum((times >= 40.0) & (times <= 60.0))
        baseline = np.sum(times <= 20.0)
        # expected ≈ 678 vs 200: demand a clear 2× separation
        assert in_spike > 2 * baseline

    def test_diurnal_modulation_moves_peak(self):
        # quarter-period phase ⇒ maximum demand at t=0, minimum at T/2
        cyc = DiurnalCycle(amplitude=0.9, period_s=100.0,
                           phase_rad=np.pi / 2)
        model = TrafficModel((BasinLoad("b", diurnal=cyc),),
                             base_rate=20.0, unique_fraction=0.0)
        times = simulate_trace(model, duration_s=100.0, seed=2) \
            .arrival_times()
        near_peak = np.sum(times <= 25.0) + np.sum(times >= 75.0)
        near_trough = np.sum((times > 25.0) & (times < 75.0))
        assert near_peak > 1.5 * near_trough

    def test_unique_fraction_within_confidence_bounds(self, factory):
        model = TrafficModel.from_factory(factory, base_rate=20.0,
                                          unique_fraction=0.3)
        trace = simulate_trace(model, duration_s=10.0, seed=11)
        uniques = sum(1 for e in trace.events if e.kind == "unique")
        frac = uniques / trace.n_requests
        sigma = np.sqrt(0.3 * 0.7 / trace.n_requests)
        assert abs(frac - 0.3) < 4.5 * sigma
        # unique params land in the cache-busting offset window
        for e in trace.events:
            if e.kind == "unique":
                assert 1.0e5 <= e.param <= 1.0e6

    def test_advance_events_on_exact_cadence(self, factory):
        model = TrafficModel.from_factory(factory, base_rate=2.0,
                                          advance_every_s=1.5)
        trace = simulate_trace(model, duration_s=10.0, seed=1)
        for name in factory.basin_names:
            ticks = [e.t for e in trace.events
                     if e.basin == name and e.kind == "advance"]
            assert ticks == [1.5 * k for k in range(1, 7)]

    def test_events_time_sorted(self, factory):
        model = TrafficModel.from_factory(factory, base_rate=15.0,
                                          advance_every_s=0.7)
        trace = simulate_trace(model, duration_s=8.0, seed=4)
        times = [e.t for e in trace.events]
        assert times == sorted(times)


# ----------------------------------------------------------------------
# trace persistence
# ----------------------------------------------------------------------
class TestTracePersistence:
    def test_jsonl_round_trip_is_exact(self, factory, tmp_path):
        model = TrafficModel.from_factory(factory, base_rate=12.0,
                                          unique_fraction=0.4,
                                          advance_every_s=2.0)
        trace = simulate_trace(model, duration_s=6.0, seed=13)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = TrafficTrace.load(path)
        assert loaded == trace                      # bitwise, floats too
        assert [e.t for e in loaded.events] == [e.t for e in trace.events]

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"version": 99, "seed": 0, "duration_s": 1.0, '
                        '"base_rate": 1.0, "n_events": 0}\n')
        with pytest.raises(ValueError, match="version"):
            TrafficTrace.load(path)

    def test_load_rejects_truncated_file(self, factory, tmp_path):
        model = TrafficModel.from_factory(factory, base_rate=10.0)
        trace = simulate_trace(model, duration_s=3.0, seed=6)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            TrafficTrace.load(path)


# ----------------------------------------------------------------------
# replay accounting: every request accounted for exactly once
# ----------------------------------------------------------------------
def small_trace(factory, base_rate=5.0, duration=4.0, seed=21,
                unique_fraction=0.3, advance_every_s=1.5):
    model = TrafficModel.from_factory(
        factory, base_rate=base_rate, unique_fraction=unique_fraction,
        advance_every_s=advance_every_s)
    return simulate_trace(model, duration_s=duration, seed=seed)


class TestReplayAccounting:
    def test_virtual_mode_exact_accounting_with_cache(self, factory,
                                                      engine):
        trace = small_trace(factory)
        with ForecastServer(engine, max_batch=4, max_wait=10.0, workers=3,
                            router="key-affinity", cache_bytes=1 << 23,
                            autostart=False) as server:
            report = replay_trace(trace, server, factory, mode="virtual",
                                  flush_every=4)
        report.check()
        acc = report.accounting()
        assert acc["offered"] == trace.n_requests
        assert acc["offered"] == acc["served"] + acc["cached"] + acc["shed"]
        assert acc["lost"] == 0 and acc["duplicates"] == 0
        # rolling duplicates must actually hit the cache/dedup layer
        assert acc["cached"] > 0

    def test_virtual_replay_is_deterministic(self, factory, engine):
        trace = small_trace(factory)

        def run():
            with ForecastServer(engine, max_batch=4, max_wait=10.0,
                                workers=3, router="key-affinity",
                                cache_bytes=1 << 23,
                                autostart=False) as server:
                return replay_trace(trace, server, factory,
                                    mode="virtual", flush_every=4)

        a, b = run(), run()
        for name in factory.basin_names:
            ra, rb = a.per_basin[name], b.per_basin[name]
            assert (ra.offered, ra.served, ra.cached, ra.shed) \
                == (rb.offered, rb.served, rb.cached, rb.shed)
            assert ra.workers == rb.workers

    def test_loaded_trace_replays_like_generated(self, factory, engine,
                                                 tmp_path):
        trace = small_trace(factory)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = TrafficTrace.load(path)

        def run(t):
            with ForecastServer(engine, max_batch=4, max_wait=10.0,
                                workers=2, cache_bytes=1 << 23,
                                autostart=False) as server:
                return replay_trace(t, server, factory,
                                    mode="virtual", flush_every=4)

        a, b = run(trace), run(loaded)
        assert a.accounting() == b.accounting()

    def test_shedding_still_accounts_exactly(self, factory, engine):
        """Starve admission (tiny queues, rare flushes): requests shed,
        but none are lost or double-served."""
        trace = small_trace(factory, base_rate=8.0, unique_fraction=1.0)
        pool = EngineWorkerPool(engine, replicas=2, max_batch=2,
                                max_wait=10.0, max_queue=2,
                                autostart=False)
        try:
            report = replay_trace(trace, pool, factory, mode="virtual",
                                  flush_every=32)
        finally:
            pool.close()
        report.check()
        assert report.shed > 0
        assert report.offered == trace.n_requests
        assert report.served + report.cached + report.shed \
            == report.offered

    def test_wall_mode_thread_backend_exact_accounting(self, factory,
                                                       engine):
        trace = small_trace(factory, base_rate=4.0, duration=3.0)
        with ForecastServer(engine, max_batch=4, max_wait=0.01, workers=2,
                            cache_bytes=1 << 23) as server:
            report = replay_trace(trace, server, factory, mode="wall",
                                  time_scale=0.02)
        report.check()
        assert report.offered == trace.n_requests
        assert report.sustained_qps() > 0.0

    def test_wall_mode_process_backend_exact_accounting(self, factory,
                                                        engine):
        """The accounting invariant holds across the process boundary."""
        trace = small_trace(factory, base_rate=2.0, duration=3.0,
                            unique_fraction=0.5, advance_every_s=0.0)
        pool = EngineWorkerPool(engine, replicas=2, max_batch=4,
                                max_wait=0.01, backend="process")
        try:
            # time_scale=0: the degenerate submit-as-fast-as-possible
            # (step-function) load shape
            report = replay_trace(trace, pool, factory, mode="wall",
                                  time_scale=0.0)
        finally:
            pool.close()
        report.check()
        assert report.offered == trace.n_requests
        assert report.served == trace.n_requests   # bare pool: no cache
        assert len({w for b in report.per_basin.values()
                    for w in b.workers}) <= 2
