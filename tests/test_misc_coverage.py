"""Additional coverage: diagnostics, store append, edge behaviours."""

import numpy as np
import pytest

from repro.data import SnapshotStore
from repro.ocean import (
    OceanConfig,
    RomsLikeModel,
    SWEConfig,
    ShallowWaterSolver,
    TidalForcing,
    energy,
    make_charlotte_grid,
    synth_estuary_bathymetry,
)
from repro.tensor import Tensor, no_grad


class TestEnergyDiagnostics:
    @pytest.fixture()
    def solver(self):
        g = make_charlotte_grid(12, 14, 12_000.0, 14_000.0)
        return ShallowWaterSolver(g, synth_estuary_bathymetry(g),
                                  TidalForcing(), SWEConfig())

    def test_rest_state_zero_kinetic(self, solver):
        st = solver.initial_state()
        st.zeta[:] = 0.0
        e = energy(solver, st)
        assert e["kinetic"] == 0.0
        assert e["potential"] == 0.0
        assert e["total"] == 0.0

    def test_displacement_creates_potential(self, solver):
        st = solver.initial_state()
        st.zeta[:] = 0.0
        st.zeta[solver.wet] = 0.1
        e = energy(solver, st)
        assert e["potential"] > 0
        assert e["kinetic"] == 0.0

    def test_flow_creates_kinetic(self, solver):
        st = solver.initial_state()
        st.zeta[:] = 0.0
        st.u[solver.u_open] = 0.2
        e = energy(solver, st)
        assert e["kinetic"] > 0


class TestStoreAppend:
    def test_append_extends_archive(self, tmp_path, tiny_ocean_config):
        ocean = RomsLikeModel(tiny_ocean_config)
        st = ocean.solver.initial_state()
        first, st = ocean.simulate(st, 2)
        second, _ = ocean.simulate(st, 3)

        store = SnapshotStore(tmp_path / "arch")
        store.write(first, 1800.0)
        store.append(second)
        assert len(store) == 5
        np.testing.assert_allclose(
            store.read_var("zeta", 3).astype(np.float64),
            second[1].zeta, atol=1e-3)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SnapshotStore(tmp_path / "nothing").meta


class TestForecasterPipelineDetails:
    def test_forecaster_pads_internally(self, tiny_surrogate, tiny_bundle,
                                        tiny_ocean_config):
        """The forecaster accepts the *unpadded* mesh and crops back."""
        from repro.workflow import FieldWindow, SurrogateForecaster
        fc = SurrogateForecaster(tiny_surrogate,
                                 tiny_bundle.open_normalizer())
        w = tiny_bundle.open_test().read_window(0, 4)
        ref = FieldWindow(
            w["u3"].astype(np.float64), w["v3"].astype(np.float64),
            w["w3"].astype(np.float64), w["zeta"].astype(np.float64))
        out = fc.forecast_episode(ref)
        assert out.fields.zeta.shape[1:] == (tiny_ocean_config.ny,
                                             tiny_ocean_config.nx)

    def test_inference_builds_no_graph(self, tiny_surrogate, rng):
        cfg = tiny_surrogate.config
        H, W, D = cfg.mesh
        T = cfg.time_steps
        x3 = Tensor(rng.normal(size=(1, 3, H, W, D, T)).astype(np.float32))
        x2 = Tensor(rng.normal(size=(1, 1, H, W, T)).astype(np.float32))
        tiny_surrogate.eval()
        with no_grad():
            y3, y2 = tiny_surrogate(x3, x2)
        assert not y3.requires_grad and y3._backward is None


class TestSnapshotDataclass:
    def test_fields_independent_copies(self, tiny_ocean_config):
        ocean = RomsLikeModel(tiny_ocean_config)
        st = ocean.solver.initial_state()
        snaps, _ = ocean.simulate(st, 2)
        a, b = snaps
        assert a.t < b.t
        a.zeta[0, 0] = 123.0
        assert b.zeta[0, 0] != 123.0


class TestPaperScaleConfigs:
    def test_paper_ocean_mesh(self):
        cfg = OceanConfig.paper_mesh()
        assert (cfg.ny, cfg.nx, cfg.nz) == (898, 598, 12)

    def test_paper_surrogate_latents_merge_cleanly(self):
        from repro.swin import SurrogateConfig
        cfg = SurrogateConfig.paper()
        hp, wp, dp, t = cfg.latent_dims
        n_merge = len(cfg.depths) - 1
        assert hp % (2 ** n_merge) == 0
        assert wp % (2 ** n_merge) == 0
        assert dp % (2 ** n_merge) == 0

    def test_paper_surrogate_param_count_scale(self):
        """The paper reports 3.39 M parameters at patch 5.  Our
        architecture at the paper's exact hyperparameters must land in
        the same millions range (layout details may differ slightly)."""
        from repro.swin import CoastalSurrogate, SurrogateConfig
        model = CoastalSurrogate(SurrogateConfig.paper())
        total = model.num_parameters()
        assert 1e6 < total < 2e7
