"""4-D window machinery: partition/reverse roundtrip, shifts, masks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.swin import (
    compute_attention_mask,
    compute_shift_sizes,
    effective_window,
    num_windows,
    window_partition,
    window_reverse,
)
from repro.swin.window import NEG_INF
from repro.tensor import Tensor


class TestEffectiveWindow:
    def test_clamps_to_dims(self):
        assert effective_window((4, 4, 1, 8), (2, 2, 2, 2)) == (2, 2, 1, 2)

    def test_identity_when_smaller(self):
        assert effective_window((8, 8, 8, 8), (4, 2, 2, 2)) == (4, 2, 2, 2)


class TestShiftSizes:
    def test_half_window(self):
        assert compute_shift_sizes((8, 8, 4, 8), (4, 4, 2, 2)) == (2, 2, 1, 1)

    def test_zero_when_window_spans_dim(self):
        assert compute_shift_sizes((4, 8, 2, 8), (4, 4, 2, 2)) == (0, 2, 0, 1)


class TestNumWindows:
    def test_count(self):
        assert num_windows((8, 8, 4, 4), (4, 4, 2, 2)) == 2 * 2 * 2 * 2

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            num_windows((7, 8, 4, 4), (4, 4, 2, 2))


class TestPartitionReverse:
    def test_shapes(self, rng):
        x = Tensor(rng.normal(size=(2, 4, 4, 2, 4, 3)).astype(np.float32))
        win = (2, 2, 2, 2)
        tokens = window_partition(x, win)
        assert tokens.shape == (2 * 2 * 2 * 1 * 2, 16, 3)

    def test_roundtrip_identity(self, rng):
        x = rng.normal(size=(2, 4, 4, 2, 4, 3)).astype(np.float32)
        win = (2, 2, 2, 2)
        t = window_partition(Tensor(x), win)
        back = window_reverse(t, win, (4, 4, 2, 4))
        np.testing.assert_array_equal(back.data, x)

    def test_roundtrip_gradient_is_identity(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 4, 2, 2, 2)).astype(np.float32),
                   requires_grad=True)
        win = (2, 2, 2, 2)
        out = window_reverse(window_partition(x, win), win, (4, 4, 2, 2))
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(x.shape, 3.0))

    def test_window_contents_are_contiguous_blocks(self, rng):
        """The first window must contain exactly the first block."""
        H = W = D = T = 2
        x = np.arange(H * W * D * T, dtype=np.float32).reshape(
            1, H, W, D, T, 1)
        t = window_partition(Tensor(x), (2, 2, 2, 2))
        assert t.shape[0] == 1
        np.testing.assert_array_equal(np.sort(t.data[0, :, 0]),
                                      np.arange(16, dtype=np.float32))

    @given(st.sampled_from([(4, 4, 2, 2), (2, 2, 2, 2), (4, 2, 1, 2)]),
           st.integers(1, 2))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, win, b):
        rng = np.random.default_rng(0)
        dims = (4, 4, 2, 4)
        eff = effective_window(dims, win)
        x = rng.normal(size=(b,) + dims + (3,)).astype(np.float32)
        t = window_partition(Tensor(x), eff)
        back = window_reverse(t, eff, dims)
        np.testing.assert_array_equal(back.data, x)


class TestAttentionMask:
    def test_no_shift_mask_is_zero(self):
        m = compute_attention_mask((4, 4, 2, 2), (2, 2, 2, 2), (0, 0, 0, 0))
        assert np.all(m == 0.0)
        assert m.shape == (2 * 2 * 1 * 1, 16, 16)

    def test_shifted_mask_blocks_wrapped_pairs(self):
        dims, win = (4, 4, 2, 2), (2, 2, 2, 2)
        shift = compute_shift_sizes(dims, win)
        m = compute_attention_mask(dims, win, shift)
        assert (m == NEG_INF).any()
        assert (m == 0.0).any()

    def test_mask_is_symmetric(self):
        dims, win = (4, 4, 2, 2), (2, 2, 2, 2)
        shift = compute_shift_sizes(dims, win)
        m = compute_attention_mask(dims, win, shift)
        np.testing.assert_array_equal(m, np.swapaxes(m, -1, -2))

    def test_mask_diagonal_open(self):
        """A token always attends to itself."""
        dims, win = (4, 4, 2, 4), (2, 2, 2, 2)
        shift = compute_shift_sizes(dims, win)
        m = compute_attention_mask(dims, win, shift)
        n = m.shape[-1]
        diag = m[:, np.arange(n), np.arange(n)]
        assert np.all(diag == 0.0)

    def test_mask_is_cached(self):
        a = compute_attention_mask((4, 4, 2, 2), (2, 2, 2, 2), (1, 1, 1, 1))
        b = compute_attention_mask((4, 4, 2, 2), (2, 2, 2, 2), (1, 1, 1, 1))
        assert a is b  # lru_cache returns the same object

    def test_interior_window_fully_open(self):
        """Windows not touching a wrap seam have an all-zero mask."""
        dims, win = (8, 8, 2, 2), (2, 2, 2, 2)
        shift = compute_shift_sizes(dims, win)
        m = compute_attention_mask(dims, win, shift)
        fully_open = (m == 0).all(axis=(1, 2))
        assert fully_open.any()
