"""Adjoint/sensitivity tier: FD gradchecks, served-gradient parity.

Three layers of validation, mirroring ``docs/differentiation.md``:

1. the differentiable storm overlay alone, in float64, against
   :func:`repro.tensor.gradcheck.gradcheck` (tight tolerance);
2. ``ForecastEngine.sensitivity_batch`` end to end — through the
   float32 model forward — against central finite differences of the
   *numpy serving path* (``forecast_batch`` + the numpy diagnostic
   reference), with the looser tolerances the float32 noise floor
   demands (see the gradcheck module docstring);
3. the serving tier: served gradient responses bitwise-identical to
   direct ``sensitivity_batch`` calls on the thread backend, gradient
   cache/dedup keying, and clear rejection on process/host backends.
"""

import numpy as np
import pytest

from conftest import VARS, make_window

from repro.data.preprocess import Normalizer
from repro.serve import (
    EngineWorkerPool,
    ForecastServer,
    HostWorker,
    MicroBatchScheduler,
    ProcessWorker,
    gradient_key,
    window_key,
)
from repro.tensor import Tensor, astensor
from repro.tensor.gradcheck import gradcheck, numerical_grad
from repro.workflow import (
    STORM_PARAMS,
    ForecastEngine,
    GradientRequest,
    SensitivityResult,
    StormOverlay,
    evaluate_diagnostic,
)

T, H, W, D = 4, 15, 14, 6

#: strong, wide, fast-moving storm: its parameters move the diagnostic
#: enough that the end-to-end finite difference clears the float32
#: forward's noise floor (weak storms have true gradients below it)
STORM = StormOverlay(x0=6000.0, y0=7000.0, vx=500.0, vy=300.0,
                     max_wind=60.0, radius_max_wind=8000.0,
                     central_pressure_drop=20000.0, dt=3.0)

#: per-parameter FD perturbation scales (a unitless step of ``eps``
#: perturbs parameter p by ``eps * SCALES[p]`` — metres and pascals
#: need very different absolute steps)
SCALES = {"x0": 1000.0, "y0": 1000.0, "max_wind": 5.0,
          "radius_max_wind": 800.0, "central_pressure_drop": 2000.0,
          "inflow_angle_rad": 0.2}


@pytest.fixture(scope="module")
def grad_engine(tiny_surrogate):
    """Engine with non-trivial z-score statistics, so the FD checks
    exercise the normalise/denormalise legs of the adjoint too."""
    norm = Normalizer({v: 0.1 for v in VARS}, {v: 1.5 for v in VARS})
    return ForecastEngine(tiny_surrogate, norm)


@pytest.fixture(scope="module")
def ref_window():
    return make_window(7)


def _diag_fd(eng, window, diagnostic, obs=None):
    """The numpy serving path as a scalar function — what FD samples."""
    def run(w):
        out = eng.forecast_batch([w])[0]
        return evaluate_diagnostic(
            diagnostic, out.fields.zeta[None],
            None if obs is None else obs[None])[0]
    return run


# ---------------------------------------------------------------------------
# 1. overlay graph in float64: tight gradcheck over all six parameters
# ---------------------------------------------------------------------------
def test_storm_overlay_gradcheck_float64():
    ov = StormOverlay(x0=6000.0, y0=7000.0, radius_max_wind=4000.0)
    base = np.array([getattr(ov, p) for p in STORM_PARAMS])
    scale = np.array([SCALES[p] for p in STORM_PARAMS])

    def fn(s):
        theta = astensor(base) + s * astensor(scale)
        params = {p: theta[i] for i, p in enumerate(STORM_PARAMS)}
        du3, dv3, dz = ov.increments(params, T, (H, W), D)
        # weighted sum so no component's gradient can hide in another's
        return du3.sum() + dv3.sum() * 0.5 + dz.sum() * 2.0

    assert gradcheck(fn, [np.zeros(len(STORM_PARAMS))],
                     atol=1e-5, rtol=1e-3, eps=1e-4)


def test_overlay_apply_matches_increments():
    """The numpy forward and the Tensor graph are the same function."""
    ov = STORM
    win = make_window(11)
    out = ov.apply(win)
    du3, dv3, dz = ov.increments(ov.tensor_params(), T, (H, W), D)
    np.testing.assert_array_equal(out.u3, win.u3 + du3.data)
    np.testing.assert_array_equal(out.v3, win.v3 + dv3.data)
    np.testing.assert_array_equal(out.zeta, win.zeta + dz.data)
    np.testing.assert_array_equal(out.w3, win.w3)


# ---------------------------------------------------------------------------
# 2. engine adjoint vs FD of the numpy serving path
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("diagnostic", ["mean_surge", "peak_surge",
                                        "surge_mse"])
def test_value_matches_forecast_diagnostic(grad_engine, ref_window,
                                           diagnostic):
    """The differentiable forward reproduces the served diagnostic."""
    obs = None
    if diagnostic == "surge_mse":
        obs = np.random.default_rng(5).normal(size=(T, H, W)) * 0.01
    res = grad_engine.sensitivity_batch(
        [ref_window], diagnostic=diagnostic,
        observations=None if obs is None else [obs])[0]
    ref = _diag_fd(grad_engine, ref_window, diagnostic, obs)(ref_window)
    assert res.value == pytest.approx(ref, rel=1e-4)


@pytest.mark.parametrize("diagnostic", ["mean_surge", "surge_mse"])
def test_field_sensitivity_matches_fd(grad_engine, ref_window, diagnostic):
    """Directional central FD over each full input field.

    Single-element gradients sit at ~1e-9 after patch-embedding
    dilution — far below the float32 FD noise floor — so each field is
    checked along a fixed random direction, which aggregates the whole
    gradient array into one well-conditioned scalar derivative.
    """
    rng = np.random.default_rng(21)
    obs = rng.normal(size=(T, H, W)) * 0.01 if diagnostic == "surge_mse" \
        else None
    res = grad_engine.sensitivity_batch(
        [ref_window], diagnostic=diagnostic,
        observations=None if obs is None else [obs])[0]
    run = _diag_fd(grad_engine, ref_window, diagnostic, obs)
    # ζ feeds the diagnostic directly (strong signal, tight tolerance);
    # the velocity fields only reach it through the model interior
    # (weak signal, float32-noise-limited tolerance)
    tols = {"zeta": 1e-3, "u3": 0.25, "v3": 0.25, "w3": 0.25}
    for var in VARS:
        direction = rng.normal(size=getattr(ref_window, var).shape)

        def fn(s):
            w2 = ref_window.copy()
            getattr(w2, var)[...] += float(s.data) * direction
            return Tensor(np.asarray(run(w2)))

        fd = float(numerical_grad(fn, [np.zeros(())], 0, eps=2e-3))
        ana = float((getattr(res.d_fields, var) * direction).sum())
        assert fd != 0.0 and ana != 0.0, f"{var}: degenerate check"
        rel = abs(fd - ana) / max(abs(fd), abs(ana))
        assert rel < tols[var], \
            f"{var}: fd={fd:.3e} analytic={ana:.3e} rel={rel:.3e}"


def test_peak_surge_zeta_sensitivity_matches_fd(grad_engine, ref_window):
    """peak_surge is piecewise-linear; the dominant ζ leg must still
    FD-match away from argmax ties (seeded window keeps it unique)."""
    res = grad_engine.sensitivity_batch([ref_window],
                                        diagnostic="peak_surge")[0]
    run = _diag_fd(grad_engine, ref_window, "peak_surge")
    direction = np.random.default_rng(3).normal(size=(T, H, W))

    def fn(s):
        w2 = ref_window.copy()
        w2.zeta[...] += float(s.data) * direction
        return Tensor(np.asarray(run(w2)))

    fd = float(numerical_grad(fn, [np.zeros(())], 0, eps=2e-3))
    ana = float((res.d_fields.zeta * direction).sum())
    rel = abs(fd - ana) / max(abs(fd), abs(ana))
    assert rel < 1e-3


def test_storm_sensitivity_matches_fd(grad_engine, ref_window):
    """End-to-end central FD for every storm parameter.

    The FD function is the full numpy serving path: overlay the
    perturbed storm, forecast, reduce — autograd never touches it.
    """
    res = grad_engine.sensitivity_batch(
        [ref_window], diagnostic="mean_surge", wrt=("fields", "storm"),
        storms=[STORM])[0]
    for name in STORM_PARAMS:
        def fn(s):
            ov = STORM.replace(
                **{name: getattr(STORM, name) + float(s.data) * SCALES[name]})
            out = grad_engine.forecast_batch([ov.apply(ref_window)])[0]
            return Tensor(np.asarray(evaluate_diagnostic(
                "mean_surge", out.fields.zeta[None])[0]))

        fd = float(numerical_grad(fn, [np.zeros(())], 0, eps=0.2)) \
            / SCALES[name]
        ana = res.d_storm[name]
        assert fd != 0.0 and ana != 0.0, f"{name}: degenerate check"
        rel = abs(fd - ana) / max(abs(fd), abs(ana))
        assert rel < 0.05, \
            f"{name}: fd={fd:.3e} analytic={ana:.3e} rel={rel:.3e}"


def test_sensitivity_leaves_inference_untouched(grad_engine, ref_window):
    """The backward must not perturb concurrent-style forward serving:
    parameter flags restored, results bitwise-stable."""
    before = grad_engine.forecast_batch([ref_window])[0]
    flags = [p.requires_grad for p in grad_engine.model.parameters()]
    grad_engine.sensitivity_batch([ref_window], wrt=("fields", "storm"),
                                  storms=[STORM])
    assert [p.requires_grad
            for p in grad_engine.model.parameters()] == flags
    after = grad_engine.forecast_batch([ref_window])[0]
    for var in VARS:
        np.testing.assert_array_equal(getattr(before.fields, var),
                                      getattr(after.fields, var))


def test_sensitivity_batch_validation(grad_engine, ref_window):
    with pytest.raises(ValueError, match="wrt"):
        grad_engine.sensitivity_batch([ref_window], wrt=("weights",))
    with pytest.raises(ValueError, match="diagnostic"):
        grad_engine.sensitivity_batch([ref_window], diagnostic="nope")
    with pytest.raises(ValueError, match="observation"):
        grad_engine.sensitivity_batch([ref_window], diagnostic="surge_mse")
    with pytest.raises(ValueError, match="StormOverlay"):
        grad_engine.sensitivity_batch([ref_window], wrt=("storm",))
    assert grad_engine.sensitivity_batch([]) == []


def test_gradient_request_validation(ref_window):
    with pytest.raises(ValueError, match="diagnostic"):
        GradientRequest(ref_window, diagnostic="nope")
    with pytest.raises(ValueError, match="wrt"):
        GradientRequest(ref_window, wrt=())
    with pytest.raises(ValueError, match="observation"):
        GradientRequest(ref_window, diagnostic="surge_mse")
    with pytest.raises(ValueError, match="StormOverlay"):
        GradientRequest(ref_window, wrt=("fields", "storm"))


# ---------------------------------------------------------------------------
# 3. serving tier
# ---------------------------------------------------------------------------
def test_served_gradient_bitwise_equals_direct(engine, windows):
    """Thread backend: the served response IS the direct backward —
    bitwise, because the scheduler literally calls sensitivity_batch
    on the micro-batch the requests coalesced into."""
    batch = windows[:3]
    with ForecastServer(engine, autostart=False, max_wait=0.0,
                        warm_plans=False) as srv:
        futures = [srv.submit_sensitivity(
            GradientRequest(w, diagnostic="mean_surge",
                            wrt=("fields", "storm"), storm=STORM))
            for w in batch]
        srv.flush()
        served = [f.result() for f in futures]
    direct = engine.sensitivity_batch(
        batch, diagnostic="mean_surge", wrt=("fields", "storm"),
        storms=[STORM] * len(batch))
    for s, d in zip(served, direct):
        assert isinstance(s, SensitivityResult)
        assert s.value == d.value
        assert s.d_storm == d.d_storm
        for var in VARS:
            np.testing.assert_array_equal(getattr(s.d_fields, var),
                                          getattr(d.d_fields, var))
    # served futures carry the version of the replica that ran them
    assert all(f.engine_version == 1 for f in futures)


def test_gradient_cache_and_dedup(engine, windows):
    req = GradientRequest(windows[0], diagnostic="mean_surge")
    with ForecastServer(engine, cache_bytes=1 << 22, autostart=False,
                        max_wait=0.0, warm_plans=False) as srv:
        # two identical submissions before any flush: one leader, one
        # dedup follower, a single gradient micro-batch
        fa = srv.submit_sensitivity(req)
        fb = srv.submit_sensitivity(req)
        srv.flush()
        ra, rb = fa.result(), fb.result()
        assert srv.deduped_requests == 1
        assert srv.metrics()["grad_batches"] == 1
        # third submission after settle: pure cache hit, no engine work
        fc = srv.submit_sensitivity(req)
        assert fc.done() and fc.cache_hit
        rc = fc.result()
        assert srv.metrics()["grad_batches"] == 1
        for r in (rb, rc):
            assert r.value == ra.value
            np.testing.assert_array_equal(r.d_fields.zeta,
                                          ra.d_fields.zeta)
        # copies, not aliases: consumers may mutate their results
        rc.d_fields.zeta[...] = 0.0
        rd = srv.submit_sensitivity(req).result()
        assert not np.array_equal(rd.d_fields.zeta, rc.d_fields.zeta)


def test_gradient_keys_are_disjoint(windows):
    w = windows[0]
    base = GradientRequest(w, diagnostic="mean_surge")
    # gradient vs forecast namespaces
    assert gradient_key(base) != window_key(w)
    # every request facet feeds the digest
    assert gradient_key(base) != gradient_key(
        GradientRequest(w, diagnostic="peak_surge"))
    assert gradient_key(base) != gradient_key(
        GradientRequest(w, diagnostic="mean_surge",
                        wrt=("fields", "storm"), storm=STORM))
    assert gradient_key(
        GradientRequest(w, diagnostic="mean_surge",
                        wrt=("fields", "storm"), storm=STORM)) != \
        gradient_key(GradientRequest(
            w, diagnostic="mean_surge", wrt=("fields", "storm"),
            storm=STORM.replace(max_wind=STORM.max_wind + 1.0)))
    obs = np.zeros((T, H, W))
    assert gradient_key(
        GradientRequest(w, diagnostic="surge_mse", observation=obs)) != \
        gradient_key(GradientRequest(
            w, diagnostic="surge_mse", observation=obs + 1.0))
    # determinism
    assert gradient_key(base) == gradient_key(
        GradientRequest(w.copy(), diagnostic="mean_surge"))


def test_mixed_traffic_never_shares_a_batch(engine, windows):
    """Forecast and gradient requests (and gradient requests with
    different signatures) each flush as their own micro-batch, in FIFO
    order."""
    sched = MicroBatchScheduler(engine, max_batch=8, autostart=False)
    f1 = sched.submit(windows[0])
    g1 = sched.submit_gradient(GradientRequest(windows[1]))
    g2 = sched.submit_gradient(GradientRequest(windows[2]))
    g3 = sched.submit_gradient(
        GradientRequest(windows[3], diagnostic="mean_surge"))
    f2 = sched.submit(windows[4])
    sched.flush()
    kinds = [(b.kind, b.size) for b in sched.metrics.batches]
    assert kinds == [("forecast", 1), ("gradient", 2), ("gradient", 1),
                     ("forecast", 1)]
    assert sched.metrics.grad_batches == 2
    assert sched.metrics.backward_seconds > 0.0
    assert sched.metrics.summary()["grad_batches"] == 2
    for f in (f1, g1, g2, g3, f2):
        f.result()
    sched.close()


def test_pool_metrics_count_gradients(engine, windows):
    pool = EngineWorkerPool(engine, replicas=2, autostart=False,
                            max_wait=0.0)
    try:
        futs = [pool.submit_gradient(GradientRequest(w))
                for w in windows[:4]]
        pool.flush()
        for f in futs:
            assert isinstance(f.result(), SensitivityResult)
        summary = pool.metrics.summary()
        assert pool.metrics.grad_batches >= 1
        assert summary["grad_batches"] == pool.metrics.grad_batches
        assert summary["backward_seconds"] > 0.0
    finally:
        pool.close()


def test_process_and_host_backends_reject_gradients(engine, windows):
    """The proxy executors transport arrays, not autograd tapes, so
    gradient submission must fail fast with guidance — at the pool
    guard and, defence-in-depth, at the scheduler."""
    # the real proxy classes genuinely lack the adjoint entry point
    assert not hasattr(ProcessWorker, "sensitivity_batch")
    assert not hasattr(HostWorker, "sensitivity_batch")

    req = GradientRequest(windows[0])
    pool = EngineWorkerPool(engine, autostart=False, max_wait=0.0)
    try:
        for backend in ("process", "host"):
            pool.backend = backend
            with pytest.raises(NotImplementedError,
                               match="backend='thread'"):
                pool.submit_gradient(req)
    finally:
        pool.backend = "thread"
        pool.close()

    class ForwardOnly:
        """What a ProcessWorker/HostWorker proxy looks like to its
        scheduler: forecast_batch + time_steps, no sensitivity_batch."""
        time_steps = T

        def forecast_batch(self, refs):
            raise AssertionError("must not be reached")

    sched = MicroBatchScheduler(ForwardOnly(), autostart=False)
    with pytest.raises(NotImplementedError, match="sensitivity_batch"):
        sched.submit_gradient(req)
    sched.close()


def test_served_gradient_threaded_mode(engine, windows):
    """Autostarted (threaded) server: the default deployment serves
    gradients concurrently with forecasts."""
    with ForecastServer(engine, cache_bytes=1 << 22,
                        max_wait=0.001, warm_plans=False) as srv:
        gf = srv.submit_sensitivity(GradientRequest(windows[5]))
        ff = srv.submit(windows[6])
        grad = gf.result(timeout=30.0)
        fc = ff.result(timeout=30.0)
    assert isinstance(grad, SensitivityResult)
    assert grad.d_fields.zeta.shape == (T, H, W)
    assert fc.fields.zeta.shape == (T, H, W)
