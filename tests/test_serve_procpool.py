"""Process execution tier: equivalence, failure model, shm lifecycle.

The process backend must be invisible from above: results bitwise-equal
to the direct engine call for every routing policy (including across a
live deploy), child death surfacing as failed futures plus worker
retirement (never a hang), and every shared-memory segment unlinked on
retirement, rollback, and abnormal death.  Children cost ~1s each to
spawn on this host, so tests share engines and keep pools narrow.
"""

import os
import signal
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.serve import (
    DeploymentError,
    EngineWorkerPool,
    ProcessWorker,
    ProcessWorkerDied,
)
from repro.serve.autoscale import AutoScaler
from repro.serve.scheduler import MicroBatchScheduler
from repro.tensor.plan import BufferArena, ExecutionPlan, PlanExecutor, trace

from conftest import assert_windows_equal   # noqa: F401 — shared helper

# the satellite leak requirement: any resource_tracker or cleanup
# UserWarning raised during these tests is a failure, not noise
pytestmark = pytest.mark.filterwarnings("error::UserWarning")


def segments_alive(names):
    """Which of the shm segment names still exist on this host."""
    return [n for n in names if os.path.exists(f"/dev/shm/{n}")]


def assert_results_equal(a, b):
    for ra, rb in zip(a, b):
        assert_windows_equal(ra.fields, rb.fields)


def second_model(engine):
    """A same-shape model with different weights (fresh init seed)."""
    return type(engine.model)(replace(engine.model.config, seed=99))


# ----------------------------------------------------------------------
# plan serialisation (the layer the transport is built on)
# ----------------------------------------------------------------------
class TestPlanPickle:
    def test_roundtrip_replays_bitwise(self, engine):
        plan = engine.compile(2).plan
        clone = ExecutionPlan.from_bytes(plan.to_bytes())
        assert clone.n_steps == plan.n_steps
        assert clone.arena_total == plan.arena_total
        assert [s.name for s in clone.steps] == [s.name for s in plan.steps]
        r = np.random.default_rng(7)
        args = tuple(r.normal(size=s).astype(np.float32)
                     for s in engine._input_shapes(2))
        out_a = PlanExecutor(plan, BufferArena()).run(args)
        out_b = PlanExecutor(clone, BufferArena()).run(args)
        for x, y in zip(out_a, out_b):
            np.testing.assert_array_equal(x, y)

    def test_roundtrip_excludes_live_buffers(self, engine):
        plan = engine.compile(2).plan
        # the blob ships the description and baked constants, never the
        # arena: its size is bounded by constants + step metadata, well
        # under what including the buffers would cost
        assert len(plan.to_bytes()) < plan.const_bytes() \
            + plan.arena_bytes() // 2

    def test_unknown_kernel_rejected(self):
        plan, _ = trace(lambda a: a + a, (np.ones((2, 2), np.float32),))
        state = plan.__getstate__()
        state["steps"] = [("no-such-kernel",) + s[1:]
                         for s in state["steps"]]
        fresh = ExecutionPlan.__new__(ExecutionPlan)
        with pytest.raises(Exception, match="not registered"):
            fresh.__setstate__(state)


# ----------------------------------------------------------------------
# single worker: transport equivalence
# ----------------------------------------------------------------------
class TestProcessWorker:
    def test_bitwise_equal_and_lifecycle(self, engine, windows):
        direct_eager = engine.forecast_batch(windows[:5])
        direct_plan = engine.forecast_batch(windows[:2])
        with ProcessWorker(engine, warm_batches=(2,)) as worker:
            assert worker.time_steps == engine.time_steps
            assert 2 in worker.compiled_batches
            # eager fallback (batch size without a plan): same numbers
            served = worker.forecast_batch(windows[:5])
            assert_results_equal(direct_eager, served)
            assert not served[0].compiled
            # compiled path: same numbers, flagged compiled
            served = worker.forecast_batch(windows[:2])
            assert_results_equal(direct_plan, served)
            assert served[0].compiled
            # the transport is observable: bytes moved, overhead timed
            stats = worker.transport_stats()
            assert stats["batches"] == 2
            assert stats["marshal_bytes"] > 0
            assert stats["ipc_wait_s"] > 0
            assert stats["spawn_seconds"] > 0
            names = worker.segment_names()
            assert segments_alive(names), "expected live segments"
        # graceful close unlinks every segment of the pair
        assert segments_alive(names) == []

    def test_child_compile_rpc(self, engine, windows):
        with ProcessWorker(engine) as worker:
            assert worker.compiled_batches == engine.compiled_batches
            worker.compile(3)
            assert 3 in worker.compiled_batches
            served = worker.forecast_batch(windows[:3])
            assert served[0].compiled
            assert_results_equal(engine.forecast_batch(windows[:3]),
                                 served)
            stats = worker.plan_stats()
            assert 3 in stats["batches"]
            assert stats["transport"]["backend"] == "process"

    def test_needs_a_real_engine(self):
        class NotAnEngine:
            time_steps = 4

        with pytest.raises(TypeError, match="ForecastEngine-like"):
            ProcessWorker(NotAnEngine())

    def test_killed_child_raises_not_hangs(self, engine, windows):
        worker = ProcessWorker(engine)
        os.kill(worker.pid, signal.SIGKILL)
        with pytest.raises(ProcessWorkerDied):
            worker.forecast_batch(windows[:2])
        assert not worker.alive
        names = worker.segment_names()
        # every subsequent batch fails fast, no transport attempt
        with pytest.raises(ProcessWorkerDied):
            worker.forecast_batch(windows[:2])
        worker.close()
        # the dead child could not unlink its arena; the parent did
        assert segments_alive(names) == []

    def test_death_callback_fires_once(self, engine, windows):
        deaths = []
        worker = ProcessWorker(engine, on_death=deaths.append)
        os.kill(worker.pid, signal.SIGKILL)
        for _ in range(2):
            with pytest.raises(ProcessWorkerDied):
                worker.forecast_batch(windows[:1])
        assert deaths == [worker]
        worker.close()


# ----------------------------------------------------------------------
# scheduler integration: shutdown ordering under a dead executor
# ----------------------------------------------------------------------
class TestSchedulerShutdown:
    def test_close_fails_backlog_of_dead_child(self, engine, windows):
        """Regression: a queued request must never hang when the
        process executor dies before its batch runs — close() fails it
        instead of abandoning it."""
        worker = ProcessWorker(engine)
        scheduler = MicroBatchScheduler(worker, max_batch=2,
                                        autostart=False)
        futures = [scheduler.submit(w) for w in windows[:4]]
        os.kill(worker.pid, signal.SIGKILL)
        t0 = time.perf_counter()
        scheduler.close()        # must drain-or-fail, not hang
        assert time.perf_counter() - t0 < 30
        for fut in futures:
            assert fut.done()
            with pytest.raises(ProcessWorkerDied):
                fut.result(timeout=0)
        assert scheduler.metrics.n_failed_batches == 2
        worker.close()


# ----------------------------------------------------------------------
# pool integration: every policy, hot swap, death, autoscaling
# ----------------------------------------------------------------------
def map_submissions(pool, wins, keys=None):
    """Submit windows; returns [(future, window)] for later audit."""
    out = []
    for i, w in enumerate(wins):
        fut = pool.submit(w, key=None if keys is None else keys[i])
        out.append((fut, w))
    return out


def assert_pool_batches_bitwise(pool, placed, engines_by_version):
    """Every realised micro-batch holding audited requests equals the
    direct forecast_batch of its admitting version's engine on its
    exact composition (batch composition matters: only the same
    composition is bitwise-comparable)."""
    by_placement = {(f.worker_id, f.request_id): (f, w)
                    for f, w in placed}
    checked = 0
    for worker in pool._all_workers():
        # a rolled-back version's worker served nothing auditable
        direct_engine = engines_by_version.get(worker.version)
        if direct_engine is None:
            continue
        for batch in worker.scheduler.metrics.batches:
            keys = [(worker.worker_id, rid) for rid in batch.request_ids]
            if batch.failed or any(k not in by_placement for k in keys):
                continue
            wins = [by_placement[k][1] for k in keys]
            direct = direct_engine.forecast_batch(wins)
            for k, d in zip(keys, direct):
                fut = by_placement[k][0]
                assert_windows_equal(fut.result(timeout=0).fields,
                                     d.fields)
                checked += 1
    assert checked == len(placed)


def pool_owned_segments(pool):
    return [n for w in pool._all_workers()
            if w.executor is not None and w.executor is not w.engine
            for n in w.executor.segment_names()]


@pytest.mark.parametrize("router", ["round-robin", "least-outstanding",
                                    "key-affinity"])
def test_pool_process_backend_bitwise(engine, windows, router):
    with EngineWorkerPool(engine, replicas=2, max_batch=2,
                          max_wait=10.0, autostart=False,
                          backend="process", router=router) as pool:
        keys = [f"scenario-{i % 3}" for i in range(len(windows))]
        placed = map_submissions(pool, windows, keys)
        pool.flush()
        assert_pool_batches_bitwise(pool, placed, {1: engine})
        summary = pool.metrics.summary()
        assert summary["requests"] == len(windows)
        assert summary["marshal_bytes"] > 0
        assert summary["ipc_wait_s"] > 0
        assert summary["spawn_seconds_mean"] > 0


def test_pool_process_deploy_hot_swap_bitwise(engine, windows):
    engine_v2 = engine.with_model(second_model(engine))
    pool = EngineWorkerPool(engine, replicas=2, max_batch=2,
                            max_wait=10.0, autostart=False,
                            backend="process", router="round-robin")
    try:
        old_segments = [n for w in pool.workers
                        for n in w.executor.segment_names()]
        placed = map_submissions(pool, windows[:4])
        # the deploy drains these four admitted-but-unserved requests
        # on the version that admitted them, while surged v2 children
        # take over the routable set
        pool.deploy(engine_v2, source="hot-swap")
        placed += map_submissions(pool, windows[4:8])
        pool.flush()
        assert_pool_batches_bitwise(pool, placed,
                                    {1: engine, 2: engine_v2})
        assert {f.engine_version for f, _ in placed} == {1, 2}
        # the drained v1 replicas' children and segments are gone
        assert segments_alive(old_segments) == []
    finally:
        pool.close()
    assert segments_alive(pool_owned_segments(pool)) == []


def test_pool_deploy_rollback_unlinks_segments(engine, windows,
                                               monkeypatch):
    engine_v2 = engine.with_model(second_model(engine))
    pool = EngineWorkerPool(engine, replicas=2, max_batch=2,
                            max_wait=10.0, autostart=False,
                            backend="process", router="round-robin")
    try:
        make_worker = pool._make_worker
        calls = {"n": 0}

        def flaky(engine_, version):
            # the roll's second surge blows up → deploy must roll back
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("surge failed")
            return make_worker(engine_, version)

        monkeypatch.setattr(pool, "_make_worker", flaky)
        with pytest.raises(DeploymentError):
            pool.deploy(engine_v2, source="doomed")
        monkeypatch.setattr(pool, "_make_worker", make_worker)
        # rolled back: version 1, two admissible replicas, still serving
        assert pool.current_version == 1
        assert sum(not w.draining for w in pool.workers) == 2
        placed = map_submissions(pool, windows[:4])
        pool.flush()
        assert_pool_batches_bitwise(pool, placed, {1: engine})
    finally:
        pool.close()
    # nothing leaked: not the surged-then-retired v2 child, not the
    # drained v1 child, not the rollback replacement
    assert segments_alive(pool_owned_segments(pool)) == []


def test_pool_child_death_fails_batch_and_retires_worker(engine, windows):
    pool = EngineWorkerPool(engine, replicas=2, max_batch=2,
                            max_wait=10.0, autostart=False,
                            backend="process", router="round-robin")
    try:
        victim = pool.workers[0]
        victim_segments = victim.executor.segment_names()
        futures = [pool.submit(w) for w in windows[:2]]
        victim_futs = [f for f in futures
                       if f.worker_id == victim.worker_id]
        assert victim_futs, "round-robin should hit worker 0"
        os.kill(victim.executor.pid, signal.SIGKILL)
        pool.flush()
        # the in-flight batch failed — explicitly, not by hanging
        for fut in victim_futs:
            with pytest.raises(ProcessWorkerDied):
                fut.result(timeout=30)
        # the pool retires the dead replica (async helper thread)
        deadline = time.perf_counter() + 30
        while time.perf_counter() < deadline:
            if len(pool.workers) == 1:
                break
            time.sleep(0.05)
        assert len(pool.workers) == 1
        kinds = [e.kind for e in pool.events]
        assert "worker-death" in kinds and "worker-retired" in kinds
        assert segments_alive(victim_segments) == []
        # the survivor keeps serving, bitwise
        placed = map_submissions(pool, windows[4:8])
        pool.flush()
        assert_pool_batches_bitwise(pool, placed, {1: engine})
    finally:
        pool.close()


def test_pool_plan_stats_per_process_worker(engine, windows):
    with EngineWorkerPool(engine, replicas=2, max_batch=2,
                          max_wait=10.0, autostart=False,
                          backend="process") as pool:
        pool.forecast_batch(windows[:4])
        stats = pool.plan_stats()
        # one entry per worker: process replicas don't share a cache
        assert len(stats) == 2
        for per_worker in stats.values():
            assert per_worker["transport"]["backend"] == "process"
            assert per_worker["transport"]["marshal_bytes"] > 0


def test_autoscaler_spawn_cost_stretches_patience(engine):
    with EngineWorkerPool(engine, replicas=1, max_batch=2,
                          max_wait=10.0, autostart=False) as pool:
        scaler = AutoScaler(pool, scale_down_patience=2, interval=0.25,
                            spawn_cost_s=1.0)
        # a 1s respawn spans 4 ticks of 0.25s: patience 2 → 6
        assert scaler.effective_patience() == 6
        # thread replicas are free to respawn: patience unchanged
        free = AutoScaler(pool, scale_down_patience=2, interval=0.25)
        assert pool.mean_spawn_seconds == 0.0
        assert free.effective_patience() == 2
        # default reads the pool's measured spawn cost
        pool._spawn_log.extend([0.4, 0.6])
        assert free.effective_patience() == 2 + 2
