"""End-to-end integration: the full paper pipeline at miniature scale.

solver data → archives → normalisation → training → forecasting →
physics verification → hybrid workflow → error metrics.
"""

import numpy as np
import pytest

from repro.data import DataLoader, SlidingWindowDataset
from repro.eval import aggregate_errors, compute_errors
from repro.ocean import RomsLikeModel
from repro.physics import Verifier
from repro.swin import CoastalSurrogate
from repro.train import Trainer, TrainerConfig
from repro.workflow import FieldWindow, HybridWorkflow, SurrogateForecaster


@pytest.fixture(scope="module")
def pipeline(tiny_bundle, tiny_surrogate_config, tiny_ocean_config):
    """Train a tiny surrogate on the archived data and wrap everything."""
    store = tiny_bundle.open_train()
    norm = tiny_bundle.open_normalizer()
    ds = SlidingWindowDataset(store, norm, window=4, stride=2)
    train_ds, val_ds = ds.split(0.9, seed=0)

    model = CoastalSurrogate(tiny_surrogate_config)
    trainer = Trainer(model, TrainerConfig(lr=2e-3))
    history = trainer.fit(
        DataLoader(train_ds, batch_size=2, shuffle=True, seed=0),
        DataLoader(val_ds, batch_size=1, shuffle=False) if len(val_ds)
        else None,
        epochs=10,
    )

    ocean = RomsLikeModel(tiny_ocean_config)
    forecaster = SurrogateForecaster(model, norm)
    verifier = Verifier(ocean.grid, ocean.depth, dt=1800.0)
    return {
        "trainer": trainer,
        "history": history,
        "forecaster": forecaster,
        "ocean": ocean,
        "verifier": verifier,
        "bundle": tiny_bundle,
    }


def _test_windows(bundle, T=4):
    """Non-overlapping test episodes as FieldWindows."""
    store = bundle.open_test()
    out = []
    for start in range(0, len(store) - T + 1, T):
        w = store.read_window(start, T)
        out.append(FieldWindow(
            w["u3"].astype(np.float64), w["v3"].astype(np.float64),
            w["w3"].astype(np.float64), w["zeta"].astype(np.float64)))
    return out


class TestEndToEnd:
    def test_training_converged_downward(self, pipeline):
        hist = pipeline["history"]
        assert hist[-1].train_loss < hist[0].train_loss

    def test_forecast_beats_trivial_baseline(self, pipeline):
        """Surrogate must beat predicting all-zeros for ζ (in RMSE),
        i.e. it learned *something* about the tide."""
        windows = _test_windows(pipeline["bundle"])
        ocean = pipeline["ocean"]
        wet = ocean.solver.wet
        errs, zero_errs = [], []
        for w in windows:
            pred = pipeline["forecaster"].forecast_episode(w).fields
            errs.append(compute_errors(pred, w, wet=wet))
            zeros = FieldWindow(np.zeros_like(w.u3), np.zeros_like(w.v3),
                                np.zeros_like(w.w3), np.zeros_like(w.zeta))
            zero_errs.append(compute_errors(zeros, w, wet=wet))
        model_rmse = aggregate_errors(errs).rmse["zeta"]
        zero_rmse = aggregate_errors(zero_errs).rmse["zeta"]
        assert model_rmse < zero_rmse

    def test_error_scale_separation(self, pipeline):
        """Table III shape: w errors orders of magnitude below u, v."""
        windows = _test_windows(pipeline["bundle"])
        wet = pipeline["ocean"].solver.wet
        errs = [compute_errors(
            pipeline["forecaster"].forecast_episode(w).fields, w, wet=wet)
            for w in windows]
        agg = aggregate_errors(errs)
        assert agg.mae["w"] < 0.1 * agg.mae["u"]

    def test_verification_sweep_monotone(self, pipeline):
        """Fig. 7 shape on real surrogate output."""
        windows = _test_windows(pipeline["bundle"])
        residuals = []
        for w in windows:
            pred = pipeline["forecaster"].forecast_episode(w).fields
            res = pipeline["verifier"].verify(pred.zeta, pred.u3, pred.v3)
            residuals.append(res.mean_residual)
        thresholds = np.quantile(residuals, [0.1, 0.5, 0.9]).tolist() + [1.0]
        rates = [pipeline["verifier"].pass_rate(residuals, t)
                 for t in thresholds]
        assert all(a <= b for a, b in zip(rates, rates[1:]))
        assert rates[-1] == 1.0

    def test_hybrid_workflow_end_to_end(self, pipeline):
        ocean = pipeline["ocean"]
        st = ocean.spinup(duration=0.25 * 86400.0)
        snaps, states, _ = ocean.simulate_with_states(st, 8, every=4)
        x3, x2 = ocean.stack_fields(snaps)
        window = FieldWindow(
            np.moveaxis(x3[0], -1, 0), np.moveaxis(x3[1], -1, 0),
            np.moveaxis(x3[2], -1, 0), np.moveaxis(x2[0], -1, 0))
        wf = HybridWorkflow(pipeline["forecaster"], ocean,
                            pipeline["verifier"])
        fields, report = wf.run(window, states)
        assert fields.T == 8
        assert report.n_episodes == 2
        assert np.isfinite(fields.zeta).all()

    def test_surrogate_faster_than_solver(self, pipeline):
        """The headline claim at miniature scale: one surrogate episode
        is faster than re-simulating the same horizon."""
        import time
        windows = _test_windows(pipeline["bundle"])
        w = windows[0]
        out = pipeline["forecaster"].forecast_episode(w)
        ocean = pipeline["ocean"]
        st = ocean.spinup(duration=3600.0)
        t0 = time.perf_counter()
        ocean.forecast(st, 3)
        solver_s = time.perf_counter() - t0
        # the tiny solver is cheap, so only assert the surrogate is not
        # dramatically slower; the real comparison happens in benchmarks
        assert out.inference_seconds < 10 * max(solver_s, 1e-3)

    def test_checkpoint_roundtrip_preserves_forecast(self, pipeline,
                                                     tmp_path,
                                                     tiny_surrogate_config):
        from repro.train import load_checkpoint, save_checkpoint
        model = pipeline["forecaster"].model
        save_checkpoint(tmp_path / "m.npz", model)
        clone = CoastalSurrogate(tiny_surrogate_config)
        load_checkpoint(tmp_path / "m.npz", clone)
        windows = _test_windows(pipeline["bundle"])
        norm = pipeline["bundle"].open_normalizer()
        f2 = SurrogateForecaster(clone, norm)
        a = pipeline["forecaster"].forecast_episode(windows[0]).fields.zeta
        b = f2.forecast_episode(windows[0]).fields.zeta
        np.testing.assert_allclose(a, b, atol=1e-6)
