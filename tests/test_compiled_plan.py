"""Compiled inference plans: trace/replay equivalence, arena safety,
and plan dispatch through engine, scheduler, pool, and server.

The invariant under test everywhere is **bitwise equality**: a compiled
plan replays the exact NumPy expressions of the eager inference path,
so every field of every result must be ``np.array_equal`` to the eager
one — for plain, ensemble, and hybrid requests, under every pool
routing policy, serial or thread-chunked replay.
"""

import threading

import numpy as np
import pytest
from conftest import (  # noqa: F401 — shared serving fixtures
    VARS,
    assert_windows_equal,
    make_window,
)

from repro.data import Normalizer
from repro.physics import Verifier
from repro.serve import EngineWorkerPool, ForecastServer
from repro.tensor import (
    BufferArena,
    PlanExecutor,
    Tensor,
    TraceError,
    concatenate,
    no_grad,
    trace,
)
from repro.tensor import plan as plan_mod
from repro.workflow import (
    EnsembleForecaster,
    ForecastEngine,
    HybridWorkflow,
)

POLICIES = ("round-robin", "least-outstanding", "key-affinity")


def assert_windows_bitwise(a, b):
    """Exact equality on every field — the compiled-plan invariant."""
    for var in ("u3", "v3", "w3", "zeta"):
        np.testing.assert_array_equal(getattr(a, var), getattr(b, var),
                                      err_msg=var)


@pytest.fixture()
def engine(tiny_surrogate, identity_norm):
    """A fresh engine per test so plan caches/counters start empty.

    Shadows the session-scoped conftest ``engine`` on purpose: plan
    tests inspect cache/counter state and need it empty.
    """
    return ForecastEngine(tiny_surrogate, identity_norm)


def _fn(a, b):
    """A shape-static toy forward touching many primitive kinds."""
    h = (a + b) * 2.0
    h = h.roll((1, -2), axis=(0, 1))
    h = h.transpose(1, 0).reshape(4, -1)
    h = h.softmax(axis=-1)
    h = concatenate([h, h * 0.5], axis=0)
    return (h.sum(axis=0, keepdims=True) + h[:1]).tanh()


class TestTraceReplay:
    def test_replay_bitwise_on_new_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 6)).astype(np.float32)
        y = rng.normal(size=(8, 6)).astype(np.float32)
        plan, traced = trace(_fn, (x, y))
        with no_grad():
            eager = _fn(Tensor(x), Tensor(y))
        assert np.array_equal(traced.data, eager.data)
        ex = PlanExecutor(plan)
        for seed in range(3):
            r = np.random.default_rng(10 + seed)
            x2 = r.normal(size=(8, 6)).astype(np.float32)
            y2 = r.normal(size=(8, 6)).astype(np.float32)
            with no_grad():
                want = _fn(Tensor(x2), Tensor(y2))
            (got,) = ex.run((x2, y2))
            assert np.array_equal(got, want.data)

    def test_constant_subgraphs_fold_into_no_steps(self):
        c1, c2 = Tensor(np.ones((3, 3), np.float32)), \
            Tensor(np.full((3, 3), 2.0, np.float32))

        def fn(a):
            return a + (c1 * c2 + 1.0)     # const subtree: one add step

        plan, _ = trace(fn, (np.zeros((3, 3), np.float32),))
        assert plan.n_steps == 1
        assert plan.steps[0].name == "add"

    def test_movement_classification_is_view_or_copy(self):
        def fn(a):
            v = a.transpose(1, 0)          # view
            c = v.reshape(-1)              # copy (non-contiguous source)
            return c * 1.0

        plan, _ = trace(fn, (np.zeros((4, 5), np.float32),))
        kinds = {s.name: plan.slots[s.out].kind for s in plan.steps}
        assert kinds["transpose"] == "view"
        assert kinds["reshape"] == "compute"

    def test_plan_peak_never_exceeds_eager_model(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(16, 32)).astype(np.float32)
        plan, _ = trace(_fn, (x, x.copy()))
        assert plan.arena_bytes() > 0
        assert plan.peak_buffer_bytes() <= plan.eager_peak_bytes()

    def test_liveness_no_live_ranges_overlap(self, tiny_surrogate):
        """Offset assignment: two arena slots may share bytes only if
        their alias-group lifetimes are disjoint — so no step's output
        buffer can overlap a buffer that is still live (e.g. one of
        its own inputs)."""
        norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
        engine = ForecastEngine(tiny_surrogate, norm)
        plan = engine.compile(2).plan
        last = plan._last_uses()
        group_end = {}
        for sid, spec in enumerate(plan.slots):
            group_end[spec.root] = max(group_end.get(spec.root, -1),
                                       last[sid])
        lives = []      # (byte_lo, byte_hi, born_step, dies_step)
        for i, step in enumerate(plan.steps):
            spec = plan.slots[step.out]
            if spec.phys is None:
                continue
            lives.append((spec.phys, spec.phys + spec.nbytes, i,
                          group_end[spec.root]))
        assert len(lives) > 50       # the real model, not a toy
        for i, (lo_a, hi_a, b_a, d_a) in enumerate(lives):
            for lo_b, hi_b, b_b, d_b in lives[i + 1:]:
                bytes_overlap = lo_a < hi_b and lo_b < hi_a
                # b born at step b_b while a is live through d_a means
                # time overlap (birth step counts: inputs are read
                # while the output is written)
                time_overlap = b_b <= d_a and b_a <= d_b
                assert not (bytes_overlap and time_overlap), (
                    f"slots at bytes [{lo_a},{hi_a}) and [{lo_b},{hi_b}) "
                    f"are live together (steps {b_a}-{d_a} vs {b_b}-{d_b})")

    def test_roll_repeated_axis_matches_numpy(self):
        """np.roll accumulates shifts on a repeated axis; the arena
        replay kernel must reproduce that exactly."""
        def fn(a):
            return a.roll((1, 1, 3), axis=(0, 0, 1)) * 1.0

        x = np.arange(40, dtype=np.float32).reshape(8, 5)
        plan, _ = trace(fn, (x,))
        (got,) = PlanExecutor(plan).run((x,))
        want = np.roll(x, (1, 1, 3), axis=(0, 0, 1)) * 1.0
        assert np.array_equal(got, want)

    def test_detach_and_copy_keep_the_trace(self):
        """detach()/copy() of a traced intermediate must not silently
        constant-fold the rest of the forward."""
        def fn(a):
            return a.detach() * 2.0 + a.copy()

        x = np.ones((2, 3), np.float32)
        plan, _ = trace(fn, (x,))
        ex = PlanExecutor(plan)
        y = np.full((2, 3), 5.0, np.float32)
        (got,) = ex.run((y,))
        assert np.array_equal(got, y * 2.0 + y)

    def test_inplace_into_constant_refused(self):
        """An in-place kernel whose target is a plan constant but whose
        operand is traced cannot be captured (each replay would need to
        re-mutate the frozen constant)."""
        const = Tensor(np.zeros(4, np.float32))

        def fn(a):
            return plan_mod.trace_apply("iadd", (const, a))

        with pytest.raises(TraceError, match="constant"):
            trace(fn, (np.ones(4, np.float32),))

    def test_inplace_on_input_refused(self):
        from repro.nn import Linear
        lin = Linear(4, 4)

        def fn(a):
            # Linear's traced bias add is in-place on the matmul
            # output — fine; an in-place op targeting the *input*
            # buffer itself must be refused
            return plan_mod.trace_apply("iadd", (a, Tensor(np.ones(4,
                                        np.float32))))

        with pytest.raises(TraceError, match="mutate caller data"):
            trace(fn, (np.zeros((3, 4), np.float32),))
        # and the legal version (via Linear) traces fine
        plan, _ = trace(lambda a: lin(a), (np.zeros((3, 4), np.float32),))
        assert "iadd" in plan.kernel_counts()

    def test_training_mode_layers_refuse_to_trace(self, tiny_surrogate):
        tiny_surrogate.train()
        try:
            with pytest.raises(TraceError, match="eval"):
                trace(lambda a, b: tiny_surrogate(a, b),
                      (np.zeros((1, 3, 16, 16, 6, 4), np.float32),
                       np.zeros((1, 1, 16, 16, 4), np.float32)))
        finally:
            tiny_surrogate.eval()

    def test_trace_is_not_reentrant(self):
        def fn(a):
            trace(lambda x: x * 2.0, (np.zeros(2, np.float32),))
            return a

        with pytest.raises(TraceError, match="reentrant"):
            trace(fn, (np.zeros(2, np.float32),))

    def test_executor_validates_inputs(self):
        plan, _ = trace(lambda a: a * 2.0, (np.zeros((2, 3), np.float32),))
        ex = PlanExecutor(plan)
        with pytest.raises(ValueError, match="expects 1 inputs"):
            ex.run(())
        with pytest.raises(ValueError, match="C-contiguous"):
            ex.run((np.zeros((3, 2), np.float32),))
        with pytest.raises(ValueError, match="C-contiguous"):
            ex.run((np.zeros((2, 3), np.float64),))


class TestBufferArena:
    def test_growth_then_reuse(self):
        arena = BufferArena()
        a = arena.take(1000)
        assert arena.stats() == {"allocated_bytes": 1000,
                                 "allocations": 1, "reuses": 0}
        arena.give(a)
        b = arena.take(800)          # fits in the freed blob
        assert b is a
        assert arena.stats()["reuses"] == 1
        c = arena.take(2000)         # no fit: the arena grows
        assert c.nbytes == 2000
        assert arena.stats()["allocations"] == 2
        assert arena.stats()["allocated_bytes"] == 3000

    def test_executor_release_returns_blob(self):
        plan, _ = trace(lambda a: a * 2.0,
                        (np.zeros((64, 64), np.float32),))
        arena = BufferArena()
        ex1 = PlanExecutor(plan, arena)
        ex1.release()
        ex2 = PlanExecutor(plan, arena)
        stats = arena.stats()
        assert stats["allocations"] == 1 and stats["reuses"] == 1
        (out,) = ex2.run((np.ones((64, 64), np.float32),))
        assert np.array_equal(out, np.full((64, 64), 2.0, np.float32))


class TestEngineCompiled:
    def test_compiled_bitwise_equal_eager(self, engine, tiny_surrogate,
                                          windows):
        norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
        eager = ForecastEngine(tiny_surrogate, norm)   # no plans ever
        engine.compile(4)
        got = engine.forecast_batch(windows[:4])
        want = eager.forecast_batch(windows[:4])
        assert all(r.compiled for r in got)
        assert not any(r.compiled for r in want)
        for g, w in zip(got, want):
            for var in VARS:
                assert np.array_equal(getattr(g.fields, var),
                                      getattr(w.fields, var))

    def test_partial_batch_buckets_into_larger_plan(self, engine, windows):
        """A batch-3 request no longer falls back to eager: it pads into
        the compiled batch-4 plan and records the bucket it used."""
        engine.compile(4)
        res = engine.forecast_batch(windows[:3])
        assert all(r.compiled for r in res)
        assert all(r.plan_batch == 4 for r in res)
        stats = engine.plan_stats()
        assert stats["hits"] == 1 and stats["misses"] == 0
        assert stats["bucket_hits"] == {4: 1}
        assert stats["padded_rows"] == 1 and stats["total_rows"] == 4
        assert stats["bucket_pad_fraction"] == pytest.approx(0.25)
        engine.forecast_batch(windows[:4])
        stats = engine.plan_stats()
        assert stats["hits"] == 2 and stats["batches"] == [4]
        assert stats["bucket_pad_fraction"] == pytest.approx(1 / 8)

    def test_oversized_batch_still_falls_back_to_eager(self, engine,
                                                       windows):
        """No compiled plan can hold the request ⇒ genuine eager path."""
        engine.compile(4)
        res = engine.forecast_batch(windows[:5])
        assert not any(r.compiled for r in res)
        assert all(r.plan_batch is None for r in res)
        stats = engine.plan_stats()
        assert stats["hits"] == 0 and stats["misses"] == 1
        assert stats["padded_rows"] == 0 and stats["total_rows"] == 5

    def test_bucket_partial_off_restores_eager_fallback(self,
                                                        tiny_surrogate,
                                                        windows):
        norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
        engine = ForecastEngine(tiny_surrogate, norm, bucket_partial=False)
        engine.compile(4)
        res = engine.forecast_batch(windows[:3])
        assert not any(r.compiled for r in res)
        stats = engine.plan_stats()
        assert stats["hits"] == 0 and stats["misses"] == 1

    def test_compile_idempotent_and_clear(self, engine, windows):
        cf1 = engine.compile(2)
        cf2 = engine.compile(2)
        assert cf1 is cf2
        assert engine.compiled_batches == [2]
        engine.clear_plans()
        assert engine.compiled_batches == []
        res = engine.forecast_batch(windows[:2])
        assert not res[0].compiled

    def test_clear_plans_recycles_arena_blobs(self, engine, windows):
        """Retired executors hand their blobs back; the recompiled
        plan's executor reuses them instead of growing the arena."""
        engine.compile(2)
        engine.forecast_batch(windows[:2])      # creates one executor
        before = engine.plan_stats()["arena"]
        assert before["allocations"] == 1
        engine.clear_plans()
        engine.compile(2)
        engine.forecast_batch(windows[:2])
        after = engine.plan_stats()["arena"]
        assert after["reuses"] == before["reuses"] + 1
        assert after["allocated_bytes"] == before["allocated_bytes"]

    def test_weight_reload_then_recompile_matches_eager(self, engine,
                                                        windows):
        """Plans bake the weights they were traced with; the documented
        contract after ``load_state_dict`` is clear_plans + recompile,
        which must land bitwise back on the eager path."""
        engine.compile(2)
        before = engine.forecast_batch(windows[:2])
        state = engine.model.state_dict()
        state2 = {k: v * 0.5 for k, v in state.items()}
        engine.model.load_state_dict(state2)
        try:
            engine.clear_plans()
            engine.compile(2)
            compiled = engine.forecast_batch(windows[:2])
            assert compiled[0].compiled
            engine.clear_plans()
            eager = engine.forecast_batch(windows[:2])
            assert not eager[0].compiled
            assert_windows_equal(compiled[0].fields, eager[0].fields)
            assert not np.array_equal(before[0].fields.zeta,
                                      compiled[0].fields.zeta)
        finally:
            engine.model.load_state_dict(state)

    def test_concurrent_forecasts_share_one_plan(self, engine, windows):
        """Thread-safety: concurrent compiled calls acquire distinct
        executors and all produce bitwise-correct results."""
        cf = engine.compile(2)
        serial = [engine.forecast_batch(windows[2 * i:2 * i + 2])
                  for i in range(4)]
        results = [None] * 4
        errors = []
        barrier = threading.Barrier(4)

        def worker(i):
            try:
                barrier.wait(timeout=30)
                results[i] = engine.forecast_batch(
                    windows[2 * i:2 * i + 2])
            except Exception as exc:    # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for ser, par in zip(serial, results):
            for s, p in zip(ser, par):
                assert p.compiled
                assert_windows_equal(s.fields, p.fields)
        assert cf.executors_created >= 1
        stats = engine.plan_stats()
        assert stats["hits"] == 8 and stats["plans"] == 1


class TestParallelReplay:
    def test_chunked_replay_bitwise_equal_serial(self, monkeypatch,
                                                 tiny_surrogate, windows):
        """Force the elementwise thread pool on and drop the size
        threshold so chunking actually triggers at test scale; results
        must not change by a bit."""
        norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
        eager = ForecastEngine(tiny_surrogate, norm)
        want = eager.forecast_batch(windows[:4])

        monkeypatch.setattr(plan_mod.os, "cpu_count", lambda: 4)
        monkeypatch.setattr(plan_mod, "PARALLEL_MIN_BYTES", 1)
        saved_pool, saved_workers = plan_mod._pool, plan_mod._pool_workers
        monkeypatch.setattr(plan_mod, "_pool", None)
        try:
            engine = ForecastEngine(tiny_surrogate, norm)
            engine.compile(4)
            got = engine.forecast_batch(windows[:4])
            assert got[0].compiled
            # the pool really engaged (at least one step was chunked)
            cf = engine.compile(4)
            ex = cf.acquire()
            try:
                assert any(bounds is not None and len(bounds) > 1
                           for *_, bounds, _ in ex._prog)
            finally:
                cf.release(ex)
            for g, w in zip(got, want):
                assert_windows_equal(g.fields, w.fields)
        finally:
            pool = plan_mod._pool
            if pool is not None:
                pool.shutdown(wait=True)
            plan_mod._pool = saved_pool
            plan_mod._pool_workers = saved_workers

    def test_chunked_broadcast_broadcast_binary(self, monkeypatch):
        """A rowwise binary op where *neither* operand matches the
        output shape: the leading-broadcast operand must pass through
        whole while the row-spanning one is sliced."""
        monkeypatch.setattr(plan_mod.os, "cpu_count", lambda: 4)
        monkeypatch.setattr(plan_mod, "PARALLEL_MIN_BYTES", 1)
        saved_pool, saved_workers = plan_mod._pool, plan_mod._pool_workers
        monkeypatch.setattr(plan_mod, "_pool", None)
        try:
            a = np.arange(8, dtype=np.float32).reshape(8, 1, 1) \
                * np.ones((8, 1, 4), np.float32)        # (8, 1, 4)
            b = np.arange(12, dtype=np.float32).reshape(1, 3, 4)
            plan, _ = trace(lambda x, y: (x + y) * 1.0, (a, b))
            ex = PlanExecutor(plan)
            assert any(bounds is not None
                       for *_, bounds, _ in ex._prog)
            (got,) = ex.run((a, b))
            assert np.array_equal(got, (a + b) * 1.0)
        finally:
            pool = plan_mod._pool
            if pool is not None:
                pool.shutdown(wait=True)
            plan_mod._pool = saved_pool
            plan_mod._pool_workers = saved_workers


class TestServedPlans:
    def test_scheduler_warm_plans_and_metrics(self, engine, windows):
        from repro.serve import MicroBatchScheduler
        sched = MicroBatchScheduler(engine, max_batch=4, autostart=False,
                                    warm_plans=True)
        # warmup now compiles the whole bucket set, not just max_batch
        assert engine.compiled_batches == [1, 2, 4]
        for w in windows[:4]:
            sched.submit(w)
        assert sched.step() == 4
        # partial batch: served by the batch-1 bucket, no eager fallback
        sched.submit(windows[4])
        sched.flush()
        sched.close()
        m = sched.metrics
        assert m.n_batches == 2 and m.plan_batches == 2
        assert m.batches[0].compiled and m.batches[1].compiled
        assert m.batches[0].plan_batch == 4
        assert m.batches[1].plan_batch == 1
        assert m.summary()["plan_batches"] == 2
        assert m.bucket_hits() == {4: 1, 1: 1}
        assert m.padded_rows == 0
        assert m.summary()["bucket_pad_fraction"] == 0.0
        assert engine.plan_stats()["misses"] == 0

    def test_scheduler_warm_plans_needs_compile(self, windows):
        from repro.serve import MicroBatchScheduler

        class Executorish:
            time_steps = 4

            def forecast_batch(self, refs):
                raise AssertionError("never called")

        with pytest.raises(ValueError, match="compile"):
            MicroBatchScheduler(Executorish(), autostart=False,
                                warm_plans=True)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_pool_compiled_bitwise_any_policy(self, tiny_surrogate,
                                              windows, policy):
        norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
        eager = ForecastEngine(tiny_surrogate, norm)
        engine = ForecastEngine(tiny_surrogate, norm)
        pool = EngineWorkerPool(engine, replicas=3, max_batch=2,
                                max_wait=10.0, autostart=False,
                                router=policy, warm_plans=True)
        futures = [(w, pool.submit(w, key=f"k{i % 4}"))
                   for i, w in enumerate(windows[:8])]
        pool.flush()
        by_id = {}
        for w, fut in futures:
            by_id[(fut.worker_id, fut.request_id)] = (w,
                                                      fut.result(timeout=1))
        for worker in pool.workers:
            for batch in worker.scheduler.metrics.batches:
                # identical micro-batch composition ⇒ exact equality
                direct = eager.forecast_batch(
                    [by_id[(worker.worker_id, rid)][0]
                     for rid in batch.request_ids])
                for rid, d in zip(batch.request_ids, direct):
                    assert_windows_bitwise(
                        by_id[(worker.worker_id, rid)][1].fields, d.fields)
        m = pool.metrics
        # warmup compiles the full bucket set (1, 2), so every
        # micro-batch — full or partial — replays a compiled plan
        n_batches = sum(len(w.scheduler.metrics.batches)
                        for w in pool.workers)
        assert m.plan_batches == n_batches > 0
        assert m.summary()["plan_batches"] == m.plan_batches
        # replicas share one engine, hence one plan cache holding the
        # warm bucket set (1, 2)
        stats = pool.plan_stats()
        assert list(stats) == [0] and stats[0]["plans"] == 2
        pool.close()

    @pytest.mark.parametrize("policy", POLICIES)
    def test_ensemble_hybrid_compiled_bitwise(self, tiny_surrogate,
                                              tiny_ocean, windows, policy):
        """Compiled vs eager under *identical* deterministic pools:
        ensemble and hybrid results must match to the bit for every
        routing policy (manual mode ⇒ same placement, same micro-batch
        composition on both sides)."""
        norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
        verifier = Verifier(tiny_ocean.grid, tiny_ocean.depth, dt=1800.0)
        hybrid_window = make_window(77, t=8)
        outputs = []
        for warm in (False, True):
            engine = ForecastEngine(tiny_surrogate, norm)
            if warm:
                for n in range(1, 5):
                    engine.compile(n)
            with EngineWorkerPool(engine, replicas=2, max_batch=4,
                                  max_wait=10.0, autostart=False,
                                  router=policy,
                                  warm_plans=warm) as pool:
                plain = pool.forecast_batch(windows[:3])
                ens = EnsembleForecaster(pool, n_members=4,
                                         seed=3).forecast(windows[0])
                hyb = HybridWorkflow(pool, tiny_ocean, verifier).run(
                    hybrid_window, [object()] * 2, threshold=1e30)
                plan_batches = pool.metrics.plan_batches
            outputs.append((plain, ens, hyb, plan_batches))
        (e_plain, e_ens, e_hyb, e_pb), (c_plain, c_ens, c_hyb, c_pb) = \
            outputs
        assert e_pb == 0 and c_pb > 0
        for a, b in zip(e_plain, c_plain):
            assert_windows_bitwise(a.fields, b.fields)
        for a, b in zip(e_ens.members, c_ens.members):
            assert_windows_bitwise(a, b)
        assert_windows_bitwise(e_ens.mean, c_ens.mean)
        assert_windows_bitwise(e_ens.spread, c_ens.spread)
        assert_windows_bitwise(e_hyb[0], c_hyb[0])
        assert e_hyb[1].pass_rate == c_hyb[1].pass_rate

    def test_server_plain_ensemble_hybrid_matches_direct(
            self, tiny_surrogate, tiny_ocean, windows):
        """End-to-end through the threaded warmed server: results match
        the direct eager path (float tolerance here — the threaded
        scheduler's micro-batch composition is timing-dependent, and
        composition, not compilation, is what moves the last bits;
        the manual-pool test above pins exact equality)."""
        norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
        eager = ForecastEngine(tiny_surrogate, norm)
        engine = ForecastEngine(tiny_surrogate, norm)
        verifier = Verifier(tiny_ocean.grid, tiny_ocean.depth, dt=1800.0)
        hybrid_window = make_window(99, t=8)
        direct_plain = eager.forecast_batch([windows[0]])[0]
        direct_ens = EnsembleForecaster(eager, n_members=4,
                                        seed=3).forecast(windows[0])
        direct_hyb = HybridWorkflow(eager, tiny_ocean, verifier).run(
            hybrid_window, [object()] * 2, threshold=1e30)

        with ForecastServer(engine, workers=2, max_batch=4, max_wait=0.01,
                            ocean=tiny_ocean, verifier=verifier,
                            warm_plans=True) as server:
            assert engine.compiled_batches == [1, 2, 4]
            # partial micro-batches are timing-dependent under the
            # threaded scheduler: compile the smaller sizes too so
            # every batch replays a plan
            for n in (1, 2, 3):
                engine.compile(n)
            plain = server.forecast(windows[0])
            ens = server.submit_ensemble(windows[0], n_members=4,
                                         seed=3).result(timeout=120)
            fields, report = server.submit_hybrid(
                hybrid_window, [object()] * 2,
                threshold=1e30).result(timeout=120)
            served_metrics = server.metrics()

        assert_windows_equal(plain.fields, direct_plain.fields)
        assert_windows_equal(ens.mean, direct_ens.mean)
        assert_windows_equal(ens.spread, direct_ens.spread)
        assert report.pass_rate == direct_hyb[1].pass_rate == 1.0
        assert_windows_equal(fields, direct_hyb[0])
        assert "plan_batches" in served_metrics
        assert engine.plan_stats()["hits"] >= 1


class TestDetachContract:
    def test_detach_aliases_copy_does_not(self):
        t = Tensor(np.arange(6.0, dtype=np.float32).reshape(2, 3),
                   requires_grad=True)
        d = t.detach()
        c = t.copy()
        assert not d.requires_grad and not c.requires_grad
        assert np.shares_memory(d.data, t.data)
        assert not np.shares_memory(c.data, t.data)
        d.data[0, 0] = 42.0
        assert t.data[0, 0] == 42.0      # documented aliasing
        c.data[0, 1] = -1.0
        assert t.data[0, 1] == 1.0       # copy is independent
