"""Extensions: data-parallel training and ensemble UQ forecasting."""

import numpy as np
import pytest

from repro.data import DataLoader
from repro.swin import CoastalSurrogate
from repro.train import (
    DataParallelTrainer,
    SGD,
    Trainer,
    TrainerConfig,
    shard_batch,
)
from repro.workflow import EnsembleForecaster, FieldWindow, SurrogateForecaster


@pytest.fixture()
def loader2(tiny_dataset):
    return DataLoader(tiny_dataset, batch_size=2, shuffle=False,
                      drop_last=True)


class TestShardBatch:
    def test_shards_partition_batch(self, loader2):
        batch = next(iter(loader2))
        shards = shard_batch(batch, 2)
        assert len(shards) == 2
        assert all(s.batch_size == 1 for s in shards)
        np.testing.assert_array_equal(
            np.concatenate([s.x3d for s in shards]), batch.x3d)

    def test_indivisible_raises(self, loader2):
        batch = next(iter(loader2))
        with pytest.raises(ValueError, match="divisible"):
            shard_batch(batch, 3)


class _LinearToy:
    """BatchNorm-free stand-in with the surrogate's call signature.

    Data-parallel gradient averaging is *exactly* equivalent to
    large-batch training only for models whose forward is independent
    across batch entries; BatchNorm couples them (true of real DDP as
    well), so the exactness test uses this toy.
    """

    def __init__(self, seed=0):
        from repro.nn import Module, Parameter

        class M(Module):
            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(seed)
                self.w3 = Parameter(rng.normal(size=(1,)).astype(np.float32))
                self.w2 = Parameter(rng.normal(size=(1,)).astype(np.float32))

            def forward(self, x3d, x2d):
                return x3d * self.w3, x2d * self.w2

        self.module = M()


class TestDataParallelTrainer:
    def test_exact_equivalence_without_batchnorm(self, loader2):
        """W-worker allreduced step == single step on the full batch,
        exactly, for a batch-independent model with SGD."""
        batch = next(iter(loader2))

        ref_m = _LinearToy(seed=3).module
        ref = Trainer(ref_m, TrainerConfig(lr=1e-2, grad_clip=0.0),
                      optimizer=SGD(ref_m.parameters(), lr=1e-2))
        ref.train_step(batch)

        dp_m = _LinearToy(seed=3).module
        dp = DataParallelTrainer(dp_m, TrainerConfig(lr=1e-2, grad_clip=0.0),
                                 n_workers=2,
                                 optimizer=SGD(dp_m.parameters(), lr=1e-2))
        dp.train_step(batch)

        for (na, pa), (nb, pb) in zip(ref_m.named_parameters(),
                                      dp_m.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data, rtol=1e-6,
                                       err_msg=na)

    def test_close_to_single_worker_on_surrogate(self, tiny_surrogate_config,
                                                 loader2):
        """On the real surrogate the only divergence source is BatchNorm
        statistics, so the updates stay close."""
        batch = next(iter(loader2))

        ref_model = CoastalSurrogate(tiny_surrogate_config)
        ref = Trainer(ref_model, TrainerConfig(lr=1e-3, grad_clip=0.0),
                      optimizer=SGD(ref_model.parameters(), lr=1e-3))
        ref.train_step(batch)

        dp_model = CoastalSurrogate(tiny_surrogate_config)
        dp = DataParallelTrainer(dp_model,
                                 TrainerConfig(lr=1e-3, grad_clip=0.0),
                                 n_workers=2,
                                 optimizer=SGD(dp_model.parameters(),
                                               lr=1e-3))
        dp.train_step(batch)

        diffs = [np.abs(pa.data - pb.data).max()
                 for (_, pa), (_, pb) in zip(ref_model.named_parameters(),
                                             dp_model.named_parameters())]
        assert max(diffs) < 5e-3

    def test_communication_accounted(self, tiny_surrogate_config, loader2):
        model = CoastalSurrogate(tiny_surrogate_config)
        dp = DataParallelTrainer(model, TrainerConfig(lr=1e-3), n_workers=2)
        dp.train_step(next(iter(loader2)))
        assert dp.grad_bytes_reduced > 0
        assert dp.comm.n_messages > 0

    def test_single_worker_no_communication(self, tiny_surrogate_config,
                                            loader2):
        model = CoastalSurrogate(tiny_surrogate_config)
        dp = DataParallelTrainer(model, TrainerConfig(lr=1e-3), n_workers=1)
        dp.train_step(next(iter(loader2)))
        assert dp.grad_bytes_reduced == 0

    def test_rejects_zero_workers(self, tiny_surrogate_config):
        with pytest.raises(ValueError):
            DataParallelTrainer(CoastalSurrogate(tiny_surrogate_config),
                                TrainerConfig(), n_workers=0)

    def test_loss_decreases(self, tiny_surrogate_config, loader2):
        model = CoastalSurrogate(tiny_surrogate_config)
        dp = DataParallelTrainer(model, TrainerConfig(lr=2e-3), n_workers=2)
        batch = next(iter(loader2))
        first = dp.train_step(batch)
        for _ in range(4):
            last = dp.train_step(batch)
        assert last < first


class TestEnsembleForecaster:
    @pytest.fixture()
    def forecaster(self, tiny_surrogate, tiny_bundle):
        return SurrogateForecaster(tiny_surrogate,
                                   tiny_bundle.open_normalizer())

    @pytest.fixture()
    def reference(self, tiny_bundle):
        w = tiny_bundle.open_test().read_window(0, 4)
        return FieldWindow(
            w["u3"].astype(np.float64), w["v3"].astype(np.float64),
            w["w3"].astype(np.float64), w["zeta"].astype(np.float64))

    def test_member_count_and_shapes(self, forecaster, reference):
        ens = EnsembleForecaster(forecaster, n_members=3)
        out = ens.forecast(reference)
        assert out.n_members == 3
        assert out.mean.zeta.shape == reference.zeta.shape
        assert out.spread.zeta.shape == reference.zeta.shape

    def test_member0_is_deterministic_forecast(self, forecaster, reference):
        ens = EnsembleForecaster(forecaster, n_members=2)
        out = ens.forecast(reference)
        det = forecaster.forecast_episode(reference).fields
        np.testing.assert_allclose(out.members[0].zeta, det.zeta, atol=1e-6)

    def test_spread_nonzero_after_initial(self, forecaster, reference):
        ens = EnsembleForecaster(forecaster, n_members=4, zeta_sigma=0.05)
        out = ens.forecast(reference)
        # perturbed ICs differ at slot 0, so spread is nonzero there
        assert out.spread.zeta[0].max() > 0

    def test_reproducible(self, forecaster, reference):
        a = EnsembleForecaster(forecaster, n_members=3, seed=7)
        b = EnsembleForecaster(forecaster, n_members=3, seed=7)
        np.testing.assert_array_equal(a.forecast(reference).mean.zeta,
                                      b.forecast(reference).mean.zeta)

    def test_exceedance_probability_bounds(self, forecaster, reference):
        ens = EnsembleForecaster(forecaster, n_members=3)
        out = ens.forecast(reference)
        p = out.exceedance_probability(0.0)
        assert p.shape == reference.zeta.shape
        assert np.all((0.0 <= p) & (p <= 1.0))

    def test_wet_mask_confines_perturbations(self, forecaster, reference,
                                             tiny_ocean):
        wet = tiny_ocean.solver.wet
        ens = EnsembleForecaster(forecaster, n_members=2, zeta_sigma=0.1)
        out = ens.forecast(reference, wet=wet)
        # land cells of the perturbed member's IC are untouched
        np.testing.assert_array_equal(
            out.members[1].zeta[0][~wet], reference.zeta[0][~wet])

    def test_needs_two_members(self, forecaster):
        with pytest.raises(ValueError):
            EnsembleForecaster(forecaster, n_members=1)


@pytest.fixture(scope="module")
def tiny_ocean():
    from repro.ocean import OceanConfig, RomsLikeModel
    return RomsLikeModel(OceanConfig(nx=14, ny=15, nz=6,
                                     length_x=14_000.0,
                                     length_y=15_000.0))
