"""Descriptor-frame fabric: format integrity, both transports.

The frame codec must be bitwise (arrays out == arrays in) and must
reject corruption explicitly — truncation, bad magic, unknown dtype,
descriptor overrun — rather than returning garbage views.  The two
transports must agree on semantics: timeouts are recoverable (framing
survives), a clean close is :class:`FabricClosed`, a mid-frame death
is :class:`FrameError`.
"""

import pickle
import struct
import threading
import time

import numpy as np
import pytest

from repro.hpc.fabric import (
    FabricClosed,
    FabricError,
    FabricTimeout,
    FrameError,
    MAGIC,
    SocketEndpoint,
    accept_loopback,
    connect_loopback,
    listen_loopback,
    pack_frame,
    sim_pair,
    unpack_frame,
)


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_roundtrip_bitwise(self):
        r = np.random.default_rng(0)
        arrays = [r.normal(size=(2, 3, 4)),
                  r.normal(size=(3,)).astype(np.float32),
                  np.arange(7, dtype=np.int64)]
        data = pack_frame("batch", 42, {"n": 3, "tag": "x"}, arrays)
        frame = unpack_frame(data)
        assert frame.op == "batch"
        assert frame.seq == 42
        assert frame.meta == {"n": 3, "tag": "x"}
        assert frame.nbytes == len(data)
        for sent, got in zip(arrays, frame.arrays):
            assert got.dtype == sent.dtype
            np.testing.assert_array_equal(got, sent)

    def test_empty_payload(self):
        frame = unpack_frame(pack_frame("hb", -1))
        assert frame.op == "hb" and frame.seq == -1
        assert frame.meta == {} and frame.arrays == []

    def test_arrays_are_zero_copy_views(self):
        a = np.arange(16, dtype=np.float64)
        data = pack_frame("batch", 0, {}, [a])
        frame = unpack_frame(data)
        # a view over the received buffer, not a reallocation
        assert frame.arrays[0].base is not None

    def test_non_contiguous_input_packed_correctly(self):
        a = np.arange(24, dtype=np.float64).reshape(4, 6)[:, ::2]
        frame = unpack_frame(pack_frame("batch", 0, {}, [a]))
        np.testing.assert_array_equal(frame.arrays[0], a)

    def test_truncated_rejected(self):
        data = pack_frame("batch", 0, {}, [np.ones(5)])
        with pytest.raises(FrameError, match="truncated"):
            unpack_frame(data[:-3])
        with pytest.raises(FrameError, match="truncated"):
            unpack_frame(data[:8])

    def test_bad_magic_rejected(self):
        data = bytearray(pack_frame("batch", 0, {}, [np.ones(5)]))
        data[:4] = b"XXXX"
        with pytest.raises(FrameError, match="bad magic"):
            unpack_frame(bytes(data))

    def test_implausible_lengths_rejected(self):
        bogus = struct.pack("<4sIQ", MAGIC, 1 << 30, 0)
        with pytest.raises(FrameError, match="implausible"):
            unpack_frame(bogus)

    def test_unknown_dtype_rejected(self):
        header = pickle.dumps(
            ("batch", 0, {}, [((4,), "not-a-dtype", 0)]))
        data = struct.pack("<4sIQ", MAGIC, len(header), 64) \
            + header + b"\0" * 64
        with pytest.raises(FrameError, match="unknown dtype"):
            unpack_frame(data)

    def test_descriptor_overrun_rejected(self):
        # descriptor claims more bytes than the body holds
        header = pickle.dumps(
            ("batch", 0, {}, [((1000,), "<f8", 0)]))
        data = struct.pack("<4sIQ", MAGIC, len(header), 64) \
            + header + b"\0" * 64
        with pytest.raises(FrameError, match="overruns"):
            unpack_frame(data)

    def test_undecodable_header_rejected(self):
        data = struct.pack("<4sIQ", MAGIC, 8, 0) + b"\xff" * 8
        with pytest.raises(FrameError, match="undecodable"):
            unpack_frame(data)

    @pytest.mark.parametrize("dtype_str", ["|O", "V0"])
    def test_non_wire_dtype_rejected(self, dtype_str):
        # parses as a dtype but cannot view a byte buffer (object
        # arrays would unpickle attacker bytes; zero-itemsize voids
        # make frombuffer blow up) — must be FrameError, not a
        # ValueError that kills the caller's reaper thread
        header = pickle.dumps(
            ("batch", 0, {}, [((4,), dtype_str, 0)]))
        data = struct.pack("<4sIQ", MAGIC, len(header), 64) \
            + header + b"\0" * 64
        with pytest.raises(FrameError):
            unpack_frame(data)

    @pytest.mark.parametrize("header_obj", [
        ("batch", 0, {}, [(("x",), "<f8", 0)]),    # non-integral shape
        ("batch", 0, {}, [((-4,), "<f8", 0)]),     # negative extent
        ("batch", 0, {}, [(4, "<f8")]),            # not a triple
        ("batch", 0, {}, 7),                       # descs not a list
        ("batch", 0, None, []),                    # meta not a mapping
    ])
    def test_malformed_header_contents_rejected(self, header_obj):
        header = pickle.dumps(header_obj)
        data = struct.pack("<4sIQ", MAGIC, len(header), 64) \
            + header + b"\0" * 64
        with pytest.raises(FrameError):
            unpack_frame(data)


# ----------------------------------------------------------------------
# sim fabric
# ----------------------------------------------------------------------
class TestSimFabric:
    def test_delivery_and_byte_accounting(self):
        a, b = sim_pair()
        data = pack_frame("batch", 0, {"k": 1}, [np.ones((3, 3))])
        a.send_frame(data)
        got = b.recv_frame(timeout=1.0)
        assert got == data
        frame = unpack_frame(got)
        np.testing.assert_array_equal(frame.arrays[0], np.ones((3, 3)))
        # wire totals visible through the shared SimComm
        assert a.comm is b.comm
        assert a.comm.bytes_sent == len(data)
        assert a.comm.per_pair[(0, 1)] == len(data)
        assert a.bytes_sent == b.bytes_received == len(data)
        assert a.frames_sent == b.frames_received == 1

    def test_timeout_is_recoverable(self):
        a, b = sim_pair()
        with pytest.raises(FabricTimeout):
            b.recv_frame(timeout=0.05)
        a.send_frame(pack_frame("hb", -1))
        assert unpack_frame(b.recv_frame(timeout=1.0)).op == "hb"

    def test_close_surfaces_as_fabric_closed(self):
        a, b = sim_pair()
        a.close()
        with pytest.raises(FabricClosed):
            b.recv_frame(timeout=1.0)
        with pytest.raises(FabricClosed):
            b.send_frame(b"x")
        with pytest.raises(FabricClosed):
            a.send_frame(b"x")

    def test_buffered_frames_drain_before_close(self):
        a, b = sim_pair()
        data = pack_frame("result", 3, {})
        a.send_frame(data)
        a.close()
        # the already-sent frame is still deliverable
        assert b.recv_frame(timeout=1.0) == data
        with pytest.raises(FabricClosed):
            b.recv_frame(timeout=1.0)


# ----------------------------------------------------------------------
# socket fabric
# ----------------------------------------------------------------------
def socket_pair():
    listener, port, token = listen_loopback()
    try:
        client = connect_loopback(port, token)
        server = accept_loopback(listener, token, timeout=10.0)
    finally:
        listener.close()
    return client, server


class TestSocketFabric:
    def test_delivery_over_real_wire(self):
        client, server = socket_pair()
        try:
            r = np.random.default_rng(1)
            arrays = [r.normal(size=(4, 5)), r.normal(size=(2,))]
            data = pack_frame("batch", 9, {"n": 2}, arrays)
            client.send_frame(data)
            frame = unpack_frame(server.recv_frame(timeout=5.0))
            assert frame.seq == 9
            for sent, got in zip(arrays, frame.arrays):
                np.testing.assert_array_equal(got, sent)
            assert client.bytes_sent == server.bytes_received == len(data)
        finally:
            client.close()
            server.close()

    def test_timeout_keeps_framing(self):
        """A short-timeout poll that catches a frame mid-flight must
        not lose bytes: the next call resumes and completes it."""
        client, server = socket_pair()
        try:
            data = pack_frame("batch", 0, {},
                              [np.zeros(1 << 16, np.float64)])
            # drip the frame so the first recv deadline lands mid-frame
            def drip():
                for i in range(0, len(data), 1 << 14):
                    client._sock.sendall(data[i:i + (1 << 14)])
                    time.sleep(0.02)
            t = threading.Thread(target=drip)
            t.start()
            frames, timeouts = [], 0
            deadline = time.perf_counter() + 10.0
            while not frames and time.perf_counter() < deadline:
                try:
                    frames.append(server.recv_frame(timeout=0.01))
                except FabricTimeout:
                    timeouts += 1
            t.join()
            assert frames and frames[0] == data
            assert timeouts > 0, "expected at least one mid-frame timeout"
        finally:
            client.close()
            server.close()

    def test_recv_polling_never_clips_blocking_send(self):
        """A reaper-style thread polling ``recv_frame`` with a short
        timeout must not impose that timeout on a concurrent
        ``send_frame``: a multi-MB frame that overfills the kernel
        buffers (peer busy, not draining) has to block until the peer
        drains, not spuriously raise and mark the worker dead."""
        client, server = socket_pair()
        stop = threading.Event()
        poll_errors = []

        def poll():
            while not stop.is_set():
                try:
                    client.recv_frame(timeout=0.02)
                except FabricTimeout:
                    continue
                except FabricError as exc:
                    poll_errors.append(exc)
                    return

        poller = threading.Thread(target=poll)
        poller.start()
        try:
            # well past loopback socket buffering, so sendall must
            # block mid-frame while the "remote" is busy computing
            data = pack_frame("batch", 0, {},
                              [np.zeros(1 << 21, np.float64)])
            sent = threading.Event()
            send_errors = []

            def send():
                try:
                    client.send_frame(data)
                except FabricError as exc:
                    send_errors.append(exc)
                sent.set()

            sender = threading.Thread(target=send)
            sender.start()
            time.sleep(0.5)          # several poll timeouts elapse
            got = server.recv_frame(timeout=30.0)   # now drain
            assert sent.wait(30.0)
            sender.join()
            assert not send_errors, \
                f"send clipped by recv polling: {send_errors[0]}"
            assert got == data
        finally:
            stop.set()
            poller.join(5.0)
            client.close()
            server.close()
        assert not poll_errors

    def test_peer_close_at_boundary_is_clean(self):
        client, server = socket_pair()
        try:
            client.send_frame(pack_frame("stop", -1))
            client.close()
            assert unpack_frame(server.recv_frame(timeout=5.0)).op == "stop"
            with pytest.raises(FabricClosed):
                server.recv_frame(timeout=5.0)
        finally:
            server.close()

    def test_peer_death_mid_frame_is_frame_error(self):
        client, server = socket_pair()
        try:
            data = pack_frame("batch", 0, {}, [np.zeros(1 << 12)])
            client._sock.sendall(data[:100])     # partial frame...
            client.close()                       # ...then die
            with pytest.raises(FrameError, match="mid-frame"):
                server.recv_frame(timeout=5.0)
        finally:
            server.close()

    def test_garbage_on_wire_is_frame_error(self):
        client, server = socket_pair()
        try:
            client._sock.sendall(b"GARBAGE-NOT-A-FRAME-" * 4)
            with pytest.raises(FrameError, match="bad magic"):
                server.recv_frame(timeout=5.0)
        finally:
            client.close()
            server.close()

    def test_token_handshake_rejects_imposter(self):
        import socket as socketlib
        listener, port, token = listen_loopback()
        try:
            imposter = socketlib.create_connection(("127.0.0.1", port),
                                                   timeout=5.0)
            imposter.sendall(b"f" * len(token))
            with pytest.raises(FabricError, match="token"):
                accept_loopback(listener, token, timeout=5.0)
            imposter.close()
        finally:
            listener.close()
