"""Patch embed / merge / recover: shape algebra and information flow."""

import numpy as np
import pytest

from repro.swin import (
    PatchEmbed2d,
    PatchEmbed3d,
    PatchMerging4d,
    PatchRecover2d,
    PatchRecover3d,
)
from repro.tensor import Tensor


class TestPatchEmbed3d:
    def test_shape(self, rng):
        pe = PatchEmbed3d(3, 16, (4, 4, 2))
        x = Tensor(rng.normal(size=(2, 3, 16, 8, 4, 5)).astype(np.float32))
        assert pe(x).shape == (2, 16, 4, 2, 2, 5)

    def test_indivisible_raises(self, rng):
        pe = PatchEmbed3d(3, 8, (4, 4, 2))
        x = Tensor(rng.normal(size=(1, 3, 15, 8, 4, 2)).astype(np.float32))
        with pytest.raises(ValueError, match="divisible"):
            pe(x)

    def test_time_slices_independent(self, rng):
        """Embedding is per-time-slice: changing slice 1 leaves slice 0."""
        pe = PatchEmbed3d(1, 4, (2, 2, 2))
        x = rng.normal(size=(1, 1, 4, 4, 2, 3)).astype(np.float32)
        base = pe(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[..., 1] += 1.0
        out = pe(Tensor(x2)).data
        np.testing.assert_allclose(out[..., 0], base[..., 0], atol=1e-6)
        assert np.abs(out[..., 1] - base[..., 1]).max() > 1e-4


class TestPatchEmbed2d:
    def test_adds_singleton_depth(self, rng):
        pe = PatchEmbed2d(1, 16, (4, 4))
        x = Tensor(rng.normal(size=(2, 1, 16, 8, 5)).astype(np.float32))
        assert pe(x).shape == (2, 16, 4, 2, 1, 5)

    def test_gradients(self, rng):
        pe = PatchEmbed2d(1, 4, (2, 2))
        x = Tensor(rng.normal(size=(1, 1, 4, 4, 2)).astype(np.float32),
                   requires_grad=True)
        pe(x).sum().backward()
        assert x.grad is not None


class TestPatchMerging4d:
    def test_shape_halves_space_doubles_channels(self, rng):
        pm = PatchMerging4d(8)
        x = Tensor(rng.normal(size=(1, 4, 4, 2, 3, 8)).astype(np.float32))
        assert pm(x).shape == (1, 2, 2, 1, 3, 16)

    def test_time_dim_untouched(self, rng):
        pm = PatchMerging4d(4)
        for T in (1, 2, 5):
            x = Tensor(rng.normal(size=(1, 2, 2, 2, T, 4)).astype(np.float32))
            assert pm(x).shape[4] == T

    def test_odd_dims_raise(self, rng):
        pm = PatchMerging4d(4)
        x = Tensor(rng.normal(size=(1, 3, 4, 2, 2, 4)).astype(np.float32))
        with pytest.raises(ValueError, match="even"):
            pm(x)

    def test_merging_mixes_exactly_the_2x2x2_neighbourhood(self, rng):
        """Perturbing one cell affects only its merged output cell."""
        pm = PatchMerging4d(2)
        x = rng.normal(size=(1, 4, 4, 2, 1, 2)).astype(np.float32)
        base = pm(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 0, 0, 0, 0] += 1.0   # inside merged cell (0, 0, 0)
        out = pm(Tensor(x2)).data
        diff = np.abs(out - base).sum(axis=-1)[0, :, :, :, 0]
        assert diff[0, 0, 0] > 1e-5
        assert diff[1:, :, :].max() < 1e-7
        assert diff[0, 1:, :].max() < 1e-7


class TestPatchRecover:
    def test_3d_restores_full_mesh(self, rng):
        pr = PatchRecover3d(8, 3, (4, 4, 2))
        x = Tensor(rng.normal(size=(1, 8, 4, 2, 2, 3)).astype(np.float32))
        assert pr(x).shape == (1, 3, 16, 8, 4, 3)

    def test_2d_restores_full_mesh(self, rng):
        pr = PatchRecover2d(8, 1, (4, 4))
        x = Tensor(rng.normal(size=(1, 8, 4, 2, 3)).astype(np.float32))
        assert pr(x).shape == (1, 1, 16, 8, 3)

    def test_embed_recover_roundtrip_shapes(self, rng):
        """PatchEmbed3d ∘ PatchRecover3d preserves the mesh exactly."""
        pe = PatchEmbed3d(3, 8, (4, 4, 2))
        pr = PatchRecover3d(8, 3, (4, 4, 2))
        x = Tensor(rng.normal(size=(1, 3, 8, 8, 4, 2)).astype(np.float32))
        assert pr(pe(x)).shape == x.shape

    def test_gradients_flow_through_recover(self, rng):
        pr = PatchRecover2d(4, 1, (2, 2))
        x = Tensor(rng.normal(size=(1, 4, 3, 3, 2)).astype(np.float32),
                   requires_grad=True)
        pr(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in pr.parameters())
