"""NN layers: modules, norms, activations, dropout, MLP, convolutions."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Conv2d,
    Conv3d,
    ConvTranspose2d,
    ConvTranspose3d,
    Dropout,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    MLP,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    gelu,
)
from repro.nn import init
from repro.tensor import Tensor, gradcheck


class TestModuleSystem:
    def test_parameter_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.sub = Linear(2, 2)

        m = M()
        names = dict(m.named_parameters())
        assert "w" in names
        assert "sub.weight" in names and "sub.bias" in names

    def test_num_parameters(self):
        lin = Linear(4, 5)
        assert lin.num_parameters() == 4 * 5 + 5

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2), Dropout(0.5))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_state_dict_roundtrip(self):
        a, b = Linear(3, 4), Linear(3, 4)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        np.testing.assert_array_equal(a.bias.data, b.bias.data)

    def test_load_state_dict_shape_mismatch(self):
        a, b = Linear(3, 4), Linear(3, 5)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_load_state_dict_missing_key_strict(self):
        a = Linear(3, 4)
        with pytest.raises(KeyError):
            a.load_state_dict({})

    def test_zero_grad_clears(self):
        lin = Linear(2, 2)
        out = lin(Tensor(np.ones((1, 2), np.float32)))
        out.sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_module_list_iterates_in_order(self):
        mods = [Linear(1, 1) for _ in range(3)]
        ml = ModuleList(mods)
        assert list(ml) == mods
        assert len(ml) == 3
        assert ml[1] is mods[1]

    def test_sequential_applies_in_order(self, rng):
        seq = Sequential(Identity(), ReLU())
        x = rng.normal(size=(3,)).astype(np.float32)
        np.testing.assert_allclose(seq(Tensor(x)).data, np.maximum(x, 0))

    def test_buffers_in_state_dict(self):
        bn = BatchNorm(3)
        sd = bn.state_dict()
        assert "running_mean" in sd and "running_var" in sd


class TestLinear:
    def test_forward_value(self, rng):
        lin = Linear(3, 2)
        x = rng.normal(size=(5, 3)).astype(np.float32)
        expected = x @ lin.weight.data + lin.bias.data
        np.testing.assert_allclose(lin(Tensor(x)).data, expected, rtol=1e-5)

    def test_no_bias(self):
        lin = Linear(3, 2, bias=False)
        assert lin.bias is None
        assert lin.num_parameters() == 6

    def test_batch_dims_broadcast(self, rng):
        lin = Linear(4, 3)
        x = Tensor(rng.normal(size=(2, 5, 4)).astype(np.float32))
        assert lin(x).shape == (2, 5, 3)

    def test_grad_flows_to_params(self, rng):
        lin = Linear(3, 2)
        lin(Tensor(rng.normal(size=(4, 3)).astype(np.float32))).sum().backward()
        assert lin.weight.grad is not None and lin.bias.grad is not None


class TestNorms:
    def test_layernorm_zero_mean_unit_var(self, rng):
        ln = LayerNorm(16)
        x = Tensor(rng.normal(2.0, 3.0, size=(4, 16)).astype(np.float32))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_gradcheck(self, rng):
        ln = LayerNorm(6)

        def f(x):
            return ln(x)

        gradcheck(f, [rng.normal(size=(3, 6))], atol=1e-3)

    def test_batchnorm_train_normalises(self, rng):
        bn = BatchNorm(4)
        x = Tensor(rng.normal(5.0, 2.0, size=(8, 4, 6)).astype(np.float32))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=(0, 2)), 0.0, atol=1e-4)

    def test_batchnorm_updates_running_stats(self, rng):
        bn = BatchNorm(3)
        x = Tensor(rng.normal(10.0, 1.0, size=(16, 3, 4)).astype(np.float32))
        bn(x)
        assert np.all(bn.running_mean > 0.5)  # moved toward 10 by momentum

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = BatchNorm(3)
        x = Tensor(rng.normal(10.0, 1.0, size=(16, 3, 4)).astype(np.float32))
        for _ in range(50):
            bn(x)
        bn.eval()
        out = bn(x).data
        # with converged running stats, eval output ≈ normalised
        assert abs(out.mean()) < 0.2

    def test_batchnorm_5d_input(self, rng):
        bn = BatchNorm(2)
        x = Tensor(rng.normal(size=(2, 2, 3, 3, 3)).astype(np.float32))
        assert bn(x).shape == x.shape


class TestActivations:
    def test_gelu_known_values(self):
        # GELU(0) = 0; GELU(x) → x for large x; GELU(-x) → 0
        out = gelu(Tensor(np.array([0.0, 10.0, -10.0]))).data
        np.testing.assert_allclose(out[0], 0.0, atol=1e-8)
        np.testing.assert_allclose(out[1], 10.0, rtol=1e-6)
        np.testing.assert_allclose(out[2], 0.0, atol=1e-6)

    def test_gelu_gradcheck(self, rng):
        gradcheck(lambda x: gelu(x), [rng.normal(size=(10,))])

    def test_gelu_module_equals_function(self, rng):
        x = Tensor(rng.normal(size=(5,)))
        np.testing.assert_array_equal(GELU()(x).data, gelu(x).data)

    def test_dropout_eval_is_identity(self, rng):
        d = Dropout(0.5)
        d.eval()
        x = Tensor(rng.normal(size=(100,)).astype(np.float32))
        np.testing.assert_array_equal(d(x).data, x.data)

    def test_dropout_preserves_expectation(self, rng):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones(100_000, np.float32))
        out = d(x).data
        assert abs(out.mean() - 1.0) < 0.02

    def test_dropout_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestMLP:
    def test_hidden_expansion(self):
        mlp = MLP(8, hidden_ratio=4.0)
        assert mlp.fc1.out_features == 32
        assert mlp.fc2.out_features == 8

    def test_shape_preserved(self, rng):
        mlp = MLP(8)
        x = Tensor(rng.normal(size=(2, 5, 8)).astype(np.float32))
        assert mlp(x).shape == (2, 5, 8)

    def test_backward(self, rng):
        mlp = MLP(6)
        x = Tensor(rng.normal(size=(3, 6)).astype(np.float32),
                   requires_grad=True)
        mlp(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in mlp.parameters())


class TestConvLayers:
    def test_conv2d_shape(self, rng):
        c = Conv2d(3, 8, 3, stride=2, padding=1)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert c(x).shape == (2, 8, 4, 4)

    def test_conv3d_shape(self, rng):
        c = Conv3d(2, 4, (2, 2, 1))
        x = Tensor(rng.normal(size=(1, 2, 6, 6, 3)).astype(np.float32))
        assert c(x).shape == (1, 4, 5, 5, 3)

    def test_convtranspose2d_shape(self, rng):
        c = ConvTranspose2d(4, 2, 2, stride=2)
        x = Tensor(rng.normal(size=(1, 4, 3, 5)).astype(np.float32))
        assert c(x).shape == (1, 2, 6, 10)

    def test_convtranspose3d_shape(self, rng):
        c = ConvTranspose3d(4, 2, (2, 2, 2), stride=(2, 2, 2))
        x = Tensor(rng.normal(size=(1, 4, 2, 2, 2)).astype(np.float32))
        assert c(x).shape == (1, 2, 4, 4, 4)

    def test_wrong_rank_raises(self, rng):
        c = Conv2d(1, 1, 1)
        with pytest.raises(ValueError):
            c(Tensor(rng.normal(size=(1, 1, 4)).astype(np.float32)))

    def test_conv_roundtrip_downsample_upsample(self, rng):
        """Patch embed then recover restores the spatial extent."""
        down = Conv2d(1, 4, 4, stride=4)
        up = ConvTranspose2d(4, 1, 4, stride=4)
        x = Tensor(rng.normal(size=(1, 1, 8, 8)).astype(np.float32))
        assert up(down(x)).shape == x.shape


class TestInit:
    def test_trunc_normal_bounded(self):
        r = init.default_rng(0)
        w = init.trunc_normal((1000,), r, std=0.02)
        assert np.abs(w).max() <= 2.0 * 0.02 + 1e-9

    def test_trunc_normal_deterministic(self):
        a = init.trunc_normal((50,), init.default_rng(7))
        b = init.trunc_normal((50,), init.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_xavier_scale(self):
        w = init.xavier_uniform((100, 100), init.default_rng(0))
        bound = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= bound + 1e-9

    def test_kaiming_fan_in(self):
        w = init.kaiming_uniform((64, 32, 3, 3), init.default_rng(0))
        assert w.shape == (64, 32, 3, 3)
        assert np.isfinite(w).all()

    def test_zeros_ones(self):
        assert init.zeros((2, 2)).sum() == 0.0
        assert init.ones((2, 2)).sum() == 4.0
