"""Storm forcing (surge extension) and error-growth diagnostics."""

import numpy as np
import pytest

from repro.eval import error_growth
from repro.ocean import (
    ParametricCyclone,
    SteadyWind,
    StormForcedSolver,
    SWEConfig,
    ShallowWaterSolver,
    TidalForcing,
    make_charlotte_grid,
    synth_estuary_bathymetry,
)
from repro.ocean.storm import P_AMBIENT, _wind_drag_coefficient
from repro.workflow import FieldWindow


@pytest.fixture(scope="module")
def base_solver():
    g = make_charlotte_grid(16, 18, 16_000.0, 18_000.0)
    return ShallowWaterSolver(g, synth_estuary_bathymetry(g),
                              TidalForcing(), SWEConfig())


class TestWindDrag:
    def test_monotone_in_speed(self):
        speeds = np.array([2.0, 10.0, 25.0])
        cd = _wind_drag_coefficient(speeds)
        assert np.all(np.diff(cd) >= 0)

    def test_capped(self):
        assert _wind_drag_coefficient(np.array([100.0]))[0] == 3.5e-3


class TestSteadyWind:
    def test_uniform_fields(self, base_solver):
        w = SteadyWind(u10=8.0, v10=-3.0)
        wu, wv = w.wind(base_solver.grid, 0.0)
        assert np.all(wu == 8.0) and np.all(wv == -3.0)
        assert np.all(w.pressure(base_solver.grid, 0.0) == P_AMBIENT)

    def test_onshore_wind_raises_coastal_water(self, base_solver):
        """Eastward (onshore) wind must pile water against the eastern
        shore relative to the unforced tide — the basic surge signal."""
        calm = base_solver
        windy = StormForcedSolver(calm, SteadyWind(u10=15.0, v10=0.0))

        s_calm = calm.initial_state()
        s_wind = calm.initial_state()
        for _ in range(400):
            s_calm = calm.step(s_calm)
            s_wind = windy.step(s_wind)

        wet = calm.wet
        # compare mean ζ in the eastern (downwind) third of wet cells
        nx = calm.grid.nx
        east = wet.copy()
        east[:, : 2 * nx // 3] = False
        surge = s_wind.zeta[east].mean() - s_calm.zeta[east].mean()
        assert surge > 0.005, f"no surge signal (Δζ={surge:.4f} m)"

    def test_forced_run_stays_stable(self, base_solver):
        windy = StormForcedSolver(base_solver, SteadyWind(u10=20.0, v10=10.0))
        s = base_solver.initial_state()
        s = windy.run(s, 3600.0)
        assert np.isfinite(s.zeta).all()
        assert np.abs(s.u).max() < 5.0


class TestParametricCyclone:
    def test_pressure_minimum_at_center(self, base_solver):
        storm = ParametricCyclone(x0=8_000.0, y0=9_000.0, vx=0.0, vy=0.0)
        p = storm.pressure(base_solver.grid, 0.0)
        jc, ic = np.unravel_index(np.argmin(p), p.shape)
        cx = base_solver.grid.x_axis.centers[ic]
        cy = base_solver.grid.y_axis.centers[jc]
        assert abs(cx - 8_000.0) < 2_000.0
        assert abs(cy - 9_000.0) < 2_000.0
        assert p.min() < P_AMBIENT - 1000.0

    def test_wind_peaks_near_rmw(self, base_solver):
        storm = ParametricCyclone(x0=8_000.0, y0=9_000.0, vx=0.0, vy=0.0,
                                  max_wind=35.0, radius_max_wind=5_000.0)
        wu, wv = storm.wind(base_solver.grid, 0.0)
        speed = np.hypot(wu, wv)
        assert speed.max() <= 35.0 + 1e-6
        assert speed.max() > 25.0     # profile reaches near-peak on grid

    def test_cyclonic_rotation(self, base_solver):
        """NH cyclone: wind north of the centre blows westward."""
        storm = ParametricCyclone(x0=8_000.0, y0=9_000.0, vx=0.0, vy=0.0,
                                  inflow_angle_rad=0.0)
        g = base_solver.grid
        wu, wv = storm.wind(g, 0.0)
        north_j = int(np.argmin(np.abs(g.y_axis.centers - 14_000.0)))
        center_i = int(np.argmin(np.abs(g.x_axis.centers - 8_000.0)))
        assert wu[north_j, center_i] < 0.0

    def test_track_translates(self, base_solver):
        storm = ParametricCyclone(x0=0.0, y0=9_000.0, vx=10.0, vy=0.0)
        p0 = storm.pressure(base_solver.grid, 0.0)
        p1 = storm.pressure(base_solver.grid, 600.0)
        i0 = np.unravel_index(np.argmin(p0), p0.shape)[1]
        i1 = np.unravel_index(np.argmin(p1), p1.shape)[1]
        assert i1 > i0

    def test_cyclone_surge_exceeds_tide_alone(self, base_solver):
        storm = ParametricCyclone(x0=-10_000.0, y0=9_000.0, vx=8.0,
                                  vy=0.0, max_wind=30.0)
        forced = StormForcedSolver(base_solver, storm)
        s_tide = base_solver.initial_state()
        s_storm = base_solver.initial_state()
        for _ in range(300):
            s_tide = base_solver.step(s_tide)
            s_storm = forced.step(s_storm)
        wet = base_solver.wet
        assert np.abs(s_storm.zeta - s_tide.zeta)[wet].max() > 0.01


class TestErrorGrowth:
    def _windows(self, rng, T=9, H=6, W=5, D=2):
        truth = FieldWindow(
            rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W, D)),
            1e-4 * rng.normal(size=(T, H, W, D)),
            rng.normal(size=(T, H, W)))
        return truth

    def test_perfect_forecast_zero_growth(self, rng):
        truth = self._windows(rng)
        eg = error_growth(truth, truth)
        for var, g in eg.items():
            np.testing.assert_allclose(g.rmse_by_step, 0.0)
            assert not g.saturated

    def test_growing_noise_detected(self, rng):
        truth = self._windows(rng)
        T = truth.zeta.shape[0]
        grow = np.linspace(0.01, 0.6, T)[:, None, None]
        pred = FieldWindow(
            truth.u3 + grow[..., None] * rng.normal(size=truth.u3.shape),
            truth.v3.copy(), truth.w3.copy(),
            truth.zeta + grow * rng.normal(size=truth.zeta.shape))
        eg = error_growth(pred, truth)
        assert eg["zeta"].growth_rate_per_step > 0
        assert eg["u"].growth_rate_per_step > 0
        assert eg["v"].rmse_by_step.max() == 0.0

    def test_random_forecast_saturates(self, rng):
        truth = self._windows(rng)
        pred = FieldWindow(
            rng.normal(size=truth.u3.shape) * 2.0,
            rng.normal(size=truth.v3.shape) * 2.0,
            rng.normal(size=truth.w3.shape),
            rng.normal(size=truth.zeta.shape) * 2.0)
        eg = error_growth(pred, truth)
        assert eg["zeta"].saturated

    def test_wet_mask_applied(self, rng):
        truth = self._windows(rng)
        pred = FieldWindow(truth.u3.copy(), truth.v3.copy(),
                           truth.w3.copy(), truth.zeta.copy())
        wet = np.zeros(truth.zeta.shape[1:], dtype=bool)
        wet[0, 0] = True
        pred.zeta[:, 1, 1] += 100.0   # error only on a dry cell
        eg = error_growth(pred, truth, wet=wet)
        np.testing.assert_allclose(eg["zeta"].rmse_by_step, 0.0)

    def test_normalized_fraction(self, rng):
        truth = self._windows(rng)
        pred = FieldWindow(truth.u3 + 0.1, truth.v3.copy(),
                           truth.w3.copy(), truth.zeta + 0.1)
        eg = error_growth(pred, truth)
        assert np.all(eg["zeta"].normalized >= 0)
        assert np.all(eg["zeta"].normalized < 1.0)
