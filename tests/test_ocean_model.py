"""Tides, sigma layers, and the RomsLikeModel driver."""

import numpy as np
import pytest

from repro.ocean import (
    GULF_CONSTITUENTS,
    RomsLikeModel,
    SigmaLayers,
    TidalConstituent,
    TidalForcing,
    VerticalStructure,
    make_charlotte_grid,
)

HOUR = 3600.0


class TestTides:
    def test_constituent_periodicity(self):
        m2 = GULF_CONSTITUENTS[0]
        t = np.array([0.0, m2.period_s, 2 * m2.period_s])
        e = m2.elevation(t)
        np.testing.assert_allclose(e, e[0], rtol=1e-9)

    def test_constituent_amplitude_bound(self):
        c = TidalConstituent("X", 12 * HOUR, 0.5)
        t = np.linspace(0, 48 * HOUR, 10_000)
        assert np.abs(c.elevation(t)).max() <= 0.5 + 1e-12

    def test_forcing_sums_constituents(self):
        f = TidalForcing()
        t = 7.3 * HOUR
        total = sum(c.elevation(np.array(t)) for c in f.constituents)
        np.testing.assert_allclose(f.elevation(t), total)

    def test_alongshore_delay_shifts_phase(self):
        f = TidalForcing(alongshore_delay_s_per_m=0.05)
        e0 = f.elevation(6 * HOUR, 0.0)
        e1 = f.elevation(6 * HOUR, 50_000.0)
        assert abs(float(e0) - float(e1)) > 1e-4

    def test_max_amplitude(self):
        f = TidalForcing()
        assert f.max_amplitude == pytest.approx(
            sum(c.amplitude_m for c in GULF_CONSTITUENTS))

    def test_series_shape(self):
        f = TidalForcing()
        times = np.arange(0, 86400, 1800.0)
        assert f.series(times).shape == times.shape

    def test_mixed_tide_character(self):
        """Gulf-coast tide: diurnal and semidiurnal energy both present."""
        f = TidalForcing()
        t = np.arange(0, 30 * 86400, 600.0)
        e = f.series(t)
        spec = np.abs(np.fft.rfft(e))
        freqs = np.fft.rfftfreq(len(t), 600.0) * 86400  # cycles/day
        semi = spec[(freqs > 1.8) & (freqs < 2.1)].max()
        diur = spec[(freqs > 0.9) & (freqs < 1.1)].max()
        assert semi > 0 and diur > 0
        assert 0.2 < diur / semi < 5.0


class TestSigmaLayers:
    def test_interfaces_span_unit(self):
        layers = SigmaLayers(6)
        assert layers.interfaces[0] == -1.0
        assert layers.interfaces[-1] == 0.0
        assert len(layers.interfaces) == 7

    def test_thickness_fractions_sum_to_one(self):
        layers = SigmaLayers(9)
        np.testing.assert_allclose(layers.thickness_fractions.sum(), 1.0)

    def test_layer_heights_scale_with_depth(self):
        layers = SigmaLayers(4)
        H = np.array([[10.0, 20.0]])
        z = layers.layer_heights_above_bed(H)
        np.testing.assert_allclose(z[:, 0, 1], 2 * z[:, 0, 0])


class TestVerticalStructure:
    @pytest.fixture()
    def vs(self):
        g = make_charlotte_grid(8, 10, 8000.0, 10_000.0)
        return VerticalStructure(g, SigmaLayers(6))

    def test_profile_preserves_depth_average(self, vs):
        H = np.full((10, 8), 7.5)
        p = vs.profile(H)
        frac = vs.layers.thickness_fractions[:, None, None]
        np.testing.assert_allclose((p * frac).sum(axis=0), 1.0, rtol=1e-9)

    def test_profile_monotone_in_z(self, vs):
        """Log layer: velocity increases from bed to surface."""
        H = np.full((10, 8), 5.0)
        p = vs.profile(H)
        assert np.all(np.diff(p, axis=0) > 0)

    def test_horizontal_recovers_depth_average(self, vs, rng):
        H = np.full((10, 8), 6.0)
        ub = rng.normal(size=(10, 8))
        vb = rng.normal(size=(10, 8))
        u3, v3 = vs.horizontal(ub, vb, H)
        frac = vs.layers.thickness_fractions[:, None, None]
        np.testing.assert_allclose((u3 * frac).sum(axis=0), ub, rtol=1e-9)
        np.testing.assert_allclose((v3 * frac).sum(axis=0), vb, rtol=1e-9)

    def test_vertical_zero_for_divergence_free_flow(self, vs):
        """Uniform horizontal flow ⇒ no divergence ⇒ w = 0."""
        H = np.full((10, 8), 6.0)
        u3 = np.ones((6, 10, 8))
        v3 = np.zeros((6, 10, 8))
        w = vs.vertical(u3, v3, H)
        np.testing.assert_allclose(w, 0.0, atol=1e-15)

    def test_vertical_magnitude_small(self, vs, rng):
        """w should be several orders below u (paper Table III scale)."""
        H = np.full((10, 8), 6.0)
        ub = 0.3 * rng.normal(size=(10, 8))
        vb = 0.3 * rng.normal(size=(10, 8))
        u3, v3 = vs.horizontal(ub, vb, H)
        w = vs.vertical(u3, v3, H)
        assert np.abs(w).max() < 0.1 * np.abs(u3).max()


class TestRomsLikeModel:
    def test_snapshot_shapes(self, tiny_ocean):
        cfg = tiny_ocean.config
        st = tiny_ocean.solver.initial_state()
        snaps, _ = tiny_ocean.simulate(st, 2)
        s = snaps[0]
        assert s.u3.shape == (cfg.ny, cfg.nx, cfg.nz)
        assert s.zeta.shape == (cfg.ny, cfg.nx)

    def test_snapshot_times_spaced_by_interval(self, tiny_ocean):
        st = tiny_ocean.solver.initial_state()
        snaps, _ = tiny_ocean.simulate(st, 3)
        dts = np.diff([s.t for s in snaps])
        target = tiny_ocean.config.snapshot_interval
        assert np.all(np.abs(dts - target) < tiny_ocean.solver.dt)

    def test_simulate_continues_from_returned_state(self, tiny_ocean):
        st = tiny_ocean.solver.initial_state()
        first, mid = tiny_ocean.simulate(st, 2)
        second, _ = tiny_ocean.simulate(mid, 1)
        assert second[0].t > first[-1].t

    def test_forecast_does_not_mutate_initial(self, tiny_ocean):
        st = tiny_ocean.spinup(duration=3600.0)
        z = st.zeta.copy()
        tiny_ocean.forecast(st, 2)
        np.testing.assert_array_equal(st.zeta, z)

    def test_land_cells_zero_in_snapshots(self, tiny_ocean):
        st = tiny_ocean.spinup(duration=3600.0)
        snaps, _ = tiny_ocean.simulate(st, 1)
        dry = ~tiny_ocean.solver.wet
        assert np.all(snaps[0].zeta[dry] == 0.0)
        assert np.all(snaps[0].u3[dry, :] == 0.0)

    def test_boundary_rim_zeroes_interior(self):
        f = np.arange(36, dtype=float).reshape(6, 6)
        rim = RomsLikeModel.boundary_rim(f, width=1)
        assert np.all(rim[1:-1, 1:-1] == 0.0)
        np.testing.assert_array_equal(rim[0], f[0])
        np.testing.assert_array_equal(rim[:, -1], f[:, -1])

    def test_stack_fields_layout(self, tiny_ocean):
        st = tiny_ocean.solver.initial_state()
        snaps, _ = tiny_ocean.simulate(st, 3)
        x3, x2 = tiny_ocean.stack_fields(snaps)
        cfg = tiny_ocean.config
        assert x3.shape == (3, cfg.ny, cfg.nx, cfg.nz, 3)
        assert x2.shape == (1, cfg.ny, cfg.nx, 3)

    def test_w_field_smaller_than_horizontal(self, tiny_ocean):
        st = tiny_ocean.spinup(duration=2 * 3600.0)
        snaps, _ = tiny_ocean.simulate(st, 1)
        s = snaps[0]
        assert np.abs(s.w3).max() < 0.05 * max(np.abs(s.u3).max(), 1e-9)
