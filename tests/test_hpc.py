"""HPC substrate: simulated MPI, memory model, pipeline/scaling models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hpc import (
    BlockDecomposition,
    DGX_A100_CLUSTER,
    DecomposedShallowWater,
    FIG9_CONFIGS,
    NodeSpec,
    PipelineConfig,
    PipelineParams,
    RomsPerfModel,
    RomsWorkload,
    ScalingModel,
    SimComm,
    TABLE1_ROWS,
    Tier,
    TrainingPipelineModel,
    TransferModel,
    activation_nbytes,
    best_process_grid,
    halo_exchange_bytes,
    pipeline_memory_table,
    ring_allreduce_seconds,
    sample_nbytes,
)
from repro.ocean import (
    SWEConfig,
    ShallowWaterSolver,
    TidalForcing,
    make_charlotte_grid,
    synth_estuary_bathymetry,
)
from repro.swin import SurrogateConfig


# ----------------------------------------------------------------------
# simulated MPI
# ----------------------------------------------------------------------
class TestSimComm:
    def test_counts_bytes_and_messages(self):
        comm = SimComm(4)
        payload = np.zeros(100, dtype=np.float64)
        out = comm.sendrecv(0, 1, payload)
        assert comm.bytes_sent == payload.nbytes
        assert comm.n_messages == 1
        np.testing.assert_array_equal(out, payload)
        assert out is not payload   # a copy, like a real message

    def test_rank_bounds(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.sendrecv(0, 5, np.zeros(1))

    def test_allreduce_sum(self):
        comm = SimComm(3)
        assert comm.allreduce_sum([1.0, 2.0, 3.0]) == 6.0
        assert comm.n_messages == 4  # 2·(P−1)


class TestBlockDecomposition:
    def test_blocks_partition_domain(self):
        d = BlockDecomposition(10, 7, 3, 2)
        covered = np.zeros((10, 7), dtype=int)
        for rank in range(d.n_ranks):
            rb, cb = d.rank_block(rank)
            covered[rb.start:rb.stop, cb.start:cb.stop] += 1
        assert np.all(covered == 1)

    def test_balanced_split(self):
        d = BlockDecomposition(10, 10, 3, 1)
        sizes = [r.size for r in d.rows]
        assert max(sizes) - min(sizes) <= 1

    def test_halo_clipped_at_edges(self):
        d = BlockDecomposition(10, 10, 2, 2, halo=2)
        rows, cols = d.halo_slab(0)
        assert rows.start == 0 and cols.start == 0

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            BlockDecomposition(4, 4, 8, 1)

    def test_halo_bytes_scale_with_partitions(self):
        one = halo_exchange_bytes(64, 64, 1, 1)
        four = halo_exchange_bytes(64, 64, 2, 2)
        sixteen = halo_exchange_bytes(64, 64, 4, 4)
        assert one == 0
        assert 0 < four < sixteen

    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_interior_maps_back_to_block(self, pr, pc):
        d = BlockDecomposition(16, 12, pr, pc, halo=2)
        for rank in range(d.n_ranks):
            rb, cb = d.rank_block(rank)
            rs, cs = d.halo_slab(rank)
            ir, ic = d.interior_in_slab(rank)
            assert rs.start + ir.start == rb.start
            assert cs.start + ic.start == cb.start


class TestDecomposedSolver:
    @pytest.fixture(scope="class")
    def global_solver(self):
        g = make_charlotte_grid(24, 20, 24_000.0, 20_000.0)
        h = synth_estuary_bathymetry(g)
        return ShallowWaterSolver(g, h, TidalForcing(), SWEConfig())

    @pytest.fixture(scope="class")
    def evolved_state(self, global_solver):
        s = global_solver.initial_state()
        for _ in range(60):
            s = global_solver.step(s)
        return s

    @pytest.mark.parametrize("pr,pc", [(1, 1), (2, 2), (3, 2), (1, 4)])
    def test_bit_identical_to_global(self, global_solver, evolved_state,
                                     pr, pc):
        dec = DecomposedShallowWater(global_solver, pr, pc)
        sg, sd = evolved_state.copy(), evolved_state.copy()
        for _ in range(10):
            sg = global_solver.step(sg)
            sd = dec.step(sd)
        np.testing.assert_allclose(sd.zeta, sg.zeta, atol=1e-13)
        np.testing.assert_allclose(sd.u, sg.u, atol=1e-13)
        np.testing.assert_allclose(sd.v, sg.v, atol=1e-13)

    def test_comm_accounting_grows(self, global_solver, evolved_state):
        dec = DecomposedShallowWater(global_solver, 2, 2)
        before = dec.comm.bytes_sent
        dec.step(evolved_state.copy())
        assert dec.comm.bytes_sent > before

    def test_single_rank_no_communication_volume(self, global_solver,
                                                 evolved_state):
        dec = DecomposedShallowWater(global_solver, 1, 1)
        dec.step(evolved_state.copy())
        assert dec.decomp.halo_bytes_per_exchange() == 0


# ----------------------------------------------------------------------
# memory model (Table II)
# ----------------------------------------------------------------------
class TestMemoryModel:
    def test_transfer_bandwidth_paths(self):
        tm = TransferModel(NodeSpec(), pinned=True)
        assert tm.bandwidth(Tier.SSD, Tier.CPU) == NodeSpec().ssd_read_bandwidth
        assert tm.bandwidth(Tier.CPU, Tier.GPU) == NodeSpec().pcie_h2d_pinned
        tm2 = TransferModel(NodeSpec(), pinned=False)
        assert tm2.bandwidth(Tier.CPU, Tier.GPU) < \
            tm.bandwidth(Tier.CPU, Tier.GPU)

    def test_unmodelled_path_raises(self):
        tm = TransferModel(NodeSpec())
        with pytest.raises(ValueError):
            tm.bandwidth(Tier.GPU, Tier.SSD)

    def test_sample_bytes_scale_with_mesh(self):
        small = sample_nbytes(SurrogateConfig())
        big = sample_nbytes(SurrogateConfig.paper())
        assert big > 50 * small

    def test_checkpointing_reduces_activations(self):
        cfg = SurrogateConfig.paper()
        full = activation_nbytes(cfg, checkpointing=False)
        ckpt = activation_nbytes(cfg, checkpointing=True)
        assert ckpt < full

    def test_paper_table2_shape(self):
        """Activation footprint dominates, matching Table II's 42 GB row;
        batch 2 with checkpointing fits in an 80 GB A100."""
        cfg = SurrogateConfig.paper()
        rows = pipeline_memory_table(cfg, NodeSpec(), batch=1)
        by_stage = {r.stage: r for r in rows}
        acts = by_stage["Training Sample Processing"]
        assert 25 <= acts.gigabytes <= 60       # paper: 42 GB
        assert acts.gigabytes > by_stage["Training Sample Loading"].gigabytes
        ck = pipeline_memory_table(cfg, NodeSpec(), batch=2,
                                   checkpointing=True)
        ck_acts = {r.stage: r for r in ck}["Training Sample Processing"]
        assert ck_acts.gigabytes < 80           # fits on the A100

    def test_activation_scales_with_batch(self):
        cfg = SurrogateConfig()
        assert activation_nbytes(cfg, batch=2) == \
            2 * activation_nbytes(cfg, batch=1)


# ----------------------------------------------------------------------
# pipeline model (Fig. 9)
# ----------------------------------------------------------------------
class TestPipelineModel:
    @pytest.fixture()
    def model(self):
        return TrainingPipelineModel(PipelineParams())

    def test_reproduces_fig9_ordering(self, model):
        rows = {r["name"]: r["throughput"] for r in model.figure9()}
        assert rows["Our method"] > rows["w/o activation ckpt"]
        assert rows["Our method"] > rows["w/o pin memory"]
        assert rows["w/o pin memory"] > rows["w/o prefetch"]

    def test_matches_paper_within_tolerance(self, model):
        paper = {"Our method": 1.36, "w/o activation ckpt": 0.81,
                 "w/o pin memory": 0.74, "w/o prefetch": 0.45}
        for row in model.figure9():
            rel = abs(row["throughput"] - paper[row["name"]]) \
                / paper[row["name"]]
            assert rel < 0.15, f"{row['name']}: {row['throughput']:.2f}"

    def test_checkpointing_doubles_batch(self):
        assert PipelineConfig("a").batch_size == 2
        assert PipelineConfig("b",
                              activation_checkpointing=False).batch_size == 1

    def test_prefetch_hides_load(self, model):
        on = model.iteration_seconds(PipelineConfig("x"))
        off = model.iteration_seconds(PipelineConfig("x", prefetch=False))
        assert off > on

    def test_from_surrogate_uses_measured_compute(self):
        p = PipelineParams.from_surrogate(SurrogateConfig(),
                                          measured_compute=0.5)
        assert p.compute_per_instance == 0.5
        assert p.sample_bytes == sample_nbytes(SurrogateConfig())

    def test_all_fig9_configs_present(self):
        names = {c.name for c in FIG9_CONFIGS}
        assert names == {"Our method", "w/o activation ckpt",
                         "w/o pin memory", "w/o prefetch"}


# ----------------------------------------------------------------------
# ROMS perf model (Table I)
# ----------------------------------------------------------------------
class TestRomsPerfModel:
    def test_calibration_exact_on_anchor_row(self):
        model = RomsPerfModel.calibrated_to_paper()
        row = TABLE1_ROWS[-1]
        wl = RomsWorkload(tuple(row["mesh"]), row["horizon_days"],
                          row["cores"])
        np.testing.assert_allclose(model.simulation_seconds(wl),
                                   row["paper_seconds"], rtol=1e-6)

    def test_time_scales_with_horizon(self):
        model = RomsPerfModel.calibrated_to_paper()
        wl3 = RomsWorkload((898, 598, 12), 3.0, 512)
        wl12 = RomsWorkload((898, 598, 12), 12.0, 512)
        ratio = model.simulation_seconds(wl12) / model.simulation_seconds(wl3)
        assert 3.5 < ratio < 4.5

    def test_more_cores_faster(self):
        model = RomsPerfModel.calibrated_to_paper()
        t256 = model.simulation_seconds(RomsWorkload((898, 598, 12), 12, 256))
        t512 = model.simulation_seconds(RomsWorkload((898, 598, 12), 12, 512))
        assert t512 < t256

    def test_efficiency_below_one_with_comm(self):
        model = RomsPerfModel.calibrated_to_paper()
        wl = RomsWorkload((898, 598, 12), 12.0, 512)
        assert 0.0 < model.parallel_efficiency(wl) <= 1.0

    def test_episode_cost_proportional(self):
        model = RomsPerfModel.calibrated_to_paper()
        wl = RomsWorkload((898, 598, 12), 12.0, 512)
        half_day = model.episode_seconds(wl, 0.5)
        np.testing.assert_allclose(half_day,
                                   model.simulation_seconds(wl) / 24,
                                   rtol=1e-9)

    def test_best_process_grid_fits(self):
        pr, pc = best_process_grid(512, 898, 598)
        assert pr * pc == 512
        assert pr <= 898 and pc <= 598

    def test_table1_reports_all_rows(self):
        model = RomsPerfModel.calibrated_to_paper()
        rows = model.table1()
        assert len(rows) == len(TABLE1_ROWS)
        assert all(r["model_seconds"] > 0 for r in rows)


# ----------------------------------------------------------------------
# scaling model (Fig. 10)
# ----------------------------------------------------------------------
class TestScalingModel:
    def test_ring_allreduce_zero_for_single(self):
        assert ring_allreduce_seconds(1 << 20, 1, 1e9, 1e-6) == 0.0

    def test_ring_allreduce_grows_with_payload(self):
        a = ring_allreduce_seconds(1 << 20, 4, 1e9, 1e-6)
        b = ring_allreduce_seconds(1 << 24, 4, 1e9, 1e-6)
        assert b > a

    def test_throughput_increases_with_gpus(self):
        m = ScalingModel()
        t = [m.throughput(n) for n in (1, 2, 4, 8, 16, 32)]
        assert all(b > a for a, b in zip(t, t[1:]))

    def test_ckpt_curve_above_no_ckpt(self):
        m = ScalingModel()
        for row in m.figure10():
            assert row["with_ckpt"] > row["without_ckpt"]

    def test_scaling_efficiency_high(self):
        """Gradients are tiny (3.4 M params) — weak scaling stays ≥90%."""
        m = ScalingModel()
        t1 = m.throughput(1)
        t32 = m.throughput(32)
        assert t32 / (32 * t1) > 0.9

    def test_internode_allreduce_slower(self):
        m = ScalingModel()
        assert m.allreduce_seconds(16) > m.allreduce_seconds(8)

    def test_for_surrogate_derives_grad_bytes(self):
        cfg = SurrogateConfig(mesh=(16, 16, 6), time_steps=4,
                              patch3d=(4, 4, 2), patch2d=(4, 4),
                              embed_dim=8, num_heads=(2, 4, 8),
                              window_first=(2, 2, 2, 2),
                              window_rest=(2, 2, 2, 2))
        m = ScalingModel.for_surrogate(cfg)
        from repro.swin import CoastalSurrogate
        assert m.grad_bytes == CoastalSurrogate(cfg).num_parameters() * 4

    def test_gpu_packing(self):
        assert DGX_A100_CLUSTER.gpus(8) == (1, 8)
        assert DGX_A100_CLUSTER.gpus(32) == (4, 8)
        with pytest.raises(ValueError):
            DGX_A100_CLUSTER.gpus(12)
