"""Serving subsystem: equivalence, ordering, flush-policy properties.

The scheduler must be a pure routing layer: every request's result is
bitwise-identical to a direct ``ForecastEngine.forecast_batch`` call on
the micro-batch it landed in, request→result pairing survives arbitrary
arrival interleavings, and the ``max_batch``/``max_wait`` policy fixes
exactly when the queue flushes.  These tests use an untrained tiny
surrogate on synthetic windows — inference is deterministic either way,
and nothing here depends on forecast quality.
"""

import math
import threading

import numpy as np
import pytest
from conftest import (  # noqa: F401 — shared serving fixtures
    D,
    H,
    T,
    assert_windows_equal,
    count_forwards,
    make_window,
)

from repro.hpc import ServingCapacityModel
from repro.serve import (
    ForecastCache,
    ForecastServer,
    MicroBatchScheduler,
    window_key,
)
from repro.serve.scheduler import BatchRecord
from repro.workflow import EnsembleForecaster, HybridWorkflow
from repro.workflow.engine import FieldWindow


def assert_batches_bitwise(scheduler, engine, by_id):
    """Each realised micro-batch must equal the direct engine call on
    its exact composition — the core scheduling-is-pure property."""
    assert scheduler.metrics.batches, "no batches were executed"
    for batch in scheduler.metrics.batches:
        direct = engine.forecast_batch(
            [by_id[rid] for rid in batch.request_ids])
        for rid, d in zip(batch.request_ids, direct):
            assert_windows_equal(by_id[rid].served.fields, d.fields)


class _Tagged(FieldWindow):
    """FieldWindow that remembers the result served for it."""


def submit_tagged(scheduler, window):
    tagged = _Tagged(window.u3, window.v3, window.w3, window.zeta)
    tagged.future = scheduler.submit(tagged)
    return tagged


def resolve(tagged_windows, timeout=60.0):
    by_id = {}
    for t in tagged_windows:
        t.served = t.future.result(timeout=timeout)
        by_id[t.future.request_id] = t
    return by_id


class TestEquivalence:
    def test_manual_mode_bitwise_equal_direct(self, engine, windows):
        s = MicroBatchScheduler(engine, max_batch=3, max_wait=10.0,
                                autostart=False)
        futures = [s.submit(w) for w in windows[:5]]
        assert s.step() == 3 and s.step() == 2 and s.step() == 0
        direct = engine.forecast_batch(windows[:3]) \
            + engine.forecast_batch(windows[3:5])
        for fut, d in zip(futures, direct):
            assert_windows_equal(fut.result(timeout=1).fields, d.fields)
        assert [f.batch_size for f in futures] == [3, 3, 3, 2, 2]
        s.close()

    def test_threaded_full_batch_bitwise_equal_direct(self, engine,
                                                      windows):
        # forward-count tests need the eager path: the session engine
        # may arrive with plans compiled by earlier modules
        engine.clear_plans()
        with MicroBatchScheduler(engine, max_batch=4, max_wait=30.0) as s:
            with count_forwards(engine.model) as calls:
                futures = [s.submit(w) for w in windows[:4]]
                results = [f.result(timeout=60) for f in futures]
        assert calls["n"] == 1                      # one coalesced forward
        direct = engine.forecast_batch(windows[:4])
        for r, d in zip(results, direct):
            assert_windows_equal(r.fields, d.fields)
        assert s.metrics.batches[0].trigger == "full"

    def test_executor_protocol_matches_direct(self, engine, windows):
        """scheduler.forecast_batch is drop-in for engine.forecast_batch."""
        with MicroBatchScheduler(engine, max_batch=5, max_wait=30.0) as s:
            served = s.forecast_batch(windows[:5])
        direct = engine.forecast_batch(windows[:5])
        for r, d in zip(served, direct):
            assert_windows_equal(r.fields, d.fields)


class TestOrderingProperties:
    def test_arbitrary_manual_interleavings(self, engine, windows):
        """For ANY interleaving of submits and scheduling quanta, every
        request gets its own result and every realised batch is bitwise
        a direct engine call."""
        rng = np.random.default_rng(20260730)
        for trial in range(4):
            s = MicroBatchScheduler(engine, max_batch=3, max_wait=10.0,
                                    autostart=False)
            pending = list(rng.permutation(10))
            tagged = []
            while pending or any(not t.future.done() for t in tagged):
                if pending and (rng.random() < 0.6 or not tagged):
                    seed = int(pending.pop())
                    tagged.append(submit_tagged(s, make_window(seed)))
                else:
                    s.step()
            by_id = resolve(tagged, timeout=1.0)
            # pairing: slot 0 is the exact IC of the submitted window
            for t in tagged:
                np.testing.assert_array_equal(t.served.fields.zeta[0],
                                              t.zeta[0])
            assert_batches_bitwise(s, engine, by_id)
            assert all(b.size <= 3 for b in s.metrics.batches)
            s.close()

    def test_concurrent_clients_threaded(self, engine):
        """3 client threads × 4 requests with jittered arrivals: all are
        answered, each with its own forecast, in engine-pure batches."""
        s = MicroBatchScheduler(engine, max_batch=3, max_wait=0.02)
        tagged, lock = [], threading.Lock()
        rng = np.random.default_rng(7)
        delays = rng.uniform(0.0, 0.01, size=(3, 4))

        def client(cid):
            import time
            for k in range(4):
                time.sleep(delays[cid, k])
                t = submit_tagged(s, make_window(100 + 10 * cid + k))
                with lock:
                    tagged.append(t)

        threads = [threading.Thread(target=client, args=(c,))
                   for c in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_id = resolve(tagged, timeout=60.0)
        s.close()

        assert len(by_id) == 12
        for t in tagged:
            np.testing.assert_array_equal(t.served.fields.zeta[0],
                                          t.zeta[0])
        assert sum(b.size for b in s.metrics.batches) == 12
        assert all(1 <= b.size <= 3 for b in s.metrics.batches)
        assert_batches_bitwise(s, engine, by_id)
        assert s.metrics.n_requests == 12


class TestFlushPolicy:
    @pytest.mark.parametrize("n,max_batch", [(10, 4), (8, 8), (5, 1)])
    def test_forward_count_is_ceil_n_over_max_batch(self, engine, n,
                                                    max_batch):
        engine.clear_plans()        # count forwards ⇒ force eager path
        s = MicroBatchScheduler(engine, max_batch=max_batch, max_wait=10.0,
                                autostart=False)
        futures = [s.submit(make_window(k)) for k in range(n)]
        with count_forwards(engine.model) as calls:
            assert s.flush() == n
        assert calls["n"] == math.ceil(n / max_batch)
        sizes = [b.size for b in s.metrics.batches]
        assert sum(sizes) == n and max(sizes) <= max_batch
        assert all(f.done() for f in futures)
        s.close()

    def test_lone_request_flushed_by_timeout(self, engine, windows):
        with MicroBatchScheduler(engine, max_batch=8, max_wait=0.05) as s:
            fut = s.submit(windows[0])
            fut.result(timeout=60)
        assert fut.batch_size == 1
        assert s.metrics.batches[0].trigger == "timeout"
        # it waited for company ≈ max_wait before giving up
        assert fut.queue_seconds >= 0.04

    def test_close_serves_backlog(self, engine, windows):
        s = MicroBatchScheduler(engine, max_batch=4, max_wait=10.0,
                                autostart=False)
        futures = [s.submit(w) for w in windows[:2]]
        s.close()
        assert all(f.done() for f in futures)
        assert s.metrics.batches[-1].trigger == "close"
        with pytest.raises(RuntimeError, match="closed"):
            s.submit(windows[0])

    def test_submit_validates_length_and_mesh(self, engine, windows):
        s = MicroBatchScheduler(engine, max_batch=4, max_wait=10.0,
                                autostart=False)
        with pytest.raises(ValueError, match="time_steps"):
            s.submit(make_window(0, t=T + 1))
        s.submit(windows[0])
        with pytest.raises(ValueError, match="share one mesh"):
            s.submit(make_window(0, h=H - 1))
        # a wrong *volume* depth must also be rejected at submit (zeta
        # alone matches) so it cannot poison co-batched requests
        shallow = make_window(0, d=D - 1)
        with pytest.raises(ValueError, match="share one mesh"):
            s.submit(FieldWindow(shallow.u3, shallow.v3, shallow.w3,
                                 s._queue[0].window.zeta.copy()))
        assert s.flush() == 1               # the good request is unharmed
        s.close()

    def test_engine_failure_fails_futures_not_worker(self, engine,
                                                     windows):
        class Flaky:
            """Engine that fails its first forward, then recovers."""

            def __init__(self, inner):
                self.inner, self.failed = inner, False
                self.time_steps = inner.time_steps

            def forecast_batch(self, refs):
                if not self.failed:
                    self.failed = True
                    raise RuntimeError("transient backend failure")
                return self.inner.forecast_batch(refs)

        with MicroBatchScheduler(Flaky(engine), max_batch=1,
                                 max_wait=0.01) as s:
            bad = s.submit(windows[0])
            with pytest.raises(RuntimeError, match="transient"):
                bad.result(timeout=60)
            good = s.submit(windows[1])       # worker must still serve
            ok = good.result(timeout=60)
        assert_windows_equal(ok.fields,
                             engine.forecast_batch([windows[1]])[0].fields)
        # the failed batch must be visible in the metrics, not vanish
        assert s.metrics.n_batches == 2
        assert s.metrics.n_failed_batches == 1
        assert s.metrics.batches[0].failed
        assert not s.metrics.batches[1].failed
        assert s.metrics.n_requests == 2
        assert s.metrics.summary()["failed_batches"] == 1


class TestForecastCache:
    def test_window_key_is_content_addressed(self, windows):
        a = windows[0]
        same = FieldWindow(a.u3.copy(), a.v3.copy(), a.w3.copy(),
                           a.zeta.copy())
        assert window_key(a) == window_key(same)
        other = a.copy()
        other.zeta[1, 2, 3] += 1e-9
        assert window_key(a) != window_key(other)
        assert window_key(a, extra=("members", 8)) != window_key(a)

    def test_hit_returns_private_copy(self, engine, windows):
        cache = ForecastCache(1 << 24)
        key = window_key(windows[0])
        original = engine.forecast_batch([windows[0]])[0]
        cache.put(key, original)
        first = cache.get(key)
        first.fields.zeta[0] = -999.0           # consumer mutates freely
        second = cache.get(key)
        assert_windows_equal(second.fields, original.fields)
        assert cache.stats.hits == 2 and cache.stats.misses == 0

    def test_duplicate_put_does_not_inflate_accounting(self, engine,
                                                       windows):
        """Concurrent identical misses both put the same key: the byte
        accounting must reflect one resident copy, not two."""
        from repro.data import LruBytes
        lru = LruBytes(300, size_of=lambda v: 100)
        lru.put("k", "a")
        lru.put("k", "b")
        assert lru.used_bytes == 100 and len(lru) == 1
        assert lru.get("k") == "b"
        assert lru.put("x", "c") == 0       # still fits without eviction
        assert lru.used_bytes == 200

        result = engine.forecast_batch([windows[0]])[0]
        cache = ForecastCache(1 << 24)
        key = window_key(windows[0])
        cache.put(key, result)
        before = cache.resident_bytes
        cache.put(key, result)
        assert cache.resident_bytes == before and len(cache) == 1

    def test_lru_eviction_under_byte_budget(self, engine, windows):
        one = engine.forecast_batch([windows[0]])[0]
        f = one.fields
        nbytes = f.u3.nbytes + f.v3.nbytes + f.w3.nbytes + f.zeta.nbytes
        cache = ForecastCache(2 * nbytes)
        results = engine.forecast_batch(windows[:3])
        for w, r in zip(windows[:3], results):
            cache.put(window_key(w), r)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(window_key(windows[0])) is None   # LRU victim
        assert cache.get(window_key(windows[2])) is not None

    def test_server_dedups_identical_requests(self, engine, windows):
        with ForecastServer(engine, max_batch=4, max_wait=0.01,
                            cache_bytes=1 << 24) as server:
            first = server.forecast(windows[0])
            # wait for the out-of-band cache fill to land
            deadline = 60.0
            import time
            t0 = time.perf_counter()
            while len(server.cache) == 0:
                assert time.perf_counter() - t0 < deadline
                time.sleep(0.005)
            with count_forwards(engine.model) as calls:
                again = server.forecast(windows[0])
            assert calls["n"] == 0                  # served from cache
            assert_windows_equal(again.fields, first.fields)
            assert server.metrics()["cache_hits"] >= 1

    def test_server_dedups_inflight_duplicates(self, engine, windows):
        """A burst of identical requests arriving before the first
        result lands follows one leader instead of each taking an
        engine batch slot."""
        with ForecastServer(engine, max_batch=8, max_wait=0.05,
                            cache_bytes=1 << 24) as server:
            futures = [server.submit(windows[1]) for _ in range(6)]
            results = [f.result(timeout=60) for f in futures]
        for r in results[1:]:
            assert_windows_equal(r.fields, results[0].fields)
        # the engine saw (almost always exactly) one of the six
        assert server.deduped_requests >= 4
        assert sum(b.size for b in server.scheduler.metrics.batches) <= 2

    def test_follower_results_are_private_copies(self, engine, windows):
        with ForecastServer(engine, max_batch=8, max_wait=0.05,
                            cache_bytes=1 << 24) as server:
            leader = server.submit(windows[2])
            follower = server.submit(windows[2])
            a = leader.result(timeout=60)
            b = follower.result(timeout=60)
        assert a.fields.zeta is not b.fields.zeta
        a.fields.zeta[0] = -999.0
        assert not np.array_equal(a.fields.zeta, b.fields.zeta)


class TestServerRouting:
    def test_served_ensemble_equals_direct(self, engine, windows):
        direct = EnsembleForecaster(engine, n_members=4,
                                    seed=3).forecast(windows[0])
        with ForecastServer(engine, max_batch=4, max_wait=5.0) as server:
            served = server.submit_ensemble(windows[0], n_members=4,
                                            seed=3).result(timeout=120)
        assert served.n_members == 4
        for sm, dm in zip(served.members, direct.members):
            assert_windows_equal(sm, dm)
        assert_windows_equal(served.mean, direct.mean)
        assert_windows_equal(served.spread, direct.spread)
        # all 4 members shared micro-batches: occupancy above 1
        assert server.scheduler.metrics.mean_occupancy > 1.0

    def test_served_hybrid_equals_direct(self, engine, tiny_ocean):
        from repro.physics import Verifier
        verifier = Verifier(tiny_ocean.grid, tiny_ocean.depth, dt=1800.0)
        window = make_window(99, t=2 * T)
        states = [object()] * 2     # never touched when every episode passes
        direct = HybridWorkflow(engine, tiny_ocean, verifier).run(
            window, states, threshold=1e30)
        with ForecastServer(engine, max_batch=8, max_wait=0.01,
                            ocean=tiny_ocean, verifier=verifier) as server:
            fields, report = server.submit_hybrid(
                window, states, threshold=1e30).result(timeout=120)
        assert report.n_episodes == direct[1].n_episodes == 2
        assert report.pass_rate == 1.0
        assert_windows_equal(fields, direct[0])

    def test_hybrid_without_deps_raises(self, engine, windows):
        with ForecastServer(engine, max_batch=2, max_wait=0.01) as server:
            with pytest.raises(ValueError, match="ocean"):
                server.submit_hybrid(windows[0], [object()])


class TestCapacityModel:
    def test_recovers_affine_law_exactly(self):
        a, b = 0.004, 0.0015
        sizes = [1, 2, 3, 5, 8]
        model = ServingCapacityModel.fit(
            sizes, [a + b * s for s in sizes])
        assert model.dispatch_seconds == pytest.approx(a, rel=1e-9)
        assert model.per_request_seconds == pytest.approx(b, rel=1e-9)
        assert model.saturation_throughput == pytest.approx(1 / b)
        assert model.throughput(8) > model.throughput(1)
        assert model.batch_seconds(2) == pytest.approx(a + 2 * b)

    def test_single_size_is_conservative(self):
        model = ServingCapacityModel.fit([4, 4, 4], [0.02, 0.02, 0.02])
        assert model.dispatch_seconds == 0.0
        assert model.per_request_seconds == pytest.approx(0.005)

    def test_optimal_batch_respects_slo(self):
        model = ServingCapacityModel(dispatch_seconds=0.004,
                                     per_request_seconds=0.001)
        assert model.optimal_batch(0.010) == 6
        assert model.optimal_batch(0.004) == 1      # never below 1
        assert model.optimal_batch(10.0, max_batch=16) == 16

    def test_fit_from_scheduler_log(self):
        records = [BatchRecord(i, s, tuple(), 0.002 + 0.001 * s, "full")
                   for i, s in enumerate([1, 2, 4, 8])]
        model = ServingCapacityModel.from_batch_log(records)
        assert model.dispatch_seconds == pytest.approx(0.002, rel=1e-6)
        assert model.per_request_seconds == pytest.approx(0.001, rel=1e-6)

    def test_rejects_empty_fit(self):
        with pytest.raises(ValueError, match="observation"):
            ServingCapacityModel.fit([], [])


class TestShapeValidation:
    """Clear errors instead of deep numpy broadcasting failures."""

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError, match="no windows"):
            FieldWindow.concat([])

    def test_concat_mixed_mesh_raises(self, windows):
        with pytest.raises(ValueError, match="share one mesh"):
            FieldWindow.concat([windows[0], make_window(0, h=H - 1)])

    def test_concat_mixed_depth_raises(self, windows):
        with pytest.raises(ValueError, match="u3 mesh"):
            FieldWindow.concat([windows[0], make_window(0, d=D - 1)])

    def test_normalize_batch_mismatched_volume_raises(self, engine,
                                                      windows):
        """zeta meshes agree, u3 depths differ — must not die inside
        np.stack broadcasting."""
        deep = make_window(0)
        shallow = make_window(1, d=D - 1)
        shallow = FieldWindow(shallow.u3, shallow.v3, shallow.w3,
                              deep.zeta.copy())
        with pytest.raises(ValueError, match="share one mesh"):
            engine.forecast_batch([deep, shallow])
