"""Physics verification: residuals small on solver truth, large on junk."""

import numpy as np
import pytest

from repro.ocean import RomsLikeModel
from repro.physics import (
    OCEANOGRAPHY_ACCEPTED_THRESHOLD,
    PAPER_THRESHOLDS,
    VerificationResult,
    Verifier,
    depth_average,
    residual_series,
    water_mass_residual,
)


@pytest.fixture(scope="module")
def solver_window(tiny_ocean):
    """A short window of genuine solver output."""
    st = tiny_ocean.spinup(duration=6 * 3600.0)
    snaps, _ = tiny_ocean.simulate(st, 6)
    zeta = np.stack([s.zeta for s in snaps])
    u3 = np.stack([s.u3 for s in snaps])
    v3 = np.stack([s.v3 for s in snaps])
    return zeta, u3, v3


@pytest.fixture(scope="module")
def tiny_ocean():
    from repro.ocean import OceanConfig
    return RomsLikeModel(OceanConfig(nx=14, ny=15, nz=6,
                                     length_x=14_000.0, length_y=15_000.0))


class TestDepthAverage:
    def test_uniform_layers(self, rng):
        f = rng.normal(size=(4, 5, 6))
        np.testing.assert_allclose(depth_average(f), f.mean(axis=-1))


class TestResidual:
    def test_zero_for_steady_no_flow(self, tiny_ocean):
        g = tiny_ocean.grid
        h = tiny_ocean.depth
        z = np.zeros((g.ny, g.nx))
        u = np.zeros_like(z)
        r = water_mass_residual(g, h, z, z, u, u, 1800.0)
        np.testing.assert_allclose(r, 0.0)

    def test_nonnegative(self, tiny_ocean, solver_window):
        zeta, u3, v3 = solver_window
        r = residual_series(tiny_ocean.grid, tiny_ocean.depth,
                            zeta, u3, v3, 1800.0)
        assert np.all(r >= 0)

    def test_land_cells_zero(self, tiny_ocean, solver_window):
        zeta, u3, v3 = solver_window
        r = residual_series(tiny_ocean.grid, tiny_ocean.depth,
                            zeta, u3, v3, 1800.0)
        dry = ~tiny_ocean.solver.wet
        assert np.all(r[:, dry] == 0.0)

    def test_solver_output_beats_loose_threshold(self, tiny_ocean,
                                                 solver_window):
        """Genuine solver output is nearly mass-conserving — its mean
        residual sits well below the oceanography-accepted 5e-4 m/s."""
        zeta, u3, v3 = solver_window
        r = residual_series(tiny_ocean.grid, tiny_ocean.depth,
                            zeta, u3, v3, 1800.0)
        wet = tiny_ocean.solver.wet
        assert r[:, wet].mean() < OCEANOGRAPHY_ACCEPTED_THRESHOLD

    def test_corrupted_forecast_fails(self, tiny_ocean, solver_window):
        """Breaking continuity (random ζ jumps) must inflate the residual."""
        zeta, u3, v3 = solver_window
        rng = np.random.default_rng(0)
        bad_zeta = zeta + 2.0 * rng.normal(size=zeta.shape)
        wet = tiny_ocean.solver.wet
        good = residual_series(tiny_ocean.grid, tiny_ocean.depth,
                               zeta, u3, v3, 1800.0)[:, wet].mean()
        bad = residual_series(tiny_ocean.grid, tiny_ocean.depth,
                              bad_zeta, u3, v3, 1800.0)[:, wet].mean()
        assert bad > 10 * good
        assert bad > OCEANOGRAPHY_ACCEPTED_THRESHOLD

    def test_requires_two_snapshots(self, tiny_ocean):
        with pytest.raises(ValueError):
            residual_series(tiny_ocean.grid, tiny_ocean.depth,
                            np.zeros((1, 15, 14)),
                            np.zeros((1, 15, 14, 6)),
                            np.zeros((1, 15, 14, 6)), 1800.0)


class TestVerifier:
    def test_solver_output_passes(self, tiny_ocean, solver_window):
        zeta, u3, v3 = solver_window
        v = Verifier(tiny_ocean.grid, tiny_ocean.depth,
                     threshold=OCEANOGRAPHY_ACCEPTED_THRESHOLD, dt=1800.0)
        res = v.verify(zeta, u3, v3)
        assert res.passed
        assert res.mean_residual < res.threshold

    def test_threshold_override(self, tiny_ocean, solver_window):
        zeta, u3, v3 = solver_window
        v = Verifier(tiny_ocean.grid, tiny_ocean.depth, dt=1800.0)
        strict = v.verify(zeta, u3, v3, threshold=1e-12)
        assert not strict.passed

    def test_per_step_means_length(self, tiny_ocean, solver_window):
        zeta, u3, v3 = solver_window
        v = Verifier(tiny_ocean.grid, tiny_ocean.depth, dt=1800.0)
        res = v.verify(zeta, u3, v3)
        assert len(res.per_step_mean) == zeta.shape[0] - 1

    def test_pass_rate_monotone_in_threshold(self, tiny_ocean):
        """Fig. 7's defining property: pass rate is non-decreasing."""
        v = Verifier(tiny_ocean.grid, tiny_ocean.depth, dt=1800.0)
        rng = np.random.default_rng(1)
        residuals = np.abs(rng.normal(4e-4, 1e-4, size=200))
        rates = [v.pass_rate(list(residuals), thr) for thr in PAPER_THRESHOLDS]
        assert all(a <= b for a, b in zip(rates, rates[1:]))

    def test_pass_rate_accepts_results(self, tiny_ocean, solver_window):
        zeta, u3, v3 = solver_window
        v = Verifier(tiny_ocean.grid, tiny_ocean.depth, dt=1800.0)
        res = v.verify(zeta, u3, v3)
        assert v.pass_rate([res]) in (0.0, 1.0)

    def test_pass_rate_empty_raises(self, tiny_ocean):
        v = Verifier(tiny_ocean.grid, tiny_ocean.depth)
        with pytest.raises(ValueError):
            v.pass_rate([])

    def test_repr_tags_outcome(self):
        r = VerificationResult(1e-5, 2e-5, 1e-4, True, np.zeros(3))
        assert "PASS" in repr(r)
        r = VerificationResult(1e-3, 2e-3, 1e-4, False, np.zeros(3))
        assert "FAIL" in repr(r)

    def test_paper_thresholds_ordered(self):
        assert list(PAPER_THRESHOLDS) == sorted(PAPER_THRESHOLDS)
        assert OCEANOGRAPHY_ACCEPTED_THRESHOLD in PAPER_THRESHOLDS
