"""Optimisers, schedules, losses, checkpointing, and the trainer."""

import numpy as np
import pytest

from repro.nn import Linear, Parameter
from repro.tensor import Tensor
from repro.train import (
    Adam,
    AdamW,
    ConstantLR,
    CosineWarmup,
    SGD,
    StepLR,
    Trainer,
    TrainerConfig,
    clip_grad_norm,
    episode_loss,
    load_checkpoint,
    mae,
    mse,
    save_checkpoint,
)


def _quadratic_step(opt_cls, steps=200, **kw):
    """Minimise ||p - target||² and return the final parameter."""
    p = Parameter(np.array([5.0, -3.0], dtype=np.float32))
    target = np.array([1.0, 2.0], dtype=np.float32)
    opt = opt_cls([p], **kw)
    for _ in range(steps):
        opt.zero_grad()
        loss = ((p - Tensor(target)) * (p - Tensor(target))).sum()
        loss.backward()
        opt.step()
    return p.data, target


class TestOptimizers:
    def test_sgd_converges(self):
        got, target = _quadratic_step(SGD, lr=0.1)
        np.testing.assert_allclose(got, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        got, target = _quadratic_step(SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(got, target, atol=1e-3)

    def test_adam_converges(self):
        got, target = _quadratic_step(Adam, lr=0.1, steps=400)
        np.testing.assert_allclose(got, target, atol=1e-2)

    def test_adamw_converges(self):
        got, target = _quadratic_step(AdamW, lr=0.1, steps=400)
        np.testing.assert_allclose(got, target, atol=1e-2)

    def test_weight_decay_shrinks_params(self):
        p = Parameter(np.array([10.0], dtype=np.float32))
        opt = AdamW([p], lr=0.01, weight_decay=0.1)
        for _ in range(100):
            opt.zero_grad()
            p.grad = np.zeros_like(p.data)  # zero task gradient
            opt.step()
        assert abs(p.data[0]) < 10.0

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        opt = Adam([p], lr=0.1)
        opt.step()  # no grad — must not crash nor move
        np.testing.assert_array_equal(p.data, np.ones(2))

    def test_state_dict_roundtrip(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        opt = Adam([p], lr=0.3)
        opt.t = 7
        state = opt.state_dict()
        opt2 = Adam([p], lr=0.1)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.3 and opt2.t == 7


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_leaves_small_gradients(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        p.grad = np.full(4, 0.1, dtype=np.float32)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, 0.1)

    def test_empty_is_zero(self):
        assert clip_grad_norm([], 1.0) == 0.0


class TestSchedules:
    def _opt(self):
        return SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=1.0)

    def test_constant(self):
        s = ConstantLR(self._opt())
        assert s.step() == 1.0
        assert s.step() == 1.0

    def test_step_decay(self):
        s = StepLR(self._opt(), step_size=2, gamma=0.5)
        lrs = [s.step() for _ in range(5)]
        assert lrs == [1.0, 0.5, 0.5, 0.25, 0.25]

    def test_cosine_warmup_ramps_then_decays(self):
        s = CosineWarmup(self._opt(), warmup_steps=5, total_steps=20,
                         min_lr=0.0)
        lrs = [s.step() for _ in range(20)]
        assert lrs[0] < lrs[4] <= 1.0          # warmup rising
        assert lrs[-1] < lrs[6]                # cosine falling
        assert lrs[-1] >= 0.0

    def test_cosine_validates(self):
        with pytest.raises(ValueError):
            CosineWarmup(self._opt(), warmup_steps=10, total_steps=5)


class TestLosses:
    def test_mse_zero_for_equal(self, rng):
        x = Tensor(rng.normal(size=(3, 4)).astype(np.float32))
        assert mse(x, x).item() == 0.0

    def test_mse_value(self):
        a = Tensor(np.zeros(4, np.float32))
        b = Tensor(np.full(4, 2.0, np.float32))
        assert mse(a, b).item() == pytest.approx(4.0)

    def test_mae_value(self):
        a = Tensor(np.zeros(4, np.float32))
        b = Tensor(np.array([1.0, -1.0, 3.0, -3.0], np.float32))
        assert mae(a, b).item() == pytest.approx(2.0)

    def test_episode_loss_weights_2d(self, rng):
        p3 = Tensor(rng.normal(size=(1, 3, 4, 4, 2, 2)).astype(np.float32))
        t3 = Tensor(np.zeros_like(p3.data))
        p2 = Tensor(rng.normal(size=(1, 1, 4, 4, 2)).astype(np.float32))
        t2 = Tensor(np.zeros_like(p2.data))
        l1 = episode_loss(p3, p2, t3, t2, weight_2d=1.0).item()
        l2 = episode_loss(p3, p2, t3, t2, weight_2d=2.0).item()
        expected_delta = mse(p2, t2).item()
        assert l2 - l1 == pytest.approx(expected_delta, rel=1e-5)


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        a, b = Linear(3, 4), Linear(3, 4)
        b.weight.data[:] = 0.0
        opt = Adam(a.parameters(), lr=0.123)
        save_checkpoint(tmp_path / "ck.npz", a, opt, extra={"note": "hi"})
        opt2 = Adam(b.parameters(), lr=0.9)
        meta = load_checkpoint(tmp_path / "ck.npz", b, opt2)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        assert opt2.lr == pytest.approx(0.123)
        assert meta["extra"]["note"] == "hi"

    def test_load_without_optimizer(self, tmp_path):
        a, b = Linear(2, 2), Linear(2, 2)
        save_checkpoint(tmp_path / "ck.npz", a)
        load_checkpoint(tmp_path / "ck.npz", b)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestTrainer:
    @pytest.fixture()
    def loaders(self, tiny_dataset):
        from repro.data import DataLoader
        train = DataLoader(tiny_dataset, batch_size=1, shuffle=True, seed=0)
        val = DataLoader(tiny_dataset, batch_size=1, shuffle=False)
        return train, val

    def test_loss_decreases(self, tiny_surrogate_config, loaders):
        from repro.swin import CoastalSurrogate
        model = CoastalSurrogate(tiny_surrogate_config)
        trainer = Trainer(model, TrainerConfig(lr=2e-3, epochs=2))
        train, _ = loaders
        history = trainer.fit(train, epochs=2)
        assert len(history) == 2
        assert history[-1].train_loss < history[0].train_loss

    def test_evaluate_no_grads(self, tiny_surrogate, loaders):
        trainer = Trainer(tiny_surrogate, TrainerConfig())
        _, val = loaders
        loss = trainer.evaluate(val)
        assert np.isfinite(loss)
        assert all(p.grad is None for p in tiny_surrogate.parameters())

    def test_throughput_recorded(self, tiny_surrogate_config, loaders):
        from repro.swin import CoastalSurrogate
        model = CoastalSurrogate(tiny_surrogate_config)
        trainer = Trainer(model, TrainerConfig(lr=1e-3))
        train, _ = loaders
        stats = trainer.fit(train, epochs=1)[0]
        assert stats.throughput > 0
        assert stats.instances == len(train.dataset)

    def test_checkpoint_resume(self, tiny_surrogate_config, loaders,
                               tmp_path):
        from repro.swin import CoastalSurrogate
        model = CoastalSurrogate(tiny_surrogate_config)
        trainer = Trainer(model, TrainerConfig(lr=1e-3))
        train, _ = loaders
        trainer.fit(train, epochs=1)
        trainer.save(tmp_path / "state.npz")

        model2 = CoastalSurrogate(tiny_surrogate_config)
        trainer2 = Trainer(model2, TrainerConfig(lr=1e-3))
        meta = trainer2.load(tmp_path / "state.npz")
        assert meta["extra"]["epochs_done"] == 1
        for (na, pa), (nb, pb) in zip(model.named_parameters(),
                                      model2.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)
