"""Tidal harmonic analysis: recovery of known constituents."""

import numpy as np
import pytest

from repro.ocean import (
    GULF_CONSTITUENTS,
    TidalConstituent,
    TidalForcing,
    compare_constituents,
    fit_constituents,
)

HOUR = 3600.0
DAY = 86400.0


@pytest.fixture()
def month_times():
    """30 days at 30-minute sampling — resolves the Gulf constituents."""
    return np.arange(0.0, 30 * DAY, 1800.0)


class TestFitConstituents:
    def test_recovers_single_constituent(self, month_times):
        c = TidalConstituent("M2", 12.4206 * HOUR, 0.31, 0.7)
        series = c.elevation(month_times)
        fit = fit_constituents(month_times, series, [c])
        assert fit.amplitudes["M2"] == pytest.approx(0.31, abs=1e-6)
        assert fit.phases["M2"] == pytest.approx(0.7, abs=1e-6)
        assert fit.residual_rms < 1e-10

    def test_recovers_full_gulf_set(self, month_times):
        forcing = TidalForcing(alongshore_delay_s_per_m=0.0)
        series = forcing.series(month_times)
        fit = fit_constituents(month_times, series)
        for c in GULF_CONSTITUENTS:
            assert fit.amplitudes[c.name] == pytest.approx(
                c.amplitude_m, abs=5e-3), c.name

    def test_mean_level_recovered(self, month_times):
        c = GULF_CONSTITUENTS[0]
        series = 1.25 + c.elevation(month_times)
        fit = fit_constituents(month_times, series, [c])
        assert fit.mean_level == pytest.approx(1.25, abs=1e-8)

    def test_noise_goes_to_residual(self, month_times, rng):
        c = GULF_CONSTITUENTS[0]
        noise = 0.05 * rng.normal(size=month_times.shape)
        fit = fit_constituents(month_times, c.elevation(month_times) + noise,
                               [c])
        assert fit.amplitudes["M2"] == pytest.approx(c.amplitude_m, abs=5e-3)
        assert 0.04 < fit.residual_rms < 0.06

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError, match="samples"):
            fit_constituents(np.arange(5.0), np.zeros(5))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal shapes"):
            fit_constituents(np.arange(100.0), np.zeros(50))


class TestCompareConstituents:
    def test_phase_error_wrapped(self, month_times):
        a = TidalConstituent("M2", 12.4206 * HOUR, 0.3, 0.1)
        b = TidalConstituent("M2", 12.4206 * HOUR, 0.3, 0.1 + 2 * np.pi - 0.2)
        fa = fit_constituents(month_times, a.elevation(month_times), [a])
        fb = fit_constituents(month_times, b.elevation(month_times), [a])
        (_, ref_amp, cand_amp, dphi), = compare_constituents(fa, fb)
        assert abs(dphi) == pytest.approx(0.2, abs=1e-6)
        assert ref_amp == pytest.approx(cand_amp, abs=1e-6)

    def test_solver_preserves_forced_constituents(self):
        """The estuary interior must contain the forced frequencies:
        harmonic analysis of a solver series recovers dominant M2/K1
        energy (amplitudes damped by friction, but non-trivial)."""
        from repro.ocean import OceanConfig, RomsLikeModel
        ocean = RomsLikeModel(OceanConfig(nx=14, ny=15, nz=6,
                                          length_x=14_000.0,
                                          length_y=15_000.0))
        st = ocean.spinup(duration=0.5 * DAY)
        snaps, _ = ocean.simulate(st, 6 * 48)   # six days, 30-min output
        times = np.array([s.t for s in snaps])
        wet = ocean.solver.wet
        j, i = np.argwhere(wet)[len(np.argwhere(wet)) // 2]
        series = np.array([s.zeta[j, i] for s in snaps])
        fit = fit_constituents(times, series)
        total_amp = sum(fit.amplitudes.values())
        assert total_amp > 0.05       # tide clearly present
        assert fit.residual_rms < 0.5
