"""Batched forecast engine: batched-vs-serial equivalence and forward counts.

The batched inference stack must be a pure optimisation: every consumer
(ensemble, dual-model, hybrid) must produce the same numbers as the
per-episode path while issuing exactly one model forward per stage.
"""

import numpy as np
import pytest
from conftest import count_forwards

from repro.data import DataLoader, SlidingWindowDataset
from repro.data.dataset import assemble_episode_input, assemble_episode_input_batch
from repro.ocean import OceanConfig, RomsLikeModel
from repro.physics import Verifier
from repro.swin import CoastalSurrogate
from repro.tensor import Tensor, no_grad
from repro.train import Trainer, TrainerConfig
from repro.workflow import (
    DualModelForecaster,
    EnsembleForecaster,
    FieldWindow,
    HybridWorkflow,
    SurrogateForecaster,
)

T = 4


@pytest.fixture(scope="module")
def ocean():
    return RomsLikeModel(OceanConfig(nx=14, ny=15, nz=6,
                                     length_x=14_000.0, length_y=15_000.0))


@pytest.fixture(scope="module")
def reference(ocean):
    """16 true snapshots (4 episodes of T=4) plus episode-start states."""
    st = ocean.spinup(duration=0.25 * 86400.0)
    snaps, states, _ = ocean.simulate_with_states(st, 16, every=T)
    x3, x2 = ocean.stack_fields(snaps)
    window = FieldWindow(
        u3=np.moveaxis(x3[0], -1, 0), v3=np.moveaxis(x3[1], -1, 0),
        w3=np.moveaxis(x3[2], -1, 0), zeta=np.moveaxis(x2[0], -1, 0))
    return window, states


@pytest.fixture(scope="module")
def forecaster(tiny_surrogate_config, tiny_bundle):
    model = CoastalSurrogate(tiny_surrogate_config)
    store = tiny_bundle.open_train()
    norm = tiny_bundle.open_normalizer()
    ds = SlidingWindowDataset(store, norm, window=T, stride=T)
    Trainer(model, TrainerConfig(lr=2e-3)).fit(
        DataLoader(ds, batch_size=1, shuffle=True, seed=0), epochs=2)
    return SurrogateForecaster(model, norm)


def episode_windows(window, n):
    return [FieldWindow(window.u3[k * T:(k + 1) * T].copy(),
                        window.v3[k * T:(k + 1) * T].copy(),
                        window.w3[k * T:(k + 1) * T].copy(),
                        window.zeta[k * T:(k + 1) * T].copy())
            for k in range(n)]


def assert_windows_close(a, b, **kw):
    np.testing.assert_allclose(a.u3, b.u3, **kw)
    np.testing.assert_allclose(a.v3, b.v3, **kw)
    np.testing.assert_allclose(a.w3, b.w3, **kw)
    np.testing.assert_allclose(a.zeta, b.zeta, **kw)


class TestAssembleBatch:
    def test_matches_single(self, rng):
        u = rng.normal(size=(1, T, 8, 9, 3))
        z = rng.normal(size=(1, T, 8, 9))
        x3b, x2b = assemble_episode_input_batch(u, u, u, z, boundary_width=2)
        x3s, x2s = assemble_episode_input(u[0], u[0], u[0], z[0],
                                          boundary_width=2)
        np.testing.assert_array_equal(x3b[0], x3s)
        np.testing.assert_array_equal(x2b[0], x2s)

    def test_batch_items_independent(self, rng):
        u = rng.normal(size=(3, T, 8, 9, 3))
        z = rng.normal(size=(3, T, 8, 9))
        x3b, x2b = assemble_episode_input_batch(u, u, u, z)
        x3s, x2s = assemble_episode_input(u[1], u[1], u[1], z[1])
        np.testing.assert_array_equal(x3b[1], x3s)
        np.testing.assert_array_equal(x2b[1], x2s)


class TestForecastBatch:
    def test_matches_serial(self, forecaster, reference):
        window, _ = reference
        episodes = episode_windows(window, 3)
        batched = forecaster.forecast_batch(episodes)
        for ep, out in zip(episodes, batched):
            serial = forecaster.forecast_episode(ep)
            assert_windows_close(out.fields, serial.fields,
                                 rtol=1e-5, atol=1e-6)

    def test_one_forward_per_batch(self, forecaster, reference):
        window, _ = reference
        episodes = episode_windows(window, 4)
        with count_forwards(forecaster.model) as calls:
            forecaster.forecast_batch(episodes)
        assert calls["n"] == 1

    def test_empty_batch(self, forecaster):
        assert forecaster.forecast_batch([]) == []

    def test_mixed_mesh_raises(self, forecaster, reference):
        window, _ = reference
        a = episode_windows(window, 1)[0]
        b = FieldWindow(a.u3[:, :-1], a.v3[:, :-1], a.w3[:, :-1],
                        a.zeta[:, :-1])
        with pytest.raises(ValueError, match="share one mesh"):
            forecaster.forecast_batch([a, b])

    def test_model_forward_batched_vs_batch1(self, tiny_surrogate, rng):
        """The swin stack at N>1 must equal stacked N=1 forwards."""
        cfg = tiny_surrogate.config
        H, W, D = cfg.mesh
        x3 = rng.normal(size=(2, 3, H, W, D, T)).astype(np.float32)
        x2 = rng.normal(size=(2, 1, H, W, T)).astype(np.float32)
        tiny_surrogate.eval()
        with no_grad():
            y3b, y2b = tiny_surrogate(Tensor(x3), Tensor(x2))
            for n in range(2):
                y3, y2 = tiny_surrogate(Tensor(x3[n:n + 1]),
                                        Tensor(x2[n:n + 1]))
                np.testing.assert_allclose(y3b.data[n], y3.data[0],
                                           rtol=1e-5, atol=1e-6)
                np.testing.assert_allclose(y2b.data[n], y2.data[0],
                                           rtol=1e-5, atol=1e-6)


class TestEnsembleBatched:
    def test_single_forward_and_serial_equivalence(self, forecaster,
                                                   reference, ocean):
        window, _ = reference
        ref = episode_windows(window, 1)[0]
        wet = ocean.solver.wet
        ens = EnsembleForecaster(forecaster, n_members=4, seed=7)

        with count_forwards(forecaster.model) as calls:
            out = ens.forecast(ref, wet=wet)
        assert calls["n"] == 1

        # serial reference: each perturbed member through the batch-1 path
        serial = [forecaster.forecast_episode(ens._perturbed(ref, m, wet))
                  for m in range(ens.n_members)]
        for member, s in zip(out.members, serial):
            assert_windows_close(member, s.fields, rtol=1e-5, atol=1e-6)

        stack = np.stack([s.fields.zeta for s in serial])
        np.testing.assert_allclose(out.mean.zeta, stack.mean(axis=0),
                                   rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(out.spread.zeta, stack.std(axis=0),
                                   rtol=1e-4, atol=1e-6)

        level = float(np.quantile(ref.zeta, 0.9))
        np.testing.assert_allclose(
            out.exceedance_probability(level),
            (stack > level).mean(axis=0), atol=1e-12)


class TestDualModelBatched:
    def test_two_forwards_and_serial_equivalence(self, forecaster,
                                                 reference):
        window, _ = reference
        dual = DualModelForecaster(forecaster, forecaster, coarse_ratio=T)

        with count_forwards(forecaster.model) as calls:
            out = dual.forecast(window)
        # one batched coarse forward + one batched fine forward
        assert calls["n"] == 2
        assert out.fields.T == 16
        assert out.episodes == 5

        # serial reference: the pre-batching rollout, episode by episode
        Tc = forecaster.model.config.time_steps
        sub = slice(0, Tc * T, T)
        coarse_ref = FieldWindow(window.u3[sub], window.v3[sub],
                                 window.w3[sub], window.zeta[sub])
        coarse_out = forecaster.forecast_episode(coarse_ref)
        pieces = []
        for k in range(Tc):
            sl = slice(k * T, (k + 1) * T)
            fine_ref = FieldWindow(window.u3[sl].copy(), window.v3[sl].copy(),
                                   window.w3[sl].copy(),
                                   window.zeta[sl].copy())
            fine_ref.u3[0] = coarse_out.fields.u3[k]
            fine_ref.v3[0] = coarse_out.fields.v3[k]
            fine_ref.w3[0] = coarse_out.fields.w3[k]
            fine_ref.zeta[0] = coarse_out.fields.zeta[k]
            pieces.append(forecaster.forecast_episode(fine_ref).fields)
        serial = FieldWindow.concat(pieces)
        assert_windows_close(out.fields, serial, rtol=1e-5, atol=1e-6)


class TestVerifierBatch:
    def test_matches_single(self, forecaster, reference, ocean):
        window, _ = reference
        verifier = Verifier(ocean.grid, ocean.depth, dt=1800.0)
        episodes = episode_windows(window, 4)
        outs = forecaster.forecast_batch(episodes)
        batch = verifier.verify_batch(
            [o.fields.zeta for o in outs], [o.fields.u3 for o in outs],
            [o.fields.v3 for o in outs])
        for o, vb in zip(outs, batch):
            vs = verifier.verify(o.fields.zeta, o.fields.u3, o.fields.v3)
            assert vb.passed == vs.passed
            assert vb.mean_residual == pytest.approx(vs.mean_residual)
            assert vb.max_residual == pytest.approx(vs.max_residual)
            np.testing.assert_allclose(vb.per_step_mean, vs.per_step_mean)


class TestHybridRunMany:
    @pytest.fixture()
    def workflow(self, forecaster, ocean):
        verifier = Verifier(ocean.grid, ocean.depth, dt=1800.0)
        return HybridWorkflow(forecaster, ocean, verifier)

    def test_matches_run(self, workflow, reference):
        window, states = reference
        half = FieldWindow(window.u3[:8], window.v3[:8],
                           window.w3[:8], window.zeta[:8])
        many = workflow.run_many([window, half], [states, states[:2]])
        single = [workflow.run(window, states),
                  workflow.run(half, states[:2])]
        for (mf, mr), (sf, sr) in zip(many, single):
            assert mr.n_episodes == sr.n_episodes
            assert mr.pass_rate == sr.pass_rate
            assert_windows_close(mf, sf, rtol=1e-5, atol=1e-6)

    def test_batches_across_scenarios(self, workflow, reference):
        window, states = reference
        scenarios = [window, window, window]
        with count_forwards(workflow.forecaster.model) as calls:
            outs = workflow.run_many(scenarios, [states] * 3, threshold=1e6)
        # 4 episode indices, each one batched forward for all 3 scenarios
        assert calls["n"] == 4
        assert all(r.pass_rate == 1.0 for _, r in outs)

    def test_fallback_per_scenario(self, workflow, reference, ocean):
        window, states = reference
        outs = workflow.run_many([window], [states], threshold=1e-12)
        fields, report = outs[0]
        assert report.n_fallbacks == report.n_episodes
        direct = ocean.forecast(states[0], T - 1)
        np.testing.assert_allclose(fields.zeta[1], direct[0].zeta,
                                   atol=1e-10)

    def test_mismatched_lengths_raise(self, workflow, reference):
        window, states = reference
        with pytest.raises(ValueError, match="fallback-state"):
            workflow.run_many([window, window], [states])
