"""Plan-IR optimisation passes: fusion, folding, DCE, batch-shape
bucketing, and tolerance-gated reduced-precision variants.

Two invariants split the file:

* the **structural** passes (fusion / folding / dead-step elimination)
  and the **bucketing** policy replay the exact NumPy expressions of
  the eager path — every result must be bitwise equal to eager, on the
  thread and the process serving backends alike;
* :func:`cast_plan` variants are *not* bitwise and must clear the
  ``compile_reduced`` accuracy gate before the engine serves them — a
  variant that fails the gate is refused and never installed.
"""

import pickle

import numpy as np
import pytest
from conftest import VARS, make_window

from repro.data import Normalizer
from repro.nn import Linear, gelu
from repro.serve import EngineWorkerPool, MicroBatchScheduler
from repro.tensor import PlanExecutor, Tensor, no_grad, trace
from repro.tensor.plan import repack
from repro.tensor.plan_passes import (
    cast_plan,
    eliminate_dead_steps,
    fold_constants,
    fuse_elementwise,
    optimize,
    plan_buckets,
    plan_buckets_from_histogram,
)
from repro.workflow import ForecastEngine
from repro.workflow.engine import PlanAccuracyError


def assert_windows_bitwise(a, b, msg=""):
    for var in VARS:
        np.testing.assert_array_equal(getattr(a, var), getattr(b, var),
                                      err_msg=f"{var} {msg}")


@pytest.fixture()
def norm():
    return Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})


@pytest.fixture(scope="module")
def windows():
    return [make_window(seed) for seed in range(12)]


class TestBucketPolicy:
    def test_powers_of_two_capped_at_max(self):
        assert plan_buckets(1) == (1,)
        assert plan_buckets(2) == (1, 2)
        assert plan_buckets(4) == (1, 2, 4)
        assert plan_buckets(8) == (1, 2, 4, 8)

    def test_non_power_max_batch_is_kept_as_top_bucket(self):
        assert plan_buckets(6) == (1, 2, 4, 6)
        assert plan_buckets(3) == (1, 2, 3)

    def test_invalid_max_batch(self):
        with pytest.raises(ValueError):
            plan_buckets(0)


class TestHistogramBuckets:
    def test_few_sizes_fit_budget_verbatim(self):
        # budget (canonical set size for max 8 = 4) covers 2 sizes
        assert plan_buckets_from_histogram({3: 10, 8: 1}) == (3, 8)

    def test_minimises_pad_rows_under_budget(self):
        # budget 2: {3, 8} pads 3·2=6 rows (the two 5s into 8);
        # {5, 8} would pad 2·100=200 (every 3 into 5) — DP must pick
        # the heavy size as its own bucket
        hist = {3: 100, 5: 2, 8: 1}
        assert plan_buckets_from_histogram(hist, max_plans=2) == (3, 8)

    def test_largest_size_always_kept(self):
        # nothing may fall back to eager: the top size is a bucket
        # even when it was observed once
        got = plan_buckets_from_histogram({2: 1000, 7: 1}, max_plans=1)
        assert got == (7,)

    def test_iterable_input_counts_occurrences(self):
        stream = [3, 3, 3, 5, 8, 3]
        assert plan_buckets_from_histogram(stream) == (3, 5, 8)

    def test_max_batch_joins_candidates(self):
        # a scheduler's full flush stays an exact hit even before one
        # was observed
        got = plan_buckets_from_histogram({3: 10}, max_batch=8)
        assert 8 in got and 3 in got

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_buckets_from_histogram({})
        with pytest.raises(ValueError):
            plan_buckets_from_histogram({0: 5})

    def test_tuned_buckets_pad_less_than_canonical(self):
        # a spiky arrival pattern concentrated on odd sizes: the tuned
        # set beats powers-of-two on expected pad rows
        hist = {3: 50, 6: 30, 12: 5}
        tuned = plan_buckets_from_histogram(hist, max_batch=12,
                                            max_plans=3)

        def pad_rows(buckets):
            total = 0
            for size, count in hist.items():
                bucket = min(b for b in buckets if b >= size)
                total += count * (bucket - size)
            return total

        canonical = plan_buckets(12)
        assert pad_rows(tuned) <= pad_rows(canonical)


def _overlaps(a_lo, a_len, b_lo, b_len):
    return a_lo < b_lo + b_len and b_lo < a_lo + a_len


def assert_arena_packing_sound(plan):
    """Independent liveness check: no two simultaneously-live arena
    buffers (including per-step scratch) may share bytes."""
    last = plan._last_uses()
    group_end = {}
    for sid, spec in enumerate(plan.slots):
        group_end[spec.root] = max(group_end.get(spec.root, -1), last[sid])
    placed = []                     # (sid, offset, nbytes, birth, end)
    for i, step in enumerate(plan.steps):
        ids = list(step.scratch)
        if step.kind == "compute":
            ids.append(step.out)
        for sid in ids:
            spec = plan.slots[sid]
            assert spec.phys is not None, f"slot {sid} unplaced"
            assert spec.phys + spec.nbytes <= plan.arena_total
            placed.append((sid, spec.phys, spec.nbytes, i,
                           group_end[spec.root]))
    for ai, (sa, oa, na, ba, ea) in enumerate(placed):
        for sb, ob, nb, bb, eb in placed[ai + 1:]:
            live_together = ba <= eb and bb <= ea
            if live_together and _overlaps(oa, na, ob, nb):
                raise AssertionError(
                    f"slots {sa} and {sb} overlap while both live")


class TestStructuralPasses:
    def _toy_plan(self):
        lin = Linear(4, 3, rng=np.random.default_rng(0))

        def fn(x):
            h = gelu(lin(x))                 # matmul -> iadd -> gelu
            return (h * 0.25).softmax(axis=-1)

        x = np.random.default_rng(1).normal(size=(5, 4)) \
            .astype(np.float32)
        plan, _ = trace(fn, (x,))
        return plan, fn, x

    def test_fusion_replays_bitwise_and_shrinks_steps(self):
        plan, fn, x = self._toy_plan()
        with no_grad():
            want = fn(Tensor(x)).data
        before = plan.n_steps
        plan, stats = optimize(plan)
        assert stats["steps_after"] < before
        assert sum(stats["fused"].values()) >= 2
        assert "matmul_bias_gelu" in stats["fused"]
        (got,) = PlanExecutor(plan).run((x,))
        assert np.array_equal(got, want)
        assert_arena_packing_sound(plan)

    def test_fold_constants_after_input_freeze(self):
        """The tracer folds const subgraphs at trace time, so the pass
        matters for *rewritten* plans: freeze an input into a constant
        (what a specialisation pass would do) and the step consuming it
        must fold into a frozen plan constant."""
        def fn(x, y):
            return x + y * 2.0

        rng = np.random.default_rng(2)
        x0 = rng.normal(size=(4, 4)).astype(np.float32)
        y0 = rng.normal(size=(4, 4)).astype(np.float32)
        ref_plan, _ = trace(fn, (x0, y0))
        plan, _ = trace(fn, (x0, y0))

        y_slot = plan.inputs[1]
        frozen = y0.copy()
        frozen.flags.writeable = False
        cid = len(plan.const_arrays)
        plan.const_arrays.append(frozen)
        for st in plan.steps:
            st.ins = tuple(("c", cid) if ref == ("s", y_slot) else ref
                           for ref in st.ins)

        assert fold_constants(plan) == 1
        assert eliminate_dead_steps(plan) == 0
        repack(plan)
        x2 = rng.normal(size=(4, 4)).astype(np.float32)
        (want,) = PlanExecutor(ref_plan).run((x2, y0))
        garbage = np.full_like(y0, np.nan)      # frozen: must be ignored
        (got,) = PlanExecutor(plan).run((x2, garbage))
        assert np.array_equal(got, want)

    def test_dce_removes_unreachable_steps(self):
        def fn(x):
            (x * 3.0).sum(axis=0)            # traced but never used
            return x + 1.0

        x = np.random.default_rng(3).normal(size=(4, 4)) \
            .astype(np.float32)
        ref_plan, _ = trace(fn, (x,))
        plan, _ = trace(fn, (x,))
        removed = eliminate_dead_steps(plan)
        assert removed >= 2
        repack(plan)
        assert plan.arena_total <= ref_plan.arena_total
        (want,) = PlanExecutor(ref_plan).run((x,))
        (got,) = PlanExecutor(plan).run((x,))
        assert np.array_equal(got, want)

    def test_dce_refuses_to_kill_live_steps(self):
        plan, _, _ = self._toy_plan()
        assert eliminate_dead_steps(plan) == 0

    def test_fusion_alone_is_a_fixpoint(self):
        plan, _, _ = self._toy_plan()
        fuse_elementwise(plan)
        assert fuse_elementwise(plan) == {}

    def test_optimized_plan_pickle_round_trip(self):
        plan, fn, x = self._toy_plan()
        plan, _ = optimize(plan)
        clone = pickle.loads(pickle.dumps(plan))
        with no_grad():
            want = fn(Tensor(x)).data
        (got,) = PlanExecutor(clone).run((x,))
        assert np.array_equal(got, want)


class TestRealModelFusion:
    def test_fused_model_plan_bitwise_all_batches(self, tiny_surrogate,
                                                  norm, windows):
        eager = ForecastEngine(tiny_surrogate, norm)
        engine = ForecastEngine(tiny_surrogate, norm)   # optimised plans
        engine.compile_buckets(4)
        stats = engine.plan_stats()
        for batch, ps in stats["pass_stats"].items():
            assert ps["steps_after"] < ps["steps_before"], batch
            assert sum(ps["fused"].values()) > 0, batch
        for n in range(1, 5):
            got = engine.forecast_batch(windows[:n])
            want = eager.forecast_batch(windows[:n])
            assert all(r.compiled for r in got)
            assert not any(r.compiled for r in want)
            for g, w in zip(got, want):
                assert_windows_bitwise(g.fields, w.fields, f"n={n}")
        assert engine.plan_stats()["misses"] == 0

    def test_fused_model_plan_arena_packing_sound(self, tiny_surrogate,
                                                  norm):
        engine = ForecastEngine(tiny_surrogate, norm)
        compiled = engine.compile(4)
        assert any(s.scratch for s in compiled.plan.steps)
        assert_arena_packing_sound(compiled.plan)

    def test_fused_bucketed_plan_pickles_bitwise(self, tiny_surrogate,
                                                 norm, windows):
        """The wire format the process pool ships: a fused plan with
        scratch slots must survive pickling and replay bitwise."""
        engine = ForecastEngine(tiny_surrogate, norm)
        compiled = engine.compile(2)
        clone = pickle.loads(pickle.dumps(compiled.plan))
        assert any(s.scratch for s in clone.steps)
        x3d, x2d, _ = engine._prepare_inputs(windows[:2])
        want = PlanExecutor(compiled.plan).run((x3d, x2d))
        got = PlanExecutor(clone).run((x3d, x2d))
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)


class TestBucketedServing:
    def test_scheduler_mixed_sizes_zero_misses(self, tiny_surrogate,
                                               norm, windows):
        eager = ForecastEngine(tiny_surrogate, norm)
        engine = ForecastEngine(tiny_surrogate, norm)
        sched = MicroBatchScheduler(engine, max_batch=4, autostart=False,
                                    warm_plans=True)
        want = {}
        sizes = (1, 3, 2, 4, 1, 2)
        start = 0
        futs = []
        for n in sizes:
            batch = windows[start:start + n]
            start += n
            want[n] = want.get(n, []) + [eager.forecast_batch(batch)]
            for w in batch:
                futs.append((n, sched.submit(w)))
            sched.flush()
        sched.close()
        stats = engine.plan_stats()
        assert stats["misses"] == 0
        assert stats["hits"] == len(sizes)
        assert set(stats["bucket_hits"]) <= set(plan_buckets(4))
        m = sched.metrics
        assert m.plan_batches == len(sizes)
        assert all(b.compiled for b in m.batches)
        got = iter(futs)
        for n in sizes:
            direct = want[n].pop(0)
            for d in direct:
                size, fut = next(got)
                res = fut.result(timeout=1)
                assert res.compiled and size == n
                assert_windows_bitwise(res.fields, d.fields, f"n={n}")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_bucketed_bitwise_both_backends(self, tiny_surrogate,
                                                 norm, windows, backend):
        eager = ForecastEngine(tiny_surrogate, norm)
        truth = {n: eager.forecast_batch(windows[:n])
                 for n in range(1, 5)}
        pool = EngineWorkerPool(
            ForecastEngine(tiny_surrogate, norm), replicas=1,
            backend=backend, max_batch=4, warm_plans=True,
            autostart=False)
        try:
            for n in (1, 3, 2, 4):
                res = pool.forecast_batch(windows[:n])
                assert all(r.compiled for r in res), (backend, n)
                assert all(r.plan_batch in plan_buckets(4) for r in res)
                for g, w in zip(res, truth[n]):
                    assert_windows_bitwise(g.fields, w.fields,
                                           f"{backend} n={n}")
            stats = next(iter(pool.plan_stats().values()))
            assert stats["misses"] == 0
            assert stats["bucket_pad_fraction"] > 0
            m = pool.metrics
            assert m.plan_batches == 4
            assert m.bucket_hits()
            assert 0 < m.bucket_pad_fraction < 1
            assert "bucket_pad_fraction" in m.summary()
        finally:
            pool.close()


class TestReducedPrecision:
    def test_cast_plan_float64_toy_meets_float32_tolerance(self):
        """A float64-traced program casts to genuine float32 storage;
        results drift but stay within single-precision tolerance."""
        w = np.random.default_rng(2).normal(size=(6, 6))

        def fn(x):
            return (gelu(x.matmul(Tensor(w))) * 0.5).softmax(axis=-1)

        x = np.random.default_rng(3).normal(size=(4, 6))
        plan, _ = trace(fn, (x,))
        with no_grad():
            want = fn(Tensor(x)).data
        variant = cast_plan(plan, np.float32)
        assert all(plan.slots[s].dtype == np.float64
                   for s in plan.outputs)
        assert all(variant.slots[s].dtype == np.float32
                   for s in variant.outputs)
        (got,) = PlanExecutor(variant).run(
            (x.astype(np.float32),))
        assert got.dtype == np.float32
        assert not np.array_equal(got.astype(np.float64), want)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_cast_plan_preserves_demanded_float64_accumulation(self):
        def fn(x):
            acc = x.astype(np.float64)
            return ((acc * acc).sum(axis=-1) / 3.0).astype(np.float32)

        x = np.random.default_rng(4).normal(size=(4, 8)) \
            .astype(np.float32)
        plan, _ = trace(fn, (x,))
        variant = cast_plan(plan, np.float32)
        # the slot the trace explicitly widened to float64 keeps its
        # width in the variant — only undemanded storage narrows
        kept = [variant.slots[s.out].dtype for s in variant.steps
                if s.name == "astype"
                and np.dtype(s.consts["dtype"]) == np.float64]
        assert kept and all(dt == np.float64 for dt in kept)
        with no_grad():
            want = fn(Tensor(x)).data
        (got,) = PlanExecutor(variant).run((x,))
        assert got.dtype == want.dtype == np.float32
        np.testing.assert_allclose(got, want, rtol=1e-5)

    def test_cast_plan_rejects_non_float_target(self):
        plan, _ = trace(lambda x: x * 2.0,
                        (np.ones((2, 2), np.float32),))
        with pytest.raises(ValueError, match="float"):
            cast_plan(plan, np.int32)

    def test_engine_float32_variant_passes_gate(self, tiny_surrogate,
                                                norm):
        engine = ForecastEngine(tiny_surrogate, norm)
        compiled = engine.compile_reduced(2, np.float32)
        assert compiled is not None
        stats = engine.plan_stats()
        assert stats["reduced_batches"] == [2]

    def test_engine_refuses_variant_failing_gate(self, tiny_surrogate,
                                                 norm):
        """float16 storage cannot meet an absurdly tight RMSE bound:
        the gate must refuse it and leave nothing installed."""
        engine = ForecastEngine(tiny_surrogate, norm)
        with pytest.raises(PlanAccuracyError):
            engine.compile_reduced(2, np.float16, tol_rmse=1e-12)
        assert engine.plan_stats()["reduced_batches"] == []

    def test_engine_float16_variant_with_loose_tolerance(self,
                                                         tiny_surrogate,
                                                         norm):
        engine = ForecastEngine(tiny_surrogate, norm)
        engine.compile_reduced(2, np.float16, tol_rmse=0.5)
        assert engine.plan_stats()["reduced_batches"] == [2]
