"""Multi-head self-attention: shapes, masking, gradients, invariances."""

import numpy as np
import pytest

from repro.nn import MultiHeadSelfAttention
from repro.tensor import Tensor


@pytest.fixture()
def attn():
    return MultiHeadSelfAttention(dim=16, num_heads=4)


class TestAttention:
    def test_shape_preserved(self, attn, rng):
        x = Tensor(rng.normal(size=(3, 7, 16)).astype(np.float32))
        assert attn(x).shape == (3, 7, 16)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=10, num_heads=3)

    def test_gradients_flow(self, attn, rng):
        x = Tensor(rng.normal(size=(2, 5, 16)).astype(np.float32),
                   requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in attn.parameters())

    def test_full_negative_mask_blocks_offdiagonal(self, rng):
        """With everything but self-attention masked, each token's output
        depends only on itself."""
        attn = MultiHeadSelfAttention(dim=8, num_heads=2)
        n = 4
        mask = np.full((1, 1, n, n), -1e4, dtype=np.float32)
        mask[..., np.arange(n), np.arange(n)] = 0.0
        x = rng.normal(size=(1, n, 8)).astype(np.float32)
        base = attn(Tensor(x), mask=mask).data.copy()
        # perturb token 3 — tokens 0..2 must be unaffected
        x2 = x.copy()
        x2[0, 3] += 1.0
        out = attn(Tensor(x2), mask=mask).data
        np.testing.assert_allclose(out[0, :3], base[0, :3], atol=1e-5)
        assert np.abs(out[0, 3] - base[0, 3]).max() > 1e-4

    def test_permutation_equivariance(self, rng):
        """Unmasked MSA is equivariant to token permutations."""
        attn = MultiHeadSelfAttention(dim=8, num_heads=2)
        x = rng.normal(size=(1, 6, 8)).astype(np.float32)
        perm = np.random.default_rng(0).permutation(6)
        out = attn(Tensor(x)).data
        out_p = attn(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_p, atol=1e-5)

    def test_mask_broadcasts_over_heads(self, attn, rng):
        x = Tensor(rng.normal(size=(2, 5, 16)).astype(np.float32))
        mask = np.zeros((1, 1, 5, 5), dtype=np.float32)
        out = attn(x, mask=mask)
        np.testing.assert_allclose(out.data, attn(x).data, atol=1e-6)

    def test_dropout_only_in_training(self, rng):
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, attn_drop=0.5,
                                      proj_drop=0.5)
        x = Tensor(rng.normal(size=(1, 4, 8)).astype(np.float32))
        attn.eval()
        a = attn(x).data
        b = attn(x).data
        np.testing.assert_array_equal(a, b)  # deterministic in eval

    def test_single_token_attends_to_itself(self, rng):
        attn = MultiHeadSelfAttention(dim=8, num_heads=1)
        x = Tensor(rng.normal(size=(1, 1, 8)).astype(np.float32))
        out = attn(x)
        assert out.shape == (1, 1, 8)
        assert np.isfinite(out.data).all()
