"""Shallow-water solver: conservation, stability, boundary behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ocean import (
    SWEConfig,
    ShallowWaterSolver,
    TidalForcing,
    cfl_number,
    energy,
    make_charlotte_grid,
    synth_estuary_bathymetry,
    volume_budget,
    wet_mask,
)


@pytest.fixture(scope="module")
def closed_solver():
    """No forcing, no river, no sponge: a strictly closed basin."""
    g = make_charlotte_grid(20, 24, 20_000.0, 24_000.0)
    h = synth_estuary_bathymetry(g)
    cfg = SWEConfig(river_discharge=0.0, sponge_strength=0.0)
    return ShallowWaterSolver(g, h, forcing=None, config=cfg)


@pytest.fixture(scope="module")
def forced_solver():
    g = make_charlotte_grid(20, 24, 20_000.0, 24_000.0)
    h = synth_estuary_bathymetry(g)
    return ShallowWaterSolver(g, h, TidalForcing(), SWEConfig())


def _perturbed_state(solver, rng, amp=0.05):
    st = solver.initial_state()
    st.zeta[solver.wet] = amp * rng.normal(size=int(solver.wet.sum()))
    return st


class TestSetup:
    def test_depth_shape_validated(self):
        g = make_charlotte_grid(10, 10, 1e4, 1e4)
        with pytest.raises(ValueError, match="depth shape"):
            ShallowWaterSolver(g, np.ones((5, 5)))

    def test_wet_mask_excludes_land(self, closed_solver):
        assert closed_solver.wet.sum() < closed_solver.wet.size
        assert closed_solver.wet.sum() > 0

    def test_dt_respects_cfl(self, closed_solver):
        st = closed_solver.initial_state()
        assert cfl_number(closed_solver, st) <= 1.0

    def test_closed_faces_have_no_flow(self, closed_solver, rng):
        st = _perturbed_state(closed_solver, rng)
        st = closed_solver.step(st)
        assert np.all(st.u[~closed_solver.u_open] == 0.0)
        assert np.all(st.v[~closed_solver.v_open] == 0.0)

    def test_land_cells_stay_zero(self, forced_solver):
        st = forced_solver.initial_state()
        for _ in range(20):
            st = forced_solver.step(st)
        assert np.all(st.zeta[~forced_solver.wet] == 0.0)


class TestConservation:
    def test_one_step_volume_budget_closes(self, closed_solver, rng):
        s0 = _perturbed_state(closed_solver, rng)
        s1 = closed_solver.step(s0)
        vb = volume_budget(closed_solver, s0, s1)
        assert vb.relative_residual < 1e-9

    def test_closed_basin_volume_constant_long_run(self, closed_solver, rng):
        s = _perturbed_state(closed_solver, rng)
        v0 = closed_solver.total_volume(s)
        for _ in range(200):
            s = closed_solver.step(s)
        v1 = closed_solver.total_volume(s)
        assert abs(v1 - v0) / v0 < 1e-12

    def test_river_adds_exact_volume(self, rng):
        g = make_charlotte_grid(20, 24, 20_000.0, 24_000.0)
        h = synth_estuary_bathymetry(g)
        cfg = SWEConfig(river_discharge=500.0, sponge_strength=0.0)
        solver = ShallowWaterSolver(g, h, forcing=None, config=cfg)
        s = solver.initial_state()
        v0 = solver.total_volume(s)
        n = 50
        for _ in range(n):
            s = solver.step(s)
        v1 = solver.total_volume(s)
        np.testing.assert_allclose(v1 - v0, 500.0 * n * solver.dt, rtol=1e-9)

    @given(st.floats(0.01, 0.10), st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_volume_conservation_property(self, amp, steps):
        """Conservation holds for any perturbation amplitude/duration."""
        g = make_charlotte_grid(12, 14, 12_000.0, 14_000.0)
        h = synth_estuary_bathymetry(g)
        cfg = SWEConfig(river_discharge=0.0, sponge_strength=0.0)
        solver = ShallowWaterSolver(g, h, forcing=None, config=cfg)
        rng = np.random.default_rng(42)
        s = solver.initial_state()
        s.zeta[solver.wet] = amp * rng.normal(size=int(solver.wet.sum()))
        v0 = solver.total_volume(s)
        for _ in range(steps):
            s = solver.step(s)
        assert abs(solver.total_volume(s) - v0) / v0 < 1e-11


class TestDynamics:
    def test_gravity_wave_spreads_disturbance(self, closed_solver):
        """A local bump must radiate outward at finite speed."""
        s = closed_solver.initial_state()
        wet = closed_solver.wet
        jj, ii = np.argwhere(wet)[len(np.argwhere(wet)) // 2]
        s.zeta[jj, ii] = 0.3
        far_mask = wet.copy()
        far_mask[max(jj - 3, 0):jj + 4, max(ii - 3, 0):ii + 4] = False
        s1 = closed_solver.step(s)
        # immediately after one short step the far field is untouched
        assert np.abs(s1.zeta[far_mask]).max() < 1e-12
        for _ in range(300):
            s1 = closed_solver.step(s1)
        assert np.abs(s1.zeta[far_mask]).max() > 1e-6

    def test_friction_damps_energy_in_closed_basin(self, closed_solver, rng):
        s = _perturbed_state(closed_solver, rng, amp=0.1)
        for _ in range(50):
            s = closed_solver.step(s)
        e_mid = energy(closed_solver, s)["total"]
        for _ in range(2000):
            s = closed_solver.step(s)
        e_end = energy(closed_solver, s)["total"]
        assert e_end < e_mid

    def test_tide_enters_through_boundary(self, forced_solver):
        s = forced_solver.initial_state()
        for _ in range(500):
            s = forced_solver.step(s)
        # interior surface must respond to the forcing (nonzero signal)
        interior = s.zeta[:, forced_solver.cfg.sponge_cells + 2:]
        wet_int = forced_solver.wet[:, forced_solver.cfg.sponge_cells + 2:]
        assert np.abs(interior[wet_int]).max() > 0.01

    def test_velocities_remain_physical(self, forced_solver):
        """Long tidal run stays bounded (no numerical blow-up)."""
        s = forced_solver.initial_state()
        for _ in range(3000):
            s = forced_solver.step(s)
        assert np.abs(s.u).max() < 3.0       # m/s — estuarine currents
        assert np.abs(s.zeta).max() < 2.0    # m — tidal range bound
        assert np.isfinite(s.zeta).all()

    def test_advection_option_stable(self, rng):
        g = make_charlotte_grid(14, 16, 14_000.0, 16_000.0)
        h = synth_estuary_bathymetry(g)
        solver = ShallowWaterSolver(g, h, TidalForcing(),
                                    SWEConfig(advection=True))
        s = solver.initial_state()
        for _ in range(500):
            s = solver.step(s)
        assert np.isfinite(s.zeta).all()
        assert np.abs(s.u).max() < 5.0

    def test_run_advances_time(self, forced_solver):
        s = forced_solver.initial_state()
        out = forced_solver.run(s, 600.0)
        n = max(1, int(round(600.0 / forced_solver.dt)))
        np.testing.assert_allclose(out.t, s.t + n * forced_solver.dt)


class TestCoriolis:
    def test_f_positive_northern_hemisphere(self):
        assert SWEConfig().coriolis_f > 0

    def test_f_scales_with_latitude(self):
        low = SWEConfig(latitude_deg=10.0).coriolis_f
        high = SWEConfig(latitude_deg=60.0).coriolis_f
        assert high > low


class TestBathymetry:
    def test_wet_mask_helper(self):
        h = np.array([[1.0, -1.0], [0.0, 2.0]])
        np.testing.assert_array_equal(
            wet_mask(h), [[True, False], [False, True]])

    def test_estuary_has_inlets(self):
        g = make_charlotte_grid(40, 60, 40_000.0, 60_000.0)
        h = synth_estuary_bathymetry(g)
        # a barrier column must contain both land and deep inlet water
        from repro.ocean.bathymetry import BathymetryConfig
        bx = int(BathymetryConfig().barrier_x_frac * g.nx)
        col = h[:, bx]
        assert (col < 0).any(), "barrier island missing"
        assert (col > 5.0).any(), "inlet channel missing"

    def test_bathymetry_deterministic(self):
        g = make_charlotte_grid(20, 20, 2e4, 2e4)
        np.testing.assert_array_equal(synth_estuary_bathymetry(g),
                                      synth_estuary_bathymetry(g))
