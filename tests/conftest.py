"""Shared fixtures: a tiny estuary, tiny archives, tiny surrogate.

Session-scoped so expensive setup (solver spin-up, archive generation)
runs once.  All sizes are the smallest that still exercise every code
path: two patch mergings, shifted windows, multi-episode stores.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest

from repro.data import SlidingWindowDataset, build_archives
from repro.ocean import (
    OceanConfig,
    RomsLikeModel,
    ShallowWaterSolver,
    SWEConfig,
    TidalForcing,
    make_charlotte_grid,
    synth_estuary_bathymetry,
)
from repro.swin import CoastalSurrogate, SurrogateConfig

# ----------------------------------------------------------------------
# geometry / solver fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def tiny_grid():
    """14×15 cell grid (~1 km spacing) — smallest realistic estuary."""
    return make_charlotte_grid(nx=14, ny=15, length_x=14_000.0,
                               length_y=15_000.0)


@pytest.fixture(scope="session")
def tiny_depth(tiny_grid):
    return synth_estuary_bathymetry(tiny_grid)


@pytest.fixture(scope="session")
def tiny_solver(tiny_grid, tiny_depth):
    return ShallowWaterSolver(tiny_grid, tiny_depth, TidalForcing(),
                              SWEConfig())


@pytest.fixture(scope="session")
def tiny_ocean_config():
    return OceanConfig(nx=14, ny=15, nz=6, length_x=14_000.0,
                       length_y=15_000.0)


@pytest.fixture(scope="session")
def tiny_ocean(tiny_ocean_config):
    return RomsLikeModel(tiny_ocean_config)


# ----------------------------------------------------------------------
# data fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def tiny_bundle(tmp_path_factory, tiny_ocean_config):
    """Archives: half a training day + a quarter test day of snapshots."""
    root = tmp_path_factory.mktemp("archives")
    return build_archives(root, tiny_ocean_config,
                          train_days=0.5, test_days=0.25,
                          spinup_days=0.25)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_bundle):
    store = tiny_bundle.open_train()
    norm = tiny_bundle.open_normalizer()
    return SlidingWindowDataset(store, norm, window=4, stride=2,
                                pad_multiple=(4, 4))


# ----------------------------------------------------------------------
# model fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def tiny_surrogate_config():
    """Mesh 16×16×6 (padded from 15×14), T=4, two mergings."""
    return SurrogateConfig(
        mesh=(16, 16, 6), time_steps=4,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=8, num_heads=(2, 4, 8), depths=(2, 2, 2),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
    )


@pytest.fixture(scope="session")
def tiny_surrogate(tiny_surrogate_config):
    return CoastalSurrogate(tiny_surrogate_config)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------


@contextmanager
def count_forwards(model):
    """Count calls to ``model.forward`` via an instance-level wrapper."""
    counter = {"n": 0}
    orig = model.forward

    def wrapped(*args, **kwargs):
        counter["n"] += 1
        return orig(*args, **kwargs)

    object.__setattr__(model, "forward", wrapped)
    try:
        yield counter
    finally:
        object.__delattr__(model, "forward")
