"""Shared fixtures: a tiny estuary, tiny archives, tiny surrogate.

Session-scoped so expensive setup (solver spin-up, archive generation)
runs once.  All sizes are the smallest that still exercise every code
path: two patch mergings, shifted windows, multi-episode stores.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest

from dataclasses import replace

from repro.data import Normalizer, SlidingWindowDataset, build_archives
from repro.ocean import (
    OceanConfig,
    RomsLikeModel,
    ShallowWaterSolver,
    SWEConfig,
    TidalForcing,
    make_charlotte_grid,
    synth_estuary_bathymetry,
)
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.workflow import ForecastEngine
from repro.workflow.engine import FieldWindow

# ----------------------------------------------------------------------
# geometry / solver fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def tiny_grid():
    """14×15 cell grid (~1 km spacing) — smallest realistic estuary."""
    return make_charlotte_grid(nx=14, ny=15, length_x=14_000.0,
                               length_y=15_000.0)


@pytest.fixture(scope="session")
def tiny_depth(tiny_grid):
    return synth_estuary_bathymetry(tiny_grid)


@pytest.fixture(scope="session")
def tiny_solver(tiny_grid, tiny_depth):
    return ShallowWaterSolver(tiny_grid, tiny_depth, TidalForcing(),
                              SWEConfig())


@pytest.fixture(scope="session")
def tiny_ocean_config():
    return OceanConfig(nx=14, ny=15, nz=6, length_x=14_000.0,
                       length_y=15_000.0)


@pytest.fixture(scope="session")
def tiny_ocean(tiny_ocean_config):
    return RomsLikeModel(tiny_ocean_config)


# ----------------------------------------------------------------------
# data fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def tiny_bundle(tmp_path_factory, tiny_ocean_config):
    """Archives: half a training day + a quarter test day of snapshots."""
    root = tmp_path_factory.mktemp("archives")
    return build_archives(root, tiny_ocean_config,
                          train_days=0.5, test_days=0.25,
                          spinup_days=0.25)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_bundle):
    store = tiny_bundle.open_train()
    norm = tiny_bundle.open_normalizer()
    return SlidingWindowDataset(store, norm, window=4, stride=2,
                                pad_multiple=(4, 4))


# ----------------------------------------------------------------------
# model fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def tiny_surrogate_config():
    """Mesh 16×16×6 (padded from 15×14), T=4, two mergings."""
    return SurrogateConfig(
        mesh=(16, 16, 6), time_steps=4,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=8, num_heads=(2, 4, 8), depths=(2, 2, 2),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
    )


@pytest.fixture(scope="session")
def tiny_surrogate(tiny_surrogate_config):
    return CoastalSurrogate(tiny_surrogate_config)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


# ----------------------------------------------------------------------
# serving fixtures: the tiny-mesh window/engine factory every serve,
# scenario, and operations test shares.  Session-scoped where bitwise-
# safe: engines are read-only during inference and windows are never
# mutated by consumers (schedulers stack copies).
# ----------------------------------------------------------------------

T = 4
H, W, D = 15, 14, 6          # serving wire mesh (padded to 16×16 inside)
VARS = ("u3", "v3", "w3", "zeta")


def make_window(seed, t=T, h=H, w=W, d=D):
    r = np.random.default_rng(seed)
    return FieldWindow(r.normal(size=(t, h, w, d)),
                       r.normal(size=(t, h, w, d)),
                       r.normal(size=(t, h, w, d)),
                       r.normal(size=(t, h, w)))


def assert_windows_equal(a, b):
    for var in VARS:
        np.testing.assert_array_equal(getattr(a, var), getattr(b, var))


@pytest.fixture(scope="session")
def identity_norm():
    return Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})


@pytest.fixture(scope="session")
def engine(tiny_surrogate, identity_norm):
    """The shared serving engine over the session surrogate."""
    return ForecastEngine(tiny_surrogate, identity_norm)


@pytest.fixture(scope="session")
def windows():
    return [make_window(seed) for seed in range(12)]


@pytest.fixture(scope="session")
def engine_factory(tiny_surrogate_config, identity_norm):
    """Build fresh tiny engines: ``init_seed`` re-seeds the weight
    init, ``perturb`` adds seeded noise to the weights — either forces
    two engines numerically apart (hot-swap/version-pinning tests)."""
    def build(init_seed=0, perturb=None, scale=0.05):
        cfg = tiny_surrogate_config if init_seed == 0 \
            else replace(tiny_surrogate_config, seed=init_seed)
        model = CoastalSurrogate(cfg)
        if perturb is not None:
            r = np.random.default_rng(perturb)
            state = {k: v + r.normal(scale=scale, size=v.shape)
                     .astype(v.dtype)
                     for k, v in model.state_dict().items()}
            model.load_state_dict(state)
        return ForecastEngine(model, identity_norm)
    return build


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------


@contextmanager
def count_forwards(model):
    """Count calls to ``model.forward`` via an instance-level wrapper."""
    counter = {"n": 0}
    orig = model.forward

    def wrapped(*args, **kwargs):
        counter["n"] += 1
        return orig(*args, **kwargs)

    object.__setattr__(model, "forward", wrapped)
    try:
        yield counter
    finally:
        object.__delattr__(model, "forward")
