"""Host execution tier: equivalence, pipelining, failure model.

The host backend must be invisible from above, exactly like the
process tier: bitwise-equal results for every routing policy and
across a live deploy, on BOTH fabrics (the deterministic sim fabric
and the real TCP-loopback wire).  Its perf claim — pipelined framing —
must be observable (``inflight_depth`` ≥ 2 with results still
bitwise), and its failure model explicit: a killed remote fails every
in-flight handle with a :class:`ProcessWorkerDied` subclass and the
pool retires the replica; corrupt frames mark the worker dead rather
than hanging the reaper.
"""

import time

import numpy as np
import pytest

from repro.serve import (
    DeploymentError,
    EngineWorkerPool,
    HostWorker,
    HostWorkerDied,
    HostWorkerError,
    ProcessWorkerDied,
)
from repro.tensor.plan_passes import plan_buckets

from conftest import assert_windows_equal     # noqa: F401 — shared helper
from test_serve_procpool import (             # noqa: F401 — shared idiom
    assert_pool_batches_bitwise,
    assert_results_equal,
    map_submissions,
    second_model,
)

# any cleanup/resource warning during these tests is a failure
pytestmark = pytest.mark.filterwarnings("error::UserWarning")

FABRICS = ["sim", "socket"]


def wait_until(predicate, timeout=30.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


# ----------------------------------------------------------------------
# single worker: transport equivalence + pipelining
# ----------------------------------------------------------------------
class TestHostWorker:
    @pytest.mark.parametrize("fabric", FABRICS)
    def test_bitwise_equal_and_lifecycle(self, engine, windows, fabric):
        direct_eager = engine.forecast_batch(windows[:5])
        with HostWorker(engine, fabric=fabric,
                        warm_batches=(2,)) as worker:
            assert worker.time_steps == engine.time_steps
            assert 2 in worker.compiled_batches
            # warm-up compiled batch 2 locally too: same plan both sides
            direct_plan = engine.forecast_batch(windows[:2])
            # eager fallback on the remote: same numbers
            served = worker.forecast_batch(windows[:5])
            assert_results_equal(direct_eager, served)
            assert not served[0].compiled
            # compiled path: same numbers, flagged compiled
            served = worker.forecast_batch(windows[:2])
            assert_results_equal(direct_plan, served)
            assert served[0].compiled
            assert served[0].plan_batch == direct_plan[0].plan_batch
            # the wire is observable: frames counted, overhead timed
            stats = worker.transport_stats()
            assert stats["backend"] == "host"
            assert stats["fabric"] == fabric
            assert stats["batches"] == 2
            assert stats["frame_bytes"] > 0
            assert stats["net_wait_s"] >= 0
            assert stats["payload_bytes"] > 0
            assert stats["spawn_seconds"] > 0
            # no shared memory anywhere in this tier
            assert worker.segment_names() == []
        assert not worker.alive

    def test_sim_fabric_accounts_wire_bytes(self, engine, windows):
        """Sim-fabric wire totals flow through the shared SimComm —
        the same accounting the halo-exchange tests rely on."""
        with HostWorker(engine, fabric="sim") as worker:
            worker.forecast_batch(windows[:2])
            assert worker.comm.bytes_sent > 0
            # both directions of the rank 0 ↔ 1 pair moved frames
            assert worker.comm.per_pair[(0, 1)] > 0
            assert worker.comm.per_pair[(1, 0)] > 0

    @pytest.mark.parametrize("fabric", FABRICS)
    def test_pipelined_submits_overlap_and_stay_bitwise(
            self, engine, windows, fabric):
        """The pipelining claim: several batches in flight on one
        connection (depth ≥ 2 actually reached), every result still
        bitwise and matched to the right request."""
        with HostWorker(engine, fabric=fabric,
                        warm_batches=(2,)) as worker:
            batches = [windows[i:i + 2] for i in range(8)]
            handles = [worker.submit_batch(b) for b in batches]
            for batch, handle in zip(batches, handles):
                assert_results_equal(engine.forecast_batch(batch),
                                     handle.result(timeout=120))
            stats = worker.transport_stats()
            assert stats["inflight_depth"] >= 2, \
                "pipelining never overlapped two batches"
            assert stats["batches"] == len(batches)

    def test_empty_batch_short_circuits(self, engine):
        with HostWorker(engine, fabric="sim") as worker:
            handle = worker.submit_batch([])
            assert handle.done() and handle.result(timeout=0) == []
            assert worker.transport_stats()["batches"] == 0

    def test_remote_compile_rpc(self, engine, windows):
        with HostWorker(engine, fabric="sim") as worker:
            worker.compile(3)
            assert 3 in worker.compiled_batches
            served = worker.forecast_batch(windows[:3])
            assert served[0].compiled
            assert_results_equal(engine.forecast_batch(windows[:3]),
                                 served)
            stats = worker.plan_stats()
            assert 3 in stats["batches"]
            assert stats["transport"]["backend"] == "host"

    def test_remote_compile_buckets_histogram(self, engine_factory,
                                              windows):
        """A histogram-tuned bucket set compiles remotely and observed
        sizes become exact plan hits (padded_rows 0)."""
        local = engine_factory()
        with HostWorker(local, fabric="sim") as worker:
            worker.compile_buckets(max_batch=8,
                                   histogram={3: 10, 8: 1})
            assert {3, 8} <= set(worker.compiled_batches)
            served = worker.forecast_batch(windows[:3])
            assert served[0].compiled and served[0].plan_batch == 3

    def test_needs_a_real_engine(self):
        class NotAnEngine:
            time_steps = 4

        with pytest.raises(TypeError, match="ForecastEngine-like"):
            HostWorker(NotAnEngine(), fabric="sim")

    def test_unknown_fabric_rejected(self, engine):
        with pytest.raises(ValueError, match="unknown fabric"):
            HostWorker(engine, fabric="carrier-pigeon")

    @pytest.mark.parametrize("fabric", FABRICS)
    def test_killed_remote_fails_inflight_not_hangs(self, engine,
                                                    windows, fabric):
        """The mirrored fault: SIGKILL to the socket child, endpoint
        teardown for the sim rank — in-flight handles must fail with a
        ProcessWorkerDied subclass, on_death fires exactly once, and
        subsequent requests fail fast."""
        deaths = []
        worker = HostWorker(engine, fabric=fabric, heartbeat_s=0.3,
                            on_death=deaths.append)
        try:
            handles = [worker.submit_batch(windows[i:i + 2])
                       for i in range(3)]
            worker.kill()
            for handle in handles:
                with pytest.raises(ProcessWorkerDied):
                    handle.result(timeout=30)
            assert wait_until(lambda: not worker.alive)
            # on_death fires after the handles fail; allow the beat
            assert wait_until(lambda: bool(deaths))
            assert deaths == [worker]
            # every later request fails fast, no transport attempt
            with pytest.raises(HostWorkerDied):
                worker.forecast_batch(windows[:2])
            assert deaths == [worker]
        finally:
            worker.close()

    def test_corrupt_frame_marks_worker_dead(self, engine, windows):
        """Garbage injected into the client's receive stream (the sim
        remote's send side) must kill the worker explicitly — corrupt
        framing is unrecoverable, never a hang."""
        worker = HostWorker(engine, fabric="sim", heartbeat_s=0.0)
        try:
            worker._remote_ep.send_frame(b"GARBAGE-NOT-A-FRAME")
            assert wait_until(lambda: not worker.alive, timeout=10.0)
            with pytest.raises(HostWorkerDied, match="corrupt frame"):
                worker.forecast_batch(windows[:1])
        finally:
            worker.close()

    def test_remote_request_error_keeps_worker_alive(self, engine):
        """A bad request fails its own handle with the remote
        traceback; the worker keeps serving."""
        from conftest import make_window
        with HostWorker(engine, fabric="sim") as worker:
            bad = [make_window(0, t=2)]   # wrong T: remote raises
            with pytest.raises(HostWorkerError):
                worker.forecast_batch(bad)
            assert worker.alive
            # and a good batch still serves
            assert worker.forecast_batch([make_window(1)])

    def test_heartbeat_deadline_detects_silent_death(self, engine):
        """With heartbeats on, a remote that stops talking (without a
        clean close) is declared dead by deadline."""
        worker = HostWorker(engine, fabric="sim", heartbeat_s=0.1)
        try:
            # a silent partition: the remote's frames stop arriving
            # (dropped on the floor), without a clean close
            worker._remote_ep.send_frame = lambda data: None
            assert wait_until(lambda: not worker.alive, timeout=10.0)
            assert "no heartbeat" in worker._death_reason
        finally:
            worker.close()


# ----------------------------------------------------------------------
# reduced-precision routing (satellite: serve_reduced knob)
# ----------------------------------------------------------------------
class TestServeReduced:
    def test_off_by_default_and_bitwise(self, engine_factory, windows):
        local = engine_factory()
        local.compile_reduced(2, np.float32)
        with HostWorker(local, fabric="sim") as worker:
            served = worker.forecast_batch(windows[:2])
            assert not served[0].reduced
            local.serve_reduced = False
            assert_results_equal(local.forecast_batch(windows[:2]),
                                 served)

    def test_opt_in_routes_to_reduced_variant(self, engine_factory,
                                              windows):
        local = engine_factory()
        local.compile_reduced(2, np.float32)
        with HostWorker(local, fabric="sim",
                        serve_reduced=True) as worker:
            served = worker.forecast_batch(windows[:2])
            assert served[0].reduced and served[0].compiled
            stats = worker.plan_stats()
            assert stats["reduced_hits"] >= 1
            assert stats["serve_reduced"] is True

    def test_thread_pool_reduced_metric(self, engine_factory, windows):
        local = engine_factory()
        local.compile_reduced(2, np.float32)
        with EngineWorkerPool(local, replicas=1, max_batch=2,
                              max_wait=10.0, autostart=False,
                              serve_reduced=True) as pool:
            futs = [pool.submit(w) for w in windows[:4]]
            pool.flush()
            assert all(f.result(timeout=30) for f in futs)
            assert pool.metrics.summary()["reduced_batches"] >= 1


# ----------------------------------------------------------------------
# pool integration: every policy, hot swap, rollback, death
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fabric", FABRICS)
@pytest.mark.parametrize("router", ["round-robin", "least-outstanding",
                                    "key-affinity"])
def test_pool_host_backend_bitwise(engine, windows, router, fabric):
    with EngineWorkerPool(engine, replicas=2, max_batch=2,
                          max_wait=10.0, autostart=False,
                          backend="host", fabric=fabric,
                          router=router) as pool:
        keys = [f"scenario-{i % 3}" for i in range(len(windows))]
        placed = map_submissions(pool, windows, keys)
        pool.flush()
        assert_pool_batches_bitwise(pool, placed, {1: engine})
        summary = pool.metrics.summary()
        assert summary["requests"] == len(windows)
        assert summary["frame_bytes"] > 0
        assert summary["net_wait_s"] >= 0
        assert summary["spawn_seconds_mean"] > 0


@pytest.mark.parametrize("fabric", FABRICS)
def test_pool_host_deploy_hot_swap_bitwise(engine, windows, fabric):
    engine_v2 = engine.with_model(second_model(engine))
    pool = EngineWorkerPool(engine, replicas=2, max_batch=2,
                            max_wait=10.0, autostart=False,
                            backend="host", fabric=fabric,
                            router="round-robin")
    try:
        placed = map_submissions(pool, windows[:4])
        pool.deploy(engine_v2, source="hot-swap")
        placed += map_submissions(pool, windows[4:8])
        pool.flush()
        assert_pool_batches_bitwise(pool, placed,
                                    {1: engine, 2: engine_v2})
        assert {f.engine_version for f, _ in placed} == {1, 2}
    finally:
        pool.close()
    assert all(not w.executor.alive for w in pool._all_workers()
               if w.executor is not None and w.executor is not w.engine)


@pytest.mark.parametrize("fabric", FABRICS)
def test_pool_host_deploy_rollback(engine, windows, fabric,
                                   monkeypatch):
    """A surge that dies mid-deploy rolls back to the admitting
    version with the full replica set serving — on either fabric."""
    engine_v2 = engine.with_model(second_model(engine))
    pool = EngineWorkerPool(engine, replicas=2, max_batch=2,
                            max_wait=10.0, autostart=False,
                            backend="host", fabric=fabric,
                            router="round-robin")
    try:
        make_worker = pool._make_worker
        calls = {"n": 0}

        def flaky(engine_, version):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("surge failed")
            return make_worker(engine_, version)

        monkeypatch.setattr(pool, "_make_worker", flaky)
        with pytest.raises(DeploymentError):
            pool.deploy(engine_v2, source="doomed")
        monkeypatch.setattr(pool, "_make_worker", make_worker)
        assert pool.current_version == 1
        assert sum(not w.draining for w in pool.workers) == 2
        placed = map_submissions(pool, windows[:4])
        pool.flush()
        assert_pool_batches_bitwise(pool, placed, {1: engine})
    finally:
        pool.close()


@pytest.mark.parametrize("fabric", FABRICS)
def test_pool_host_death_fails_batch_and_retires_worker(
        engine, windows, fabric):
    pool = EngineWorkerPool(engine, replicas=2, max_batch=2,
                            max_wait=10.0, autostart=False,
                            backend="host", fabric=fabric,
                            router="round-robin")
    try:
        victim = pool.workers[0]
        futures = [pool.submit(w) for w in windows[:2]]
        victim_futs = [f for f in futures
                       if f.worker_id == victim.worker_id]
        assert victim_futs, "round-robin should hit worker 0"
        victim.executor.kill()
        pool.flush()
        for fut in victim_futs:
            with pytest.raises(ProcessWorkerDied):
                fut.result(timeout=30)
        assert wait_until(lambda: len(pool.workers) == 1)
        kinds = [e.kind for e in pool.events]
        assert "worker-death" in kinds and "worker-retired" in kinds
        # the survivor keeps serving, bitwise
        placed = map_submissions(pool, windows[4:8])
        pool.flush()
        assert_pool_batches_bitwise(pool, placed, {1: engine})
    finally:
        pool.close()


def test_pool_host_warm_plans_ship_at_spawn(engine, windows):
    with EngineWorkerPool(engine, replicas=1, max_batch=4,
                          max_wait=10.0, autostart=False,
                          backend="host", fabric="sim",
                          warm_plans=True) as pool:
        worker = pool.workers[0].executor
        assert set(plan_buckets(4)) <= set(worker.compiled_batches)
        futs = [pool.submit(w) for w in windows[:3]]
        pool.flush()
        results = [f.result(timeout=30) for f in futs]
        assert all(r.compiled for r in results)


def test_pool_rejects_unknown_fabric(engine):
    with pytest.raises(ValueError, match="fabric"):
        EngineWorkerPool(engine, replicas=1, backend="host",
                         fabric="telegraph")
