"""Autograd engine: every adjoint verified against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import (
    Tensor,
    concatenate,
    gradcheck,
    no_grad,
    stack,
    unbroadcast,
    where,
)


def _arr(rng, *shape):
    return rng.normal(size=shape)


# ----------------------------------------------------------------------
# elementwise arithmetic
# ----------------------------------------------------------------------
class TestArithmetic:
    def test_add(self, rng):
        gradcheck(lambda a, b: a + b, [_arr(rng, 3, 4), _arr(rng, 3, 4)])

    def test_add_broadcast(self, rng):
        gradcheck(lambda a, b: a + b, [_arr(rng, 3, 4), _arr(rng, 4)])

    def test_add_scalar(self, rng):
        gradcheck(lambda a: a + 2.5, [_arr(rng, 3)])

    def test_radd(self, rng):
        gradcheck(lambda a: 1.0 + a, [_arr(rng, 3)])

    def test_sub(self, rng):
        gradcheck(lambda a, b: a - b, [_arr(rng, 2, 3), _arr(rng, 1, 3)])

    def test_rsub(self, rng):
        gradcheck(lambda a: 1.0 - a, [_arr(rng, 4)])

    def test_neg(self, rng):
        gradcheck(lambda a: -a, [_arr(rng, 5)])

    def test_mul(self, rng):
        gradcheck(lambda a, b: a * b, [_arr(rng, 3, 4), _arr(rng, 3, 4)])

    def test_mul_broadcast_both(self, rng):
        gradcheck(lambda a, b: a * b, [_arr(rng, 3, 1), _arr(rng, 1, 4)])

    def test_div(self, rng):
        b = np.abs(_arr(rng, 3, 4)) + 1.0
        gradcheck(lambda a, b: a / b, [_arr(rng, 3, 4), b])

    def test_rdiv(self, rng):
        a = np.abs(_arr(rng, 4)) + 1.0
        gradcheck(lambda a: 2.0 / a, [a])

    def test_pow(self, rng):
        a = np.abs(_arr(rng, 3)) + 0.5
        gradcheck(lambda a: a ** 3, [a])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor(np.ones(3)) ** Tensor(np.ones(3))


# ----------------------------------------------------------------------
# matmul
# ----------------------------------------------------------------------
class TestMatmul:
    def test_2d(self, rng):
        gradcheck(lambda a, b: a @ b, [_arr(rng, 3, 4), _arr(rng, 4, 5)])

    def test_batched(self, rng):
        gradcheck(lambda a, b: a @ b, [_arr(rng, 2, 3, 4), _arr(rng, 2, 4, 5)])

    def test_broadcast_batch(self, rng):
        gradcheck(lambda a, b: a @ b, [_arr(rng, 2, 3, 4), _arr(rng, 4, 5)])

    def test_vector_vector(self, rng):
        gradcheck(lambda a, b: a @ b, [_arr(rng, 4), _arr(rng, 4)])

    def test_value_matches_numpy(self, rng):
        a, b = _arr(rng, 3, 4), _arr(rng, 4, 2)
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)


# ----------------------------------------------------------------------
# transcendental
# ----------------------------------------------------------------------
class TestTranscendental:
    def test_exp(self, rng):
        gradcheck(lambda a: a.exp(), [_arr(rng, 3, 4)])

    def test_log(self, rng):
        gradcheck(lambda a: a.log(), [np.abs(_arr(rng, 3)) + 0.5])

    def test_sqrt(self, rng):
        gradcheck(lambda a: a.sqrt(), [np.abs(_arr(rng, 3)) + 0.5])

    def test_tanh(self, rng):
        gradcheck(lambda a: a.tanh(), [_arr(rng, 4)])

    def test_sigmoid(self, rng):
        gradcheck(lambda a: a.sigmoid(), [_arr(rng, 4)])

    def test_erf(self, rng):
        gradcheck(lambda a: a.erf(), [_arr(rng, 4)])

    def test_abs(self, rng):
        a = _arr(rng, 5)
        a[np.abs(a) < 0.2] += 0.5  # keep away from the kink
        gradcheck(lambda a: a.abs(), [a])

    def test_relu(self, rng):
        a = _arr(rng, 5)
        a[np.abs(a) < 0.2] += 0.5
        gradcheck(lambda a: a.relu(), [a])

    def test_maximum(self, rng):
        a, b = _arr(rng, 4), _arr(rng, 4)
        b += np.where(np.abs(a - b) < 0.2, 0.5, 0.0)
        gradcheck(lambda a, b: a.maximum(b), [a, b])

    def test_clip(self, rng):
        a = _arr(rng, 20) * 3
        a = a[np.abs(np.abs(a) - 1.0) > 0.1]  # avoid the clip boundary
        gradcheck(lambda t: t.clip(-1.0, 1.0), [a])


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
class TestReductions:
    def test_sum_all(self, rng):
        gradcheck(lambda a: a.sum(), [_arr(rng, 3, 4)])

    def test_sum_axis(self, rng):
        gradcheck(lambda a: a.sum(axis=1), [_arr(rng, 3, 4)])

    def test_sum_axis_keepdims(self, rng):
        gradcheck(lambda a: a.sum(axis=0, keepdims=True), [_arr(rng, 3, 4)])

    def test_sum_multi_axis(self, rng):
        gradcheck(lambda a: a.sum(axis=(0, 2)), [_arr(rng, 2, 3, 4)])

    def test_sum_negative_axis(self, rng):
        gradcheck(lambda a: a.sum(axis=-1), [_arr(rng, 3, 4)])

    def test_mean(self, rng):
        gradcheck(lambda a: a.mean(axis=1), [_arr(rng, 3, 4)])

    def test_mean_value(self, rng):
        a = _arr(rng, 6, 7)
        np.testing.assert_allclose(Tensor(a).mean().item(), a.mean())

    def test_var(self, rng):
        gradcheck(lambda a: a.var(axis=-1), [_arr(rng, 3, 5)])

    def test_var_value_matches_numpy(self, rng):
        a = _arr(rng, 4, 5)
        np.testing.assert_allclose(
            Tensor(a).var(axis=1).data, a.var(axis=1), rtol=1e-6)

    def test_max(self, rng):
        a = _arr(rng, 3, 5) * 10  # well-separated values
        gradcheck(lambda a: a.max(axis=1), [a])

    def test_max_value(self, rng):
        a = _arr(rng, 3, 5)
        np.testing.assert_allclose(Tensor(a).max(axis=1).data, a.max(axis=1))


# ----------------------------------------------------------------------
# shape manipulation
# ----------------------------------------------------------------------
class TestShapes:
    def test_reshape(self, rng):
        gradcheck(lambda a: a.reshape(6, 2), [_arr(rng, 3, 4)])

    def test_reshape_tuple_arg(self, rng):
        gradcheck(lambda a: a.reshape((2, 6)) * 2.0, [_arr(rng, 3, 4)])

    def test_transpose_default(self, rng):
        gradcheck(lambda a: a.transpose() * 2.0, [_arr(rng, 3, 4)])

    def test_transpose_axes(self, rng):
        gradcheck(lambda a: a.transpose(2, 0, 1) * 2.0, [_arr(rng, 2, 3, 4)])

    def test_swapaxes(self, rng):
        gradcheck(lambda a: a.swapaxes(0, 2) * 2.0, [_arr(rng, 2, 3, 4)])

    def test_getitem_slice(self, rng):
        gradcheck(lambda a: a[1:3] * 2.0, [_arr(rng, 5, 4)])

    def test_getitem_int(self, rng):
        gradcheck(lambda a: a[2] * 2.0, [_arr(rng, 5, 3)])

    def test_getitem_fancy(self, rng):
        idx = np.array([0, 2, 2])
        gradcheck(lambda a: a[idx] * 2.0, [_arr(rng, 5)])

    def test_pad(self, rng):
        gradcheck(lambda a: a.pad([(1, 2), (0, 3)]) * 2.0, [_arr(rng, 3, 4)])

    def test_pad_value_forward(self, rng):
        a = _arr(rng, 2, 2)
        out = Tensor(a).pad([(1, 1), (1, 1)], value=7.0)
        assert out.data[0, 0] == 7.0
        np.testing.assert_allclose(out.data[1:-1, 1:-1], a)

    def test_roll_single(self, rng):
        gradcheck(lambda a: a.roll(2, 0) * 2.0, [_arr(rng, 5, 3)])

    def test_roll_multi(self, rng):
        gradcheck(lambda a: a.roll((1, -2), (0, 1)) * 2.0, [_arr(rng, 4, 5)])

    def test_concatenate(self, rng):
        gradcheck(lambda a, b: concatenate([a, b], axis=1) * 2.0,
                  [_arr(rng, 2, 3), _arr(rng, 2, 4)])

    def test_stack(self, rng):
        gradcheck(lambda a, b: stack([a, b], axis=0) * 2.0,
                  [_arr(rng, 3), _arr(rng, 3)])

    def test_where(self, rng):
        cond = rng.random((3, 4)) > 0.5
        gradcheck(lambda a, b: where(cond, a, b),
                  [_arr(rng, 3, 4), _arr(rng, 3, 4)])


# ----------------------------------------------------------------------
# composite ops
# ----------------------------------------------------------------------
class TestComposite:
    def test_softmax_grad(self, rng):
        gradcheck(lambda a: a.softmax(-1), [_arr(rng, 3, 5)])

    def test_softmax_rows_sum_to_one(self, rng):
        p = Tensor(_arr(rng, 4, 7)).softmax(-1).data
        np.testing.assert_allclose(p.sum(axis=-1), np.ones(4), rtol=1e-6)

    def test_softmax_stability(self):
        # huge logits must not overflow
        p = Tensor(np.array([[1e4, 1e4 + 1.0]])).softmax(-1).data
        assert np.isfinite(p).all()

    def test_log_softmax(self, rng):
        gradcheck(lambda a: a.log_softmax(-1), [_arr(rng, 3, 5)])

    def test_log_softmax_consistent(self, rng):
        a = _arr(rng, 2, 6)
        np.testing.assert_allclose(
            Tensor(a).log_softmax(-1).data,
            np.log(Tensor(a).softmax(-1).data), rtol=1e-6)


# ----------------------------------------------------------------------
# graph mechanics
# ----------------------------------------------------------------------
class TestGraph:
    def test_backward_requires_scalar(self, rng):
        t = Tensor(_arr(rng, 3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_grad_accumulates_over_reuse(self, rng):
        t = Tensor(_arr(rng, 3), requires_grad=True)
        (t * t + t).sum().backward()  # d/dt (t² + t) = 2t + 1
        np.testing.assert_allclose(t.grad, 2 * t.data + 1, rtol=1e-6)

    def test_diamond_graph(self, rng):
        t = Tensor(_arr(rng, 3), requires_grad=True)
        a = t * 2.0
        b = t * 3.0
        (a + b).sum().backward()
        np.testing.assert_allclose(t.grad, np.full(3, 5.0), rtol=1e-6)

    def test_no_grad_blocks_graph(self, rng):
        t = Tensor(_arr(rng, 3), requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad
        assert out._backward is None

    def test_detach(self, rng):
        t = Tensor(_arr(rng, 3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data  # shared memory view

    def test_zero_grad(self, rng):
        t = Tensor(_arr(rng, 3), requires_grad=True)
        (t * 2).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_second_backward_accumulates(self, rng):
        t = Tensor(_arr(rng, 3), requires_grad=True)
        (t * 2).sum().backward()
        (t * 2).sum().backward()
        np.testing.assert_allclose(t.grad, np.full(3, 4.0))

    def test_astype_roundtrip_grad(self, rng):
        t = Tensor(_arr(rng, 3).astype(np.float32), requires_grad=True)
        t.half().float().sum().backward()
        assert t.grad.dtype == np.float32
        np.testing.assert_allclose(t.grad, np.ones(3))

    def test_clone_backward(self, rng):
        t = Tensor(_arr(rng, 3), requires_grad=True)
        c = t.clone()
        assert c.data is not t.data
        (c * 3).sum().backward()
        np.testing.assert_allclose(t.grad, np.full(3, 3.0))

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(np.ones(2), requires_grad=True))


# ----------------------------------------------------------------------
# unbroadcast (the most bug-prone helper) — property tests
# ----------------------------------------------------------------------
class TestUnbroadcast:
    @given(hnp.array_shapes(min_dims=1, max_dims=3, max_side=4))
    @settings(max_examples=50, deadline=None)
    def test_identity_when_shapes_match(self, shape):
        g = np.ones(shape)
        assert unbroadcast(g, shape).shape == shape

    @given(
        st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_sum_matches_broadcast_adjoint(self, a, b, c):
        # x of shape (1, b, 1) broadcast to (a, b, c): the adjoint of the
        # broadcast is a sum over the stretched axes.
        rng = np.random.default_rng(0)
        g = rng.normal(size=(a, b, c))
        out = unbroadcast(g, (1, b, 1))
        np.testing.assert_allclose(
            out, g.sum(axis=(0, 2), keepdims=True), rtol=1e-10)

    @given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=2,
                                                   max_side=3),
                      elements=st.floats(-10, 10)))
    @settings(max_examples=50, deadline=None)
    def test_broadcast_add_gradcheck(self, b):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(2,) + b.shape)
        gradcheck(lambda x, y: x + y, [a, b])


# ----------------------------------------------------------------------
# hypothesis: algebraic identities must hold through the engine
# ----------------------------------------------------------------------
class TestAlgebraicProperties:
    @given(hnp.arrays(np.float64,
                      hnp.array_shapes(min_dims=1, max_dims=3, max_side=4),
                      elements=st.floats(-5, 5)))
    @settings(max_examples=50, deadline=None)
    def test_exp_log_inverse(self, a):
        t = Tensor(a)
        np.testing.assert_allclose(t.exp().log().data, a, atol=1e-8)

    @given(hnp.arrays(np.float64,
                      hnp.array_shapes(min_dims=2, max_dims=2, max_side=5),
                      elements=st.floats(-5, 5)))
    @settings(max_examples=50, deadline=None)
    def test_double_transpose_identity(self, a):
        t = Tensor(a, requires_grad=True)
        out = t.transpose().transpose()
        np.testing.assert_array_equal(out.data, a)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(a))

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_sum_linear_in_inputs(self, n, m):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=(n, m)), rng.normal(size=(n, m))
        lhs = (Tensor(a) + Tensor(b)).sum().item()
        rhs = Tensor(a).sum().item() + Tensor(b).sum().item()
        assert abs(lhs - rhs) < 1e-9 * max(1.0, abs(lhs))
