"""Replica pool: routing purity, affinity, backpressure, aggregation.

The pool must add *placement* and nothing else: whichever policy routes
a request, its result is bitwise-identical to a direct
``ForecastEngine.forecast_batch`` call on the micro-batch it landed in;
key-affinity pins equal keys to one replica; admission control sheds
exactly at the configured bound with a usable retry hint; and the
pool-level metrics are the sums of the per-worker logs.
"""

import threading

import numpy as np
import pytest
from conftest import (  # noqa: F401 — shared serving fixtures
    assert_windows_equal,
    make_window,
)

from repro.hpc import PoolCapacityModel, ServingCapacityModel
from repro.serve import (
    EngineWorkerPool,
    ForecastServer,
    KeyAffinityRouter,
    PoolSaturated,
    Router,
    window_key,
)
from repro.serve.pool import stable_key_hash
from repro.workflow import EnsembleForecaster

POLICIES = ("round-robin", "least-outstanding", "key-affinity")


def manual_pool(engine, **kwargs):
    kwargs.setdefault("replicas", 3)
    kwargs.setdefault("max_batch", 2)
    kwargs.setdefault("max_wait", 10.0)
    return EngineWorkerPool(engine, autostart=False, **kwargs)


class TestPoolEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_pooled_bitwise_equal_direct_any_policy(self, engine, windows,
                                                    policy):
        pool = manual_pool(engine, router=policy)
        futures = []
        for i, w in enumerate(windows[:9]):
            # duplicate keys on purpose so affinity actually co-locates
            futures.append((w, pool.submit(w, key=f"k{i % 4}")))
        assert pool.flush() == 9
        by_id = {}
        for w, fut in futures:
            # request ids are per-scheduler; qualify by worker
            by_id[(fut.worker_id, fut.request_id)] = (w, fut.result(timeout=1))
        for worker in pool.workers:
            for batch in worker.scheduler.metrics.batches:
                direct = engine.forecast_batch(
                    [by_id[(worker.worker_id, rid)][0]
                     for rid in batch.request_ids])
                for rid, d in zip(batch.request_ids, direct):
                    assert_windows_equal(
                        by_id[(worker.worker_id, rid)][1].fields, d.fields)
        pool.close()

    def test_executor_protocol_matches_direct(self, engine, windows):
        """pool.forecast_batch is drop-in for engine.forecast_batch."""
        with manual_pool(engine) as pool:
            served = pool.forecast_batch(windows[:6])
        direct = engine.forecast_batch(windows[:6])
        for s, d in zip(served, direct):
            assert_windows_equal(s.fields, d.fields)

    def test_threaded_pool_serves_concurrent_clients(self, engine):
        pool = EngineWorkerPool(engine, replicas=2, max_batch=3,
                                max_wait=0.02, max_queue=64)
        tagged, lock = [], threading.Lock()

        def client(cid):
            for k in range(4):
                w = make_window(200 + 10 * cid + k)
                fut = pool.submit(w, key=f"c{cid}-{k}")
                with lock:
                    tagged.append((w, fut))

        threads = [threading.Thread(target=client, args=(c,))
                   for c in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = [(w, fut.result(timeout=60)) for w, fut in tagged]
        pool.close()
        for w, res in results:
            # pairing: slot 0 is the exact IC of the submitted window
            np.testing.assert_array_equal(res.fields.zeta[0], w.zeta[0])
        assert pool.metrics.n_requests == 12

    def test_ensemble_through_pool_equals_direct(self, engine, windows):
        direct = EnsembleForecaster(engine, n_members=4,
                                    seed=3).forecast(windows[0])
        with manual_pool(engine, max_batch=4) as pool:
            served = EnsembleForecaster(pool, n_members=4,
                                        seed=3).forecast(windows[0])
        assert_windows_equal(served.mean, direct.mean)
        assert_windows_equal(served.spread, direct.spread)


class TestRouting:
    def test_round_robin_spreads_evenly(self, engine, windows):
        with manual_pool(engine, router="round-robin") as pool:
            for w in windows[:6]:
                pool.submit(w)
            assert [wk.submitted for wk in pool.workers] == [2, 2, 2]
            pool.flush()

    def test_least_outstanding_balances(self, engine, windows):
        with manual_pool(engine, router="least-outstanding") as pool:
            for w in windows[:5]:
                pool.submit(w)
            assert sorted(wk.outstanding for wk in pool.workers) == [1, 2, 2]
            pool.flush()
            assert [wk.outstanding for wk in pool.workers] == [0, 0, 0]
            # drained replicas are preferred again
            pool.submit(windows[5])
            assert sum(wk.outstanding for wk in pool.workers) == 1
            pool.flush()

    def test_key_affinity_pins_duplicate_keys(self, engine, windows):
        with manual_pool(engine, router="key-affinity",
                         max_queue=64) as pool:
            homes = {}
            for trial in range(3):            # same keys, many submissions
                for k in range(4):
                    fut = pool.submit(windows[(trial + k) % 12],
                                      key=f"scenario-{k}")
                    homes.setdefault(f"scenario-{k}", set()).add(
                        fut.worker_id)
                pool.flush()
            for key, workers in homes.items():
                assert len(workers) == 1, f"{key} visited {workers}"
                assert workers == {stable_key_hash(key) % 3}

    def test_key_affinity_keyless_falls_back(self, engine, windows):
        with manual_pool(engine, router="key-affinity") as pool:
            for w in windows[:3]:
                pool.submit(w)               # no key: round-robin fallback
            assert [wk.submitted for wk in pool.workers] == [1, 1, 1]
            pool.flush()

    def test_router_make_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown router"):
            Router.make("fastest-first")
        router = KeyAffinityRouter()
        assert Router.make(router) is router

    def test_subclass_cannot_silently_clobber_registry(self):
        from repro.serve.pool import RoundRobinRouter

        class Tweaked(RoundRobinRouter):    # no `name`: not registered
            pass

        assert Router.make("round-robin").__class__ is RoundRobinRouter
        with pytest.raises(ValueError, match="already registered"):
            class Imposter(Router):
                name = "round-robin"

    def test_only_affinity_reads_keys(self):
        from repro.serve.pool import (
            LeastOutstandingRouter,
            RoundRobinRouter,
        )
        assert KeyAffinityRouter.uses_keys
        assert not RoundRobinRouter.uses_keys
        assert not LeastOutstandingRouter.uses_keys

    def test_stable_hash_is_deterministic(self):
        assert stable_key_hash("abc") == stable_key_hash("abc")
        assert stable_key_hash("abc") != stable_key_hash("abd")


class TestBackpressure:
    def test_shed_at_configured_bound(self, engine, windows):
        with manual_pool(engine, replicas=2, max_queue=2) as pool:
            for w in windows[:4]:            # fills 2 workers × 2 slots
                pool.submit(w)
            with pytest.raises(PoolSaturated) as exc:
                pool.submit(windows[4])
            assert exc.value.retry_after > 0
            assert pool.shed_requests == 1
            assert pool.metrics.summary()["shed_requests"] == 1
            pool.flush()                     # drain → admission reopens
            fut = pool.submit(windows[4])
            pool.flush()
            assert fut.done()

    def test_affinity_sheds_strictly(self, engine, windows):
        """A full home replica sheds even while others are idle —
        spilling would silently break co-location."""
        with manual_pool(engine, router="key-affinity",
                         max_queue=1) as pool:
            key = "hot-scenario"
            home = stable_key_hash(key) % 3
            pool.submit(windows[0], key=key)
            with pytest.raises(PoolSaturated):
                pool.submit(windows[1], key=key)
            assert sum(wk.outstanding for wk in pool.workers) == 1
            # hot-key skew is attributed to the full home replica
            assert pool.metrics.shed_by_worker()[home] == 1
            assert sum(pool.metrics.shed_by_worker().values()) == 1
            # a key homed elsewhere is still admitted
            other = next(f"k{j}" for j in range(64)
                         if stable_key_hash(f"k{j}") % 3
                         != stable_key_hash(key) % 3)
            pool.submit(windows[2], key=other)
            pool.flush()

    def test_retry_after_uses_fitted_cost_model(self, engine, windows):
        with manual_pool(engine, replicas=1, max_batch=2,
                         max_queue=2) as pool:
            pool.forecast_batch(windows[:3])  # observe batches of 2 and 1
            fitted = pool.capacity_model()
            for w in windows[:2]:
                pool.submit(w)
            with pytest.raises(PoolSaturated) as exc:
                pool.submit(windows[2])
            expect = fitted.dispatch_seconds + 2 * fitted.per_request_seconds
            assert exc.value.retry_after == pytest.approx(expect)
            pool.flush()

    def test_retry_after_bounded_by_one_batch(self, engine, windows):
        """A slot frees after ONE micro-batch — a deep queue must not
        inflate the advertised back-off past a + b·max_batch."""
        with manual_pool(engine, replicas=1, max_batch=2,
                         max_queue=6) as pool:
            pool.forecast_batch(windows[:3])  # fit gets 2 batch sizes
            fitted = pool.capacity_model()
            for w in windows[:6]:
                pool.submit(w)
            with pytest.raises(PoolSaturated) as exc:
                pool.submit(windows[6])
            cap = fitted.dispatch_seconds + 2 * fitted.per_request_seconds
            assert exc.value.retry_after == pytest.approx(cap)
            pool.flush()

    def test_forecast_batch_survives_tiny_queue(self, engine, windows):
        """The executor protocol retries shed members instead of
        dropping them — an ensemble cannot lose members."""
        with EngineWorkerPool(engine, replicas=2, max_batch=2,
                              max_wait=0.005, max_queue=1) as pool:
            served = pool.forecast_batch(windows[:6])
        direct = engine.forecast_batch(windows[:6])
        for s, d in zip(served, direct):
            assert_windows_equal(s.fields, d.fields)

    def test_rejects_bad_configuration(self, engine):
        with pytest.raises(ValueError, match="max_queue"):
            EngineWorkerPool(engine, replicas=2, max_queue=0)
        with pytest.raises(ValueError, match="replicas"):
            EngineWorkerPool(engine, replicas=0)
        with pytest.raises(ValueError, match="replicas"):
            EngineWorkerPool([engine, engine], replicas=3)
        with pytest.raises(ValueError, match="at least one"):
            EngineWorkerPool([])


class TestMetricsAggregation:
    def test_pool_metrics_sum_per_worker_logs(self, engine, windows):
        with manual_pool(engine, router="round-robin") as pool:
            futures = [pool.submit(w) for w in windows[:7]]
            pool.flush()
            [f.result(timeout=1) for f in futures]
            m = pool.metrics
            per = [wk.scheduler.metrics for wk in pool.workers]
            assert m.n_requests == sum(p.n_requests for p in per) == 7
            assert m.n_batches == sum(p.n_batches for p in per)
            assert m.mean_occupancy == pytest.approx(7 / m.n_batches)
            assert m.max_occupancy == max(p.max_occupancy for p in per)
            assert m.engine_seconds == pytest.approx(
                sum(b.seconds for p in per for b in p.batches))
            assert sum(m.requests_by_worker().values()) == 7
            assert np.isfinite(m.latency_percentile(50))
            s = m.summary()
            assert s["workers"] == 3 and s["requests"] == 7
            assert s["shed_requests"] == 0 and s["outstanding"] == 0
            assert s["engine_seconds"] == pytest.approx(m.engine_seconds)

    def test_worker_id_matches_serving_scheduler(self, engine, windows):
        with manual_pool(engine, router="round-robin") as pool:
            futures = [pool.submit(w) for w in windows[:6]]
            pool.flush()
            for fut in futures:
                worker = pool.workers[fut.worker_id]
                served_ids = [rid for b in worker.scheduler.metrics.batches
                              for rid in b.request_ids]
                assert fut.request_id in served_ids

    def test_failed_batches_aggregate(self, windows, engine):
        class Flaky:
            def __init__(self, inner):
                self.inner, self.calls = inner, 0
                self.time_steps = inner.time_steps

            def forecast_batch(self, refs):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("transient backend failure")
                return self.inner.forecast_batch(refs)

        with EngineWorkerPool([Flaky(engine), engine], max_batch=1,
                              max_wait=10.0, autostart=False,
                              router="round-robin") as pool:
            futures = [pool.submit(w) for w in windows[:2]]
            pool.flush()
            assert pool.metrics.n_failed_batches == 1
            assert pool.metrics.summary()["failed_batches"] == 1
            outcomes = {f.worker_id: f for f in futures}
            with pytest.raises(RuntimeError, match="transient"):
                outcomes[0].result(timeout=1)
            outcomes[1].result(timeout=1)
            # the failure released its admission slot
            assert pool.metrics.outstanding == 0


class TestServerWithPool:
    def test_engine_sequence_infers_workers(self, engine, windows):
        """The documented sequence form needs no redundant workers=."""
        with ForecastServer([engine, engine], max_batch=4,
                            max_wait=0.01) as server:
            res = server.forecast(windows[3])
            assert server.pool.n_workers == 2
        direct = engine.forecast_batch([windows[3]])[0]
        assert_windows_equal(res.fields, direct.fields)

    def test_pool_of_one_is_default(self, engine, windows):
        with ForecastServer(engine, max_batch=4, max_wait=0.01) as server:
            res = server.forecast(windows[0])
            assert server.pool.n_workers == 1
            assert server.scheduler is server.pool.workers[0].scheduler
        direct = engine.forecast_batch([windows[0]])[0]
        assert_windows_equal(res.fields, direct.fields)

    def test_sharded_server_caches_and_dedups(self, engine, windows):
        with ForecastServer(engine, workers=2, router="key-affinity",
                            max_batch=4, max_wait=0.01,
                            cache_bytes=1 << 24) as server:
            first = server.forecast(windows[0])
            followers = [server.submit(windows[0]) for _ in range(3)]
            for f in followers:
                assert_windows_equal(f.result(timeout=60).fields,
                                     first.fields)
            m = server.metrics()
            assert m["workers"] == 2
            assert m["cache_hits"] + m["deduped_requests"] >= 3
        # every engine-served copy of the hot window sat on its home
        # replica: affinity keeps cache/dedup locality under sharding
        home = stable_key_hash(window_key(windows[0])) % 2
        other = server.pool.workers[1 - home].scheduler.metrics
        assert other.n_requests == 0

    def test_sharded_ensemble_equals_direct(self, engine, windows):
        direct = EnsembleForecaster(engine, n_members=4,
                                    seed=3).forecast(windows[1])
        with ForecastServer(engine, workers=2, max_batch=2,
                            max_wait=0.005) as server:
            served = server.submit_ensemble(windows[1], n_members=4,
                                            seed=3).result(timeout=120)
        assert_windows_equal(served.mean, direct.mean)
        assert_windows_equal(served.spread, direct.spread)


class TestPoolCapacityModel:
    REPLICA = ServingCapacityModel(dispatch_seconds=0.004,
                                   per_request_seconds=0.001)

    def test_zero_contention_is_linear(self):
        model = PoolCapacityModel(self.REPLICA, contention=0.0)
        assert model.saturation_throughput(1) == pytest.approx(1000.0)
        assert model.saturation_throughput(4) == pytest.approx(4000.0)
        assert model.speedup(8) == pytest.approx(8.0)
        assert model.asymptotic_throughput == float("inf")

    def test_fit_recovers_contention_exactly(self):
        sigma = 0.15
        truth = PoolCapacityModel(self.REPLICA, contention=sigma)
        counts = [1, 2, 4, 8]
        fitted = PoolCapacityModel.fit(
            self.REPLICA, counts,
            [truth.saturation_throughput(n) for n in counts])
        assert fitted.contention == pytest.approx(sigma, rel=1e-9)
        assert fitted.speedup(4) == pytest.approx(truth.speedup(4))

    def test_fit_without_multireplica_observation_is_conservative(self):
        fitted = PoolCapacityModel.fit(self.REPLICA, [1], [990.0])
        assert fitted.contention == 1.0
        # σ = 1 pins every pool size to the measured single-replica rate
        assert fitted.single_replica_qps == pytest.approx(990.0)
        assert fitted.saturation_throughput(8) == pytest.approx(990.0)

    def test_fit_baseline_is_measured_not_asymptotic(self):
        """A replica saturating at finite max_batch achieves less than
        the 1/b asymptote; perfect pool scaling over that *measured*
        baseline must fit σ = 0, not phantom contention."""
        measured_x1 = 396.0                 # < 1/b = 1000 (finite batch)
        fitted = PoolCapacityModel.fit(
            self.REPLICA, [1, 2], [measured_x1, 2 * measured_x1])
        assert fitted.contention == 0.0
        assert fitted.baseline_throughput == pytest.approx(measured_x1)
        assert fitted.saturation_throughput(4) == pytest.approx(
            4 * measured_x1)

    def test_fit_clips_noise(self):
        # measured slightly superlinear → σ clipped to 0, not negative
        fitted = PoolCapacityModel.fit(self.REPLICA, [4], [4100.0])
        assert fitted.contention == 0.0

    def test_optimal_workers(self):
        model = PoolCapacityModel(self.REPLICA, contention=0.1)
        n = model.optimal_workers(2500.0)
        assert model.saturation_throughput(n) >= 2500.0
        assert model.saturation_throughput(n - 1) < 2500.0
        # asymptote X1/σ = 10000: unreachable targets report None
        assert model.optimal_workers(20000.0) is None
        with pytest.raises(ValueError, match="positive"):
            model.optimal_workers(0.0)

    def test_validates_contention_range(self):
        with pytest.raises(ValueError, match="contention"):
            PoolCapacityModel(self.REPLICA, contention=1.5)
        with pytest.raises(ValueError, match="observation"):
            PoolCapacityModel.fit(self.REPLICA, [], [])
