"""N-d convolution kernels: shapes, values, adjoints, transpose duality."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.tensor import (
    Tensor,
    conv_nd,
    conv_output_shape,
    conv_transpose_nd,
    conv_transpose_output_shape,
    gradcheck,
)


def _arr(rng, *shape):
    return rng.normal(size=shape)


class TestShapes:
    def test_conv_output_shape(self):
        assert conv_output_shape((8, 8), (3, 3), (1, 1), (0, 0)) == (6, 6)
        assert conv_output_shape((8, 8), (3, 3), (2, 2), (1, 1)) == (4, 4)
        assert conv_output_shape((9,), (3,), (3,), (0,)) == (3,)

    def test_transpose_output_shape(self):
        assert conv_transpose_output_shape((4, 4), (2, 2), (2, 2), (0, 0)) \
            == (8, 8)
        assert conv_transpose_output_shape((4,), (3,), (2,), (1,)) == (10,)

    def test_conv_result_shape_2d(self, rng):
        x = Tensor(_arr(rng, 2, 3, 10, 8))
        w = Tensor(_arr(rng, 5, 3, 3, 3))
        assert conv_nd(x, w, stride=2, padding=1).shape == (2, 5, 5, 4)

    def test_conv_result_shape_3d(self, rng):
        x = Tensor(_arr(rng, 1, 2, 8, 8, 4))
        w = Tensor(_arr(rng, 6, 2, 2, 2, 2))
        assert conv_nd(x, w, stride=2).shape == (1, 6, 4, 4, 2)

    def test_transpose_inverts_spatial_reduction(self, rng):
        x = Tensor(_arr(rng, 1, 4, 6, 6))
        w = Tensor(_arr(rng, 4, 2, 2, 2))
        y = conv_transpose_nd(x, w, stride=2)
        assert y.shape == (1, 2, 12, 12)


class TestValues:
    def test_identity_kernel_1x1(self, rng):
        """1×1 identity kernel reproduces the input channel."""
        x = _arr(rng, 1, 1, 5, 5)
        w = np.ones((1, 1, 1, 1))
        out = conv_nd(Tensor(x), Tensor(w))
        np.testing.assert_allclose(out.data, x)

    def test_averaging_kernel(self, rng):
        """A 2×2 ones kernel computes local sums."""
        x = _arr(rng, 1, 1, 4, 4)
        w = np.ones((1, 1, 2, 2))
        out = conv_nd(Tensor(x), Tensor(w)).data[0, 0]
        expected = (x[0, 0, :-1, :-1] + x[0, 0, :-1, 1:]
                    + x[0, 0, 1:, :-1] + x[0, 0, 1:, 1:])
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(_arr(rng, 1, 2, 4, 4))
        w = Tensor(np.zeros((3, 2, 1, 1)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        out = conv_nd(x, w, b).data
        for c, val in enumerate([1.0, 2.0, 3.0]):
            np.testing.assert_allclose(out[:, c], val)

    def test_nearest_upsampling_via_transpose(self, rng):
        """stride-2 transposed conv with a ones 2×2 kernel duplicates."""
        x = _arr(rng, 1, 1, 3, 3)
        w = np.ones((1, 1, 2, 2))
        out = conv_transpose_nd(Tensor(x), Tensor(w), stride=2).data[0, 0]
        np.testing.assert_allclose(out[::2, ::2], x[0, 0], rtol=1e-10)
        np.testing.assert_allclose(out[1::2, 1::2], x[0, 0], rtol=1e-10)

    def test_transpose_is_conv_adjoint(self, rng):
        """<conv(x), y> == <x, conv_T(y)> — the defining duality.

        Uses an exactly-covered input size (in = (out−1)·stride + k) so
        the transpose reconstructs the full input extent.
        """
        x = _arr(rng, 1, 2, 5, 5)
        w = _arr(rng, 3, 2, 3, 3)
        y = _arr(rng, 1, 3, 2, 2)
        lhs = float((conv_nd(Tensor(x), Tensor(w), stride=2).data * y).sum())
        wt = Tensor(np.ascontiguousarray(w))  # (Co,Ci,k) reused as (Ci,Co,k)
        back = conv_transpose_nd(Tensor(y), wt, stride=2).data
        rhs = float((back * x).sum())
        assert abs(lhs - rhs) < 1e-8 * max(abs(lhs), 1.0)


class TestGradients:
    def test_conv1d_grad(self, rng):
        gradcheck(lambda x, w: conv_nd(x, w),
                  [_arr(rng, 2, 2, 7), _arr(rng, 3, 2, 3)])

    def test_conv2d_grad(self, rng):
        gradcheck(lambda x, w: conv_nd(x, w, stride=2),
                  [_arr(rng, 1, 2, 6, 5), _arr(rng, 3, 2, 2, 2)])

    def test_conv2d_grad_padding(self, rng):
        gradcheck(lambda x, w: conv_nd(x, w, stride=2, padding=1),
                  [_arr(rng, 1, 2, 5, 5), _arr(rng, 2, 2, 3, 3)])

    def test_conv3d_grad(self, rng):
        gradcheck(lambda x, w: conv_nd(x, w),
                  [_arr(rng, 1, 1, 4, 4, 3), _arr(rng, 2, 1, 2, 2, 2)])

    def test_conv_bias_grad(self, rng):
        gradcheck(lambda x, w, b: conv_nd(x, w, b),
                  [_arr(rng, 1, 2, 4, 4), _arr(rng, 2, 2, 2, 2),
                   _arr(rng, 2)])

    def test_transpose2d_grad(self, rng):
        gradcheck(lambda x, w: conv_transpose_nd(x, w, stride=2),
                  [_arr(rng, 1, 2, 3, 4), _arr(rng, 2, 3, 2, 2)])

    def test_transpose3d_grad(self, rng):
        gradcheck(lambda x, w: conv_transpose_nd(x, w, stride=2),
                  [_arr(rng, 1, 1, 3, 3, 2), _arr(rng, 1, 2, 2, 2, 2)])

    def test_transpose_output_padding_grad(self, rng):
        gradcheck(
            lambda x, w: conv_transpose_nd(x, w, stride=2, output_padding=1),
            [_arr(rng, 1, 2, 3, 3), _arr(rng, 2, 2, 2, 2)])

    def test_transpose_bias_grad(self, rng):
        gradcheck(lambda x, w, b: conv_transpose_nd(x, w, b, stride=2),
                  [_arr(rng, 1, 2, 3, 3), _arr(rng, 2, 2, 2, 2),
                   _arr(rng, 2)])


class TestProperties:
    @given(st.integers(1, 3), st.integers(1, 3), st.integers(4, 7),
           st.integers(1, 2))
    @settings(max_examples=25, deadline=None)
    def test_conv_linear_in_input(self, cin, cout, n, stride):
        """conv(a·x) == a·conv(x) for any configuration."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, cin, n, n))
        w = rng.normal(size=(cout, cin, 2, 2))
        y1 = conv_nd(Tensor(3.0 * x), Tensor(w), stride=stride).data
        y2 = 3.0 * conv_nd(Tensor(x), Tensor(w), stride=stride).data
        np.testing.assert_allclose(y1, y2, rtol=1e-8)

    @given(st.integers(2, 5), st.integers(1, 2))
    @settings(max_examples=25, deadline=None)
    def test_transpose_then_crop_identity_for_delta(self, n, cin):
        """A delta kernel makes conv_transpose a pure zero-stuffing."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, cin, n, n))
        w = np.zeros((cin, cin, 1, 1))
        for c in range(cin):
            w[c, c, 0, 0] = 1.0
        out = conv_transpose_nd(Tensor(x), Tensor(w), stride=2).data
        np.testing.assert_allclose(out[:, :, ::2, ::2], x, rtol=1e-10)
        assert np.all(out[:, :, 1::2, :] == 0)
