"""FLOPs counter, page-cache simulation, and pipeline trace."""

import numpy as np
import pytest

from repro.data import CachedStore, SnapshotStore
from repro.hpc import PipelineTrace
from repro.hpc.pipeline import FIG9_CONFIGS, PipelineConfig, PipelineParams
from repro.swin import (
    SurrogateConfig,
    attention_flops,
    scale_compute_time,
    surrogate_flops,
)


class TestFlops:
    def test_breakdown_sums(self):
        fb = surrogate_flops(SurrogateConfig())
        assert fb.encoder + fb.decoder == fb.total
        assert fb.total == sum(v for k, v in fb.as_dict().items()
                               if k != "total")

    def test_all_components_positive(self):
        fb = surrogate_flops(SurrogateConfig.paper())
        for name, v in fb.as_dict().items():
            assert v > 0, name

    def test_paper_config_decoder_dominates(self):
        """Full-resolution recovery convolutions dominate at paper scale
        — consistent with Table II's activation analysis."""
        fb = surrogate_flops(SurrogateConfig.paper())
        assert fb.decoder > fb.encoder

    def test_flops_grow_with_mesh(self):
        small = surrogate_flops(SurrogateConfig())
        big = surrogate_flops(SurrogateConfig.paper())
        assert big.total > 10 * small.total

    def test_attention_flops_quadratic_in_window(self):
        a = attention_flops(tokens=1024, window_volume=16, dim=32)
        b = attention_flops(tokens=1024, window_volume=64, dim=32)
        assert b > a

    def test_scale_compute_time_ratio(self):
        small = SurrogateConfig()
        big = SurrogateConfig.paper()
        scaled = scale_compute_time(1.0, small, big)
        assert scaled == pytest.approx(
            surrogate_flops(big).total / surrogate_flops(small).total)

    def test_scale_identity(self):
        cfg = SurrogateConfig()
        assert scale_compute_time(2.5, cfg, cfg) == pytest.approx(2.5)


class TestCachedStore:
    @pytest.fixture()
    def cached(self, tiny_bundle):
        store = SnapshotStore(tiny_bundle.train)
        # capacity for roughly three snapshots
        return CachedStore(store, capacity_bytes=3 * store.snapshot_nbytes())

    def test_first_read_misses_second_hits(self, cached):
        cached.read_var("zeta", 0)
        assert cached.stats.misses == 1 and cached.stats.hits == 0
        cached.read_var("zeta", 0)
        assert cached.stats.hits == 1

    def test_data_identical_to_store(self, cached, tiny_bundle):
        direct = SnapshotStore(tiny_bundle.train).read_var("u3", 2)
        np.testing.assert_array_equal(cached.read_var("u3", 2), direct)
        np.testing.assert_array_equal(cached.read_var("u3", 2), direct)

    def test_lru_eviction(self, tiny_bundle):
        store = SnapshotStore(tiny_bundle.train)
        one = store.read_var("zeta", 0).nbytes
        cached = CachedStore(store, capacity_bytes=2 * one + 1)
        cached.read_var("zeta", 0)
        cached.read_var("zeta", 1)
        cached.read_var("zeta", 2)   # evicts snapshot 0
        assert cached.stats.evictions >= 1
        cached.read_var("zeta", 0)   # must be a miss again
        assert cached.stats.misses == 4

    def test_hit_rate_over_epochs(self, tiny_bundle):
        """Second 'epoch' of reads is mostly cache hits — the paper's
        OS-cache effect."""
        store = SnapshotStore(tiny_bundle.train)
        cached = CachedStore(store, capacity_bytes=1 << 30)
        for _ in range(2):
            for i in range(len(cached)):
                cached.read_snapshot(i)
        assert cached.stats.hit_rate == pytest.approx(0.5)

    def test_effective_load_time_improves_with_hits(self, cached):
        cached.read_snapshot(0)
        t_cold = cached.stats.effective_load_seconds(750e6, 200e9)
        cached.read_snapshot(0)
        t_both = cached.stats.effective_load_seconds(750e6, 200e9)
        # the second (cached) read adds almost nothing
        assert t_both < 1.01 * 2 * t_cold

    def test_window_read(self, cached):
        w = cached.read_window(0, 3)
        assert w["u3"].shape[0] == 3
        with pytest.raises(IndexError):
            cached.read_window(len(cached) - 1, 3)

    def test_invalid_capacity(self, tiny_bundle):
        with pytest.raises(ValueError):
            CachedStore(SnapshotStore(tiny_bundle.train), 0)

    def test_clear(self, cached):
        cached.read_snapshot(0)
        cached.clear()
        assert cached.resident_bytes == 0


class TestPipelineTrace:
    @pytest.fixture()
    def trace(self):
        return PipelineTrace(PipelineParams())

    def test_events_cover_all_stages(self, trace):
        events = trace.run(FIG9_CONFIGS[0], iterations=2)
        stages = {e.stage for e in events}
        assert stages == {"load", "h2d", "compute", "update"}

    def test_events_nonnegative_durations(self, trace):
        for cfg in FIG9_CONFIGS:
            for e in trace.run(cfg, iterations=3):
                assert e.duration >= 0

    def test_pageable_h2d_on_gpu_lane(self, trace):
        events = trace.run(PipelineConfig("np", pin_memory=False), 2)
        h2d = [e for e in events if e.stage == "h2d"]
        assert all(e.lane == "gpu" for e in h2d)

    def test_pinned_h2d_on_copy_lane(self, trace):
        events = trace.run(FIG9_CONFIGS[0], 2)
        h2d = [e for e in events if e.stage == "h2d"]
        assert all(e.lane == "copy" for e in h2d)

    def test_no_prefetch_slower_steady_state(self, trace):
        fast = trace.steady_state_iteration(FIG9_CONFIGS[0])
        slow = trace.steady_state_iteration(
            PipelineConfig("nop", prefetch=False))
        assert slow > fast

    def test_render_contains_lanes(self, trace):
        out = trace.render(FIG9_CONFIGS[0])
        for lane in ("io", "copy", "gpu"):
            assert lane in out

    def test_compute_never_precedes_its_data(self, trace):
        for cfg in FIG9_CONFIGS:
            events = trace.run(cfg, iterations=4)
            by_iter = {}
            for e in events:
                by_iter.setdefault(e.iteration, {})[e.stage] = e
            for k, stages in by_iter.items():
                assert stages["compute"].start >= stages["h2d"].end - 1e-9
                assert stages["h2d"].start >= stages["load"].end - 1e-9
