"""Swin blocks, stages, checkpointing, and the full surrogate model."""

import numpy as np
import pytest

from repro.swin import (
    CheckpointStats,
    CoastalSurrogate,
    SurrogateConfig,
    SwinBlock4d,
    SwinStage4d,
    checkpoint,
)
from repro.tensor import Tensor, no_grad


class TestSwinBlock:
    def test_shape_preserved(self, rng):
        blk = SwinBlock4d(8, 2, (2, 2, 2, 2))
        x = Tensor(rng.normal(size=(1, 4, 4, 2, 2, 8)).astype(np.float32))
        assert blk(x).shape == x.shape

    def test_shifted_block_shape(self, rng):
        blk = SwinBlock4d(8, 2, (2, 2, 2, 2), shifted=True)
        x = Tensor(rng.normal(size=(1, 4, 4, 2, 4, 8)).astype(np.float32))
        assert blk(x).shape == x.shape

    def test_shifted_differs_from_unshifted(self, rng):
        w = SwinBlock4d(8, 2, (2, 2, 2, 2), shifted=False, rng=rng)
        s = SwinBlock4d(8, 2, (2, 2, 2, 2), shifted=True, rng=rng)
        s.load_state_dict(w.state_dict())   # identical weights
        x = Tensor(rng.normal(size=(1, 4, 4, 2, 4, 8)).astype(np.float32))
        assert np.abs(w(x).data - s(x).data).max() > 1e-6

    def test_gradients_reach_all_params(self, rng):
        blk = SwinBlock4d(8, 2, (2, 2, 2, 2), shifted=True)
        x = Tensor(rng.normal(size=(1, 2, 2, 2, 2, 8)).astype(np.float32))
        blk(x).sum().backward()
        assert all(p.grad is not None for p in blk.parameters())

    def test_window_spanning_dim_ok(self, rng):
        """Window larger than a dim degrades to global attention there."""
        blk = SwinBlock4d(8, 2, (4, 4, 4, 4), shifted=True)
        x = Tensor(rng.normal(size=(1, 2, 2, 1, 2, 8)).astype(np.float32))
        assert blk(x).shape == x.shape


class TestSwinStage:
    def test_downsampling_stage(self, rng):
        st = SwinStage4d(8, 2, (2, 2, 2, 2), downsample=True)
        x = Tensor(rng.normal(size=(1, 4, 4, 2, 2, 8)).astype(np.float32))
        out, pre = st(x)
        assert pre.shape == x.shape
        assert out.shape == (1, 2, 2, 1, 2, 16)
        assert st.out_dim == 16

    def test_final_stage_no_downsample(self, rng):
        st = SwinStage4d(8, 2, (2, 2, 2, 2), downsample=False)
        x = Tensor(rng.normal(size=(1, 2, 2, 2, 2, 8)).astype(np.float32))
        out, pre = st(x)
        assert out.shape == x.shape
        assert st.out_dim == 8


class TestCheckpoint:
    def test_values_identical_with_checkpoint(self, rng):
        blk = SwinBlock4d(8, 2, (2, 2, 2, 2), rng=np.random.default_rng(3))
        blk_ck = SwinBlock4d(8, 2, (2, 2, 2, 2), use_checkpoint=True,
                             rng=np.random.default_rng(3))
        blk_ck.load_state_dict(blk.state_dict())
        x = rng.normal(size=(1, 2, 2, 2, 2, 8)).astype(np.float32)
        a = blk(Tensor(x)).data
        b = blk_ck(Tensor(x)).data
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_gradients_identical_with_checkpoint(self, rng):
        blk = SwinBlock4d(8, 2, (2, 2, 2, 2), rng=np.random.default_rng(3))
        blk_ck = SwinBlock4d(8, 2, (2, 2, 2, 2), use_checkpoint=True,
                             rng=np.random.default_rng(3))
        blk_ck.load_state_dict(blk.state_dict())
        x = rng.normal(size=(1, 2, 2, 2, 2, 8)).astype(np.float32)

        xa = Tensor(x.copy(), requires_grad=True)
        blk(xa).sum().backward()
        xb = Tensor(x.copy(), requires_grad=True)
        blk_ck(xb).sum().backward()
        np.testing.assert_allclose(xa.grad, xb.grad, atol=1e-5)
        for (na, pa), (nb, pb) in zip(blk.named_parameters(),
                                      blk_ck.named_parameters()):
            assert na == nb
            np.testing.assert_allclose(pa.grad, pb.grad, atol=1e-5,
                                       err_msg=na)

    def test_recompute_happens_on_backward(self, rng):
        CheckpointStats.reset()
        blk = SwinBlock4d(8, 2, (2, 2, 2, 2), use_checkpoint=True)
        x = Tensor(rng.normal(size=(1, 2, 2, 2, 2, 8)).astype(np.float32),
                   requires_grad=True)
        out = blk(x)
        assert CheckpointStats.forward_calls == 1
        assert CheckpointStats.recompute_calls == 0
        out.sum().backward()
        assert CheckpointStats.recompute_calls == 1

    def test_checkpoint_passthrough_in_no_grad(self, rng):
        CheckpointStats.reset()
        blk = SwinBlock4d(8, 2, (2, 2, 2, 2), use_checkpoint=True)
        x = Tensor(rng.normal(size=(1, 2, 2, 2, 2, 8)).astype(np.float32))
        with no_grad():
            out = blk(x)
        assert not out.requires_grad

    def test_checkpoint_of_plain_function(self, rng):
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        out = checkpoint(lambda t: (t * t).tanh(), x)
        out.sum().backward()
        expected = Tensor(x.data.copy(), requires_grad=True)
        (expected.data, )  # silence lint
        ref = Tensor(x.data.copy(), requires_grad=True)
        ((ref * ref).tanh()).sum().backward()
        np.testing.assert_allclose(x.grad, ref.grad, atol=1e-7)


class TestSurrogateConfig:
    def test_default_validates(self):
        SurrogateConfig().validate()

    def test_paper_config_validates(self):
        cfg = SurrogateConfig.paper()
        cfg.validate()
        assert cfg.mesh == (900, 600, 12)
        assert cfg.patch3d == (5, 5, 4)
        assert cfg.latent_dims == (180, 120, 4, 24)

    def test_rejects_indivisible_mesh(self):
        with pytest.raises(ValueError, match="divisible"):
            SurrogateConfig(mesh=(30, 64, 6)).validate()

    def test_rejects_mismatched_patch2d(self):
        with pytest.raises(ValueError, match="patch2d"):
            SurrogateConfig(patch2d=(2, 2)).validate()

    def test_rejects_unmergeable_latent(self):
        # D/PD + 1 = 3 + 1 = 4 is OK; force a failure with D=4, PD=2 → 3
        with pytest.raises(ValueError):
            SurrogateConfig(mesh=(96, 64, 4), patch3d=(4, 4, 2)).validate()

    def test_heads_depths_mismatch(self):
        with pytest.raises(ValueError, match="num_heads"):
            SurrogateConfig(num_heads=(3, 6)).validate()


class TestCoastalSurrogate:
    def test_forward_shapes(self, tiny_surrogate, tiny_surrogate_config, rng):
        cfg = tiny_surrogate_config
        H, W, D = cfg.mesh
        T = cfg.time_steps
        x3 = Tensor(rng.normal(size=(1, 3, H, W, D, T)).astype(np.float32))
        x2 = Tensor(rng.normal(size=(1, 1, H, W, T)).astype(np.float32))
        y3, y2 = tiny_surrogate(x3, x2)
        assert y3.shape == (1, 3, H, W, D, T)
        assert y2.shape == (1, 1, H, W, T)

    def test_all_parameters_receive_gradients(self, tiny_surrogate_config,
                                              rng):
        model = CoastalSurrogate(tiny_surrogate_config)
        cfg = tiny_surrogate_config
        H, W, D = cfg.mesh
        T = cfg.time_steps
        x3 = Tensor(rng.normal(size=(1, 3, H, W, D, T)).astype(np.float32))
        x2 = Tensor(rng.normal(size=(1, 1, H, W, T)).astype(np.float32))
        y3, y2 = model(x3, x2)
        (y3.sum() + y2.sum()).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"parameters without gradients: {missing}"

    def test_parameter_breakdown_sums(self, tiny_surrogate):
        b = tiny_surrogate.parameter_breakdown()
        assert b["encoder"] + b["decoder"] == b["total"]
        assert b["total"] == tiny_surrogate.num_parameters()

    def test_deterministic_construction(self, tiny_surrogate_config):
        a = CoastalSurrogate(tiny_surrogate_config)
        b = CoastalSurrogate(tiny_surrogate_config)
        for (na, pa), (nb, pb) in zip(a.named_parameters(),
                                      b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_checkpoint_variant_matches(self, tiny_surrogate_config, rng):
        from dataclasses import replace
        base = CoastalSurrogate(tiny_surrogate_config)
        ck = CoastalSurrogate(replace(tiny_surrogate_config,
                                      use_checkpoint=True))
        ck.load_state_dict(base.state_dict())
        cfg = tiny_surrogate_config
        H, W, D = cfg.mesh
        T = cfg.time_steps
        x3 = Tensor(rng.normal(size=(1, 3, H, W, D, T)).astype(np.float32))
        x2 = Tensor(rng.normal(size=(1, 1, H, W, T)).astype(np.float32))
        base.eval()
        ck.eval()
        with no_grad():
            a3, a2 = base(x3, x2)
            b3, b2 = ck(x3, x2)
        np.testing.assert_allclose(a3.data, b3.data, atol=1e-5)
        np.testing.assert_allclose(a2.data, b2.data, atol=1e-5)

    def test_patch_size_changes_param_count(self):
        """Table IV: smaller horizontal patches → more encoder params is
        not guaranteed, but counts must differ and stay positive."""
        small = CoastalSurrogate(SurrogateConfig(
            mesh=(32, 32, 6), time_steps=4, patch3d=(4, 4, 2),
            patch2d=(4, 4), embed_dim=8, num_heads=(2, 4, 8),
            window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2)))
        big = CoastalSurrogate(SurrogateConfig(
            mesh=(32, 32, 6), time_steps=4, patch3d=(8, 8, 2),
            patch2d=(8, 8), embed_dim=8, num_heads=(2, 4, 8),
            window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2)))
        assert small.num_parameters() != big.num_parameters()
