"""Forecasting workflow: episode forecasts, dual-model rollout, hybrid loop."""

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import numpy as np
import pytest

from repro.data import DataLoader, SlidingWindowDataset
from repro.ocean import OceanConfig, RomsLikeModel
from repro.physics import Verifier
from repro.swin import CoastalSurrogate
from repro.train import Trainer, TrainerConfig
from repro.workflow import (
    DualModelForecaster,
    FieldWindow,
    HybridWorkflow,
    SurrogateForecaster,
)


@pytest.fixture(scope="module")
def ocean():
    return RomsLikeModel(OceanConfig(nx=14, ny=15, nz=6,
                                     length_x=14_000.0, length_y=15_000.0))


@pytest.fixture(scope="module")
def reference(ocean):
    """16 true snapshots (4 episodes of T=4) plus episode-start states."""
    st = ocean.spinup(duration=0.25 * 86400.0)
    snaps, states, _ = ocean.simulate_with_states(st, 16, every=4)
    x3, x2 = ocean.stack_fields(snaps)
    window = FieldWindow(
        u3=np.moveaxis(x3[0], -1, 0), v3=np.moveaxis(x3[1], -1, 0),
        w3=np.moveaxis(x3[2], -1, 0), zeta=np.moveaxis(x2[0], -1, 0))
    return window, states


@pytest.fixture(scope="module")
def trained_forecaster(tiny_surrogate_config, tiny_bundle):
    """A briefly-trained surrogate wrapped for forecasting."""
    model = CoastalSurrogate(tiny_surrogate_config)
    store = tiny_bundle.open_train()
    norm = tiny_bundle.open_normalizer()
    ds = SlidingWindowDataset(store, norm, window=4, stride=4)
    trainer = Trainer(model, TrainerConfig(lr=2e-3))
    trainer.fit(DataLoader(ds, batch_size=1, shuffle=True, seed=0), epochs=2)
    return SurrogateForecaster(model, norm)


class TestFieldWindow:
    def test_snapshot_view(self, reference):
        window, _ = reference
        s = window.snapshot(3)
        assert s.T == 1
        np.testing.assert_array_equal(s.zeta[0], window.zeta[3])

    def test_concat(self, reference):
        window, _ = reference
        a, b = window.snapshot(0), window.snapshot(1)
        c = FieldWindow.concat([a, b])
        assert c.T == 2


class TestSurrogateForecaster:
    def test_forecast_shapes(self, trained_forecaster, reference):
        window, _ = reference
        ref = window.snapshot(0)
        ep = FieldWindow(window.u3[:4], window.v3[:4],
                         window.w3[:4], window.zeta[:4])
        out = trained_forecaster.forecast_episode(ep)
        assert out.fields.zeta.shape == ep.zeta.shape
        assert out.fields.u3.shape == ep.u3.shape
        assert out.inference_seconds > 0

    def test_initial_condition_preserved(self, trained_forecaster, reference):
        window, _ = reference
        ep = FieldWindow(window.u3[:4], window.v3[:4],
                         window.w3[:4], window.zeta[:4])
        out = trained_forecaster.forecast_episode(ep)
        np.testing.assert_array_equal(out.fields.zeta[0], ep.zeta[0])
        np.testing.assert_array_equal(out.fields.u3[0], ep.u3[0])

    def test_output_in_physical_units(self, trained_forecaster, reference):
        """Denormalised forecasts must be in physically plausible ranges."""
        window, _ = reference
        ep = FieldWindow(window.u3[:4], window.v3[:4],
                         window.w3[:4], window.zeta[:4])
        out = trained_forecaster.forecast_episode(ep)
        assert np.abs(out.fields.zeta).max() < 5.0       # metres
        assert np.abs(out.fields.u3).max() < 5.0         # m/s

    def test_wrong_window_length_raises(self, trained_forecaster, reference):
        window, _ = reference
        bad = FieldWindow(window.u3[:3], window.v3[:3],
                          window.w3[:3], window.zeta[:3])
        with pytest.raises(ValueError, match="time_steps"):
            trained_forecaster.forecast_episode(bad)

    def test_never_reads_future_interior(self, trained_forecaster,
                                         reference):
        """Corrupting the future *interior* must not change the forecast
        (the surrogate sees only rims for t ≥ 1)."""
        window, _ = reference
        ep = FieldWindow(window.u3[:4].copy(), window.v3[:4].copy(),
                         window.w3[:4].copy(), window.zeta[:4].copy())
        base = trained_forecaster.forecast_episode(ep).fields.zeta.copy()
        ep.zeta[2, 5:-5, 5:-5] += 99.0        # interior of a future slot
        ep.u3[2, 5:-5, 5:-5, :] += 99.0
        out = trained_forecaster.forecast_episode(ep).fields.zeta
        np.testing.assert_allclose(out[1], base[1], atol=1e-5)


class TestDualModel:
    def test_rollout_produces_full_horizon(self, trained_forecaster,
                                           reference):
        window, _ = reference
        dual = DualModelForecaster(trained_forecaster, trained_forecaster,
                                   coarse_ratio=4)
        out = dual.forecast(window)
        assert out.fields.T == 16      # T_coarse × ratio = 4 × 4
        assert out.episodes == 5       # 1 coarse + 4 fine

    def test_rollout_needs_enough_reference(self, trained_forecaster,
                                            reference):
        window, _ = reference
        short = FieldWindow(window.u3[:8], window.v3[:8],
                            window.w3[:8], window.zeta[:8])
        dual = DualModelForecaster(trained_forecaster, trained_forecaster,
                                   coarse_ratio=4)
        with pytest.raises(ValueError, match="fine snapshots"):
            dual.forecast(short)

    def test_ratio_must_match_fine_T(self, trained_forecaster):
        with pytest.raises(ValueError, match="coarse_ratio"):
            DualModelForecaster(trained_forecaster, trained_forecaster,
                                coarse_ratio=6).forecast(
                FieldWindow(*(np.zeros((24, 2, 2, 2)),) * 3,
                            zeta=np.zeros((24, 2, 2))))


class TestHybridWorkflow:
    @pytest.fixture()
    def workflow(self, trained_forecaster, ocean):
        verifier = Verifier(ocean.grid, ocean.depth, dt=1800.0)
        return HybridWorkflow(trained_forecaster, ocean, verifier)

    def test_run_produces_full_window(self, workflow, reference):
        window, states = reference
        fields, report = workflow.run(window, states)
        assert fields.T == window.T
        assert report.n_episodes == 4
        assert 0.0 <= report.pass_rate <= 1.0

    def test_strict_threshold_forces_fallback(self, workflow, reference):
        window, states = reference
        fields, report = workflow.run(window, states, threshold=1e-12)
        assert report.n_fallbacks == report.n_episodes
        assert report.fallback_seconds > 0
        # fallback output is solver output: mass-conserving by construction
        assert np.isfinite(fields.zeta).all()

    def test_loose_threshold_avoids_fallback(self, workflow, reference):
        window, states = reference
        fields, report = workflow.run(window, states, threshold=1e6)
        assert report.n_fallbacks == 0
        assert report.pass_rate == 1.0
        assert report.fallback_seconds == 0.0

    def test_fallback_fields_match_solver(self, workflow, reference, ocean):
        """With every episode failing, output after the IC snapshot must be
        genuine solver forecasts from the recorded states."""
        window, states = reference
        fields, report = workflow.run(window, states, threshold=1e-12)
        direct = ocean.forecast(states[0], 3)
        np.testing.assert_allclose(fields.zeta[1], direct[0].zeta,
                                   atol=1e-10)

    def test_report_time_accounting(self, workflow, reference):
        window, states = reference
        _, report = workflow.run(window, states)
        total = report.surrogate_seconds + report.fallback_seconds
        assert report.total_seconds == pytest.approx(total)

    def test_needs_state_per_episode(self, workflow, reference):
        window, states = reference
        with pytest.raises(ValueError, match="fallback state"):
            workflow.run(window, states[:1])


class ScriptedVerifier(Verifier):
    """Verifier whose pass/fail outcomes follow a per-call script.

    Residual numbers stay real; only the gate decision is overridden,
    so mixed pass/fail scenarios are reproducible regardless of how
    well the tiny surrogate happens to be trained.
    """

    def __init__(self, base: Verifier, script):
        super().__init__(base.grid, base.depth, base.threshold, base.dt)
        self._script = deque(script)

    def verify_batch(self, zeta_seqs, u3_seqs, v3_seqs, threshold=None):
        real = super().verify_batch(zeta_seqs, u3_seqs, v3_seqs, threshold)
        flags = self._script.popleft()
        assert len(flags) == len(real)
        return [replace(r, passed=bool(f)) for r, f in zip(real, flags)]


class TestHybridRunManyMixed:
    """Regression: mixed pass/fail across concurrent scenarios must put
    every fallback at the right (scenario, episode) slot and keep the
    report bookkeeping consistent."""

    # episode → gate decision per active scenario (2 scenarios, 4 episodes)
    SCRIPT = [(True, False), (False, True), (True, True), (False, False)]

    @pytest.fixture()
    def mixed_outs(self, trained_forecaster, ocean, reference):
        window, states = reference
        verifier = ScriptedVerifier(
            Verifier(ocean.grid, ocean.depth, dt=1800.0), self.SCRIPT)
        workflow = HybridWorkflow(trained_forecaster, ocean, verifier)
        return workflow.run_many([window, window], [states, states])

    def test_pass_rate_and_flags(self, mixed_outs):
        (_, rep0), (_, rep1) = mixed_outs
        assert [e.used_fallback for e in rep0.episodes] == \
            [False, True, False, True]
        assert [e.used_fallback for e in rep1.episodes] == \
            [True, False, False, True]
        assert rep0.n_fallbacks == rep1.n_fallbacks == 2
        assert rep0.pass_rate == rep1.pass_rate == 0.5
        assert [e.index for e in rep0.episodes] == [0, 1, 2, 3]

    def test_fallback_fields_land_at_correct_indices(self, mixed_outs,
                                                     ocean, reference):
        """A failed (scenario, episode) slot must hold genuine solver
        output from THAT episode's recorded state — and a passed slot
        must not."""
        _, states = reference
        T = 4
        (f0, _), (f1, _) = mixed_outs
        for fields, failed_eps in ((f0, (1, 3)), (f1, (0, 3))):
            for ep in failed_eps:
                direct = ocean.forecast(states[ep], T - 1)
                np.testing.assert_allclose(
                    fields.zeta[ep * T + 1], direct[0].zeta, atol=1e-10)
        # scenario 0 passed episode 0: surrogate output, not the solver
        direct0 = ocean.forecast(states[0], T - 1)
        assert not np.allclose(f0.zeta[1], direct0[0].zeta, atol=1e-10)

    def test_timing_consistency(self, mixed_outs):
        for _, report in mixed_outs:
            for ep in report.episodes:
                assert ep.surrogate_seconds > 0
                if ep.used_fallback:
                    assert ep.fallback_seconds > 0
                else:
                    assert ep.fallback_seconds == 0.0
            assert report.total_seconds == pytest.approx(
                report.surrogate_seconds + report.fallback_seconds)
            assert report.fallback_seconds > 0

    def test_out_of_band_pool_gives_identical_fields(
            self, trained_forecaster, ocean, reference):
        """Dispatching fallbacks to a thread pool must not change any
        output field (the solver is deterministic, chaining preserved)."""
        window, states = reference

        def run(pool):
            verifier = ScriptedVerifier(
                Verifier(ocean.grid, ocean.depth, dt=1800.0), self.SCRIPT)
            workflow = HybridWorkflow(trained_forecaster, ocean, verifier,
                                      fallback_pool=pool)
            return workflow.run_many([window, window], [states, states])

        serial = run(None)
        with ThreadPoolExecutor(max_workers=2) as pool:
            pooled = run(pool)
        for (fs, rs), (fp, rp) in zip(serial, pooled):
            np.testing.assert_array_equal(fs.zeta, fp.zeta)
            np.testing.assert_array_equal(fs.u3, fp.u3)
            np.testing.assert_array_equal(fs.v3, fp.v3)
            np.testing.assert_array_equal(fs.w3, fp.w3)
            assert [e.used_fallback for e in rs.episodes] == \
                [e.used_fallback for e in rp.episodes]
            assert rs.pass_rate == rp.pass_rate
