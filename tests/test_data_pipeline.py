"""Data pipeline: store, preprocessing, datasets, loader, builder."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    Normalizer,
    SlidingWindowDataset,
    VARIABLES,
    assemble_episode_input,
    build_archives,
    faces_to_centers_u,
    faces_to_centers_v,
    pad_mesh,
    padded_shape,
    resample_store,
    unpad_mesh,
)


class TestPreprocess:
    def test_faces_to_centers_u_linear(self, rng):
        u = rng.normal(size=(4, 6))
        c = faces_to_centers_u(u)
        assert c.shape == (4, 5)
        np.testing.assert_allclose(c, 0.5 * (u[:, :-1] + u[:, 1:]))

    def test_faces_to_centers_v_linear(self, rng):
        v = rng.normal(size=(5, 6))
        c = faces_to_centers_v(v)
        assert c.shape == (4, 6)

    def test_faces_to_centers_batched(self, rng):
        u = rng.normal(size=(7, 4, 6))  # leading time axis
        assert faces_to_centers_u(u).shape == (7, 4, 5)

    def test_padded_shape(self):
        assert padded_shape(898, 598, 5, 5) == (900, 600)  # the paper's case
        assert padded_shape(16, 16, 4, 4) == (16, 16)
        assert padded_shape(15, 14, 4, 4) == (16, 16)

    def test_pad_unpad_roundtrip(self, rng):
        f = rng.normal(size=(15, 14, 6))
        p = pad_mesh(f, 16, 16)
        assert p.shape == (16, 16, 6)
        np.testing.assert_array_equal(unpad_mesh(p, 15, 14), f)

    def test_pad_appends_zeros_high_side(self, rng):
        f = rng.normal(size=(3, 3))
        p = pad_mesh(f, 5, 4)
        assert np.all(p[3:, :] == 0) and np.all(p[:, 3:] == 0)
        np.testing.assert_array_equal(p[:3, :3], f)

    def test_pad_rejects_shrink(self, rng):
        with pytest.raises(ValueError):
            pad_mesh(rng.normal(size=(5, 5)), 4, 6)


class TestNormalizer:
    def test_fit_and_roundtrip(self, rng):
        x = rng.normal(3.0, 2.0, size=(100,))
        n = Normalizer.fit({"u3": x})
        z = n.normalize("u3", x)
        assert abs(z.mean()) < 1e-9
        np.testing.assert_allclose(n.denormalize("u3", z), x, rtol=1e-9)

    def test_save_load(self, tmp_path, rng):
        n = Normalizer.fit({"u3": rng.normal(size=10),
                            "zeta": rng.normal(size=10)})
        n.save(tmp_path / "norm.json")
        m = Normalizer.load(tmp_path / "norm.json")
        assert m.mean == n.mean and m.std == n.std

    def test_fit_from_store_matches_direct(self, tiny_bundle):
        store = tiny_bundle.open_train()
        n = Normalizer.fit_from_store(store)
        # recompute directly for one variable
        allz = np.stack([store.read_var("zeta", i).astype(np.float64)
                         for i in range(len(store))])
        assert abs(n.mean["zeta"] - allz.mean()) < 1e-4
        assert abs(n.std["zeta"] - allz.std()) < 1e-4

    def test_constant_field_safe(self):
        n = Normalizer.fit({"w3": np.zeros(10)})
        z = n.normalize("w3", np.zeros(5))
        assert np.isfinite(z).all()


class TestStore:
    def test_write_read_roundtrip(self, tiny_bundle):
        store = tiny_bundle.open_train()
        snap = store.read_snapshot(0)
        assert set(snap) == set(VARIABLES)
        assert snap["u3"].ndim == 3 and snap["zeta"].ndim == 2

    def test_meta_consistent(self, tiny_bundle, tiny_ocean_config):
        store = tiny_bundle.open_train()
        assert store.meta.mesh == (tiny_ocean_config.ny,
                                   tiny_ocean_config.nx,
                                   tiny_ocean_config.nz)
        assert store.meta.dtype == "float16"

    def test_read_window_stacks_time_first(self, tiny_bundle):
        store = tiny_bundle.open_train()
        w = store.read_window(0, 3)
        assert w["u3"].shape[0] == 3
        assert w["zeta"].shape[0] == 3

    def test_window_out_of_range(self, tiny_bundle):
        store = tiny_bundle.open_train()
        with pytest.raises(IndexError):
            store.read_window(len(store) - 1, 3)

    def test_unknown_variable(self, tiny_bundle):
        with pytest.raises(KeyError):
            tiny_bundle.open_train().read_var("salinity", 0)

    def test_io_accounting(self, tiny_bundle):
        store = tiny_bundle.open_train()
        before = store.bytes_read
        store.read_snapshot(0)
        assert store.bytes_read - before == store.snapshot_nbytes()

    def test_times_monotone(self, tiny_bundle):
        t = tiny_bundle.open_train().times()
        assert np.all(np.diff(t) > 0)

    def test_resample_store(self, tiny_bundle, tmp_path):
        src = tiny_bundle.open_train()
        dst = resample_store(src, tmp_path / "coarse", every=4)
        assert len(dst) == (len(src) + 3) // 4
        assert dst.meta.interval_s == src.meta.interval_s * 4
        np.testing.assert_array_equal(dst.read_var("zeta", 1),
                                      src.read_var("zeta", 4))


class TestEpisodeAssembly:
    def test_slot0_full_rest_rims(self, rng):
        T, H, W, D = 3, 6, 5, 2
        u = rng.normal(size=(T, H, W, D)).astype(np.float32)
        z = rng.normal(size=(T, H, W)).astype(np.float32)
        x3d, x2d = assemble_episode_input(u, u, u, z, boundary_width=1)
        assert x3d.shape == (3, H, W, D, T)
        assert x2d.shape == (1, H, W, T)
        # slot 0 carries the full field
        np.testing.assert_array_equal(x3d[0, ..., 0], u[0])
        # later slots: interior zeroed
        assert np.all(x3d[0, 1:-1, 1:-1, :, 1] == 0.0)
        np.testing.assert_array_equal(x2d[0, 0, :, 1], z[1][0, :])

    def test_wider_boundary(self, rng):
        T, H, W, D = 2, 8, 8, 2
        u = rng.normal(size=(T, H, W, D)).astype(np.float32)
        z = rng.normal(size=(T, H, W)).astype(np.float32)
        x3d, _ = assemble_episode_input(u, u, u, z, boundary_width=2)
        assert np.all(x3d[0, 2:-2, 2:-2, :, 1] == 0.0)
        np.testing.assert_array_equal(x3d[0, :2, :, :, 1], u[1][:2])


class TestDataset:
    def test_length_from_stride(self, tiny_bundle):
        store = tiny_bundle.open_train()
        norm = tiny_bundle.open_normalizer()
        ds = SlidingWindowDataset(store, norm, window=4, stride=2)
        assert len(ds) == (len(store) - 4) // 2 + 1

    def test_sample_shapes_padded(self, tiny_dataset, tiny_ocean_config):
        s = tiny_dataset[0]
        H, W = tiny_dataset.padded_hw
        D = tiny_ocean_config.nz
        assert s.x3d.shape == (3, H, W, D, 4)
        assert s.x2d.shape == (1, H, W, 4)
        assert s.y3d.shape == s.x3d.shape
        assert s.y2d.shape == s.x2d.shape

    def test_sample_dtype_fp16(self, tiny_dataset):
        assert tiny_dataset[0].x3d.dtype == np.float16

    def test_target_is_normalised_full_field(self, tiny_dataset,
                                             tiny_bundle):
        s = tiny_dataset[0]
        norm = tiny_bundle.open_normalizer()
        raw = tiny_bundle.open_train().read_var("zeta", s.start)
        expected = norm.normalize("zeta", raw.astype(np.float32))
        H, W = raw.shape
        np.testing.assert_allclose(s.y2d[0, :H, :W, 0], expected, atol=2e-3)

    def test_index_out_of_range(self, tiny_dataset):
        with pytest.raises(IndexError):
            tiny_dataset[len(tiny_dataset)]

    def test_window_too_large(self, tiny_bundle):
        store = tiny_bundle.open_train()
        norm = tiny_bundle.open_normalizer()
        with pytest.raises(ValueError):
            SlidingWindowDataset(store, norm, window=10_000)

    def test_split_is_partition(self, tiny_dataset):
        a, b = tiny_dataset.split(0.75, seed=1)
        assert len(a) + len(b) == len(tiny_dataset)
        assert set(a.starts).isdisjoint(b.starts)


class TestLoader:
    def test_batches_cover_dataset(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=2, shuffle=False)
        seen = [s for b in loader for s in b.starts]
        assert sorted(seen) == sorted(tiny_dataset.starts)

    def test_batch_shapes(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=2, shuffle=False)
        b = next(iter(loader))
        assert b.x3d.shape[0] == 2
        assert b.batch_size == 2
        assert b.nbytes() > 0

    def test_drop_last(self, tiny_dataset):
        n = len(tiny_dataset)
        bs = 2 if n % 2 else 3
        if n % bs == 0:
            pytest.skip("dataset evenly divisible; nothing to drop")
        loader = DataLoader(tiny_dataset, batch_size=bs, drop_last=True)
        assert len(loader) == n // bs

    def test_shuffle_reproducible(self, tiny_dataset):
        l1 = DataLoader(tiny_dataset, batch_size=1, shuffle=True, seed=9)
        l2 = DataLoader(tiny_dataset, batch_size=1, shuffle=True, seed=9)
        s1 = [b.starts[0] for b in l1]
        s2 = [b.starts[0] for b in l2]
        assert s1 == s2

    def test_shuffle_changes_across_epochs(self, tiny_dataset):
        if len(tiny_dataset) < 4:
            pytest.skip("too few samples to detect shuffling")
        loader = DataLoader(tiny_dataset, batch_size=1, shuffle=True, seed=0)
        e1 = [b.starts[0] for b in loader]
        e2 = [b.starts[0] for b in loader]
        assert e1 != e2

    def test_prefetch_worker_delivers_same_data(self, tiny_dataset):
        sync = DataLoader(tiny_dataset, batch_size=1, shuffle=False)
        pre = DataLoader(tiny_dataset, batch_size=1, shuffle=False,
                         num_workers=1, prefetch_factor=2)
        for bs, bp in zip(sync, pre):
            np.testing.assert_array_equal(bs.x3d, bp.x3d)

    def test_invalid_batch_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            DataLoader(tiny_dataset, batch_size=0)


class TestBuilder:
    def test_archives_created(self, tiny_bundle):
        assert tiny_bundle.train.exists()
        assert tiny_bundle.test.exists()
        assert tiny_bundle.normalizer.exists()

    def test_builder_is_idempotent(self, tiny_bundle, tiny_ocean_config):
        again = build_archives(tiny_bundle.root, tiny_ocean_config,
                               train_days=0.5, test_days=0.25,
                               spinup_days=0.25)
        assert len(again.open_train()) == len(tiny_bundle.open_train())

    def test_test_follows_train_in_time(self, tiny_bundle):
        t_train = tiny_bundle.open_train().times()
        t_test = tiny_bundle.open_test().times()
        assert t_test[0] > t_train[-1]
