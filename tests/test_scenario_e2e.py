"""End-to-end scenario serving: rolling forecasts for K basins through
the full stack — affinity, cache locality, and bitwise replay.

Three guarantees, checked on the real ``ForecastServer``:

* **placement** — keyed by basin name, every engine-served request of
  a basin lands on exactly the replica ``stable_key_hash(name) % K``;
* **locality** — rolling duplicates actually convert into cache/dedup
  hits at a floor rate, so the scenario exercises the layers it claims;
* **bitwise** — closed-loop rolling results equal a direct
  ``ForecastEngine.forecast_batch`` loop, and a recorded trace replayed
  through two fresh servers produces bitwise-identical responses.
"""

import numpy as np
import pytest

from conftest import assert_windows_equal

from repro.scenario import (
    ScenarioFactory,
    TrafficModel,
    replay_trace,
    simulate_trace,
)
from repro.serve import ForecastServer, window_key
from repro.serve.pool import stable_key_hash

WORKERS = 3


@pytest.fixture(scope="module")
def factory():
    return ScenarioFactory(seed=11)


def manual_server(engine, **kwargs):
    kwargs.setdefault("workers", WORKERS)
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait", 10.0)
    kwargs.setdefault("router", "key-affinity")
    kwargs.setdefault("cache_bytes", 1 << 24)
    return ForecastServer(engine, autostart=False, **kwargs)


class TestRollingForecastsEndToEnd:
    DUPES = 3      # submissions of the current window per basin per round
    ROUNDS = 3

    def test_affinity_hit_rate_and_closed_loop_bitwise(self, factory,
                                                       engine):
        """K basins roll forward closed-loop; the server must pin each
        basin to its hash replica, convert duplicates into hits, and
        reproduce the direct engine loop bitwise."""
        names = factory.basin_names
        served_futures = {n: [] for n in names}
        hits = total = 0
        server_results = {}

        with manual_server(engine) as server:
            rolls = {n: factory.rolling(n) for n in names}
            for _ in range(self.ROUNDS):
                futures = {n: [server.submit(rolls[n].current,
                                             route_key=n)
                               for _ in range(self.DUPES)]
                           for n in names}
                server.flush()
                for n in names:
                    results = [f.result(timeout=60) for f in futures[n]]
                    for f in results[1:]:       # duplicates agree
                        assert_windows_equal(results[0].fields, f.fields)
                    for f in futures[n]:
                        total += 1
                        if f.cache_hit:
                            hits += 1
                        else:
                            served_futures[n].append(f)
                    server_results.setdefault(n, []).append(results[0])
                    rolls[n].advance(forecast=results[0])

        # placement: every engine-served request on the hash replica
        for n in names:
            workers = {f.worker_id for f in served_futures[n]}
            assert workers == {stable_key_hash(n) % WORKERS}, n

        # locality: per round each basin needs one engine pass, the
        # duplicates follow it (dedup) or hit the cache
        assert hits / total >= (self.DUPES - 1) / self.DUPES

        # bitwise: the same closed loop driven directly on the engine
        direct_rolls = {n: factory.rolling(n) for n in names}
        for r in range(self.ROUNDS):
            for n in names:
                direct = engine.forecast_batch([direct_rolls[n].current])[0]
                got = server_results[n][r]
                assert_windows_equal(got.fields, direct.fields)
                direct_rolls[n].advance(forecast=direct)

    def test_dedup_leaders_share_with_followers(self, factory, engine):
        """A burst of one basin's current window takes one engine slot;
        the metrics must show the dedup actually happened."""
        with manual_server(engine, workers=2) as server:
            window = factory.rolling("punta-gorda").current
            futures = [server.submit(window, route_key="punta-gorda")
                       for _ in range(5)]
            server.flush()
            results = [f.result(timeout=60) for f in futures]
            for r in results[1:]:
                assert_windows_equal(results[0].fields, r.fields)
            metrics = server.metrics()
        assert sum(1 for f in futures if not f.cache_hit) == 1
        assert metrics["deduped_requests"] >= 4


class TestTraceReplayBitwise:
    def make_trace(self, factory):
        model = TrafficModel.from_factory(factory, base_rate=4.0,
                                          unique_fraction=0.3,
                                          advance_every_s=1.0)
        return simulate_trace(model, duration_s=4.0, seed=17)

    def test_two_fresh_servers_produce_identical_responses(self, factory,
                                                           engine):
        trace = self.make_trace(factory)

        def run():
            responses = []
            with manual_server(engine) as server:
                replay_trace(trace, server, ScenarioFactory(seed=11),
                             mode="virtual", flush_every=4,
                             responses=responses).check()
            return responses

        a, b = run(), run()
        assert len(a) == len(b) == trace.n_requests
        for (ev_a, res_a), (ev_b, res_b) in zip(a, b):
            assert ev_a == ev_b
            assert_windows_equal(res_a.fields, res_b.fields)

    def test_replayed_responses_match_direct_engine(self, factory,
                                                    engine):
        """Every response of a replay equals the direct
        ``forecast_batch`` on the window the event denotes — the server
        adds placement, batching, and caching, never different numbers.
        """
        trace = self.make_trace(factory)
        responses = []
        with manual_server(engine) as server:
            replay_trace(trace, server, ScenarioFactory(seed=11),
                         mode="virtual", flush_every=4,
                         responses=responses).check()

        # mirror the replay's window reconstruction open-loop
        mirror = ScenarioFactory(seed=11)
        rolls = {}
        direct_cache = {}
        i = 0
        for event in trace.events:
            if event.kind == "advance":
                rolls.setdefault(
                    event.basin, mirror.rolling(event.basin)).advance()
                continue
            if event.kind == "unique":
                window = mirror.basin(event.basin).window(event.param)
            else:
                window = rolls.setdefault(
                    event.basin, mirror.rolling(event.basin)).current
            got_event, got = responses[i]
            i += 1
            assert got_event == event
            key = window_key(window)
            if key not in direct_cache:
                direct_cache[key] = engine.forecast_batch([window])[0]
            assert_windows_equal(got.fields, direct_cache[key].fields)
        assert i == len(responses)

    def test_round_tripped_trace_replays_bitwise(self, factory, engine,
                                                 tmp_path):
        from repro.scenario import TrafficTrace

        trace = self.make_trace(factory)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = TrafficTrace.load(path)

        def run(t):
            responses = []
            with manual_server(engine) as server:
                replay_trace(t, server, ScenarioFactory(seed=11),
                             mode="virtual", flush_every=4,
                             responses=responses).check()
            return responses

        for (_, res_a), (_, res_b) in zip(run(trace), run(loaded)):
            assert_windows_equal(res_a.fields, res_b.fields)
