#!/usr/bin/env python
"""Docs link check: fail on broken relative links in markdown files.

Scans ``README.md`` and ``docs/*.md`` (or any paths given on the
command line) for inline markdown links, resolves every relative
target against the containing file, and exits non-zero listing the
targets that do not exist.  Anchors are checked too — both
cross-document (``file.md#section``) and intra-document
(``#section``): the anchor must match a heading slug in the target
file (GitHub slug rules: lowercase, punctuation stripped, spaces to
hyphens, and repeated headings suffixed ``-1``, ``-2``, …) or an
explicit HTML anchor (``<a id="...">`` / ``<a name="...">``).
External links (``http(s)://``, ``mailto:``) are skipped — CI must not
depend on the network.  Fenced code blocks are stripped first so
link-shaped code examples cannot false-positive.

Used by CI's lint job (see ``.github/workflows/ci.yml``); run locally
with::

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
HTML_ANCHOR = re.compile(r"<a\s+(?:id|name)=[\"']([^\"']+)[\"']")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of one heading line."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(md_path: Path) -> set:
    """Every anchor the file defines: heading slugs (with GitHub's
    ``-N`` suffixes for repeated headings) plus explicit HTML anchors."""
    text = FENCE.sub("", md_path.read_text(encoding="utf-8"))
    slugs, seen = set(), {}
    for heading in HEADING.findall(text):
        slug = slugify(heading)
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    slugs.update(HTML_ANCHOR.findall(text))
    return slugs


def check_file(md_path: Path) -> list:
    """All broken link descriptions in one markdown file."""
    text = FENCE.sub("", md_path.read_text(encoding="utf-8"))
    broken = []
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        dest = (md_path.parent / path_part).resolve() if path_part \
            else md_path
        if not dest.exists():
            broken.append(f"{md_path}: broken link -> {target}")
            continue
        if anchor and dest.suffix == ".md":
            if slugify(anchor) not in heading_slugs(dest):
                broken.append(f"{md_path}: broken anchor -> {target}")
    return broken


def main(argv=None) -> int:
    args = (argv if argv is not None else sys.argv[1:])
    root = Path(__file__).resolve().parent.parent
    files = [Path(a) for a in args] if args else \
        [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    broken = []
    for f in files:
        if not f.exists():
            broken.append(f"{f}: file does not exist")
            continue
        broken.extend(check_file(f))
    for line in broken:
        print(line)
    print(f"checked {len(files)} file(s): "
          f"{'FAIL' if broken else 'ok'} ({len(broken)} broken)")
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main())
