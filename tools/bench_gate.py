#!/usr/bin/env python
"""Gate benchmark regressions from the BENCH_*.json trajectories.

``bench_batched_inference.py`` and ``bench_serving.py`` write
machine-readable records (timestamped medians, speedups, peak buffer
bytes) with a ``gate.higher_better`` list naming their
throughput-figure-of-merit keys.  This tool compares a fresh record
against the previous run's baseline and fails on a >20% regression of
any gated key — so a PR cannot silently lose the compiled-path
throughput the execution layer bought.

Usage::

    python tools/bench_gate.py BENCH_inference.json BENCH_serving.json \
        [--baseline-dir .bench_baselines] [--threshold 0.2] \
        [--quick] [--update-baseline]

* No baseline yet (first run on a machine / in a CI cache): the gate
  passes and, with ``--update-baseline``, seeds the baseline.
* ``--quick``: informational mode — regressions are reported but the
  exit code stays 0.  CI smoke runs use this: their single short trial
  is far too noisy to gate a perf ratio on (the same policy the
  benchmarks themselves apply to their speed gates).
* Baselines are per-machine artifacts; they are **not** committed.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.20


def compare(current: dict, baseline: dict, threshold: float) -> list[str]:
    """Return regression messages (empty = no regression)."""
    problems = []
    keys = current.get("gate", {}).get("higher_better", [])
    cur_m = current.get("metrics", {})
    base_m = baseline.get("metrics", {})
    for key in keys:
        if key not in cur_m:
            problems.append(f"gated key {key!r} missing from current run")
            continue
        if key not in base_m:
            continue        # baseline predates this metric: nothing to gate
        new, old = float(cur_m[key]), float(base_m[key])
        if old <= 0:
            continue
        drop = 1.0 - new / old
        if drop > threshold:
            problems.append(
                f"{key}: {old:.2f} -> {new:.2f} "
                f"({100 * drop:.1f}% regression > {100 * threshold:.0f}%)")
    return problems


def gate_file(path: Path, baseline_dir: Path, threshold: float,
              update: bool, enforcing: bool) -> tuple[bool, list[str]]:
    """Gate one record; returns (had_baseline, problems)."""
    current = json.loads(path.read_text())
    baseline_path = baseline_dir / path.name
    if not baseline_path.exists():
        if update:
            baseline_dir.mkdir(parents=True, exist_ok=True)
            shutil.copy(path, baseline_path)
        return False, []
    baseline = json.loads(baseline_path.read_text())
    problems = compare(current, baseline, threshold)
    # Baseline semantics: compare against the *previous run*, so in
    # informational (--quick) mode always roll forward — keeping a
    # lucky-fast baseline would ratchet and report regressions forever
    # on normal run-to-run noise.  In enforcing mode a FAILED gate must
    # NOT overwrite the baseline: otherwise the regressed run becomes
    # its own baseline and the failure self-heals on a plain re-run.
    if update and (not problems or not enforcing):
        shutil.copy(path, baseline_path)
    return True, problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("records", nargs="+", type=Path,
                    help="BENCH_*.json files to gate")
    ap.add_argument("--baseline-dir", type=Path,
                    default=Path(".bench_baselines"),
                    help="where previous runs' records live")
    ap.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                    help="maximum tolerated fractional drop (default 0.2)")
    ap.add_argument("--quick", action="store_true",
                    help="informational: report regressions, exit 0")
    ap.add_argument("--update-baseline", action="store_true",
                    help="seed/refresh the baseline from the current "
                         "records (always rolls forward: the gate "
                         "compares consecutive runs)")
    args = ap.parse_args(argv)

    failed = False
    for path in args.records:
        if not path.exists():
            print(f"bench_gate: {path} not found "
                  "(benchmark not run?) — skipping")
            continue
        had_baseline, problems = gate_file(
            path, args.baseline_dir, args.threshold, args.update_baseline,
            enforcing=not args.quick)
        if not had_baseline:
            seeded = " (baseline seeded)" if args.update_baseline else ""
            print(f"bench_gate: {path.name}: no baseline yet{seeded} — pass")
        elif not problems:
            print(f"bench_gate: {path.name}: within "
                  f"{100 * args.threshold:.0f}% of baseline — pass")
        else:
            for p in problems:
                print(f"bench_gate: {path.name}: {p}")
            failed = True
    if failed and args.quick:
        print("bench_gate: regressions found, but --quick runs are "
              "informational (short trials are too noisy to gate on)")
        return 0
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
