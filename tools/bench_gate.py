#!/usr/bin/env python
"""Gate benchmark regressions from the BENCH_*.json trajectories.

``bench_batched_inference.py``, ``bench_serving.py`` and
``bench_operations.py`` write machine-readable records (timestamped
medians, speedups, peak buffer bytes) with a ``gate.higher_better``
list naming their throughput-figure-of-merit keys.  This tool compares
a fresh record against the previous run's baseline and fails on a >20%
regression of any gated key — so a PR cannot silently lose the
compiled-path throughput the execution layer bought.

Usage::

    python tools/bench_gate.py BENCH_inference.json BENCH_serving.json \
        [--baseline-dir .bench_baselines] [--threshold 0.2] \
        [--quick] [--update-baseline] [--append-history FILE]

* No baseline yet (first run on a machine / in a CI cache): the gate
  passes and, with ``--update-baseline``, seeds the baseline.
* ``--quick``: informational mode — regressions are reported but the
  exit code stays 0.  CI smoke runs use this: their single short trial
  is far too noisy to gate a perf ratio on (the same policy the
  benchmarks themselves apply to their speed gates).
* In enforcing (non ``--quick``) mode, baselines are written **only
  after the whole gate passes**.  A per-file update would let a failed
  run upload its own regressed numbers as the next baseline (the CI
  cache key is per run-id, so whatever is on disk when the cache is
  saved wins) — and the failure would then self-heal on a plain
  re-run, which defeats the gate.
* ``--append-history`` appends one JSON line per gated record to a
  trajectory log (``BENCH_history.jsonl`` in CI) — pass or fail, with
  the verdict recorded — so nightly runs accumulate a perf history
  instead of each run overwriting the last.
* Baselines are per-machine artifacts; they are **not** committed.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.20


def compare(current: dict, baseline: dict, threshold: float) -> list[str]:
    """Return regression messages (empty = no regression)."""
    problems = []
    keys = current.get("gate", {}).get("higher_better", [])
    cur_m = current.get("metrics", {})
    base_m = baseline.get("metrics", {})
    for key in keys:
        if key not in cur_m:
            problems.append(f"gated key {key!r} missing from current run")
            continue
        if key not in base_m:
            continue        # baseline predates this metric: nothing to gate
        new, old = float(cur_m[key]), float(base_m[key])
        if old <= 0:
            continue
        drop = 1.0 - new / old
        if drop > threshold:
            problems.append(
                f"{key}: {old:.2f} -> {new:.2f} "
                f"({100 * drop:.1f}% regression > {100 * threshold:.0f}%)")
    return problems


def gate_file(path: Path, baseline_dir: Path,
              threshold: float) -> tuple[bool, list[str]]:
    """Gate one record; returns (had_baseline, problems).

    Pure evaluation — baseline updates happen in :func:`main`, after
    every record has been gated, so a failing run can never promote
    its own numbers.
    """
    current = json.loads(path.read_text())
    baseline_path = baseline_dir / path.name
    if not baseline_path.exists():
        return False, []
    baseline = json.loads(baseline_path.read_text())
    return True, compare(current, baseline, threshold)


def append_history(history_path: Path, path: Path, had_baseline: bool,
                   problems: list[str]) -> None:
    """Append one trajectory line for a gated record."""
    record = json.loads(path.read_text())
    line = {
        "file": path.name,
        "benchmark": record.get("benchmark"),
        "timestamp": record.get("timestamp"),
        "quick": record.get("quick"),
        "cores": record.get("cores"),
        "metrics": record.get("metrics", {}),
        "had_baseline": had_baseline,
        "gate_passed": not problems,
        "problems": problems,
    }
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with history_path.open("a") as fh:
        fh.write(json.dumps(line) + "\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("records", nargs="+", type=Path,
                    help="BENCH_*.json files to gate")
    ap.add_argument("--baseline-dir", type=Path,
                    default=Path(".bench_baselines"),
                    help="where previous runs' records live")
    ap.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                    help="maximum tolerated fractional drop (default 0.2)")
    ap.add_argument("--quick", action="store_true",
                    help="informational: report regressions, exit 0")
    ap.add_argument("--update-baseline", action="store_true",
                    help="roll the baseline forward from the current "
                         "records (the gate compares consecutive runs); "
                         "in enforcing mode this happens only after the "
                         "whole gate passed")
    ap.add_argument("--append-history", type=Path, default=None,
                    metavar="FILE",
                    help="append one JSON line per record to this "
                         "trajectory log (pass or fail)")
    args = ap.parse_args(argv)

    enforcing = not args.quick
    results: list[tuple[Path, bool, list[str]]] = []
    for path in args.records:
        if not path.exists():
            print(f"bench_gate: {path} not found "
                  "(benchmark not run?) — skipping")
            continue
        had_baseline, problems = gate_file(
            path, args.baseline_dir, args.threshold)
        results.append((path, had_baseline, problems))
        if args.append_history is not None:
            append_history(args.append_history, path, had_baseline,
                           problems)

    failed = any(problems for _, _, problems in results)

    # Baseline semantics: compare against the *previous run*, so in
    # informational (--quick) mode always roll forward — keeping a
    # lucky-fast baseline would ratchet and report regressions forever
    # on normal run-to-run noise.  In enforcing mode a FAILED gate must
    # NOT write ANY baseline: the CI cache uploads whatever is on disk
    # even when the job fails, so a per-file or pre-gate update would
    # make the regressed run its own baseline and the failure would
    # self-heal on a plain re-run.
    update = args.update_baseline and (not failed or not enforcing)
    for path, had_baseline, problems in results:
        if update:
            args.baseline_dir.mkdir(parents=True, exist_ok=True)
            shutil.copy(path, args.baseline_dir / path.name)
        if not had_baseline:
            seeded = " (baseline seeded)" if update else ""
            print(f"bench_gate: {path.name}: no baseline yet{seeded} — pass")
        elif not problems:
            print(f"bench_gate: {path.name}: within "
                  f"{100 * args.threshold:.0f}% of baseline — pass")
        else:
            for p in problems:
                print(f"bench_gate: {path.name}: {p}")
    if failed and enforcing and args.update_baseline:
        print("bench_gate: gate failed — baselines left untouched "
              "(a failed run must not become its own baseline)")
    if failed and args.quick:
        print("bench_gate: regressions found, but --quick runs are "
              "informational (short trials are too noisy to gate on)")
        return 0
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
