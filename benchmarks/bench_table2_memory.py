"""Table II — memory requirement per training-pipeline stage.

Regenerates the stage/size/tier/bandwidth table for (a) the paper's
full 900×600×12 configuration via the analytic footprint model, and
(b) the bench configuration with *measured* sample bytes and measured
SSD→RAM staging throughput of the snapshot store.
"""

import numpy as np
import pytest

from repro.eval import format_table
from repro.hpc import NodeSpec, pipeline_memory_table, sample_nbytes
from repro.swin import SurrogateConfig

from conftest import SURROGATE, T

GB = 1024 ** 3


def test_table2_report(env, capsys):
    node = NodeSpec()
    paper_cfg = SurrogateConfig.paper()

    rows = []
    for f in pipeline_memory_table(paper_cfg, node, batch=1):
        rows.append([f.stage, f"{f.gigabytes:.1f} GB", f.path,
                     f"{f.bandwidth/1e9:.0f} GB/s"])

    with capsys.disabled():
        print()
        print(format_table(
            ["Stage", "Memory", "Data stores", "Throughput"],
            rows,
            title="TABLE II — memory per stage (paper config, batch 1, "
                  "no ckpt; paper reports 4 / 42 / 12 GB)"))

        ck = pipeline_memory_table(paper_cfg, node, batch=2,
                                   checkpointing=True)
        acts = [r for r in ck if "Processing" in r.stage][0]
        print(f"\nWith SW-MSA checkpointing at batch 2: activations "
              f"{acts.gigabytes:.1f} GB — fits the 80 GB A100, which is "
              f"the paper's §III-D claim.")
        print(f"Bench-config sample size: "
              f"{sample_nbytes(SURROGATE)/1e6:.1f} MB")
        print("Note: the paper's 12 GB 'parameter updating' row includes "
              "framework-reserved GPU memory; raw params+grads+Adam of the "
              "3.4M-parameter model is ~54 MB.")

    acts_no_ck = [r for r in pipeline_memory_table(paper_cfg, node, batch=1)
                  if "Processing" in r.stage][0]
    assert 25 * GB <= acts_no_ck.nbytes <= 60 * GB


@pytest.mark.benchmark(group="table2")
def test_table2_sample_loading(env, benchmark):
    """Measured stage 1: staging one full training window from disk."""
    store = env.bundle.open_train()

    def load():
        return store.read_window(0, T)

    out = benchmark(load)
    nbytes = sum(a.nbytes for a in out.values())
    assert nbytes > 0


@pytest.mark.benchmark(group="table2")
def test_table2_sample_processing(env, benchmark):
    """Measured stage 2: one forward pass (the activation producer)."""
    from repro.tensor import Tensor, no_grad
    cfg = env.fine_model.config
    H, W, D = cfg.mesh
    rng = np.random.default_rng(0)
    x3 = Tensor(rng.normal(size=(1, 3, H, W, D, T)).astype(np.float32))
    x2 = Tensor(rng.normal(size=(1, 1, H, W, T)).astype(np.float32))
    env.fine_model.eval()

    def fwd():
        with no_grad():
            return env.fine_model(x3, x2)

    benchmark(fwd)
