"""Table III — MAE and RMSE of the surrogate at both horizons.

Evaluates the fine model on every non-overlapping test episode
(≈ the 12-hour rows) and the dual coarse+fine rollout on full horizons
(≈ the 12-day rows), in physical units over wet cells.  The expected
*shape* from the paper: u, v errors O(1e-2) m/s; w errors two-plus
orders smaller; ζ errors larger than u, v in magnitude units.
"""

import numpy as np
import pytest

from repro.eval import aggregate_errors, compute_errors, format_sci, format_table

from conftest import COARSE_EVERY, T

HORIZON = T * COARSE_EVERY


def _fine_errors(env):
    wet = env.ocean.solver.wet
    errs = []
    for w in env.test_windows(length=T):
        pred = env.fine_forecaster.forecast_episode(w).fields
        errs.append(compute_errors(pred, w, wet=wet))
    return aggregate_errors(errs)


def _dual_errors(env):
    wet = env.ocean.solver.wet
    errs = []
    for w in env.test_windows(length=HORIZON):
        pred = env.dual.forecast(w).fields
        errs.append(compute_errors(pred, w, wet=wet))
    return aggregate_errors(errs)


def test_table3_report(env, capsys):
    fine = _fine_errors(env)
    dual = _dual_errors(env)

    def row(tag, e):
        return ([tag] + [format_sci(v) for v in e.row("mae")]
                + [format_sci(v) for v in e.row("rmse")])

    with capsys.disabled():
        print()
        print(format_table(
            ["Horizon", "MAE u", "MAE v", "MAE w", "MAE ζ",
             "RMSE u", "RMSE v", "RMSE w", "RMSE ζ"],
            [row("12-hour analog (fine)", fine),
             row("12-day analog (dual)", dual)],
            title="TABLE III — surrogate forecast errors "
                  "(paper: MAE u,v ≈ 2e-2 m/s, w ≈ 1e-4 m/s, ζ ≈ 5e-2 m)"))

    # the paper's characteristic scale separation must reproduce
    assert fine.mae["w"] < 0.1 * fine.mae["u"]
    assert dual.mae["w"] < 0.1 * dual.mae["u"]
    # all errors finite and positive
    for e in (fine, dual):
        for v in list(e.mae.values()) + list(e.rmse.values()):
            assert np.isfinite(v) and v >= 0


@pytest.mark.benchmark(group="table3")
def test_table3_fine_inference(env, benchmark):
    """Paper: 12-hour forecast takes 0.888 s on one A100."""
    w = env.test_windows(length=T)[0]
    benchmark(lambda: env.fine_forecaster.forecast_episode(w))


@pytest.mark.benchmark(group="table3")
def test_table3_dual_inference(env, benchmark):
    """Paper: 12-day forecast takes 22.2 s on one A100."""
    w = env.test_windows(length=HORIZON)[0]
    benchmark.pedantic(lambda: env.dual.forecast(w), rounds=2, iterations=1)
