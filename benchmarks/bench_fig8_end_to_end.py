"""Figure 8 — end-to-end hybrid workflow time and speedup vs threshold.

Runs the verify-or-fallback workflow over the test horizon at a sweep
of thresholds: strict thresholds force ROMS fallbacks (cost approaches
the pure solver), loose thresholds approach pure-surrogate cost.  The
measured pass rates also drive the paper-scale projection (cost model's
512-core episode cost + the paper's 22.2 s surrogate), regenerating the
1.8× → 446× speedup curve shape.
"""

import time

import numpy as np
import pytest

from repro.eval import format_table
from repro.hpc import RomsPerfModel, RomsWorkload
from repro.workflow import FieldWindow, HybridWorkflow

from conftest import T

N_EPISODES = 6
HORIZON = N_EPISODES * T


def _reference_with_states(env):
    ocean = env.ocean
    st = ocean.spinup(duration=0.5 * 86400.0)
    snaps, states, _ = ocean.simulate_with_states(st, HORIZON, every=T)
    x3, x2 = ocean.stack_fields(snaps)
    window = FieldWindow(
        np.moveaxis(x3[0], -1, 0), np.moveaxis(x3[1], -1, 0),
        np.moveaxis(x3[2], -1, 0), np.moveaxis(x2[0], -1, 0))
    return window, states


def test_fig8_report(env, capsys):
    window, states = _reference_with_states(env)
    wf = HybridWorkflow(env.fine_forecaster, env.ocean, env.verifier)

    # threshold sweep spanning the residual distribution
    probe = []
    for ep in range(N_EPISODES):
        sl = slice(ep * T, (ep + 1) * T)
        ref = FieldWindow(window.u3[sl], window.v3[sl], window.w3[sl],
                          window.zeta[sl])
        pred = env.fine_forecaster.forecast_episode(ref).fields
        probe.append(env.verifier.verify(pred.zeta, pred.u3,
                                         pred.v3).mean_residual)
    thresholds = np.quantile(probe, [0.0, 0.33, 0.66, 1.0]) \
        * [0.99, 1.0, 1.0, 1.01]

    # pure-solver baseline for the same horizon
    t0 = time.perf_counter()
    env.ocean.forecast(states[0], HORIZON - 1)
    solver_seconds = time.perf_counter() - t0

    # paper-scale projection constants
    perf = RomsPerfModel.calibrated_to_paper()
    paper_wl = RomsWorkload((898, 598, 12), 12.0, 512)
    paper_roms = perf.simulation_seconds(paper_wl)
    paper_ai = 22.2
    episode_days = 12.0 / N_EPISODES

    rows = []
    for thr in thresholds:
        _, report = wf.run(window, states, threshold=float(thr))
        measured = report.total_seconds
        speedup = solver_seconds / measured
        fail = report.n_fallbacks
        projected = paper_ai + fail * perf.episode_seconds(paper_wl,
                                                           episode_days)
        rows.append([
            f"{thr:.2e}",
            f"{report.pass_rate:.2f}",
            f"{measured:.2f}",
            f"{speedup:.1f}x",
            f"{projected:,.0f}",
            f"{paper_roms / projected:.1f}x",
        ])

    with capsys.disabled():
        print()
        print(format_table(
            ["Threshold [m/s]", "Pass rate", "Measured [s]",
             "Measured speedup", "Paper-scale [s]", "Paper-scale speedup"],
            rows,
            title=f"FIGURE 8 — hybrid workflow over {N_EPISODES} episodes "
                  f"(paper: 5542 s/1.8x at strict → 22.2 s/446x at loose); "
                  f"pure solver here: {solver_seconds:.2f} s"))

    # Fig. 8 shape: cost non-increasing, speedup non-decreasing in threshold
    costs = [float(r[2]) for r in rows]
    assert all(a >= b - 0.25 * abs(a) for a, b in zip(costs, costs[1:])), \
        "hybrid cost should fall as the threshold loosens"
    # strictest threshold forces at least one fallback; loosest none
    assert float(rows[0][1]) < 1.0
    assert float(rows[-1][1]) == 1.0


@pytest.mark.benchmark(group="fig8")
def test_fig8_hybrid_run(env, benchmark):
    window, states = _reference_with_states(env)
    wf = HybridWorkflow(env.fine_forecaster, env.ocean, env.verifier)
    benchmark.pedantic(
        lambda: wf.run(window, states, threshold=1e6),
        rounds=2, iterations=1)
