"""Figure 5 — spatial maps: solver vs. surrogate vs. difference.

The paper shows surface-level u, v, ζ maps of a 12-day forecast next
to the ROMS truth and their difference.  Headless reproduction: the
full-horizon dual-model forecast from a fixed initial condition, with
per-variable field ranges, difference MAE/max, and pattern correlation
over wet cells — the numbers the paper's colour maps encode.
"""

import numpy as np
import pytest

from repro.eval import compare_surface_fields, format_table

from conftest import COARSE_EVERY, T

HORIZON = T * COARSE_EVERY


def test_fig5_report(env, capsys):
    ref = env.test_windows(length=HORIZON)[0]
    pred = env.dual.forecast(ref).fields
    wet = env.ocean.solver.wet

    t_final = HORIZON - 1
    comps = compare_surface_fields(ref, pred, t=t_final, wet=wet)

    rows = []
    for c in comps:
        rows.append([
            c.variable,
            f"[{c.ref_min:+.3f}, {c.ref_max:+.3f}]",
            f"[{c.pred_min:+.3f}, {c.pred_max:+.3f}]",
            f"{c.diff_mae:.4f}",
            f"{c.diff_max:.4f}",
            f"{c.pattern_corr:.3f}",
        ])

    with capsys.disabled():
        print()
        print(format_table(
            ["Var", "Solver range", "Surrogate range", "Diff MAE",
             "Diff max", "Pattern corr"],
            rows,
            title=f"FIGURE 5 — surface fields at forecast step {t_final} "
                  f"(paper shows u, v, ζ maps; w omitted as ~0, same here)"))

    by_var = {c.variable: c for c in comps}
    # the surrogate must capture the spatial pattern (positive corr) and
    # its range must overlap the truth's
    for var in ("u", "v", "zeta"):
        c = by_var[var]
        assert c.pattern_corr > 0.2, f"{var}: no spatial skill"
        assert c.pred_min < c.ref_max and c.pred_max > c.ref_min

    # w is ~0 everywhere (the paper omits its map for this reason)
    assert np.abs(ref.w3[t_final]).max() < 0.05


@pytest.mark.benchmark(group="fig5")
def test_fig5_forecast_rollout(env, benchmark):
    ref = env.test_windows(length=HORIZON)[0]
    benchmark.pedantic(lambda: env.dual.forecast(ref), rounds=2,
                       iterations=1)
