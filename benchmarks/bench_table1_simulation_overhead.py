"""Table I — ROMS-on-HPC solutions vs. the AI surrogate.

Regenerates the paper's headline comparison: simulation overhead of
published MPI-ROMS deployments (modelled with the calibrated cost
model), the paper's own 512-core benchmark, and the AI surrogate.  At
bench scale we *measure* both sides — the ROMS-like solver and the
dual-model surrogate on the same mesh and horizon — and report the
measured speedup next to the paper's 450×.
"""

import time

import pytest

from repro.eval import format_table
from repro.hpc import RomsPerfModel
from repro.workflow import FieldWindow

from conftest import COARSE_EVERY, OCEAN, T

HORIZON_SNAPSHOTS = T * COARSE_EVERY          # 64 half-hour steps


def _reference_window(env) -> FieldWindow:
    windows = env.test_windows(length=HORIZON_SNAPSHOTS)
    assert windows, "test archive shorter than one dual-model horizon"
    return windows[0]


def test_table1_report(env, capsys):
    """Print every Table I row: paper seconds vs. cost-model seconds,
    plus our measured solver-vs-surrogate comparison."""
    model = RomsPerfModel.calibrated_to_paper()
    rows = []
    for r in model.table1():
        ny, nx, nz = r["mesh"]
        rows.append([
            r["solution"], f"{ny}x{nx}x{nz}", f"{r['horizon_days']:g}",
            r["cores"], f"{r['paper_seconds']:,.0f}",
            f"{r['model_seconds']:,.0f}",
        ])

    # measured at bench scale
    ref = _reference_window(env)
    out = env.dual.forecast(ref)
    ai_seconds = out.inference_seconds

    st = env.ocean.spinup(duration=3600.0)
    t0 = time.perf_counter()
    env.ocean.forecast(st, HORIZON_SNAPSHOTS)
    solver_seconds = time.perf_counter() - t0

    rows.append(["Bench solver (this machine)",
                 f"{OCEAN.ny}x{OCEAN.nx}x{OCEAN.nz}",
                 f"{HORIZON_SNAPSHOTS/48:g}", 1,
                 f"{solver_seconds:,.1f}", "-"])
    rows.append(["Bench AI surrogate (this machine)",
                 f"{OCEAN.ny}x{OCEAN.nx}x{OCEAN.nz}",
                 f"{HORIZON_SNAPSHOTS/48:g}", 1,
                 f"{ai_seconds:,.1f}", "-"])

    with capsys.disabled():
        print()
        print(format_table(
            ["Solution", "Mesh", "Days", "Cores", "Paper [s]", "Model [s]"],
            rows, title="TABLE I — ROMS simulation optimisation"))
        speedup = solver_seconds / ai_seconds
        print(f"\nMeasured bench-scale speedup (solver/surrogate): "
              f"{speedup:.1f}x   (paper: ~450x on 512 cores vs 1 A100; "
              f"our solver runs on 1 CPU core, so the measured ratio is "
              f"the single-core analogue)")

    assert ai_seconds > 0 and solver_seconds > 0


@pytest.mark.benchmark(group="table1")
def test_table1_surrogate_inference(env, benchmark):
    """The measured quantity of Table I: one full-horizon AI forecast."""
    ref = _reference_window(env)
    result = benchmark(lambda: env.dual.forecast(ref))
    assert result.fields.T == HORIZON_SNAPSHOTS


@pytest.mark.benchmark(group="table1")
def test_table1_solver_one_episode(env, benchmark):
    """Fallback-unit cost: the solver advancing one fine episode."""
    st = env.ocean.spinup(duration=3600.0)
    benchmark(lambda: env.ocean.forecast(st, T - 1))
