"""Figure 10 — weak scaling of surrogate training, 1–32 GPUs.

Reproduces both curves (with/without activation checkpointing) from the
data-parallel scaling model: NVLink ring allreduce within a DGX node,
hierarchical InfiniBand across nodes at 16/32 GPUs.  Also reports the
communication math of the *solver-side* MPI decomposition (halo bytes
per step vs. process grid), the quantity behind ROMS's own scaling
limits discussed in §II-B.
"""

import pytest

from repro.eval import format_table
from repro.hpc import (
    DecomposedShallowWater,
    PAPER_GPU_COUNTS,
    ScalingModel,
    halo_exchange_bytes,
)

from conftest import OCEAN


def test_fig10_report(env, capsys):
    model = ScalingModel()
    rows = []
    for r in model.figure10():
        n = r["gpus"]
        ideal = r["with_ckpt"] / (n * model.throughput(1, True)) * 100
        rows.append([n, f"{r['with_ckpt']:.2f}", f"{r['without_ckpt']:.2f}",
                     f"{r['allreduce_ms']:.3f}", f"{ideal:.1f}%"])

    with capsys.disabled():
        print()
        print(format_table(
            ["GPUs", "w/ ckpt [inst/s]", "w/o ckpt [inst/s]",
             "allreduce [ms]", "weak-scaling eff"],
            rows,
            title="FIGURE 10 — training weak scaling (paper: near-linear "
                  "to 32 GPUs, ckpt curve ≈ 2× above no-ckpt)"))

    t = [model.throughput(n, True) for n in PAPER_GPU_COUNTS]
    # near-linear scaling with the ckpt curve dominating everywhere
    assert all(b > 1.8 * a for a, b in zip(t, t[1:]))
    for r in model.figure10():
        assert r["with_ckpt"] > 1.5 * r["without_ckpt"]


def test_fig10_solver_halo_scaling_report(env, capsys):
    """Communication volume of the decomposed solver vs. rank count."""
    ny, nx = OCEAN.ny, OCEAN.nx
    rows = []
    for pr, pc in [(1, 1), (2, 1), (2, 2), (4, 2), (4, 4)]:
        nb = halo_exchange_bytes(ny, nx, pr, pc, halo=2, fields=3)
        rows.append([f"{pr}x{pc}", pr * pc, f"{nb/1024:.1f} KiB"])
    with capsys.disabled():
        print()
        print(format_table(
            ["Process grid", "Ranks", "Halo bytes/step"],
            rows,
            title="Solver-side MPI decomposition (halo traffic grows "
                  "with partition count — the ROMS scaling limit of "
                  "§II-B)"))
    vols = [halo_exchange_bytes(ny, nx, p, p) for p in (1, 2, 4)]
    assert vols[0] == 0 and vols[1] < vols[2]


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("ranks", [(1, 1), (2, 2)])
def test_fig10_decomposed_step(env, benchmark, ranks):
    """Cost of one decomposed solver step (sequential rank execution —
    measures per-rank overhead, not parallel speedup)."""
    dec = DecomposedShallowWater(env.ocean.solver, *ranks)
    st = env.ocean.solver.initial_state()
    benchmark(lambda: dec.step(st))
