"""Shared benchmark environment.

Builds the bench-scale reproduction once per machine (cached under
``.bench_cache/``): a 60×60×6 estuary (the scaled analogue of the
paper's 898×598×12 Charlotte Harbor mesh), fine- and coarse-interval
snapshot archives, and trained fine/coarse surrogates.  Every
``bench_*`` module consumes this environment, so the numbers across
tables/figures are mutually consistent — exactly like the paper, where
one trained model feeds every experiment.

Scale notes (see DESIGN.md §6): T = 8 snapshots per episode, fine
interval 30 min (episode ≈ the paper's 12-hour model), coarse interval
4 h (episode ≈ the 12-day model), dual rollout 8×8 = 64 half-hour
steps ≈ the paper's 576-step 12-day forecast.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    Normalizer,
    SlidingWindowDataset,
    SnapshotStore,
    build_archives,
    resample_store,
)
from repro.ocean import OceanConfig, RomsLikeModel
from repro.physics import Verifier
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.train import Trainer, TrainerConfig, load_checkpoint, save_checkpoint
from repro.workflow import DualModelForecaster, FieldWindow, SurrogateForecaster

CACHE = Path(__file__).resolve().parent.parent / ".bench_cache"

# ----------------------------------------------------------------------
# bench-scale configuration
# ----------------------------------------------------------------------
OCEAN = OceanConfig(nx=60, ny=60, nz=6,
                    length_x=60_000.0, length_y=60_000.0)

T = 8                       # snapshots per episode
COARSE_EVERY = 8            # coarse interval = 8 × 30 min = 4 h
TRAIN_DAYS = 2.0
TEST_DAYS = 1.5
EPOCHS = 4

SURROGATE = SurrogateConfig(
    mesh=(64, 64, 6), time_steps=T,
    patch3d=(4, 4, 2), patch2d=(4, 4),
    embed_dim=12, num_heads=(2, 4, 8), depths=(2, 2, 2),
    window_first=(4, 4, 2, 2), window_rest=(2, 2, 2, 2),
)


@dataclass
class BenchEnv:
    """Everything a benchmark needs."""

    ocean: RomsLikeModel
    bundle: object
    normalizer: Normalizer
    fine_model: CoastalSurrogate
    coarse_model: CoastalSurrogate
    fine_forecaster: SurrogateForecaster
    coarse_forecaster: SurrogateForecaster
    dual: DualModelForecaster
    verifier: Verifier
    coarse_train: SnapshotStore
    fine_train_seconds_per_instance: float

    def test_windows(self, length: int = T, stride: int | None = None):
        """Non-overlapping test-year FieldWindows."""
        store = self.bundle.open_test()
        stride = stride or length
        out = []
        for start in range(0, len(store) - length + 1, stride):
            w = store.read_window(start, length)
            out.append(FieldWindow(
                w["u3"].astype(np.float64), w["v3"].astype(np.float64),
                w["w3"].astype(np.float64), w["zeta"].astype(np.float64)))
        return out


def _train_model(cfg: SurrogateConfig, store, normalizer, ckpt: Path,
                 window: int, stride: int, epochs: int
                 ) -> tuple[CoastalSurrogate, float]:
    """Train (or load) one surrogate; returns (model, s/instance)."""
    model = CoastalSurrogate(cfg)
    meta_path = ckpt.with_suffix(".meta.json")
    if ckpt.exists():
        load_checkpoint(ckpt, model)
        secs = json.loads(meta_path.read_text())["seconds_per_instance"] \
            if meta_path.exists() else 0.0
        return model, secs
    ds = SlidingWindowDataset(store, normalizer, window=window,
                              stride=stride,
                              pad_to=(cfg.mesh[0], cfg.mesh[1]))
    loader = DataLoader(ds, batch_size=2, shuffle=True, seed=0)
    trainer = Trainer(model, TrainerConfig(lr=2e-3))
    history = trainer.fit(loader, epochs=epochs)
    secs = float(np.mean([h.seconds / max(h.instances, 1) for h in history]))
    save_checkpoint(ckpt, model)
    meta_path.write_text(json.dumps({"seconds_per_instance": secs}))
    return model, secs


@pytest.fixture(scope="session")
def env() -> BenchEnv:
    CACHE.mkdir(exist_ok=True)
    bundle = build_archives(CACHE / "archives", OCEAN,
                            train_days=TRAIN_DAYS, test_days=TEST_DAYS,
                            spinup_days=1.0)
    normalizer = bundle.open_normalizer()

    coarse_dir = CACHE / "archives" / "train_coarse"
    if not (coarse_dir / "manifest.json").exists():
        resample_store(bundle.open_train(), coarse_dir, every=COARSE_EVERY)
    coarse_train = SnapshotStore(coarse_dir)

    fine_model, secs = _train_model(
        SURROGATE, bundle.open_train(), normalizer,
        CACHE / "fine_model.npz", window=T, stride=4, epochs=EPOCHS)
    coarse_model, _ = _train_model(
        SURROGATE, coarse_train, normalizer,
        CACHE / "coarse_model.npz", window=T, stride=1, epochs=EPOCHS)

    ocean = RomsLikeModel(OCEAN)
    fine_fc = SurrogateForecaster(fine_model, normalizer)
    coarse_fc = SurrogateForecaster(coarse_model, normalizer)
    dual = DualModelForecaster(coarse_fc, fine_fc, coarse_ratio=T)
    verifier = Verifier(ocean.grid, ocean.depth,
                        dt=OCEAN.snapshot_interval)
    return BenchEnv(
        ocean=ocean, bundle=bundle, normalizer=normalizer,
        fine_model=fine_model, coarse_model=coarse_model,
        fine_forecaster=fine_fc, coarse_forecaster=coarse_fc,
        dual=dual, verifier=verifier, coarse_train=coarse_train,
        fine_train_seconds_per_instance=secs,
    )
