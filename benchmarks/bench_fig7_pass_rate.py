"""Figure 7 — verification pass rate vs. water-mass-residual threshold.

Computes the mass-conservation residual of every surrogate test-episode
forecast and sweeps the acceptance threshold.  The paper sweeps
3.0e-4 … 5.5e-4 m/s on its mesh; residual magnitudes are
discretisation-dependent, so alongside the paper's absolute thresholds
we sweep quantile-calibrated thresholds of our residual distribution —
the shape (monotone rise to ~100%) is the reproduced result.
"""

import numpy as np
import pytest

from repro.eval import format_series, format_table
from repro.physics import PAPER_THRESHOLDS

from conftest import T


def _episode_residuals(env):
    res = []
    for w in env.test_windows(length=T):
        pred = env.fine_forecaster.forecast_episode(w).fields
        v = env.verifier.verify(pred.zeta, pred.u3, pred.v3)
        res.append(v.mean_residual)
    return np.asarray(res)


def test_fig7_report(env, capsys):
    residuals = _episode_residuals(env)

    # quantile-calibrated sweep (same relative coverage as the paper's)
    qs = [0.05, 0.25, 0.5, 0.75, 0.95, 1.0]
    cal_thresholds = np.quantile(residuals, qs) * (1.0 + 1e-9)
    cal_rates = [env.verifier.pass_rate(list(residuals), t)
                 for t in cal_thresholds]

    paper_rates = [env.verifier.pass_rate(list(residuals), t)
                   for t in PAPER_THRESHOLDS]

    with capsys.disabled():
        print()
        print(format_table(
            ["Threshold [m/s]", "Pass rate"],
            [[f"{t:.2e}", f"{r:.2f}"]
             for t, r in zip(cal_thresholds, cal_rates)],
            title="FIGURE 7 — pass rate vs threshold "
                  "(quantile-calibrated sweep; paper: 0.5 → 1.0 "
                  "monotone over 3e-4..5.5e-4)"))
        print(format_series(
            [f"{t:.1e}" for t in PAPER_THRESHOLDS],
            [f"{r:.2f}" for r in paper_rates],
            "paper threshold [m/s]", "pass rate",
            title="Paper's absolute thresholds on our residuals"))
        print(f"\nresidual distribution: min {residuals.min():.2e}, "
              f"median {np.median(residuals):.2e}, "
              f"max {residuals.max():.2e}  over {len(residuals)} episodes")

    # Fig. 7 shape: monotone non-decreasing, reaching 1.0
    assert all(a <= b for a, b in zip(cal_rates, cal_rates[1:]))
    assert cal_rates[-1] == 1.0
    # and strictly increasing somewhere (not a degenerate flat line)
    assert cal_rates[0] < cal_rates[-1]


@pytest.mark.benchmark(group="fig7")
def test_fig7_verification_cost(env, benchmark):
    """Paper §IV-D: 'the verification time can be ignored' — measure it."""
    w = env.test_windows(length=T)[0]
    pred = env.fine_forecaster.forecast_episode(w).fields
    benchmark(lambda: env.verifier.verify(pred.zeta, pred.u3, pred.v3))
