#!/usr/bin/env python
"""Serving-operations benchmark: hot-swap and autoscaling under load.

Three phases against a live :class:`~repro.serve.server.ForecastServer`:

1. **Deploy under load** — paced client threads sustain traffic while
   the main thread hot-swaps a new model version through the pool
   (:meth:`ForecastServer.deploy`).  Measures the rolled deploy's
   wall-clock, the sheds charged during it (the zero-downtime claim:
   must be 0 — surge-then-drain never drops capacity), the sustained
   throughput across the swap, and that both engine versions actually
   served traffic.  Every response is checked bitwise against its
   pinned version's direct ``forecast_batch`` output.

2. **Autoscale across a burst** — a single-replica pool with an
   attached :class:`~repro.serve.autoscale.AutoScaler` takes a
   saturating burst (the pool must grow), then a quiet tail (the pool
   must shrink back to ``min_workers``).  The load is a *degenerate
   scenario*: a recorded single-basin all-unique trace replayed with
   ``time_scale=0`` and closed-loop retry — the same step-function
   shape (and ``sustained_qps`` comparability) the phase always had,
   now expressed through :func:`repro.scenario.replay_trace`.

3. **Multi-basin storm spike** — the full scenario stack: four basins
   with heterogeneous meshes, tenant-weighted Poisson arrivals, and a
   Gaussian storm-spike burst, replayed open-loop in paced wall-clock
   mode through a key-affinity server with cache and autoscaler.  The
   pool must grow through the spike and shrink after it with **zero
   lost requests** (``offered == served + cached + shed`` exactly);
   per-basin shed fractions and ``scenario_sustained_qps`` land in the
   gated metrics.

Self-contained like ``bench_serving.py`` (untrained tiny surrogate:
operations behaviour does not depend on forecast skill), so CI can
smoke it on every push::

    python benchmarks/bench_operations.py --quick

Writes ``BENCH_operations.json`` — ``sustained_qps`` and
``scenario_sustained_qps`` are the gated trajectory metrics
(``tools/bench_gate.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import Normalizer
from repro.scenario import (
    DEFAULT_BASINS,
    ScenarioFactory,
    StormSpike,
    TrafficModel,
    replay_trace,
    simulate_trace,
)
from repro.serve import ForecastServer
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.workflow import ForecastEngine
from repro.workflow.engine import FieldWindow

T = 4
H, W, D = 15, 14, 6
VARS = ("u3", "v3", "w3", "zeta")


def build_engine(seed: int, embed_dim: int = 8) -> ForecastEngine:
    """One engine over freshly-initialised weights (``seed`` varies the
    init so deployed versions are numerically distinct)."""
    cfg = SurrogateConfig(
        mesh=(16, 16, D), time_steps=T,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=embed_dim, num_heads=(2, 4, 8), depths=(2, 2, 2),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
    )
    model = CoastalSurrogate(cfg)
    rng = np.random.default_rng(seed)
    state = {k: (v + rng.normal(scale=0.02, size=v.shape)).astype(v.dtype)
             for k, v in model.state_dict().items()}
    model.load_state_dict(state)
    norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
    return ForecastEngine(model, norm)


def make_windows(n: int, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        out.append(FieldWindow(
            rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W, D)),
            rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W))))
    return out


def assert_bitwise_per_version(server, engines_by_version, by_request):
    """Every response equals its pinned version's direct output."""
    checked = 0
    for worker in server.pool._all_workers():
        engine = engines_by_version[worker.version]
        for batch in worker.scheduler.metrics.batches:
            keys = [(worker.worker_id, rid) for rid in batch.request_ids]
            if not all(k in by_request for k in keys):
                continue
            direct = engine.forecast_batch(
                [by_request[k][0] for k in keys])
            for k, d in zip(keys, direct):
                got = by_request[k][1].result(timeout=5).fields
                for var in VARS:
                    np.testing.assert_array_equal(getattr(got, var),
                                                  getattr(d.fields, var))
                checked += 1
    return checked


def phase_deploy(n_requests: int, check_bitwise: bool) -> dict:
    engine_v1 = build_engine(seed=1)
    engine_v2 = build_engine(seed=2)
    windows = make_windows(16)
    server = ForecastServer(engine_v1, workers=2, max_batch=4,
                            max_wait=0.002, max_queue=4096)
    tagged, lock = [], threading.Lock()
    deploy_started = threading.Event()
    half = n_requests // 2

    def client(cid, count):
        for k in range(count):
            w = windows[(cid * count + k) % len(windows)]
            # windows repeat but each submission is its own request
            fut = server.submit(w)
            with lock:
                tagged.append((w, fut))
            if cid == 0 and k == count // 4:
                deploy_started.set()

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client, args=(c, half // 2))
               for c in range(2)]
    for t in threads:
        t.start()
    deploy_started.wait(timeout=60)
    d0 = time.perf_counter()
    record = server.pool.deploy(engine_v2, source="bench-v2")
    deploy_seconds = time.perf_counter() - d0
    for t in threads:
        t.join()
    # guaranteed post-deploy traffic so version 2 demonstrably serves
    for k in range(n_requests - 2 * (half // 2)):
        w = windows[k % len(windows)]
        with lock:
            tagged.append((w, server.submit(w)))
    for _, fut in tagged:
        fut.result(timeout=300)
    elapsed = time.perf_counter() - t0

    served_versions = sorted({fut.engine_version for _, fut in tagged})
    m = server.pool.metrics
    out = {
        "requests": len(tagged),
        "sustained_qps": len(tagged) / elapsed,
        "deploy_seconds": deploy_seconds,
        "shed_during_deploy": server.pool.shed_requests,
        "served_versions": served_versions,
        "requests_by_version": m.requests_by_version(),
        "deploys": sum(e.kind == "deploy-done" for e in server.pool.events),
        "new_version": record.version,
    }
    if check_bitwise:
        by_request = {(fut.worker_id, fut.request_id): (w, fut)
                      for w, fut in tagged}
        v2_engine = server.pool.versions[2].engines[0]
        out["bitwise_checked"] = assert_bitwise_per_version(
            server, {1: engine_v1, 2: v2_engine}, by_request)
    server.close()
    return out


def wait_for_shrink(server, scaler, seconds: float = 10.0) -> int:
    """Quiet tail: wait for the scaler to drain back to min_workers;
    returns the final live worker count."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        live = sum(not w.draining for w in server.pool.workers)
        if live <= scaler.min_workers:
            break
        time.sleep(0.05)
    return sum(not w.draining for w in server.pool.workers)


def degenerate_trace(n_requests: int, seed: int,
                     factory: ScenarioFactory):
    """The old step-function burst as a recorded trace: one basin,
    every request unique, trimmed to exactly ``n_requests`` events."""
    model = TrafficModel.from_factory(factory, base_rate=n_requests,
                                      unique_fraction=1.0)
    trace = simulate_trace(model, duration_s=10.0, seed=seed)
    trace.events = trace.events[:n_requests]
    return trace


def phase_autoscale(n_requests: int) -> dict:
    engine = build_engine(seed=3)
    factory = ScenarioFactory(seed=3, basins=DEFAULT_BASINS[:1])
    trace = degenerate_trace(n_requests, seed=3, factory=factory)
    server = ForecastServer(engine, workers=1, max_batch=4,
                            max_wait=0.001, max_queue=8)
    scaler = server.enable_autoscaling(
        min_workers=1, max_workers=4, high_water=0.5, low_water=0.1,
        scale_down_patience=2, interval=0.02)
    # time_scale=0 + closed-loop retry: submit as fast as the pool
    # admits — the saturating burst the scaler must grow through
    report = replay_trace(trace, server, factory, mode="wall",
                          time_scale=0.0, shed_retry=0.05, timeout=300.0)
    peak = max((e.workers_after for e in scaler.events
                if e.action == "up"), default=1)
    final = wait_for_shrink(server, scaler)
    events = list(scaler.events)
    out = {
        "requests": report.offered,
        "lost_requests": report.lost,
        "peak_workers": peak,
        "final_workers": final,
        "scale_ups": sum(e.action == "up" for e in events),
        "scale_downs": sum(e.action == "down" for e in events),
    }
    server.close()
    return out


def phase_scenario(base_rate: float, duration_s: float,
                   time_scale: float) -> dict:
    """Multi-basin storm-spike scenario through the full stack."""
    engine = build_engine(seed=4)
    factory = ScenarioFactory(seed=4)
    # a violent near-burst spike on every basin mid-trace: arrivals
    # must outrun one replica regardless of host speed, so the scaler
    # demonstrably grows; the quiet tail then shrinks it back
    spikes = {s.name: StormSpike(center_s=duration_s / 2,
                                 width_s=duration_s / 16, amplitude=24.0)
              for s in DEFAULT_BASINS}
    model = TrafficModel.from_factory(
        factory, base_rate=base_rate, unique_fraction=0.5,
        advance_every_s=duration_s / 8, spikes=spikes)
    trace = simulate_trace(model, duration_s=duration_s, seed=4)
    server = ForecastServer(engine, workers=1, max_batch=4,
                            max_wait=0.002, max_queue=8,
                            router="key-affinity", cache_bytes=1 << 24)
    scaler = server.enable_autoscaling(
        min_workers=1, max_workers=4, high_water=0.5, low_water=0.1,
        scale_down_patience=2, interval=0.02)
    report = replay_trace(trace, server, factory, mode="wall",
                          time_scale=time_scale, timeout=300.0)
    report.check()                  # offered == served + cached + shed
    peak = max((e.workers_after for e in scaler.events
                if e.action == "up"), default=1)
    final = wait_for_shrink(server, scaler)
    out = {
        "offered": report.offered,
        "accounting": report.accounting(),
        "lost_requests": report.lost,
        "scenario_sustained_qps": report.sustained_qps(),
        "cache_hit_fraction": report.cached / max(report.offered, 1),
        "shed_fraction": report.shed / max(report.offered, 1),
        "per_basin": {
            name: {"offered": b.offered, "served": b.served,
                   "cached": b.cached, "shed": b.shed,
                   "shed_fraction": b.shed_fraction,
                   "latency_p95_ms": b.latency_p95_ms}
            for name, b in report.per_basin.items()},
        "peak_workers": peak,
        "final_workers": final,
    }
    server.close()
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small CI smoke run with correctness asserts")
    ap.add_argument("--requests", type=int, default=192,
                    help="requests in the deploy phase")
    ap.add_argument("--out", default=None,
                    help="JSON output path (default: BENCH_operations.json "
                         "in the repo root)")
    args = ap.parse_args(argv)
    n_requests = 48 if args.quick else args.requests

    print(f"operations benchmark: {n_requests} requests around a live "
          f"hot-swap, a saturating autoscale burst, and a multi-basin "
          f"storm-spike scenario ({os.cpu_count() or 1} cores)")

    deploy = phase_deploy(n_requests, check_bitwise=True)
    print(f"\n--- deploy under load ---")
    print(f"  sustained            : {deploy['sustained_qps']:.0f} req/s "
          f"across the swap ({deploy['requests']} requests)")
    print(f"  deploy wall-clock    : {1e3 * deploy['deploy_seconds']:.0f}ms "
          f"(roll of 2 replicas, surge-then-drain)")
    print(f"  shed during deploy   : {deploy['shed_during_deploy']}")
    print(f"  versions served      : {deploy['served_versions']} "
          f"({deploy['requests_by_version']})")
    print(f"  bitwise per version  : {deploy.get('bitwise_checked', 0)} "
          f"responses equal their pinned version's direct output")

    scale = phase_autoscale(max(24, n_requests // 2))
    print(f"\n--- autoscale across a burst (degenerate scenario) ---")
    print(f"  workers              : 1 -> peak {scale['peak_workers']} -> "
          f"final {scale['final_workers']}")
    print(f"  transitions          : {scale['scale_ups']} up, "
          f"{scale['scale_downs']} down")
    print(f"  lost requests        : {scale['lost_requests']}")

    duration_s = 3.0 if args.quick else 6.0
    base_rate = 6.0 if args.quick else 12.0
    scenario = phase_scenario(base_rate, duration_s, time_scale=0.5)
    acc = scenario["accounting"]
    print(f"\n--- multi-basin storm spike ---")
    print(f"  offered              : {acc['offered']} requests over "
          f"{len(scenario['per_basin'])} basins "
          f"({duration_s:.0f}s trace at 0.5x)")
    print(f"  accounting           : served {acc['served']} + cached "
          f"{acc['cached']} + shed {acc['shed']} == offered, "
          f"lost {acc['lost']}")
    print(f"  sustained            : "
          f"{scenario['scenario_sustained_qps']:.0f} req/s")
    print(f"  workers              : 1 -> peak "
          f"{scenario['peak_workers']} -> final "
          f"{scenario['final_workers']}")
    for name, b in scenario["per_basin"].items():
        print(f"    {name:<14s}: offered {b['offered']:>4d}  shed "
              f"{100 * b['shed_fraction']:5.1f}%  p95 "
              f"{b['latency_p95_ms']:.1f}ms")

    metrics = {
        "sustained_qps": deploy["sustained_qps"],
        "deploy_seconds": deploy["deploy_seconds"],
        "shed_during_deploy": deploy["shed_during_deploy"],
        "autoscale_peak_workers": scale["peak_workers"],
        "autoscale_final_workers": scale["final_workers"],
        "scenario_sustained_qps": scenario["scenario_sustained_qps"],
        "scenario_shed_fraction": scenario["shed_fraction"],
        "scenario_cache_hit_fraction": scenario["cache_hit_fraction"],
        "scenario_peak_workers": scenario["peak_workers"],
    }
    for name, b in scenario["per_basin"].items():
        metrics[f"scenario_shed_fraction_{name}"] = b["shed_fraction"]
    record = {
        "benchmark": "operations",
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "quick": bool(args.quick),
        "cores": os.cpu_count() or 1,
        "config": {"requests": n_requests,
                   "scenario": {"base_rate": base_rate,
                                "duration_s": duration_s,
                                "time_scale": 0.5, "seed": 4}},
        "metrics": metrics,
        "scenario_per_basin": scenario["per_basin"],
        # tools/bench_gate.py regresses these (higher = better)
        "gate": {"higher_better": ["sustained_qps",
                                   "scenario_sustained_qps"]},
    }
    out_path = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_operations.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {out_path}")

    # -- verdicts -------------------------------------------------------
    ok = True
    if deploy["shed_during_deploy"] != 0:
        print(f"FAIL: {deploy['shed_during_deploy']} requests shed during "
              "the deploy — the roll must never drop capacity")
        ok = False
    if deploy["served_versions"] != [1, 2]:
        print(f"FAIL: expected both versions to serve, got "
              f"{deploy['served_versions']}")
        ok = False
    if deploy.get("bitwise_checked", 0) != deploy["requests"]:
        print(f"FAIL: only {deploy.get('bitwise_checked', 0)} of "
              f"{deploy['requests']} responses verified bitwise")
        ok = False
    if scale["peak_workers"] <= 1:
        print("FAIL: the autoscaler never grew the pool under a "
              "saturating burst")
        ok = False
    if scale["final_workers"] != 1:
        print(f"FAIL: the pool did not shrink back to min_workers "
              f"(final {scale['final_workers']})")
        ok = False
    if scale["lost_requests"] != 0:
        print(f"FAIL: {scale['lost_requests']} requests lost across "
              "scale transitions")
        ok = False
    if scenario["lost_requests"] != 0:
        print(f"FAIL: {scenario['lost_requests']} requests lost in the "
              "storm-spike scenario — accounting must be exact")
        ok = False
    if scenario["peak_workers"] <= 1:
        print("FAIL: the autoscaler never grew through the storm spike")
        ok = False
    if scenario["final_workers"] != 1:
        print(f"FAIL: the pool did not shrink after the spike "
              f"(final {scenario['final_workers']})")
        ok = False
    if ok:
        print("PASS: zero-shed deploy, bitwise version pinning, and "
              "grow-then-shrink autoscale cycles (burst + storm spike) "
              "with exact request accounting")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
