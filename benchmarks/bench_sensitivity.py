#!/usr/bin/env python
"""Sensitivity benchmark: adjoint cost and served-gradient throughput.

Two phases against the differentiable serving tier
(``docs/differentiation.md``):

1. **Adjoint cost** — direct ``ForecastEngine.sensitivity_batch`` over
   a batch of episodes with ``wrt=("fields", "storm")``, against the
   matching forward-only ``forecast_batch``.  Measures gradient
   episodes/second and the backward/forward cost ratio (reverse mode
   should stay within a small constant factor of the forward; a blowup
   means the tape is recomputing, not replaying).

2. **Served gradients** — a thread-backend :class:`ForecastServer`
   takes a mixed stream of gradient requests with repeats, so the
   gradient cache and in-flight dedup carry part of the load.  Measures
   sustained gradient requests/second and — in ``--quick`` mode —
   asserts every served response is bitwise-identical to the direct
   backward and that one directional finite difference agrees with the
   served field adjoint (the full FD sweep lives in
   ``tests/test_sensitivity.py``).

Self-contained (untrained tiny surrogate: adjoint cost does not depend
on forecast skill), so CI can smoke it on every push::

    python benchmarks/bench_sensitivity.py --quick

Writes ``BENCH_sensitivity.json`` — ``grad_throughput_eps`` and
``served_grad_qps`` are the gated trajectory metrics
(``tools/bench_gate.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import Normalizer
from repro.serve import ForecastServer
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.workflow import ForecastEngine, GradientRequest, StormOverlay
from repro.workflow.engine import FieldWindow

T = 4
H, W, D = 15, 14, 6
VARS = ("u3", "v3", "w3", "zeta")

#: same conditioning as tests/test_sensitivity.py: strong enough that
#: the storm visibly moves the diagnostic through the float32 forward
STORM = StormOverlay(x0=6000.0, y0=7000.0, vx=500.0, vy=300.0,
                     max_wind=60.0, radius_max_wind=8000.0,
                     central_pressure_drop=20000.0, dt=3.0)


def build_engine(seed: int = 1) -> ForecastEngine:
    cfg = SurrogateConfig(
        mesh=(16, 16, D), time_steps=T,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=8, num_heads=(2, 4, 8), depths=(2, 2, 2),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
    )
    model = CoastalSurrogate(cfg)
    rng = np.random.default_rng(seed)
    state = {k: (v + rng.normal(scale=0.02, size=v.shape)).astype(v.dtype)
             for k, v in model.state_dict().items()}
    model.load_state_dict(state)
    norm = Normalizer({v: 0.1 for v in VARS}, {v: 1.5 for v in VARS})
    return ForecastEngine(model, norm)


def make_windows(n: int, seed: int = 7) -> list:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        out.append(FieldWindow(
            rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W, D)),
            rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W))))
    return out


def phase_adjoint_cost(engine, episodes: int, repeats: int) -> dict:
    windows = make_windows(episodes)
    storms = [STORM] * episodes
    # warm both paths (plan compilation, allocator steady state)
    engine.forecast_batch(windows[:2])
    engine.sensitivity_batch(windows[:2], wrt=("fields", "storm"),
                             storms=storms[:2])

    fwd = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        engine.forecast_batch(windows)
        fwd.append(time.perf_counter() - t0)
    bwd = []
    backward_seconds = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        results = engine.sensitivity_batch(
            windows, wrt=("fields", "storm"), storms=storms)
        bwd.append(time.perf_counter() - t0)
        backward_seconds = sum(r.backward_seconds for r in results)
    forward_s, grad_s = min(fwd), min(bwd)
    return {
        "episodes": episodes,
        "forward_seconds": forward_s,
        "grad_seconds": grad_s,
        "grad_throughput_eps": episodes / grad_s,
        "grad_over_forward": grad_s / forward_s,
        "backward_fraction": backward_seconds / grad_s,
    }


def phase_served(engine, n_requests: int, check_bitwise: bool) -> dict:
    windows = make_windows(8, seed=11)
    # repeats at ratio 3:1 so cache + dedup carry part of the stream
    requests = [GradientRequest(windows[k % len(windows)],
                                diagnostic="mean_surge",
                                wrt=("fields", "storm"), storm=STORM)
                for k in range(n_requests)]
    server = ForecastServer(engine, workers=2, max_batch=4,
                            max_wait=0.002, cache_bytes=64 << 20)
    t0 = time.perf_counter()
    futures = [server.submit_sensitivity(r) for r in requests]
    served = [f.result(timeout=300) for f in futures]
    elapsed = time.perf_counter() - t0
    m = server.metrics()
    out = {
        "requests": n_requests,
        "served_grad_qps": n_requests / elapsed,
        "grad_batches": m["grad_batches"],
        "backward_seconds": m["backward_seconds"],
        "cache_hits": server.cache.stats.hits if server.cache else 0,
        "deduped": server.deduped_requests,
    }
    if check_bitwise:
        # replay each actual gradient micro-batch (same composition:
        # batch shape changes BLAS paths, so only a like-for-like
        # direct call can be bitwise-compared)
        by_request = {(f.worker_id, f.request_id): (req, f)
                      for req, f in zip(requests, futures)
                      if f.worker_id is not None}
        checked = 0
        for worker in server.pool._all_workers():
            for batch in worker.scheduler.metrics.batches:
                keys = [(worker.worker_id, rid)
                        for rid in batch.request_ids]
                if batch.kind != "gradient" or \
                        not all(k in by_request for k in keys):
                    continue
                batch_reqs = [by_request[k][0] for k in keys]
                direct = engine.sensitivity_batch(
                    [r.window for r in batch_reqs],
                    diagnostic=batch_reqs[0].diagnostic,
                    wrt=("fields", "storm"),
                    storms=[r.storm for r in batch_reqs])
                for k, d in zip(keys, direct):
                    res = by_request[k][1].result(timeout=5)
                    assert res.value == d.value \
                        and res.d_storm == d.d_storm
                    for var in VARS:
                        np.testing.assert_array_equal(
                            getattr(res.d_fields, var),
                            getattr(d.d_fields, var))
                    checked += 1
        out["bitwise_checked"] = checked
        # one directional FD spot-check of the served field adjoint
        rng = np.random.default_rng(3)
        w0, res0 = windows[0], served[0]
        direction = rng.normal(size=(T, H, W))
        eps = 2e-3

        def value(shift):
            w2 = w0.copy()
            w2.zeta[...] += shift * direction
            out_w = engine.forecast_batch([STORM.apply(w2)])[0]
            return float(out_w.fields.zeta[1:].mean())

        fd = (value(eps) - value(-eps)) / (2 * eps)
        ana = float((res0.d_fields.zeta * direction).sum())
        rel = abs(fd - ana) / max(abs(fd), abs(ana))
        assert rel < 5e-3, f"served adjoint vs FD: rel={rel:.3e}"
        out["fd_rel_err"] = rel
    server.close()
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small CI smoke run with correctness asserts")
    ap.add_argument("--episodes", type=int, default=16,
                    help="episodes per adjoint batch")
    ap.add_argument("--requests", type=int, default=96,
                    help="requests in the served phase")
    ap.add_argument("--out", default=None,
                    help="JSON output path (default: BENCH_sensitivity.json "
                         "in the repo root)")
    args = ap.parse_args(argv)
    episodes = 6 if args.quick else args.episodes
    repeats = 2 if args.quick else 5
    n_requests = 24 if args.quick else args.requests

    print(f"sensitivity benchmark: adjoint over {episodes}-episode "
          f"batches, {n_requests} served gradient requests "
          f"({os.cpu_count() or 1} cores)")

    engine = build_engine()
    cost = phase_adjoint_cost(engine, episodes, repeats)
    print("\n--- adjoint cost (fields + 6 storm parameters) ---")
    print(f"  forward              : {1e3 * cost['forward_seconds']:.0f}ms "
          f"/ batch of {episodes}")
    print(f"  forward+backward     : {1e3 * cost['grad_seconds']:.0f}ms "
          f"({cost['grad_over_forward']:.1f}x the forward, "
          f"{100 * cost['backward_fraction']:.0f}% in backward)")
    print(f"  gradient throughput  : {cost['grad_throughput_eps']:.1f} "
          f"episodes/s")

    served = phase_served(engine, n_requests, check_bitwise=args.quick)
    print("\n--- served gradients (thread backend, cache + dedup) ---")
    print(f"  sustained            : {served['served_grad_qps']:.0f} req/s "
          f"({served['requests']} requests)")
    print(f"  gradient batches     : {served['grad_batches']} "
          f"({served['backward_seconds']:.3f}s in backward)")
    print(f"  cache hits / deduped : {served['cache_hits']} / "
          f"{served['deduped']}")
    if "bitwise_checked" in served:
        print(f"  bitwise vs direct    : {served['bitwise_checked']} "
              f"responses; FD spot-check rel err "
              f"{served['fd_rel_err']:.1e}")

    record = {
        "benchmark": "sensitivity",
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "quick": bool(args.quick),
        "cores": os.cpu_count() or 1,
        "config": {"episodes": episodes, "repeats": repeats,
                   "requests": n_requests},
        "metrics": {
            "grad_throughput_eps": cost["grad_throughput_eps"],
            "grad_over_forward": cost["grad_over_forward"],
            "backward_fraction": cost["backward_fraction"],
            "served_grad_qps": served["served_grad_qps"],
            "grad_batches": served["grad_batches"],
            "cache_hits": served["cache_hits"],
            "deduped": served["deduped"],
        },
        # tools/bench_gate.py regresses these (higher = better)
        "gate": {"higher_better": ["grad_throughput_eps",
                                   "served_grad_qps"]},
    }
    out_path = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_sensitivity.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {out_path}")

    ok = True
    if args.quick:
        # every request is either a bitwise-verified leader, a cache
        # hit, or a dedup follower (both of which copy a leader result)
        engine_runs = n_requests - served["cache_hits"] - served["deduped"]
        if served.get("bitwise_checked", 0) != engine_runs:
            print(f"FAIL: only {served.get('bitwise_checked', 0)} of "
                  f"{engine_runs} engine-served responses verified "
                  "bitwise")
            ok = False
    if served["cache_hits"] + served["deduped"] == 0:
        print("FAIL: repeated requests produced no cache hits and no "
              "dedup — the gradient key is not coalescing")
        ok = False
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
