"""Batched vs serial inference throughput (the batched-engine tentpole).

The inference stack stages N episodes through one vectorised model
forward instead of N batch-1 forwards.  This benchmark measures the
throughput gain at the paper's motivating workload — an ensemble of
perturbed initial conditions ("an ensemble of tens of thousands of
models for uncertainty quantification", §I) — in two regimes:

* **Serving scale** (the 16×16×6 operational mesh of the tests and
  examples): per-episode dispatch overhead dominates, so the batched
  engine must clear ≥ 1.5× throughput over the serial path at 8
  members.
* **Bench scale** (the 64×64×6 mesh of the benchmark suite): on this
  single-core NumPy backend the forward is memory-bandwidth-bound and
  a batch-1 chain is more cache-friendly, so the batched gain shrinks;
  the numbers are reported for the record.  (On the paper's GPUs the
  large-mesh regime is exactly where batching pays most.)

Both regimes also check that batching is a pure optimisation: fields
identical to the serial path within float tolerance.
"""

import time

import numpy as np

from repro.data import Normalizer
from repro.eval import compute_errors_many, format_table
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.workflow import (
    DualModelForecaster,
    EnsembleForecaster,
    FieldWindow,
    SurrogateForecaster,
)

from conftest import T

N_MEMBERS = 8
SERVING = SurrogateConfig(
    mesh=(16, 16, 6), time_steps=4,
    patch3d=(4, 4, 2), patch2d=(4, 4),
    embed_dim=8, num_heads=(2, 4, 8), depths=(2, 2, 2),
    window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
)


def _time_paths(forecaster, members, repeats=3):
    """Best-of-N wall clock for the serial loop and the batched pass."""
    forecaster.forecast_episode(members[0])          # warm-up
    serial_s, batched_s = float("inf"), float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        serial = [forecaster.forecast_episode(m) for m in members]
        serial_s = min(serial_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched = forecaster.forecast_batch(members)
        batched_s = min(batched_s, time.perf_counter() - t0)
    for s, b in zip(serial, batched):                # pure optimisation
        np.testing.assert_allclose(b.fields.zeta, s.fields.zeta,
                                   rtol=1e-4, atol=1e-5)
    return serial, batched, serial_s, batched_s


def _row(label, n, seconds, baseline):
    return [label, n, f"{seconds:.3f}", f"{n / seconds:.2f}",
            f"{baseline / seconds:.2f}x"]


def test_serving_scale_throughput(capsys):
    """≥ 1.5× batched throughput at 8 members on the serving mesh."""
    rng = np.random.default_rng(0)
    norm = Normalizer({v: 0.0 for v in ("u3", "v3", "w3", "zeta")},
                      {v: 1.0 for v in ("u3", "v3", "w3", "zeta")})
    fc = SurrogateForecaster(CoastalSurrogate(SERVING), norm)
    Ts = SERVING.time_steps
    members = [
        FieldWindow(rng.normal(size=(Ts, 15, 14, 6)),
                    rng.normal(size=(Ts, 15, 14, 6)),
                    rng.normal(size=(Ts, 15, 14, 6)),
                    rng.normal(size=(Ts, 15, 14)))
        for _ in range(N_MEMBERS)
    ]
    _, _, serial_s, batched_s = _time_paths(fc, members)
    speedup = serial_s / batched_s

    with capsys.disabled():
        print()
        print(format_table(
            ["Path", "Episodes", "Time [s]", "Episodes/s", "Speedup"],
            [_row("serial", N_MEMBERS, serial_s, serial_s),
             _row("batched", N_MEMBERS, batched_s, serial_s)],
            title=f"Serving scale {SERVING.mesh}, T={Ts}, "
                  f"{N_MEMBERS} ensemble members"))

    assert speedup >= 1.5, (
        f"batched path only {speedup:.2f}x over serial at "
        f"{N_MEMBERS} members (serving scale)")


def test_bench_scale_throughput(env, capsys):
    """Bench-mesh numbers for the record (bandwidth-bound regime)."""
    fc = env.fine_forecaster
    reference = env.test_windows()[0]
    ens = EnsembleForecaster(fc, n_members=N_MEMBERS,
                             zeta_sigma=0.02, velocity_sigma=0.02, seed=0)
    wet = env.ocean.solver.wet
    members = [ens._perturbed(reference, m, wet)
               for m in range(N_MEMBERS)]
    serial, batched, serial_s, batched_s = _time_paths(fc, members,
                                                       repeats=2)

    # accuracy parity against the reference, wet cells only
    err_serial = compute_errors_many([s.fields for s in serial],
                                     [reference] * N_MEMBERS, wet=wet)
    err_batched = compute_errors_many([b.fields for b in batched],
                                      [reference] * N_MEMBERS, wet=wet)
    assert abs(err_serial.rmse["zeta"] - err_batched.rmse["zeta"]) < 1e-4

    # dual-model rollout: one coarse forward + ONE batched fine forward
    horizon = env.test_windows(length=T * T)[0]
    dual = DualModelForecaster(env.coarse_forecaster, fc, coarse_ratio=T)
    t0 = time.perf_counter()
    dual_out = dual.forecast(horizon)
    dual_s = time.perf_counter() - t0

    with capsys.disabled():
        print()
        print(format_table(
            ["Path", "Episodes", "Time [s]", "Episodes/s", "Speedup"],
            [_row("ensemble serial", N_MEMBERS, serial_s, serial_s),
             _row("ensemble batched", N_MEMBERS, batched_s, serial_s),
             [f"dual rollout ({dual_out.episodes} ep)", dual_out.episodes,
              f"{dual_s:.3f}", f"{dual_out.episodes / dual_s:.2f}", "—"]],
            title=f"Bench scale {env.fine_model.config.mesh}, T={T}, "
                  f"{N_MEMBERS} ensemble members"))
        print(f"ζ RMSE vs reference — serial: {err_serial.rmse['zeta']:.4f}, "
              f"batched: {err_batched.rmse['zeta']:.4f}")
