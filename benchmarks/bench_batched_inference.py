"""Batched vs serial and compiled vs eager inference throughput.

The inference stack stages N episodes through one vectorised model
forward instead of N batch-1 forwards (PR 1), and — since PR 4 —
replays that forward through a compiled, allocation-free execution
plan (``repro.tensor.plan``).  This benchmark measures both layers at
the paper's motivating workload — an ensemble of perturbed initial
conditions ("an ensemble of tens of thousands of models for
uncertainty quantification", §I):

* **Serving scale** (the 16×16×6 operational mesh of the tests and
  examples): per-episode dispatch overhead dominates, so the batched
  engine must clear ≥ 1.5× throughput over the serial path at 8
  members.
* **Bench scale** (the 64×64×6 mesh of the benchmark suite): on this
  single-core NumPy backend the forward is memory-bandwidth-bound and
  a batch-1 chain is more cache-friendly, so the batched gain shrinks;
  the numbers are reported for the record.  (On the paper's GPUs the
  large-mesh regime is exactly where batching pays most.)
* **Compiled vs eager** (serving batch sizes 1..8): the compiled plan
  must be bitwise-identical to the eager forward, allocate strictly
  less per call, and — on hosts with ≥ 2 cores, where the plan's
  chunked elementwise replay engages — clear ≥ 1.3× throughput at the
  serving micro-batch size.  A single-core host measures the pure
  dispatch/allocation win honestly and does not arm the speed gate
  (same policy as ``bench_serving.py``).  Since the plan-IR passes
  (``repro.tensor.plan_passes``) the compiled column replays the
  *fused* plan; an ``optimize_plans=False`` engine provides the
  unfused column so the fusion win is its own number, and the pass
  statistics (steps folded/fused/eliminated, arena bytes) land in the
  JSON record as ``plan_pass_stats``.
* **Bucketed partial batches**: a mixed-size request stream through an
  engine warmed with ``compile_buckets`` must hit a compiled plan for
  *every* batch (hit rate 1.0 — the eager-fallback bug this sweep
  pins down), stay bitwise-identical to eager, and report the padding
  overhead (``bucket_pad_fraction``).
* **Histogram-tuned buckets**: the same skewed stream served twice —
  canonical power-of-two buckets vs a set tuned to the observed
  batch-size histogram (``compile_buckets(..., histogram=...)``,
  backed by ``plan_buckets_from_histogram``).  The tuned set must
  keep the 1.0 hit rate while padding strictly no more than the
  canonical set; the before/after pad fractions land in the record.

Run as a script (``python benchmarks/bench_batched_inference.py
[--quick]``) this writes ``BENCH_inference.json`` — timestamped
medians, speedups and peak buffer bytes — so per-PR perf is trackable
(``tools/bench_gate.py`` compares two such files).
"""

import argparse
import json
import os
import sys
import time
import tracemalloc
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import Normalizer
from repro.eval import compute_errors_many, format_table
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.workflow import (
    DualModelForecaster,
    EnsembleForecaster,
    FieldWindow,
    ForecastEngine,
    SurrogateForecaster,
)

try:
    from conftest import T
except ImportError:          # script mode: the bench env is not needed
    T = 8

N_MEMBERS = 8
SERVING = SurrogateConfig(
    mesh=(16, 16, 6), time_steps=4,
    patch3d=(4, 4, 2), patch2d=(4, 4),
    embed_dim=8, num_heads=(2, 4, 8), depths=(2, 2, 2),
    window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
)


def _time_paths(forecaster, members, repeats=3):
    """Best-of-N wall clock for the serial loop and the batched pass."""
    forecaster.forecast_episode(members[0])          # warm-up
    serial_s, batched_s = float("inf"), float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        serial = [forecaster.forecast_episode(m) for m in members]
        serial_s = min(serial_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched = forecaster.forecast_batch(members)
        batched_s = min(batched_s, time.perf_counter() - t0)
    for s, b in zip(serial, batched):                # pure optimisation
        np.testing.assert_allclose(b.fields.zeta, s.fields.zeta,
                                   rtol=1e-4, atol=1e-5)
    return serial, batched, serial_s, batched_s


def _row(label, n, seconds, baseline):
    return [label, n, f"{seconds:.3f}", f"{n / seconds:.2f}",
            f"{baseline / seconds:.2f}x"]


def test_serving_scale_throughput(capsys):
    """≥ 1.5× batched throughput at 8 members on the serving mesh."""
    rng = np.random.default_rng(0)
    norm = Normalizer({v: 0.0 for v in ("u3", "v3", "w3", "zeta")},
                      {v: 1.0 for v in ("u3", "v3", "w3", "zeta")})
    fc = SurrogateForecaster(CoastalSurrogate(SERVING), norm)
    Ts = SERVING.time_steps
    members = [
        FieldWindow(rng.normal(size=(Ts, 15, 14, 6)),
                    rng.normal(size=(Ts, 15, 14, 6)),
                    rng.normal(size=(Ts, 15, 14, 6)),
                    rng.normal(size=(Ts, 15, 14)))
        for _ in range(N_MEMBERS)
    ]
    _, _, serial_s, batched_s = _time_paths(fc, members)
    speedup = serial_s / batched_s

    with capsys.disabled():
        print()
        print(format_table(
            ["Path", "Episodes", "Time [s]", "Episodes/s", "Speedup"],
            [_row("serial", N_MEMBERS, serial_s, serial_s),
             _row("batched", N_MEMBERS, batched_s, serial_s)],
            title=f"Serving scale {SERVING.mesh}, T={Ts}, "
                  f"{N_MEMBERS} ensemble members"))

    assert speedup >= 1.5, (
        f"batched path only {speedup:.2f}x over serial at "
        f"{N_MEMBERS} members (serving scale)")


def test_bench_scale_throughput(env, capsys):
    """Bench-mesh numbers for the record (bandwidth-bound regime)."""
    fc = env.fine_forecaster
    reference = env.test_windows()[0]
    ens = EnsembleForecaster(fc, n_members=N_MEMBERS,
                             zeta_sigma=0.02, velocity_sigma=0.02, seed=0)
    wet = env.ocean.solver.wet
    members = [ens._perturbed(reference, m, wet)
               for m in range(N_MEMBERS)]
    serial, batched, serial_s, batched_s = _time_paths(fc, members,
                                                       repeats=2)

    # accuracy parity against the reference, wet cells only
    err_serial = compute_errors_many([s.fields for s in serial],
                                     [reference] * N_MEMBERS, wet=wet)
    err_batched = compute_errors_many([b.fields for b in batched],
                                      [reference] * N_MEMBERS, wet=wet)
    assert abs(err_serial.rmse["zeta"] - err_batched.rmse["zeta"]) < 1e-4

    # dual-model rollout: one coarse forward + ONE batched fine forward
    horizon = env.test_windows(length=T * T)[0]
    dual = DualModelForecaster(env.coarse_forecaster, fc, coarse_ratio=T)
    t0 = time.perf_counter()
    dual_out = dual.forecast(horizon)
    dual_s = time.perf_counter() - t0

    with capsys.disabled():
        print()
        print(format_table(
            ["Path", "Episodes", "Time [s]", "Episodes/s", "Speedup"],
            [_row("ensemble serial", N_MEMBERS, serial_s, serial_s),
             _row("ensemble batched", N_MEMBERS, batched_s, serial_s),
             [f"dual rollout ({dual_out.episodes} ep)", dual_out.episodes,
              f"{dual_s:.3f}", f"{dual_out.episodes / dual_s:.2f}", "—"]],
            title=f"Bench scale {env.fine_model.config.mesh}, T={T}, "
                  f"{N_MEMBERS} ensemble members"))
        print(f"ζ RMSE vs reference — serial: {err_serial.rmse['zeta']:.4f}, "
              f"batched: {err_batched.rmse['zeta']:.4f}")


# ----------------------------------------------------------------------
# compiled vs eager (PR 4): plan replay at serving batch sizes
# ----------------------------------------------------------------------
def _serving_windows(n, seed=0):
    rng = np.random.default_rng(seed)
    Ts = SERVING.time_steps
    return [FieldWindow(rng.normal(size=(Ts, 15, 14, 6)),
                        rng.normal(size=(Ts, 15, 14, 6)),
                        rng.normal(size=(Ts, 15, 14, 6)),
                        rng.normal(size=(Ts, 15, 14)))
            for _ in range(n)]


def _best_of(fn, repeats):
    fn()                                     # warm-up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _tracemalloc_peak(fn):
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def run_compiled_sweep(batches=(1, 2, 4, 8), repeats=5, quick=False):
    """Eager vs compiled ``forecast_batch`` on the serving mesh.

    Returns a dict with per-batch throughputs/speedups, peak buffer
    bytes (measured via tracemalloc around one call each, plus the
    plan's analytic arena/live model), and the bitwise check outcome.
    """
    if quick:
        batches, repeats = (1, max(batches)), 2
    model = CoastalSurrogate(SERVING)
    norm = Normalizer({v: 0.0 for v in ("u3", "v3", "w3", "zeta")},
                      {v: 1.0 for v in ("u3", "v3", "w3", "zeta")})
    eager = ForecastEngine(model, norm)      # never compiled
    compiled = ForecastEngine(model, norm)   # fused plans (the default)
    unfused = ForecastEngine(model, norm, optimize_plans=False)
    out = {"batches": {}, "bitwise_equal": True}
    for n in batches:
        windows = _serving_windows(n, seed=n)
        compiled.compile(n)
        unfused.compile(n)
        res_e = eager.forecast_batch(windows)
        res_c = compiled.forecast_batch(windows)
        res_u = unfused.forecast_batch(windows)
        assert res_c[0].compiled and res_u[0].compiled \
            and not res_e[0].compiled
        for a, b, c in zip(res_e, res_c, res_u):
            for var in ("u3", "v3", "w3", "zeta"):
                if not (np.array_equal(getattr(a.fields, var),
                                       getattr(b.fields, var))
                        and np.array_equal(getattr(a.fields, var),
                                           getattr(c.fields, var))):
                    out["bitwise_equal"] = False
        t_eager = _best_of(lambda: eager.forecast_batch(windows), repeats)
        t_comp = _best_of(lambda: compiled.forecast_batch(windows), repeats)
        t_unf = _best_of(lambda: unfused.forecast_batch(windows), repeats)
        peak_eager = _tracemalloc_peak(
            lambda: eager.forecast_batch(windows))
        peak_comp = _tracemalloc_peak(
            lambda: compiled.forecast_batch(windows))
        plan = compiled.compile(n).plan
        out["batches"][n] = {
            "eager_eps": n / t_eager,
            "compiled_eps": n / t_comp,
            "unfused_eps": n / t_unf,
            "speedup": t_eager / t_comp,
            "fused_speedup": t_unf / t_comp,
            "eager_peak_bytes": peak_eager,
            "compiled_peak_bytes": peak_comp,
            "arena_bytes": plan.arena_bytes(),
            "plan_steps": plan.n_steps,
            "plan_peak_model_bytes": plan.peak_buffer_bytes(),
            "eager_peak_model_bytes": plan.eager_peak_bytes(),
        }
    out["plan_stats"] = compiled.plan_stats()
    out["plan_pass_stats"] = {
        int(b): dict(s) for b, s in
        compiled.plan_stats()["pass_stats"].items()}
    return out


def run_bucketed_sweep(max_batch=8, rounds=3, quick=False):
    """Mixed-size request stream against a bucket-warmed engine.

    Every partial batch must land in a compiled bucket (the
    eager-fallback bug this PR removes): hit rate 1.0, zero plan
    misses, bitwise-identical to eager, padding overhead reported.
    """
    if quick:
        max_batch, rounds = 4, 2
    model = CoastalSurrogate(SERVING)
    norm = Normalizer({v: 0.0 for v in ("u3", "v3", "w3", "zeta")},
                      {v: 1.0 for v in ("u3", "v3", "w3", "zeta")})
    eager = ForecastEngine(model, norm)
    engine = ForecastEngine(model, norm)
    buckets = engine.compile_buckets(max_batch)
    bitwise = True
    served = 0
    for r in range(rounds):
        for n in range(1, max_batch + 1):
            windows = _serving_windows(n, seed=100 * r + n)
            res = engine.forecast_batch(windows)
            served += 1
            if not all(x.compiled for x in res):
                bitwise = False       # a fallback also breaks the gate
                continue
            want = eager.forecast_batch(windows)
            for a, b in zip(res, want):
                for var in ("u3", "v3", "w3", "zeta"):
                    if not np.array_equal(getattr(a.fields, var),
                                          getattr(b.fields, var)):
                        bitwise = False
    stats = engine.plan_stats()
    return {
        "buckets": buckets,
        "requests": served,
        "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_rate": stats["hits"] / served if served else 0.0,
        "bucket_hits": {int(k): v for k, v in
                        stats["bucket_hits"].items()},
        "bucket_pad_fraction": stats["bucket_pad_fraction"],
        "bitwise_equal": bitwise,
    }


def run_histogram_sweep(max_batch=8, rounds=4, quick=False):
    """Canonical vs histogram-tuned buckets on a skewed stream.

    Arrivals concentrate on a few awkward sizes (3 and 6 dominate);
    the canonical power-of-two set pads 3 → 4 and 6 → 8 on every such
    batch, while the tuned set compiles the observed sizes themselves
    (within the same plan-cache budget).  Both engines must keep the
    1.0 hit rate; the win is the pad-fraction drop.
    """
    if quick:
        rounds = 2
    # the skewed arrival pattern, repeated per round: mostly 3s, some
    # 6s, an occasional full flush
    sizes_per_round = [3, 3, 3, 6, 3, 6, max_batch, 3]
    observed = sizes_per_round * rounds

    model = CoastalSurrogate(SERVING)
    norm = Normalizer({v: 0.0 for v in ("u3", "v3", "w3", "zeta")},
                      {v: 1.0 for v in ("u3", "v3", "w3", "zeta")})
    canonical = ForecastEngine(model, norm)
    tuned = ForecastEngine(model, norm)
    canonical_buckets = canonical.compile_buckets(max_batch)
    tuned_buckets = tuned.compile_buckets(max_batch, histogram=observed)

    out = {}
    for label, engine, buckets in (
            ("canonical", canonical, canonical_buckets),
            ("tuned", tuned, tuned_buckets)):
        for r in range(rounds):
            for i, n in enumerate(sizes_per_round):
                engine.forecast_batch(
                    _serving_windows(n, seed=1000 * r + i))
        stats = engine.plan_stats()
        served = rounds * len(sizes_per_round)
        out[label] = {
            "buckets": list(buckets),
            "requests": served,
            "hit_rate": stats["hits"] / served if served else 0.0,
            "misses": stats["misses"],
            "bucket_pad_fraction": stats["bucket_pad_fraction"],
        }
    out["pad_fraction_saving"] = (
        out["canonical"]["bucket_pad_fraction"]
        - out["tuned"]["bucket_pad_fraction"])
    return out


def _print_histogram_report(sweep):
    c, t = sweep["canonical"], sweep["tuned"]
    print(f"Histogram-tuned buckets: canonical {c['buckets']} pads "
          f"{c['bucket_pad_fraction']:.3f} of served rows; tuned "
          f"{t['buckets']} pads {t['bucket_pad_fraction']:.3f} "
          f"(saving {sweep['pad_fraction_saving']:.3f}; hit rates "
          f"{c['hit_rate']:.2f} / {t['hit_rate']:.2f})")


def _check_histogram_sweep(sweep):
    failures = []
    for label in ("canonical", "tuned"):
        s = sweep[label]
        if s["hit_rate"] < 1.0 or s["misses"]:
            failures.append(
                f"{label} buckets: hit rate {s['hit_rate']:.2f} "
                f"({s['misses']} misses) on the skewed stream")
    if sweep["pad_fraction_saving"] < 0:
        failures.append(
            "histogram-tuned buckets pad MORE than the canonical set "
            f"({sweep['tuned']['bucket_pad_fraction']:.3f} > "
            f"{sweep['canonical']['bucket_pad_fraction']:.3f})")
    return failures


def test_histogram_tuned_buckets(capsys):
    """Tuned buckets keep the 1.0 hit rate and pad no more than the
    canonical power-of-two set on a skewed stream."""
    sweep = run_histogram_sweep(quick=True)
    with capsys.disabled():
        print()
        _print_histogram_report(sweep)
    assert not _check_histogram_sweep(sweep)


def _print_compiled_report(sweep):
    rows = []
    for n, m in sorted(sweep["batches"].items()):
        rows.append([n, f"{m['eager_eps']:.2f}", f"{m['unfused_eps']:.2f}",
                     f"{m['compiled_eps']:.2f}",
                     f"{m['speedup']:.2f}x", f"{m['fused_speedup']:.2f}x",
                     f"{m['eager_peak_bytes'] / 1e6:.2f}",
                     f"{m['compiled_peak_bytes'] / 1e6:.2f}",
                     f"{m['arena_bytes'] / 1e6:.2f}"])
    print(format_table(
        ["Batch", "Eager ep/s", "Unfused ep/s", "Fused ep/s",
         "Speedup", "Fusion gain", "Eager peak MB", "Compiled peak MB",
         "Arena MB"],
        rows, title=f"Compiled vs eager, serving scale {SERVING.mesh}, "
                    f"T={SERVING.time_steps}"))
    print(f"bitwise compiled == eager: {sweep['bitwise_equal']}")
    for b, ps in sorted(sweep["plan_pass_stats"].items()):
        print(f"  batch {b}: {ps['steps_before']} -> {ps['steps_after']} "
              f"steps ({ps['folded_steps']} folded, "
              f"{sum(ps['fused'].values())} fused, "
              f"{ps['dead_steps']} dead)")


def _print_bucketed_report(sweep):
    print(f"Bucketed partial batches: buckets {sweep['buckets']}, "
          f"{sweep['requests']} mixed-size requests, "
          f"hit rate {sweep['hit_rate']:.2f} "
          f"({sweep['misses']} misses), "
          f"pad fraction {sweep['bucket_pad_fraction']:.3f}, "
          f"bitwise {sweep['bitwise_equal']}")


def _check_bucketed_sweep(sweep):
    failures = []
    if sweep["hit_rate"] < 1.0 or sweep["misses"]:
        failures.append(
            f"bucketed sweep hit rate {sweep['hit_rate']:.2f} "
            f"({sweep['misses']} misses) — partial batches fell "
            "back to eager")
    if not sweep["bitwise_equal"]:
        failures.append("bucketed replay is not bitwise-identical "
                        "to eager")
    return failures


def _check_compiled_sweep(sweep, quick=False):
    """Shared verdicts for the pytest and script entry points.

    Returns a list of failure strings (empty = pass).
    """
    failures = []
    if not sweep["bitwise_equal"]:
        failures.append("compiled results are not bitwise-identical "
                        "to eager")
    for n, m in sweep["batches"].items():
        if m["compiled_peak_bytes"] >= m["eager_peak_bytes"]:
            failures.append(
                f"batch {n}: compiled peak buffer bytes "
                f"{m['compiled_peak_bytes']} not below eager "
                f"{m['eager_peak_bytes']}")
    cores = os.cpu_count() or 1
    top = max(sweep["batches"])
    speedup = sweep["batches"][top]["speedup"]
    if quick:
        print(f"NOTE: quick mode — ≥1.3x speedup gate not armed "
              f"(measured {speedup:.2f}x at batch {top})")
    elif cores < 2:
        # the plan's chunked elementwise replay needs a second core;
        # a single-core host measures only the dispatch/allocation win
        print(f"NOTE: host has 1 CPU core — the ≥1.3x compiled speedup "
              f"gate is not armed (measured {speedup:.2f}x at "
              f"batch {top})")
    elif speedup < 1.3:
        failures.append(
            f"compiled speedup {speedup:.2f}x < 1.3x at serving batch "
            f"{top} on {cores} cores")
    return failures


def test_compiled_vs_eager(capsys):
    """Bitwise identity, lower peak bytes, core-gated ≥1.3× speedup."""
    sweep = run_compiled_sweep()
    with capsys.disabled():
        print()
        _print_compiled_report(sweep)
        failures = _check_compiled_sweep(sweep)
    assert not failures, "; ".join(failures)


def test_bucketed_partial_batches(capsys):
    """100% plan hit rate and bitwise replay on a mixed-size stream."""
    sweep = run_bucketed_sweep(quick=True)
    with capsys.disabled():
        print()
        _print_bucketed_report(sweep)
    assert not _check_bucketed_sweep(sweep)


# ----------------------------------------------------------------------
# script mode: machine-readable benchmark trajectory
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small CI smoke run (correctness asserts only)")
    ap.add_argument("--out", default=None,
                    help="JSON output path (default: BENCH_inference.json "
                         "next to this file's repo root)")
    args = ap.parse_args(argv)

    sweep = run_compiled_sweep(quick=args.quick)
    _print_compiled_report(sweep)
    failures = _check_compiled_sweep(sweep, quick=args.quick)

    bucketed = run_bucketed_sweep(quick=args.quick)
    _print_bucketed_report(bucketed)
    failures += _check_bucketed_sweep(bucketed)

    histogram = run_histogram_sweep(quick=args.quick)
    _print_histogram_report(histogram)
    failures += _check_histogram_sweep(histogram)

    top = max(sweep["batches"])
    metrics = {"bitwise_equal": sweep["bitwise_equal"]}
    for n, m in sweep["batches"].items():
        for k, v in m.items():
            metrics[f"{k}_b{n}"] = v
    # the compiled column replays the fused plan; name it explicitly so
    # the gate entry reads as what it is
    metrics[f"fused_eps_b{top}"] = metrics[f"compiled_eps_b{top}"]
    metrics["bucket_hit_rate"] = bucketed["hit_rate"]
    metrics["bucket_pad_fraction"] = bucketed["bucket_pad_fraction"]
    metrics["hist_pad_fraction_canonical"] = \
        histogram["canonical"]["bucket_pad_fraction"]
    metrics["hist_pad_fraction_tuned"] = \
        histogram["tuned"]["bucket_pad_fraction"]
    metrics["hist_pad_fraction_saving"] = \
        histogram["pad_fraction_saving"]
    record = {
        "benchmark": "inference",
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "quick": bool(args.quick),
        "cores": os.cpu_count() or 1,
        "config": {"mesh": list(SERVING.mesh),
                   "time_steps": SERVING.time_steps,
                   "batches": sorted(sweep["batches"]),
                   "buckets": list(bucketed["buckets"])},
        "metrics": metrics,
        "plan_pass_stats": sweep["plan_pass_stats"],
        "bucketed": bucketed,
        "histogram_buckets": histogram,
        # tools/bench_gate.py regresses these (higher = better); the
        # fused-plan throughput is gated the same way bench_serving
        # gates proc_pool_sat_qps
        "gate": {"higher_better": [f"compiled_eps_b{top}",
                                   f"fused_eps_b{top}",
                                   "bucket_hit_rate"]},
    }
    out_path = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_inference.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out_path}")

    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        print("PASS: compiled plans bitwise-identical with lower peak "
              "buffer bytes")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
