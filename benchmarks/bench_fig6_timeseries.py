"""Figure 6 — ζ time series at three estuary locations over the horizon.

The paper plots solver vs. surrogate free-surface elevation at three
locations for a 12-day forecast (576 half-hour steps).  Headless
reproduction: the same comparison at three wet cells spread across the
bench estuary over the 64-step dual-model horizon, reported as
per-location RMSE, correlation, and amplitude ratio plus a decimated
series table.
"""

import numpy as np
import pytest

from repro.eval import extract_series, format_table, series_skill

from conftest import COARSE_EVERY, T

HORIZON = T * COARSE_EVERY


def _three_wet_locations(env):
    """Three wet cells spread south → mid → north, as in the paper."""
    wet = env.ocean.solver.wet
    grid = env.ocean.grid
    picks = []
    for frac in (0.2, 0.5, 0.8):
        j = int(frac * grid.ny)
        wet_cols = np.flatnonzero(wet[j])
        i = int(wet_cols[len(wet_cols) // 2])
        picks.append(grid.lonlat(j, i)[::-1])   # (lat, lon)
    return picks


def test_fig6_report(env, capsys):
    ref = env.test_windows(length=HORIZON)[0]
    pred = env.dual.forecast(ref).fields
    locations = _three_wet_locations(env)
    series = extract_series(env.ocean.grid, ref, pred,
                            locations=locations)

    rows = []
    for k, s in enumerate(series):
        skill = series_skill(s)
        rows.append([
            f"Location {k + 1}",
            f"{s.lat:.2f}N, {abs(s.lon):.2f}W",
            f"{skill['rmse']:.4f}",
            f"{skill['corr']:.3f}",
            f"{skill['amp_ratio']:.3f}",
        ])

    with capsys.disabled():
        print()
        print(format_table(
            ["Location", "Position", "RMSE [m]", "Corr", "Amp ratio"],
            rows,
            title=f"FIGURE 6 — ζ series skill over {HORIZON} steps "
                  f"(paper: close track over 576 steps at 3 locations)"))
        # decimated series for the first location (the figure's panel b)
        s = series[0]
        step = max(1, HORIZON // 8)
        print(format_table(
            ["t", "solver ζ [m]", "surrogate ζ [m]"],
            [[t, f"{s.reference[t]:+.3f}", f"{s.forecast[t]:+.3f}"]
             for t in range(0, HORIZON, step)],
            title="Location 1 series (decimated)"))

    # the surrogate must track the tidal phase at every location
    for s in series:
        skill = series_skill(s)
        assert skill["corr"] > 0.3, (
            f"no phase skill at ({s.lat:.2f}, {s.lon:.2f})")
        assert skill["rmse"] < 2.0 * s.reference.std() + 1e-6


@pytest.mark.benchmark(group="fig6")
def test_fig6_series_extraction(env, benchmark):
    ref = env.test_windows(length=HORIZON)[0]
    locations = _three_wet_locations(env)
    benchmark(lambda: extract_series(env.ocean.grid, ref, ref,
                                     locations=locations))
