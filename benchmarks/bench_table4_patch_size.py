"""Table IV — sensitivity to the horizontal patch size.

Trains surrogates with horizontal patches 4, 8, and 16 (the scaled
analogues of the paper's 5 / 15 / 25) under an identical budget and
reports parameter counts (encoder + decoder split), time per inference
instance, and test MAE/RMSE.  Expected shape from the paper: the
smallest patch has the most parameters (encoder-heavy), larger patches
shift parameters into the decoder's transposed convolutions, and the
smallest patch wins on accuracy.
"""

from dataclasses import replace
import time

import pytest

from repro.data import DataLoader, SlidingWindowDataset
from repro.eval import aggregate_errors, compute_errors, format_sci, format_table
from repro.swin import CoastalSurrogate
from repro.train import Trainer, TrainerConfig, load_checkpoint, save_checkpoint
from repro.workflow import SurrogateForecaster

from conftest import CACHE, EPOCHS, SURROGATE, T

PATCH_SIZES = (4, 8, 16)


def _patched_config(p: int):
    return replace(SURROGATE, patch3d=(p, p, 2), patch2d=(p, p))


def _trained_variant(env, p: int):
    cfg = _patched_config(p)
    ckpt = CACHE / f"patch{p}_model.npz"
    model = CoastalSurrogate(cfg)
    if ckpt.exists():
        load_checkpoint(ckpt, model)
        return model
    ds = SlidingWindowDataset(env.bundle.open_train(), env.normalizer,
                              window=T, stride=4, pad_to=(cfg.mesh[0], cfg.mesh[1]))
    trainer = Trainer(model, TrainerConfig(lr=2e-3))
    trainer.fit(DataLoader(ds, batch_size=2, shuffle=True, seed=0),
                epochs=max(2, EPOCHS // 2))
    save_checkpoint(ckpt, model)
    return model


def test_table4_report(env, capsys):
    wet = env.ocean.solver.wet
    rows = []
    accuracy = {}
    for p in PATCH_SIZES:
        model = _trained_variant(env, p)
        fc = SurrogateForecaster(model, env.normalizer)
        windows = env.test_windows(length=T)

        t0 = time.perf_counter()
        preds = [fc.forecast_episode(w).fields for w in windows]
        per_instance = (time.perf_counter() - t0) / len(windows)

        agg = aggregate_errors(
            [compute_errors(pr, w, wet=wet)
             for pr, w in zip(preds, windows)])
        accuracy[p] = agg
        b = model.parameter_breakdown()
        rows.append([
            p,
            f"{b['total']/1e6:.3f} ({b['encoder']/1e6:.3f} + "
            f"{b['decoder']/1e6:.3f})",
            f"{per_instance:.3f}",
            format_sci(agg.mae["u"]), format_sci(agg.mae["v"]),
            format_sci(agg.mae["w"]), format_sci(agg.mae["zeta"]),
            format_sci(agg.rmse["u"]), format_sci(agg.rmse["zeta"]),
        ])

    with capsys.disabled():
        print()
        print(format_table(
            ["Patch", "#Params [M] (enc + dec)", "Time/inst [s]",
             "MAE u", "MAE v", "MAE w", "MAE ζ", "RMSE u", "RMSE ζ"],
            rows,
            title="TABLE IV — patch-size sensitivity "
                  "(paper: patch 5 → 3.39M params, best accuracy)"))

    # paper shape: the smallest patch "mostly" wins — under the short
    # bench training budget we assert it is at worst within 10% of the
    # best ζ RMSE across patch sizes (the paper's own Table IV has the
    # smallest patch winning most but not all columns)
    best = min(accuracy[p].rmse["zeta"] for p in PATCH_SIZES)
    assert accuracy[4].rmse["zeta"] <= 1.10 * best
    # and parameter counts must differ across patch sizes
    counts = {CoastalSurrogate(_patched_config(p)).num_parameters()
              for p in PATCH_SIZES}
    assert len(counts) == len(PATCH_SIZES)


@pytest.mark.benchmark(group="table4")
@pytest.mark.parametrize("p", PATCH_SIZES)
def test_table4_inference_time(env, benchmark, p):
    model = _trained_variant(env, p)
    fc = SurrogateForecaster(model, env.normalizer)
    w = env.test_windows(length=T)[0]
    benchmark(lambda: fc.forecast_episode(w))
