"""Figure 9 — training-throughput ablation.

Two complementary reproductions:

1. **Analytic platform model** with the paper's bandwidths: all four
   bars (full / −ckpt / −pin / −prefetch), calibrated only on the two
   compute-side bars — the I/O bars are predictions.
2. **Measured on this machine**: actual trainer throughput with and
   without activation checkpointing, and the loader with and without
   prefetch workers, at bench scale.  (CPU NumPy has no pinned-memory
   distinction; that bar exists only in the model.)
"""

from dataclasses import replace

import pytest

from repro.data import DataLoader, SlidingWindowDataset
from repro.eval import format_table
from repro.hpc import PipelineParams, TrainingPipelineModel
from repro.swin import CoastalSurrogate
from repro.train import Trainer, TrainerConfig

from conftest import SURROGATE, T

PAPER_FIG9 = {"Our method": 1.36, "w/o activation ckpt": 0.81,
              "w/o pin memory": 0.74, "w/o prefetch": 0.45}


def _measured_throughput(env, use_checkpoint: bool, num_workers: int,
                         batch_size: int, steps: int = 4) -> float:
    cfg = replace(SURROGATE, use_checkpoint=use_checkpoint)
    model = CoastalSurrogate(cfg)
    ds = SlidingWindowDataset(env.bundle.open_train(), env.normalizer,
                              window=T, stride=3,
                              pad_to=(SURROGATE.mesh[0], SURROGATE.mesh[1]))
    loader = DataLoader(ds, batch_size=batch_size, shuffle=False,
                        num_workers=num_workers)
    trainer = Trainer(model, TrainerConfig(lr=1e-3))
    import time
    done = 0
    t0 = time.perf_counter()
    for k, batch in enumerate(loader):
        if k >= steps:
            break
        trainer.train_step(batch)
        done += batch.batch_size
    return done / (time.perf_counter() - t0)


def test_fig9_model_report(env, capsys):
    model = TrainingPipelineModel(PipelineParams())
    rows = []
    for r in model.figure9():
        rows.append([r["name"], f"{r['throughput']:.2f}",
                     f"{PAPER_FIG9[r['name']]:.2f}", r["batch_size"],
                     f"{r['iteration_seconds']:.2f}"])
    with capsys.disabled():
        print()
        print(format_table(
            ["Configuration", "Model [inst/s]", "Paper [inst/s]",
             "Batch", "Iter [s]"],
            rows, title="FIGURE 9 — training-throughput ablation "
                        "(analytic platform model)"))

    by = {r["name"]: r["throughput"] for r in model.figure9()}
    # the paper's ordering must reproduce
    assert by["Our method"] > by["w/o activation ckpt"] \
        > by["w/o pin memory"] > by["w/o prefetch"]
    for name, target in PAPER_FIG9.items():
        assert abs(by[name] - target) / target < 0.15


def test_fig9_measured_report(env, capsys):
    full = _measured_throughput(env, use_checkpoint=True,
                                num_workers=1, batch_size=2)
    no_ckpt = _measured_throughput(env, use_checkpoint=False,
                                   num_workers=1, batch_size=1)
    no_prefetch = _measured_throughput(env, use_checkpoint=True,
                                       num_workers=0, batch_size=2)
    with capsys.disabled():
        print()
        print(format_table(
            ["Configuration", "Measured [inst/s]"],
            [["ckpt + prefetch (batch 2)", f"{full:.3f}"],
             ["w/o activation ckpt (batch 1)", f"{no_ckpt:.3f}"],
             ["w/o prefetch (batch 2)", f"{no_prefetch:.3f}"]],
            title="FIGURE 9 — measured on this machine (CPU engine: "
                  "checkpointing pays recompute without a memory win, "
                  "so its benefit appears only under the GPU memory "
                  "model above)"))
    assert full > 0 and no_ckpt > 0 and no_prefetch > 0


@pytest.mark.benchmark(group="fig9")
def test_fig9_train_step_checkpointed(env, benchmark):
    cfg = replace(SURROGATE, use_checkpoint=True)
    model = CoastalSurrogate(cfg)
    ds = SlidingWindowDataset(env.bundle.open_train(), env.normalizer,
                              window=T, stride=3,
                              pad_to=(SURROGATE.mesh[0], SURROGATE.mesh[1]))
    loader = DataLoader(ds, batch_size=1, shuffle=False)
    batch = next(iter(loader))
    trainer = Trainer(model, TrainerConfig(lr=1e-3))
    benchmark.pedantic(lambda: trainer.train_step(batch), rounds=2,
                       iterations=1)


@pytest.mark.benchmark(group="fig9")
def test_fig9_train_step_plain(env, benchmark):
    model = CoastalSurrogate(SURROGATE)
    ds = SlidingWindowDataset(env.bundle.open_train(), env.normalizer,
                              window=T, stride=3,
                              pad_to=(SURROGATE.mesh[0], SURROGATE.mesh[1]))
    loader = DataLoader(ds, batch_size=1, shuffle=False)
    batch = next(iter(loader))
    trainer = Trainer(model, TrainerConfig(lr=1e-3))
    benchmark.pedantic(lambda: trainer.train_step(batch), rounds=2,
                       iterations=1)
