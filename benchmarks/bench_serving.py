#!/usr/bin/env python
"""Serving benchmark: throughput and occupancy vs offered load and
replica count.

Drives an :class:`~repro.serve.pool.EngineWorkerPool` (a
:class:`~repro.serve.scheduler.MicroBatchScheduler` per replica over
the batched :class:`~repro.workflow.engine.ForecastEngine`) with a
paced synthetic request trace, sweeping the offered load from well
below to well above the pool's capacity.  At low load the schedulers
degrade to batch-1 forwards (occupancy ≈ 1, latency ≈ max_wait +
forward); at saturating load requests coalesce (occupancy → max_batch)
and measured throughput approaches the affine capacity model's limit.

With ``--workers N`` the same sweep runs against the single-replica
baseline first and the pool second, reporting the per-replica vs pool
saturation throughput and the fitted
:class:`~repro.hpc.serving.PoolCapacityModel` contention — the number
that says how many replicas this host can actually use.  The parallel
win comes from NumPy releasing the GIL inside its kernels, so the
speedup gate only arms when the host has at least ``--workers`` CPU
cores (a single-core host measures contention σ ≈ 1, which the model
reports honestly instead of faking a win).

``--backend process`` (or ``both``) additionally measures the process
execution tier (:mod:`repro.serve.procpool`): saturated throughput per
pool width with every replica in its own child process behind the
shared-memory descriptor transport.  This is the sweep that escapes
the GIL the thread pool serialises on — on a multi-core host it gates
``≥1.8×`` at 2 replicas and monotone scaling up to ``min(4, cores)``;
on a core-starved host the gates stand down with a NOTE, same policy
as the thread-pool gate.

``--backend host`` (or ``all`` = thread+process+host) measures the
host execution tier (:mod:`repro.serve.hostpool`): replicas behind
the :mod:`repro.hpc.fabric` descriptor transport (``--fabric socket``
for the real TCP-loopback wire, ``sim`` for the deterministic
in-process fabric).  Two measurements: the saturated pool throughput
per width (gated like the process tier), and a **pipelining trial** —
one worker driven closed-loop at in-flight depth 1 vs depth 4 against
the direct-engine baseline.  The depth-1 gap to direct is the network
hop's per-batch penalty; the gate demands pipelining recover ≥ 25% of
it (stands down with a NOTE under ``--quick``, on a single-core host,
or when the hop penalty is too small to matter).

``--scenario`` replays a recorded multi-basin storm-spike traffic
trace (:mod:`repro.scenario`) against a server on the selected
backend — the end-to-end check that the tier holds up under realistic
keyed, bursty arrivals, not just uniform synthetic load.

Self-contained on purpose (no ``.bench_cache`` training): serving
throughput does not depend on forecast skill, so an untrained tiny
surrogate gives the same scheduling behaviour in seconds, which lets CI
smoke this benchmark on every push::

    python benchmarks/bench_serving.py --quick --workers 2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from collections import deque

from repro.data import Normalizer
from repro.hpc import PoolCapacityModel, ServingCapacityModel
from repro.serve import EngineWorkerPool, HostWorker, PoolSaturated
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.workflow import ForecastEngine
from repro.workflow.engine import FieldWindow

T = 4
H, W, D = 15, 14, 6
VARS = ("u3", "v3", "w3", "zeta")


def build_engines(n: int, embed_dim: int = 8) -> list:
    """N ForecastEngine replicas sharing one model + normalizer.

    Sharing weights keeps the replicas numerically identical (inference
    is read-only over model state), so pool results stay comparable to
    the single-engine baseline.
    """
    cfg = SurrogateConfig(
        mesh=(16, 16, D), time_steps=T,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=embed_dim, num_heads=(2, 4, 8), depths=(2, 2, 2),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
    )
    model = CoastalSurrogate(cfg)
    norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
    return [ForecastEngine(model, norm) for _ in range(n)]


def make_windows(n: int, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        out.append(FieldWindow(
            rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W, D)),
            rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W))))
    return out


def run_trial(engines, windows, offered_qps: float, n_requests: int,
              max_batch: int, max_wait: float, max_queue: int,
              n_clients: int = 4, warm_plans: bool = True,
              backend: str = "thread", fabric: str = "socket") -> dict:
    """Offer ``n_requests`` at ``offered_qps`` (∞ = as fast as possible)
    from ``n_clients`` threads; return achieved throughput + metrics.

    Clients honour backpressure: a shed request backs off by the
    advertised ``retry_after`` and retries, so every offered request is
    eventually served and the shed count measures admission pressure.
    With ``warm_plans`` (the serving default) each engine's compiled
    inference plan for ``max_batch`` is traced before the clock starts,
    so saturated micro-batches replay allocation-free.  With
    ``backend="process"`` every replica runs in a child process behind
    the shared-memory transport; the spawn/warm cost is paid before the
    clock starts (pool construction), like any rolling deploy would.
    """
    pool = EngineWorkerPool(engines, max_batch=max_batch, max_wait=max_wait,
                            max_queue=max_queue, router="least-outstanding",
                            warm_plans=warm_plans, backend=backend,
                            fabric=fabric)
    futures, lock = [], threading.Lock()
    per_client = np.array_split(np.arange(n_requests), n_clients)
    interval = n_clients / offered_qps if np.isfinite(offered_qps) else 0.0

    def client(cid, indices):
        # phase-stagger the clients so the offered process is uniform
        # rather than n_clients-synchronised bursts
        if interval:
            time.sleep(interval * cid / n_clients)
        for k in indices:
            if interval:
                time.sleep(interval)
            while True:
                try:
                    fut = pool.submit(windows[k % len(windows)])
                    break
                except PoolSaturated as exc:
                    time.sleep(min(exc.retry_after, 0.1))
            with lock:
                futures.append(fut)

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client, args=(ci, idx))
               for ci, idx in enumerate(per_client)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    with pool:
        for fut in futures:
            fut.result(timeout=300)
    elapsed = time.perf_counter() - t0

    m = pool.metrics
    return {
        "offered_qps": offered_qps,
        "achieved_qps": n_requests / elapsed,
        "occupancy": m.mean_occupancy,
        "max_occ": m.max_occupancy,
        "batches": m.n_batches,
        "plan_batches": m.plan_batches,
        "shed": m.shed_requests,
        "p50_ms": 1e3 * m.latency_percentile(50),
        "p95_ms": 1e3 * m.latency_percentile(95),
        "ipc_wait_s": m.ipc_wait_s,
        "marshal_bytes": m.marshal_bytes,
        "net_wait_s": m.net_wait_s,
        "frame_bytes": m.frame_bytes,
        "inflight_depth": m.inflight_depth,
        "spawn_s": m.summary()["spawn_seconds_mean"],
        "records": m.batches,
    }


def fmt_qps(q: float) -> str:
    return "max" if not np.isfinite(q) else f"{q:.0f}"


def run_sweep(engines, windows, loads, n_requests, args, label: str,
              backend: str = "thread", fabric: str = "socket"):
    print(f"\n--- {label} ---")
    header = (f"{'offered':>8} {'achieved':>9} {'occupancy':>9} "
              f"{'batches':>7} {'plan':>5} {'shed':>5} {'p50':>8} "
              f"{'p95':>8}")
    print(header)
    print("-" * len(header))
    rows, all_records = [], []
    for qps in loads:
        row = run_trial(engines, windows, qps, n_requests,
                        args.max_batch, args.max_wait, args.max_queue,
                        warm_plans=not args.no_plans, backend=backend,
                        fabric=fabric)
        all_records.extend(row.pop("records"))
        rows.append(row)
        print(f"{fmt_qps(row['offered_qps']):>8} "
              f"{row['achieved_qps']:>8.0f}/s "
              f"{row['occupancy']:>9.2f} {row['batches']:>7d} "
              f"{row['plan_batches']:>5d} {row['shed']:>5d} "
              f"{row['p50_ms']:>6.1f}ms {row['p95_ms']:>6.1f}ms")
    if backend == "process":
        last = rows[-1]
        print(f"transport: spawn {last['spawn_s']:.2f}s/replica, "
              f"ipc wait {last['ipc_wait_s']:.3f}s, "
              f"{last['marshal_bytes'] / 1e6:.1f} MB marshalled "
              "(saturated trial)")
    elif backend == "host":
        last = rows[-1]
        print(f"transport: spawn {last['spawn_s']:.2f}s/replica, "
              f"net wait {last['net_wait_s']:.3f}s, "
              f"{last['frame_bytes'] / 1e6:.1f} MB framed, "
              f"in-flight depth {last['inflight_depth']} "
              "(saturated trial)")
    return rows, all_records


def run_pipelining_trial(engine, windows, batch: int, n_batches: int,
                         depth: int, fabric: str) -> dict:
    """One HostWorker, closed-loop at a fixed in-flight depth.

    Depth 1 is strict request/response — each batch eats the full
    network hop (marshal + wire + unmarshal) in its critical path.
    Depth ≥ 2 is the pipelined protocol: batch N+1 is packed and on
    the wire while the remote computes batch N.  Against the direct
    in-process baseline this isolates how much of the hop penalty the
    pipeline buys back.
    """
    batches = [[windows[(i * batch + j) % len(windows)]
                for j in range(batch)] for i in range(n_batches)]
    with HostWorker(engine, fabric=fabric, warm_batches=(batch,)) as w:
        w.forecast_batch(batches[0])              # warm both sides
        pending = deque()
        t0 = time.perf_counter()
        for b in batches:
            if len(pending) >= depth:
                pending.popleft().result(timeout=300)
            pending.append(w.submit_batch(b))
        while pending:
            pending.popleft().result(timeout=300)
        elapsed = time.perf_counter() - t0
        stats = w.transport_stats()
    return {
        "depth": depth,
        "qps": n_batches * batch / elapsed,
        "batch_seconds": elapsed / n_batches,
        "inflight_depth": stats["inflight_depth"],
        "net_wait_s": stats["net_wait_s"],
        "frame_bytes": stats["frame_bytes"],
    }


def run_scenario_replay(engines, args, backend: str,
                        fabric: str) -> dict:
    """Replay a recorded multi-basin storm-spike trace against a
    server on ``backend`` — keyed, bursty, cache-warm traffic through
    the exact stack the synthetic sweeps exercise uniformly."""
    from repro.scenario import (DEFAULT_BASINS, ScenarioFactory,
                                StormSpike, TrafficModel, replay_trace,
                                simulate_trace)
    from repro.serve import ForecastServer

    duration_s = 4.0 if args.quick else 10.0
    factory = ScenarioFactory(seed=11)
    spikes = {s.name: StormSpike(center_s=duration_s / 2,
                                 width_s=duration_s / 16, amplitude=8.0)
              for s in DEFAULT_BASINS}
    model = TrafficModel.from_factory(
        factory, base_rate=24.0, unique_fraction=0.5,
        advance_every_s=duration_s / 4, spikes=spikes)
    trace = simulate_trace(model, duration_s=duration_s, seed=11)
    server = ForecastServer(engines[0], workers=args.workers,
                            max_batch=args.max_batch,
                            max_wait=args.max_wait,
                            max_queue=args.max_queue,
                            router="key-affinity",
                            backend=backend, fabric=fabric,
                            cache_bytes=1 << 24)
    try:
        report = replay_trace(trace, server, factory, mode="wall",
                              time_scale=0.0, shed_retry=0.02,
                              timeout=300.0)
        report.check()          # offered == served + cached + shed
        out = {
            "backend": backend,
            "offered": report.offered,
            "served": report.served,
            "cached": report.cached,
            "shed": report.shed,
            "lost": report.lost,
            "sustained_qps": report.sustained_qps(),
        }
    finally:
        server.close()
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small CI smoke run with correctness asserts")
    ap.add_argument("--requests", type=int, default=96,
                    help="requests per load level")
    ap.add_argument("--workers", type=int, default=1,
                    help="engine replicas in the pool")
    ap.add_argument("--max-batch", type=int, default=8)
    ap.add_argument("--max-wait", type=float, default=0.02,
                    help="scheduler flush timeout [s]")
    ap.add_argument("--max-queue", type=int, default=256,
                    help="per-replica outstanding-request bound")
    ap.add_argument("--no-plans", action="store_true",
                    help="serve through the eager path instead of "
                         "warmed compiled plans")
    ap.add_argument("--backend",
                    choices=("thread", "process", "host", "both", "all"),
                    default="thread",
                    help="replica execution tier: in-process threads "
                         "(GIL-bound on the pure-NumPy backend), child "
                         "processes behind the shared-memory transport, "
                         "remote-host replicas behind the descriptor "
                         "fabric, 'both' (thread+process) or 'all' "
                         "(all three) for side-by-side records")
    ap.add_argument("--fabric", choices=("socket", "sim"),
                    default="socket",
                    help="host-tier transport: real TCP loopback or the "
                         "deterministic in-process sim fabric")
    ap.add_argument("--scenario", action="store_true",
                    help="additionally replay a recorded multi-basin "
                         "storm-spike traffic trace against the selected "
                         "backend")
    ap.add_argument("--out", default=None,
                    help="JSON output path (default: BENCH_serving.json "
                         "in the repo root)")
    args = ap.parse_args(argv)
    if args.workers < 1:
        ap.error("--workers must be >= 1")

    n_requests = 24 if args.quick else args.requests
    engines = build_engines(args.workers)
    windows = make_windows(16)

    # calibrate one replica's batch-1 capacity from end-to-end
    # wall-clock (normalise/assemble/denorm + dispatch included, not
    # just the model forward) so the sweep brackets the true knee
    engines[0].forecast_batch(windows[:1])        # warm caches
    t0 = time.perf_counter()
    for k in range(3):
        engines[0].forecast_batch([windows[k]])
    base_qps = 3.0 / max(time.perf_counter() - t0, 1e-9)

    def loads_for(n_replicas: int):
        scale = base_qps * n_replicas
        return ([0.25 * scale, float("inf")] if args.quick else
                [0.25 * scale, 0.5 * scale, scale,
                 2 * scale, 4 * scale, float("inf")])

    print(f"serving benchmark: workers={args.workers} "
          f"max_batch={args.max_batch} "
          f"max_wait={1e3 * args.max_wait:.0f}ms "
          f"max_queue={args.max_queue} requests/level={n_requests} "
          f"(calibrated batch-1 replica capacity ≈ {base_qps:.0f} req/s)")

    single_rows, single_records = run_sweep(
        engines[:1], windows, loads_for(1), n_requests, args,
        "single replica (baseline)")
    replica_model = ServingCapacityModel.from_batch_log(single_records)
    print(f"replica capacity model: "
          f"dispatch {1e3 * replica_model.dispatch_seconds:.2f}ms"
          f" + {1e3 * replica_model.per_request_seconds:.2f}ms/request"
          f" → saturation ≈ {replica_model.saturation_throughput:.0f} req/s,"
          f" optimal batch @50ms SLO = {replica_model.optimal_batch(0.05)}")

    single_sat = single_rows[-1]["achieved_qps"]
    run_threads = args.backend in ("thread", "both", "all")
    run_procs = args.backend in ("process", "both", "all")
    run_hosts = args.backend in ("host", "all")
    pool_rows = None
    if run_threads and args.workers > 1:
        pool_rows, _ = run_sweep(
            engines, windows, loads_for(args.workers), n_requests, args,
            f"pool of {args.workers} thread replicas")
        pool_sat = pool_rows[-1]["achieved_qps"]
        speedup = pool_sat / single_sat
        pool_model = PoolCapacityModel.fit(
            replica_model, [1, args.workers], [single_sat, pool_sat])
        print(f"\nper-replica vs pool saturation: "
              f"{single_sat:.0f} req/s → {pool_sat:.0f} req/s "
              f"({speedup:.2f}× with {args.workers} replicas; "
              f"fitted contention σ = {pool_model.contention:.2f})")
        print(f"{'replicas':>9} {'modelled sat req/s':>19} {'speedup':>8}")
        for n in (1, 2, 4, 8, 16):
            print(f"{n:>9} {pool_model.saturation_throughput(n):>19.0f} "
                  f"{pool_model.speedup(n):>7.2f}×")

    # -- process tier: saturated throughput per pool width --------------
    # one saturated trial per width (the sat point is what scales with
    # cores; the low-load shape is backend-independent).  The sweep is
    # what shows near-linear scaling where the thread pool measured
    # ~1× — or honestly shows time-sharing on a core-starved host.
    proc_rows = proc_scaling = None
    if run_procs:
        widths = sorted({w for w in (1, 2, 4, args.workers)
                         if 1 <= w <= args.workers})
        if args.quick:
            widths = [args.workers]
        proc_scaling = {}
        for width in widths:
            rows, _ = run_sweep(
                engines[:width], windows, [float("inf")], n_requests,
                args, f"process pool, {width} replica(s), saturated",
                backend="process")
            proc_scaling[width] = rows[-1]["achieved_qps"]
            if width == args.workers:
                proc_rows = rows
        proc_sat = proc_scaling[args.workers]
        proc_speedup = proc_sat / single_sat
        print(f"\nprocess tier saturation vs in-process baseline "
              f"({single_sat:.0f} req/s):")
        print(f"{'replicas':>9} {'sat req/s':>10} {'speedup':>8}")
        for width in widths:
            print(f"{width:>9} {proc_scaling[width]:>10.0f} "
                  f"{proc_scaling[width] / single_sat:>7.2f}×")

    # -- host tier: saturated throughput per width + pipelining ---------
    # the host tier pays a hop shm never had (marshal + wire); the
    # saturated sweep shows what the pool still delivers through it,
    # and the pipelining trial shows how much of the hop the
    # depth-K protocol buys back vs strict request/response
    host_rows = host_scaling = pipe = None
    if run_hosts:
        widths = sorted({w for w in (1, 2, 4, args.workers)
                         if 1 <= w <= args.workers})
        if args.quick:
            widths = [args.workers]
        host_scaling = {}
        for width in widths:
            rows, _ = run_sweep(
                engines[:width], windows, [float("inf")], n_requests,
                args, f"host pool ({args.fabric} fabric), {width} "
                "replica(s), saturated",
                backend="host", fabric=args.fabric)
            host_scaling[width] = rows[-1]["achieved_qps"]
            if width == args.workers:
                host_rows = rows
        host_sat = host_scaling[args.workers]
        print(f"\nhost tier ({args.fabric} fabric) saturation vs "
              f"in-process baseline ({single_sat:.0f} req/s):")
        print(f"{'replicas':>9} {'sat req/s':>10} {'vs thread':>10}")
        for width in widths:
            print(f"{width:>9} {host_scaling[width]:>10.0f} "
                  f"{host_scaling[width] / single_sat:>9.2f}×")

        # pipelining: direct vs depth-1 vs depth-4 on one worker
        pipe_batches = 8 if args.quick else 32
        pipe_batch = args.max_batch
        batches = [[windows[(i * pipe_batch + j) % len(windows)]
                    for j in range(pipe_batch)]
                   for i in range(pipe_batches)]
        engines[0].compile(pipe_batch)
        engines[0].forecast_batch(batches[0])         # warm
        t0 = time.perf_counter()
        for b in batches:
            engines[0].forecast_batch(b)
        direct_secs = (time.perf_counter() - t0) / pipe_batches
        d1 = run_pipelining_trial(engines[0], windows, pipe_batch,
                                  pipe_batches, 1, args.fabric)
        d4 = run_pipelining_trial(engines[0], windows, pipe_batch,
                                  pipe_batches, 4, args.fabric)
        penalty = d1["batch_seconds"] - direct_secs
        recovered = d1["batch_seconds"] - d4["batch_seconds"]
        recovery = recovered / penalty if penalty > 0 else float("nan")
        pipe = {
            "direct_batch_seconds": direct_secs,
            "depth1_batch_seconds": d1["batch_seconds"],
            "depth4_batch_seconds": d4["batch_seconds"],
            "depth4_inflight_depth": d4["inflight_depth"],
            "hop_penalty_seconds": penalty,
            "pipeline_recovery": recovery,
        }
        print(f"\npipelining ({args.fabric} fabric, batch={pipe_batch}): "
              f"direct {1e3 * direct_secs:.1f}ms/batch, "
              f"depth-1 {1e3 * d1['batch_seconds']:.1f}ms, "
              f"depth-4 {1e3 * d4['batch_seconds']:.1f}ms "
              f"(measured depth {d4['inflight_depth']})")
        if penalty > 0:
            print(f"hop penalty {1e3 * penalty:.1f}ms/batch; pipelining "
                  f"recovered {1e3 * recovered:.1f}ms "
                  f"({100 * recovery:.0f}%)")

    # -- machine-readable trajectory ------------------------------------
    saturated_rows = host_rows or proc_rows or pool_rows or single_rows
    metrics = {
        "single_sat_qps": single_sat,
        "saturated_occupancy": saturated_rows[-1]["occupancy"],
        "plan_batches_saturated": saturated_rows[-1]["plan_batches"],
        "batches_saturated": saturated_rows[-1]["batches"],
        "replica_dispatch_ms": 1e3 * replica_model.dispatch_seconds,
        "replica_per_request_ms": 1e3 * replica_model.per_request_seconds,
    }
    gate_keys = ["single_sat_qps"]
    if pool_rows is not None:
        metrics["pool_sat_qps"] = pool_sat
        metrics["pool_speedup"] = speedup
        metrics["contention_sigma"] = pool_model.contention
        gate_keys.append("pool_sat_qps")
    if proc_scaling is not None:
        metrics["proc_scaling_sat_qps"] = {
            str(w): q for w, q in proc_scaling.items()}
        metrics["proc_ipc_wait_s"] = proc_rows[-1]["ipc_wait_s"]
        metrics["proc_marshal_bytes"] = proc_rows[-1]["marshal_bytes"]
        metrics["proc_spawn_s"] = proc_rows[-1]["spawn_s"]
        if args.workers > 1:
            metrics["proc_pool_sat_qps"] = proc_sat
            metrics["proc_pool_speedup"] = proc_speedup
            gate_keys.append("proc_pool_sat_qps")
    if host_scaling is not None:
        metrics["host_scaling_sat_qps"] = {
            str(w): q for w, q in host_scaling.items()}
        metrics["host_net_wait_s"] = host_rows[-1]["net_wait_s"]
        metrics["host_frame_bytes"] = host_rows[-1]["frame_bytes"]
        metrics["host_inflight_depth"] = host_rows[-1]["inflight_depth"]
        metrics["host_spawn_s"] = host_rows[-1]["spawn_s"]
        metrics["host_pool_sat_qps"] = host_sat
        metrics["host_pipeline"] = pipe
        gate_keys.append("host_pool_sat_qps")
    scenario_report = None
    if args.scenario:
        primary = "host" if run_hosts else \
            ("process" if run_procs else "thread")
        scenario_report = run_scenario_replay(engines, args, primary,
                                              args.fabric)
        metrics["scenario"] = scenario_report
        print(f"\nscenario replay ({primary} backend): "
              f"{scenario_report['offered']} offered → "
              f"{scenario_report['served']} served + "
              f"{scenario_report['cached']} cached + "
              f"{scenario_report['shed']} shed "
              f"({scenario_report['sustained_qps']:.0f} req/s sustained)")
    record = {
        "benchmark": "serving",
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "quick": bool(args.quick),
        "cores": os.cpu_count() or 1,
        "config": {"workers": args.workers, "max_batch": args.max_batch,
                   "max_wait": args.max_wait, "max_queue": args.max_queue,
                   "requests_per_level": n_requests,
                   "compiled_plans": not args.no_plans,
                   "backend": args.backend, "fabric": args.fabric,
                   "scenario": bool(args.scenario)},
        "metrics": metrics,
        # tools/bench_gate.py regresses these (higher = better)
        "gate": {"higher_better": gate_keys},
    }
    out_path = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_serving.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {out_path}")

    # -- verdicts -------------------------------------------------------
    saturated = saturated_rows[-1]
    if saturated["occupancy"] <= 1.0:
        print("FAIL: no request coalescing at saturating load "
              f"(occupancy {saturated['occupancy']:.2f})")
        return 1
    print(f"PASS: saturating load coalesced "
          f"{saturated['occupancy']:.2f} requests/forward")

    if not args.no_plans:
        share = saturated["plan_batches"] / max(saturated["batches"], 1)
        if saturated["plan_batches"] == 0 and not args.quick:
            print("FAIL: compiled plans never engaged at saturating load "
                  "(0 plan batches) despite warm_plans")
            return 1
        print(f"{'NOTE' if args.quick else 'PASS'}: "
              f"{saturated['plan_batches']}/{saturated['batches']} "
              f"saturated micro-batches ({100 * share:.0f}%) replayed "
              f"the compiled plan")

    cores = os.cpu_count() or 1
    if pool_rows is not None:
        target = min(2.5, 0.625 * args.workers)
        if args.quick:
            # quick mode is the CI correctness smoke: one 24-request
            # trial per level is far too noisy to gate a perf ratio on
            print(f"NOTE: quick mode — speedup gate not armed "
                  f"(measured {speedup:.2f}× on {cores} core(s))")
        elif cores < args.workers:
            print(f"NOTE: host has {cores} CPU core(s) for "
                  f"{args.workers} replicas — replicas time-share cores, "
                  f"so the ≥{target:.2f}× speedup gate is not armed "
                  f"(measured {speedup:.2f}×)")
        elif speedup < target:
            print(f"FAIL: pool speedup {speedup:.2f}× < {target:.2f}× "
                  f"with {args.workers} replicas on {cores} cores")
            return 1
        else:
            print(f"PASS: pool speedup {speedup:.2f}× ≥ {target:.2f}× "
                  f"with {args.workers} replicas")

    if proc_scaling is not None and args.workers > 1:
        if args.quick:
            print(f"NOTE: quick mode — process-tier gates not armed "
                  f"(measured {proc_speedup:.2f}× at {args.workers} "
                  f"replicas on {cores} core(s))")
        elif cores < args.workers:
            print(f"NOTE: host has {cores} CPU core(s) for "
                  f"{args.workers} process replicas — children time-share "
                  f"cores, so the ≥1.80× / monotone-scaling gates are "
                  f"not armed (measured {proc_speedup:.2f}×)")
        else:
            if 2 in proc_scaling:
                sp2 = proc_scaling[2] / single_sat
                if sp2 < 1.8:
                    print(f"FAIL: process pool speedup {sp2:.2f}× < "
                          f"1.80× with 2 replicas on {cores} cores")
                    return 1
                print(f"PASS: process pool speedup {sp2:.2f}× ≥ 1.80× "
                      f"with 2 replicas")
            # saturated throughput must not shrink as the pool widens
            # (3% tolerance absorbs trial noise, not real contention)
            gated = [w for w in sorted(proc_scaling)
                     if w <= min(4, cores)]
            for lo, hi in zip(gated, gated[1:]):
                if proc_scaling[hi] < 0.97 * proc_scaling[lo]:
                    print(f"FAIL: process pool saturated throughput "
                          f"dropped {proc_scaling[lo]:.0f} → "
                          f"{proc_scaling[hi]:.0f} req/s going from "
                          f"{lo} to {hi} replicas")
                    return 1
            if len(gated) > 1:
                print(f"PASS: saturated throughput monotone over "
                      f"{gated} process replicas")

    if pipe is not None:
        depth = pipe["depth4_inflight_depth"]
        if depth < 2:
            print(f"FAIL: pipelined trial never reached in-flight "
                  f"depth 2 (measured {depth})")
            return 1
        print(f"PASS: pipelined framing reached in-flight depth {depth}")
        penalty, recovery = pipe["hop_penalty_seconds"], \
            pipe["pipeline_recovery"]
        if args.quick:
            print(f"NOTE: quick mode — pipeline-recovery gate not armed "
                  f"(measured {100 * recovery:.0f}% of a "
                  f"{1e3 * penalty:.1f}ms hop penalty)")
        elif cores < 2:
            print(f"NOTE: single-core host — client and remote "
                  f"time-share the core, so the ≥25% recovery gate is "
                  f"not armed (measured {100 * recovery:.0f}%)")
        elif penalty <= 0.02 * pipe["direct_batch_seconds"]:
            print(f"NOTE: network-hop penalty "
                  f"({1e3 * penalty:.2f}ms/batch) is within noise of "
                  f"the direct path — recovery gate not armed")
        elif recovery < 0.25:
            print(f"FAIL: pipelining recovered only "
                  f"{100 * recovery:.0f}% of the "
                  f"{1e3 * penalty:.1f}ms/batch network-hop penalty "
                  f"(gate: ≥25%)")
            return 1
        else:
            print(f"PASS: pipelining recovered {100 * recovery:.0f}% "
                  f"of the {1e3 * penalty:.1f}ms/batch network-hop "
                  f"penalty (≥25%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
