#!/usr/bin/env python
"""Serving benchmark: throughput and batch occupancy vs offered load.

Drives a :class:`~repro.serve.scheduler.MicroBatchScheduler` over the
batched :class:`~repro.workflow.engine.ForecastEngine` with a paced
synthetic request trace, sweeping the offered load from well below to
well above one replica's capacity.  At low load the scheduler degrades
to batch-1 forwards (occupancy ≈ 1, latency ≈ max_wait + forward); at
saturating load requests coalesce (occupancy → max_batch) and measured
throughput approaches the affine capacity model's ``1/b`` limit — the
figure of merit that justifies the whole serving layer.

Self-contained on purpose (no ``.bench_cache`` training): serving
throughput does not depend on forecast skill, so an untrained tiny
surrogate gives the same scheduling behaviour in seconds, which lets CI
smoke this benchmark on every push::

    python benchmarks/bench_serving.py --quick
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import Normalizer
from repro.hpc import ServingCapacityModel
from repro.serve import MicroBatchScheduler
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.workflow import ForecastEngine
from repro.workflow.engine import FieldWindow

T = 4
H, W, D = 15, 14, 6
VARS = ("u3", "v3", "w3", "zeta")


def build_engine(embed_dim: int = 8) -> ForecastEngine:
    cfg = SurrogateConfig(
        mesh=(16, 16, D), time_steps=T,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=embed_dim, num_heads=(2, 4, 8), depths=(2, 2, 2),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
    )
    norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
    return ForecastEngine(CoastalSurrogate(cfg), norm)


def make_windows(n: int, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        out.append(FieldWindow(
            rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W, D)),
            rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W))))
    return out


def run_trial(engine, windows, offered_qps: float, n_requests: int,
              max_batch: int, max_wait: float, n_clients: int = 4) -> dict:
    """Offer ``n_requests`` at ``offered_qps`` (∞ = as fast as possible)
    from ``n_clients`` threads; return achieved throughput + metrics."""
    scheduler = MicroBatchScheduler(engine, max_batch=max_batch,
                                    max_wait=max_wait)
    futures, lock = [], threading.Lock()
    per_client = np.array_split(np.arange(n_requests), n_clients)
    interval = n_clients / offered_qps if np.isfinite(offered_qps) else 0.0

    def client(cid, indices):
        # phase-stagger the clients so the offered process is uniform
        # rather than n_clients-synchronised bursts
        if interval:
            time.sleep(interval * cid / n_clients)
        for k in indices:
            if interval:
                time.sleep(interval)
            fut = scheduler.submit(windows[k % len(windows)])
            with lock:
                futures.append(fut)

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client, args=(ci, idx))
               for ci, idx in enumerate(per_client)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    with scheduler:
        for fut in futures:
            fut.result(timeout=300)
    elapsed = time.perf_counter() - t0

    m = scheduler.metrics
    return {
        "offered_qps": offered_qps,
        "achieved_qps": n_requests / elapsed,
        "occupancy": m.mean_occupancy,
        "max_occ": m.max_occupancy,
        "batches": m.n_batches,
        "p50_ms": 1e3 * m.latency_percentile(50),
        "p95_ms": 1e3 * m.latency_percentile(95),
        "records": list(m.batches),
    }


def fmt_qps(q: float) -> str:
    return "max" if not np.isfinite(q) else f"{q:.0f}"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small CI smoke run with correctness asserts")
    ap.add_argument("--requests", type=int, default=96,
                    help="requests per load level")
    ap.add_argument("--max-batch", type=int, default=8)
    ap.add_argument("--max-wait", type=float, default=0.02,
                    help="scheduler flush timeout [s]")
    args = ap.parse_args(argv)

    n_requests = 24 if args.quick else args.requests
    engine = build_engine()
    windows = make_windows(16)

    # calibrate one replica's batch-1 capacity from end-to-end
    # wall-clock (normalise/assemble/denorm + dispatch included, not
    # just the model forward) so the sweep brackets the true knee
    engine.forecast_batch(windows[:1])            # warm caches
    t0 = time.perf_counter()
    for k in range(3):
        engine.forecast_batch([windows[k]])
    base_qps = 3.0 / max(time.perf_counter() - t0, 1e-9)

    loads = ([0.25 * base_qps, float("inf")] if args.quick else
             [0.25 * base_qps, 0.5 * base_qps, base_qps,
              2 * base_qps, 4 * base_qps, float("inf")])

    print(f"serving benchmark: max_batch={args.max_batch} "
          f"max_wait={1e3 * args.max_wait:.0f}ms "
          f"requests/level={n_requests} "
          f"(calibrated batch-1 capacity ≈ {base_qps:.0f} req/s)")
    header = (f"{'offered':>8} {'achieved':>9} {'occupancy':>9} "
              f"{'batches':>7} {'p50':>8} {'p95':>8}")
    print(header)
    print("-" * len(header))

    rows = []
    all_records = []
    for qps in loads:
        row = run_trial(engine, windows, qps, n_requests,
                        args.max_batch, args.max_wait)
        all_records.extend(row.pop("records"))
        rows.append(row)
        print(f"{fmt_qps(row['offered_qps']):>8} "
              f"{row['achieved_qps']:>8.0f}/s "
              f"{row['occupancy']:>9.2f} {row['batches']:>7d} "
              f"{row['p50_ms']:>6.1f}ms {row['p95_ms']:>6.1f}ms")

    model = ServingCapacityModel.from_batch_log(all_records)
    print(f"\ncapacity model: dispatch {1e3 * model.dispatch_seconds:.2f}ms"
          f" + {1e3 * model.per_request_seconds:.2f}ms/request"
          f" → saturation ≈ {model.saturation_throughput:.0f} req/s,"
          f" optimal batch @50ms SLO = {model.optimal_batch(0.05)}")

    saturated = rows[-1]
    if saturated["occupancy"] <= 1.0:
        print("FAIL: no request coalescing at saturating load "
              f"(occupancy {saturated['occupancy']:.2f})")
        return 1
    print(f"PASS: saturating load coalesced "
          f"{saturated['occupancy']:.2f} requests/forward "
          f"({saturated['achieved_qps'] / rows[0]['achieved_qps']:.1f}× "
          f"the unsaturated rate)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
