#!/usr/bin/env python
"""Serving benchmark: throughput and occupancy vs offered load and
replica count.

Drives an :class:`~repro.serve.pool.EngineWorkerPool` (a
:class:`~repro.serve.scheduler.MicroBatchScheduler` per replica over
the batched :class:`~repro.workflow.engine.ForecastEngine`) with a
paced synthetic request trace, sweeping the offered load from well
below to well above the pool's capacity.  At low load the schedulers
degrade to batch-1 forwards (occupancy ≈ 1, latency ≈ max_wait +
forward); at saturating load requests coalesce (occupancy → max_batch)
and measured throughput approaches the affine capacity model's limit.

With ``--workers N`` the same sweep runs against the single-replica
baseline first and the pool second, reporting the per-replica vs pool
saturation throughput and the fitted
:class:`~repro.hpc.serving.PoolCapacityModel` contention — the number
that says how many replicas this host can actually use.  The parallel
win comes from NumPy releasing the GIL inside its kernels, so the
speedup gate only arms when the host has at least ``--workers`` CPU
cores (a single-core host measures contention σ ≈ 1, which the model
reports honestly instead of faking a win).

``--backend process`` (or ``both``) additionally measures the process
execution tier (:mod:`repro.serve.procpool`): saturated throughput per
pool width with every replica in its own child process behind the
shared-memory descriptor transport.  This is the sweep that escapes
the GIL the thread pool serialises on — on a multi-core host it gates
``≥1.8×`` at 2 replicas and monotone scaling up to ``min(4, cores)``;
on a core-starved host the gates stand down with a NOTE, same policy
as the thread-pool gate.

Self-contained on purpose (no ``.bench_cache`` training): serving
throughput does not depend on forecast skill, so an untrained tiny
surrogate gives the same scheduling behaviour in seconds, which lets CI
smoke this benchmark on every push::

    python benchmarks/bench_serving.py --quick --workers 2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data import Normalizer
from repro.hpc import PoolCapacityModel, ServingCapacityModel
from repro.serve import EngineWorkerPool, PoolSaturated
from repro.swin import CoastalSurrogate, SurrogateConfig
from repro.workflow import ForecastEngine
from repro.workflow.engine import FieldWindow

T = 4
H, W, D = 15, 14, 6
VARS = ("u3", "v3", "w3", "zeta")


def build_engines(n: int, embed_dim: int = 8) -> list:
    """N ForecastEngine replicas sharing one model + normalizer.

    Sharing weights keeps the replicas numerically identical (inference
    is read-only over model state), so pool results stay comparable to
    the single-engine baseline.
    """
    cfg = SurrogateConfig(
        mesh=(16, 16, D), time_steps=T,
        patch3d=(4, 4, 2), patch2d=(4, 4),
        embed_dim=embed_dim, num_heads=(2, 4, 8), depths=(2, 2, 2),
        window_first=(2, 2, 2, 2), window_rest=(2, 2, 2, 2),
    )
    model = CoastalSurrogate(cfg)
    norm = Normalizer({v: 0.0 for v in VARS}, {v: 1.0 for v in VARS})
    return [ForecastEngine(model, norm) for _ in range(n)]


def make_windows(n: int, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        out.append(FieldWindow(
            rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W, D)),
            rng.normal(size=(T, H, W, D)), rng.normal(size=(T, H, W))))
    return out


def run_trial(engines, windows, offered_qps: float, n_requests: int,
              max_batch: int, max_wait: float, max_queue: int,
              n_clients: int = 4, warm_plans: bool = True,
              backend: str = "thread") -> dict:
    """Offer ``n_requests`` at ``offered_qps`` (∞ = as fast as possible)
    from ``n_clients`` threads; return achieved throughput + metrics.

    Clients honour backpressure: a shed request backs off by the
    advertised ``retry_after`` and retries, so every offered request is
    eventually served and the shed count measures admission pressure.
    With ``warm_plans`` (the serving default) each engine's compiled
    inference plan for ``max_batch`` is traced before the clock starts,
    so saturated micro-batches replay allocation-free.  With
    ``backend="process"`` every replica runs in a child process behind
    the shared-memory transport; the spawn/warm cost is paid before the
    clock starts (pool construction), like any rolling deploy would.
    """
    pool = EngineWorkerPool(engines, max_batch=max_batch, max_wait=max_wait,
                            max_queue=max_queue, router="least-outstanding",
                            warm_plans=warm_plans, backend=backend)
    futures, lock = [], threading.Lock()
    per_client = np.array_split(np.arange(n_requests), n_clients)
    interval = n_clients / offered_qps if np.isfinite(offered_qps) else 0.0

    def client(cid, indices):
        # phase-stagger the clients so the offered process is uniform
        # rather than n_clients-synchronised bursts
        if interval:
            time.sleep(interval * cid / n_clients)
        for k in indices:
            if interval:
                time.sleep(interval)
            while True:
                try:
                    fut = pool.submit(windows[k % len(windows)])
                    break
                except PoolSaturated as exc:
                    time.sleep(min(exc.retry_after, 0.1))
            with lock:
                futures.append(fut)

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client, args=(ci, idx))
               for ci, idx in enumerate(per_client)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    with pool:
        for fut in futures:
            fut.result(timeout=300)
    elapsed = time.perf_counter() - t0

    m = pool.metrics
    return {
        "offered_qps": offered_qps,
        "achieved_qps": n_requests / elapsed,
        "occupancy": m.mean_occupancy,
        "max_occ": m.max_occupancy,
        "batches": m.n_batches,
        "plan_batches": m.plan_batches,
        "shed": m.shed_requests,
        "p50_ms": 1e3 * m.latency_percentile(50),
        "p95_ms": 1e3 * m.latency_percentile(95),
        "ipc_wait_s": m.ipc_wait_s,
        "marshal_bytes": m.marshal_bytes,
        "spawn_s": m.summary()["spawn_seconds_mean"],
        "records": m.batches,
    }


def fmt_qps(q: float) -> str:
    return "max" if not np.isfinite(q) else f"{q:.0f}"


def run_sweep(engines, windows, loads, n_requests, args, label: str,
              backend: str = "thread"):
    print(f"\n--- {label} ---")
    header = (f"{'offered':>8} {'achieved':>9} {'occupancy':>9} "
              f"{'batches':>7} {'plan':>5} {'shed':>5} {'p50':>8} "
              f"{'p95':>8}")
    print(header)
    print("-" * len(header))
    rows, all_records = [], []
    for qps in loads:
        row = run_trial(engines, windows, qps, n_requests,
                        args.max_batch, args.max_wait, args.max_queue,
                        warm_plans=not args.no_plans, backend=backend)
        all_records.extend(row.pop("records"))
        rows.append(row)
        print(f"{fmt_qps(row['offered_qps']):>8} "
              f"{row['achieved_qps']:>8.0f}/s "
              f"{row['occupancy']:>9.2f} {row['batches']:>7d} "
              f"{row['plan_batches']:>5d} {row['shed']:>5d} "
              f"{row['p50_ms']:>6.1f}ms {row['p95_ms']:>6.1f}ms")
    if backend == "process":
        last = rows[-1]
        print(f"transport: spawn {last['spawn_s']:.2f}s/replica, "
              f"ipc wait {last['ipc_wait_s']:.3f}s, "
              f"{last['marshal_bytes'] / 1e6:.1f} MB marshalled "
              "(saturated trial)")
    return rows, all_records


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small CI smoke run with correctness asserts")
    ap.add_argument("--requests", type=int, default=96,
                    help="requests per load level")
    ap.add_argument("--workers", type=int, default=1,
                    help="engine replicas in the pool")
    ap.add_argument("--max-batch", type=int, default=8)
    ap.add_argument("--max-wait", type=float, default=0.02,
                    help="scheduler flush timeout [s]")
    ap.add_argument("--max-queue", type=int, default=256,
                    help="per-replica outstanding-request bound")
    ap.add_argument("--no-plans", action="store_true",
                    help="serve through the eager path instead of "
                         "warmed compiled plans")
    ap.add_argument("--backend", choices=("thread", "process", "both"),
                    default="thread",
                    help="replica execution tier: in-process threads "
                         "(GIL-bound on the pure-NumPy backend), child "
                         "processes behind the shared-memory transport, "
                         "or both for a side-by-side record")
    ap.add_argument("--out", default=None,
                    help="JSON output path (default: BENCH_serving.json "
                         "in the repo root)")
    args = ap.parse_args(argv)
    if args.workers < 1:
        ap.error("--workers must be >= 1")

    n_requests = 24 if args.quick else args.requests
    engines = build_engines(args.workers)
    windows = make_windows(16)

    # calibrate one replica's batch-1 capacity from end-to-end
    # wall-clock (normalise/assemble/denorm + dispatch included, not
    # just the model forward) so the sweep brackets the true knee
    engines[0].forecast_batch(windows[:1])        # warm caches
    t0 = time.perf_counter()
    for k in range(3):
        engines[0].forecast_batch([windows[k]])
    base_qps = 3.0 / max(time.perf_counter() - t0, 1e-9)

    def loads_for(n_replicas: int):
        scale = base_qps * n_replicas
        return ([0.25 * scale, float("inf")] if args.quick else
                [0.25 * scale, 0.5 * scale, scale,
                 2 * scale, 4 * scale, float("inf")])

    print(f"serving benchmark: workers={args.workers} "
          f"max_batch={args.max_batch} "
          f"max_wait={1e3 * args.max_wait:.0f}ms "
          f"max_queue={args.max_queue} requests/level={n_requests} "
          f"(calibrated batch-1 replica capacity ≈ {base_qps:.0f} req/s)")

    single_rows, single_records = run_sweep(
        engines[:1], windows, loads_for(1), n_requests, args,
        "single replica (baseline)")
    replica_model = ServingCapacityModel.from_batch_log(single_records)
    print(f"replica capacity model: "
          f"dispatch {1e3 * replica_model.dispatch_seconds:.2f}ms"
          f" + {1e3 * replica_model.per_request_seconds:.2f}ms/request"
          f" → saturation ≈ {replica_model.saturation_throughput:.0f} req/s,"
          f" optimal batch @50ms SLO = {replica_model.optimal_batch(0.05)}")

    single_sat = single_rows[-1]["achieved_qps"]
    run_threads = args.backend in ("thread", "both")
    run_procs = args.backend in ("process", "both")
    pool_rows = None
    if run_threads and args.workers > 1:
        pool_rows, _ = run_sweep(
            engines, windows, loads_for(args.workers), n_requests, args,
            f"pool of {args.workers} thread replicas")
        pool_sat = pool_rows[-1]["achieved_qps"]
        speedup = pool_sat / single_sat
        pool_model = PoolCapacityModel.fit(
            replica_model, [1, args.workers], [single_sat, pool_sat])
        print(f"\nper-replica vs pool saturation: "
              f"{single_sat:.0f} req/s → {pool_sat:.0f} req/s "
              f"({speedup:.2f}× with {args.workers} replicas; "
              f"fitted contention σ = {pool_model.contention:.2f})")
        print(f"{'replicas':>9} {'modelled sat req/s':>19} {'speedup':>8}")
        for n in (1, 2, 4, 8, 16):
            print(f"{n:>9} {pool_model.saturation_throughput(n):>19.0f} "
                  f"{pool_model.speedup(n):>7.2f}×")

    # -- process tier: saturated throughput per pool width --------------
    # one saturated trial per width (the sat point is what scales with
    # cores; the low-load shape is backend-independent).  The sweep is
    # what shows near-linear scaling where the thread pool measured
    # ~1× — or honestly shows time-sharing on a core-starved host.
    proc_rows = proc_scaling = None
    if run_procs:
        widths = sorted({w for w in (1, 2, 4, args.workers)
                         if 1 <= w <= args.workers})
        if args.quick:
            widths = [args.workers]
        proc_scaling = {}
        for width in widths:
            rows, _ = run_sweep(
                engines[:width], windows, [float("inf")], n_requests,
                args, f"process pool, {width} replica(s), saturated",
                backend="process")
            proc_scaling[width] = rows[-1]["achieved_qps"]
            if width == args.workers:
                proc_rows = rows
        proc_sat = proc_scaling[args.workers]
        proc_speedup = proc_sat / single_sat
        print(f"\nprocess tier saturation vs in-process baseline "
              f"({single_sat:.0f} req/s):")
        print(f"{'replicas':>9} {'sat req/s':>10} {'speedup':>8}")
        for width in widths:
            print(f"{width:>9} {proc_scaling[width]:>10.0f} "
                  f"{proc_scaling[width] / single_sat:>7.2f}×")

    # -- machine-readable trajectory ------------------------------------
    saturated_rows = proc_rows or pool_rows or single_rows
    metrics = {
        "single_sat_qps": single_sat,
        "saturated_occupancy": saturated_rows[-1]["occupancy"],
        "plan_batches_saturated": saturated_rows[-1]["plan_batches"],
        "batches_saturated": saturated_rows[-1]["batches"],
        "replica_dispatch_ms": 1e3 * replica_model.dispatch_seconds,
        "replica_per_request_ms": 1e3 * replica_model.per_request_seconds,
    }
    gate_keys = ["single_sat_qps"]
    if pool_rows is not None:
        metrics["pool_sat_qps"] = pool_sat
        metrics["pool_speedup"] = speedup
        metrics["contention_sigma"] = pool_model.contention
        gate_keys.append("pool_sat_qps")
    if proc_scaling is not None:
        metrics["proc_scaling_sat_qps"] = {
            str(w): q for w, q in proc_scaling.items()}
        metrics["proc_ipc_wait_s"] = proc_rows[-1]["ipc_wait_s"]
        metrics["proc_marshal_bytes"] = proc_rows[-1]["marshal_bytes"]
        metrics["proc_spawn_s"] = proc_rows[-1]["spawn_s"]
        if args.workers > 1:
            metrics["proc_pool_sat_qps"] = proc_sat
            metrics["proc_pool_speedup"] = proc_speedup
            gate_keys.append("proc_pool_sat_qps")
    record = {
        "benchmark": "serving",
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "quick": bool(args.quick),
        "cores": os.cpu_count() or 1,
        "config": {"workers": args.workers, "max_batch": args.max_batch,
                   "max_wait": args.max_wait, "max_queue": args.max_queue,
                   "requests_per_level": n_requests,
                   "compiled_plans": not args.no_plans,
                   "backend": args.backend},
        "metrics": metrics,
        # tools/bench_gate.py regresses these (higher = better)
        "gate": {"higher_better": gate_keys},
    }
    out_path = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_serving.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {out_path}")

    # -- verdicts -------------------------------------------------------
    saturated = saturated_rows[-1]
    if saturated["occupancy"] <= 1.0:
        print("FAIL: no request coalescing at saturating load "
              f"(occupancy {saturated['occupancy']:.2f})")
        return 1
    print(f"PASS: saturating load coalesced "
          f"{saturated['occupancy']:.2f} requests/forward")

    if not args.no_plans:
        share = saturated["plan_batches"] / max(saturated["batches"], 1)
        if saturated["plan_batches"] == 0 and not args.quick:
            print("FAIL: compiled plans never engaged at saturating load "
                  "(0 plan batches) despite warm_plans")
            return 1
        print(f"{'NOTE' if args.quick else 'PASS'}: "
              f"{saturated['plan_batches']}/{saturated['batches']} "
              f"saturated micro-batches ({100 * share:.0f}%) replayed "
              f"the compiled plan")

    cores = os.cpu_count() or 1
    if pool_rows is not None:
        target = min(2.5, 0.625 * args.workers)
        if args.quick:
            # quick mode is the CI correctness smoke: one 24-request
            # trial per level is far too noisy to gate a perf ratio on
            print(f"NOTE: quick mode — speedup gate not armed "
                  f"(measured {speedup:.2f}× on {cores} core(s))")
        elif cores < args.workers:
            print(f"NOTE: host has {cores} CPU core(s) for "
                  f"{args.workers} replicas — replicas time-share cores, "
                  f"so the ≥{target:.2f}× speedup gate is not armed "
                  f"(measured {speedup:.2f}×)")
        elif speedup < target:
            print(f"FAIL: pool speedup {speedup:.2f}× < {target:.2f}× "
                  f"with {args.workers} replicas on {cores} cores")
            return 1
        else:
            print(f"PASS: pool speedup {speedup:.2f}× ≥ {target:.2f}× "
                  f"with {args.workers} replicas")

    if proc_scaling is not None and args.workers > 1:
        if args.quick:
            print(f"NOTE: quick mode — process-tier gates not armed "
                  f"(measured {proc_speedup:.2f}× at {args.workers} "
                  f"replicas on {cores} core(s))")
        elif cores < args.workers:
            print(f"NOTE: host has {cores} CPU core(s) for "
                  f"{args.workers} process replicas — children time-share "
                  f"cores, so the ≥1.80× / monotone-scaling gates are "
                  f"not armed (measured {proc_speedup:.2f}×)")
        else:
            if 2 in proc_scaling:
                sp2 = proc_scaling[2] / single_sat
                if sp2 < 1.8:
                    print(f"FAIL: process pool speedup {sp2:.2f}× < "
                          f"1.80× with 2 replicas on {cores} cores")
                    return 1
                print(f"PASS: process pool speedup {sp2:.2f}× ≥ 1.80× "
                      f"with 2 replicas")
            # saturated throughput must not shrink as the pool widens
            # (3% tolerance absorbs trial noise, not real contention)
            gated = [w for w in sorted(proc_scaling)
                     if w <= min(4, cores)]
            for lo, hi in zip(gated, gated[1:]):
                if proc_scaling[hi] < 0.97 * proc_scaling[lo]:
                    print(f"FAIL: process pool saturated throughput "
                          f"dropped {proc_scaling[lo]:.0f} → "
                          f"{proc_scaling[hi]:.0f} req/s going from "
                          f"{lo} to {hi} replicas")
                    return 1
            if len(gated) > 1:
                print(f"PASS: saturated throughput monotone over "
                      f"{gated} process replicas")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
