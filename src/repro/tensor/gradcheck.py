"""Numerical gradient verification for autograd correctness.

Every hand-written adjoint in :mod:`repro.tensor` is validated against a
central finite difference.  The test suite uses :func:`gradcheck` both in
targeted unit tests and in hypothesis property tests over random shapes,
and the serving tier's sensitivity endpoints
(:meth:`~repro.workflow.engine.ForecastEngine.sensitivity_batch`) are
gated on :func:`numerical_grad` agreement in ``tests/test_sensitivity.py``.

Methodology (the ``compare_grad_with_fd`` pattern): the scalar under
test is ``sum(fn(*inputs))``; each element of the chosen input is
perturbed by ``±eps`` and the central quotient
``(f(x+eps) - f(x-eps)) / (2 eps)`` is compared against the analytic
gradient under an ``atol``/``rtol`` gate.  Two failure modes need eps
tuned per call site:

* *round-off*: ``f`` evaluated in float32 carries ~1e-7 relative noise,
  so the quotient's noise floor is ~``noise(f) / (2 eps)`` — too small
  an ``eps`` drowns the signal.  Functions routed through a float32
  model forward (the engine sensitivity paths) therefore use
  ``eps ~ 1e-3``–``1e-2`` with a correspondingly looser gate, while
  pure-float64 tensor ops keep the tight default.
* *truncation*: the central difference is exact only to ``O(eps²·f‴)``
  — too large an ``eps`` biases the quotient on curvy functions, and
  piecewise-linear reductions (``max``) mis-sample when the perturbation
  flips the argmax.

See ``docs/differentiation.md`` for how the serving gradcheck composes
these rules with the full numpy serving path.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_grad", "gradcheck"]


def numerical_grad(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray],
                   index: int, eps: float = 1e-5) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))``.

    Parameters
    ----------
    fn: function mapping Tensors to a Tensor.  Only the *values* of the
        returned tensor are read, so ``fn`` may internally run any
        non-differentiable pipeline (e.g. the whole numpy serving path:
        forecast an episode, reduce to a diagnostic, wrap the scalar in
        a Tensor) — which is exactly how the sensitivity endpoints are
        validated end to end.
    inputs: plain arrays; input ``index`` is perturbed elementwise (a
        scalar parameter is just a 0-d/1-element array).
    eps: central step.  See the module docstring for the
        round-off/truncation trade-off when ``fn`` is float32 inside.

    Returns
    -------
    An array of ``inputs[index]``'s shape: the finite-difference
    estimate of ``d sum(fn) / d inputs[index]``.  Cost is two ``fn``
    evaluations per element — perturb a low-dimensional parametrisation
    (a slice, a direction, a parameter vector) rather than a full field
    when ``fn`` is expensive.
    """
    base = [np.asarray(a, dtype=np.float64) for a in inputs]
    grad = np.zeros_like(base[index])
    it = np.nditer(base[index], flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = base[index][idx]
        base[index][idx] = orig + eps
        plus = float(fn(*[Tensor(a) for a in base]).sum().item())
        base[index][idx] = orig - eps
        minus = float(fn(*[Tensor(a) for a in base]).sum().item())
        base[index][idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def gradcheck(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray],
              atol: float = 1e-4, rtol: float = 1e-3,
              eps: float = 1e-5) -> bool:
    """Compare autograd gradients of ``sum(fn(*inputs))`` to finite diffs.

    Raises ``AssertionError`` with a diagnostic on mismatch; returns True
    when every input gradient matches.
    """
    f64_inputs = [np.asarray(a, dtype=np.float64) for a in inputs]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in f64_inputs]
    out = fn(*tensors).sum()
    out.backward()
    for i, t in enumerate(tensors):
        num = numerical_grad(fn, f64_inputs, i, eps=eps)
        got = t.grad if t.grad is not None else np.zeros_like(f64_inputs[i])
        if not np.allclose(got, num, atol=atol, rtol=rtol):
            err = np.abs(got - num).max()
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs err {err:.3e}\n"
                f"analytic:\n{got}\nnumeric:\n{num}"
            )
    return True
