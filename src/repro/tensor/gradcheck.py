"""Numerical gradient verification for autograd correctness.

Every hand-written adjoint in :mod:`repro.tensor` is validated against a
central finite difference.  The test suite uses :func:`gradcheck` both in
targeted unit tests and in hypothesis property tests over random shapes.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_grad", "gradcheck"]


def numerical_grad(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray],
                   index: int, eps: float = 1e-5) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))``.

    Parameters
    ----------
    fn: function mapping Tensors to a Tensor.
    inputs: plain arrays; input ``index`` is perturbed elementwise.
    """
    base = [np.asarray(a, dtype=np.float64) for a in inputs]
    grad = np.zeros_like(base[index])
    it = np.nditer(base[index], flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = base[index][idx]
        base[index][idx] = orig + eps
        plus = float(fn(*[Tensor(a) for a in base]).sum().item())
        base[index][idx] = orig - eps
        minus = float(fn(*[Tensor(a) for a in base]).sum().item())
        base[index][idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def gradcheck(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray],
              atol: float = 1e-4, rtol: float = 1e-3,
              eps: float = 1e-5) -> bool:
    """Compare autograd gradients of ``sum(fn(*inputs))`` to finite diffs.

    Raises ``AssertionError`` with a diagnostic on mismatch; returns True
    when every input gradient matches.
    """
    f64_inputs = [np.asarray(a, dtype=np.float64) for a in inputs]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in f64_inputs]
    out = fn(*tensors).sum()
    out.backward()
    for i, t in enumerate(tensors):
        num = numerical_grad(fn, f64_inputs, i, eps=eps)
        got = t.grad if t.grad is not None else np.zeros_like(f64_inputs[i])
        if not np.allclose(got, num, atol=atol, rtol=rtol):
            err = np.abs(got - num).max()
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs err {err:.3e}\n"
                f"analytic:\n{got}\nnumeric:\n{num}"
            )
    return True
