"""Reverse-mode automatic differentiation on NumPy arrays.

This module provides the :class:`Tensor` class — the computational
foundation of the whole reproduction.  The paper's surrogate is a PyTorch
model trained on A100 GPUs; this repo substitutes a from-scratch,
vectorised, NumPy-backed autograd engine so that the *exact same model
code path* (forward, backward, optimiser step, activation checkpointing,
mixed-precision casts) runs on CPU-only machines.

Design notes
------------
* Each :class:`Tensor` wraps an ``np.ndarray`` and records the operation
  that produced it as a backward closure plus parent references.
* ``backward()`` topologically sorts the graph and accumulates gradients.
* Broadcasting is handled by :func:`unbroadcast`, which sums gradients
  over broadcast dimensions — the single most bug-prone part of any
  engine, so it is property-tested against numerical gradients.
* A module-level ``autograd_enabled`` flag implements ``no_grad``.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import special as _sp_special

from . import plan as _plan

_tracing = _plan.tracing
_trace_apply = _plan.trace_apply

__all__ = [
    "Tensor",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "unbroadcast",
    "astensor",
]

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently active."""
    return getattr(_state, "grad_enabled", True)


def set_grad_enabled(mode: bool) -> None:
    """Globally enable or disable gradient recording."""
    _state.grad_enabled = bool(mode)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    prev = is_grad_enabled()
    set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(prev)


@contextlib.contextmanager
def enable_grad():
    """Context manager that (re-)enables graph construction.

    The inverse of :func:`no_grad`, needed wherever a backward pass must
    run on a thread whose ambient state is unknown — e.g. the serving
    tier's gradient requests
    (:meth:`~repro.workflow.engine.ForecastEngine.sensitivity_batch`)
    execute on scheduler worker threads that otherwise serve pure
    inference.  The switch is thread-local, so enabling gradients here
    never flips a concurrent inference thread out of its fused no-grad
    fast paths.
    """
    prev = is_grad_enabled()
    set_grad_enabled(True)
    try:
        yield
    finally:
        set_grad_enabled(prev)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    NumPy broadcasting stretches size-1 (or missing) axes; the adjoint of
    that stretch is a sum over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were stretched from 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def astensor(value: ArrayLike, dtype=None) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` (no copy when possible)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


class Tensor:
    """A NumPy array with reverse-mode gradient support.

    Parameters
    ----------
    data:
        Array data.  Lists/scalars are converted with ``np.asarray``.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "name", "_slot")

    __array_priority__ = 1000  # take precedence over ndarray in mixed ops

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data)
        if self.data.dtype == np.float64:
            # fp32 is the library-wide compute precision (paper trains in
            # mixed fp16/fp32); callers opt in to fp64 explicitly.
            pass
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared memory, not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a graph-free tensor that **aliases** this storage.

        The result shares memory with ``self.data`` (the
        ``torch.Tensor.detach`` contract): in-place writes through
        either tensor are visible through both, so callers that go on
        to mutate a detached tensor must take :meth:`copy` instead.
        Eval-path audit (PR 4): no in-repo caller mutates a detached
        tensor in place — the engine denormalises into fresh float64
        buffers before patching fields.

        Under an active trace, detach is the identity on values, so
        the result keeps the source's buffer slot — a detached
        intermediate must not silently constant-fold the rest of the
        forward.
        """
        out = Tensor(self.data, requires_grad=False)
        if _tracing():
            slot = getattr(self, "_slot", None)
            if slot is not None:
                out._slot = slot
        return out

    def copy(self) -> "Tensor":
        """Deep, graph-free copy with its own storage.

        Unlike :meth:`detach` (which aliases) and :meth:`clone` (which
        copies but stays differentiable), the result is safe to mutate
        freely.
        """
        if _tracing() and getattr(self, "_slot", None) is not None:
            return _trace_apply("copy", (self,))
        return Tensor(self.data.copy(), requires_grad=False)

    def clone(self) -> "Tensor":
        if _tracing():
            return _trace_apply("copy", (self,))
        out = self._make(self.data.copy(), (self,))
        if out.requires_grad:
            def _bw(g):
                self._accum(g)
            out._backward = _bw
        return out

    def astype(self, dtype) -> "Tensor":
        """Differentiable dtype cast (used for fp16 mixed-precision paths)."""
        if _tracing():
            return _trace_apply("astype", (self,), {"dtype": dtype})
        src_dtype = self.data.dtype
        out = self._make(self.data.astype(dtype), (self,))
        if out.requires_grad:
            def _bw(g):
                self._accum(g.astype(src_dtype))
            out._backward = _bw
        return out

    def half(self) -> "Tensor":
        return self.astype(np.float16)

    def float(self) -> "Tensor":
        return self.astype(np.float32)

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    def _make(self, data: np.ndarray, parents: Tuple["Tensor", ...]) -> "Tensor":
        """Create a result tensor wired to ``parents`` if grads are on."""
        rg = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = rg
        if rg:
            out._parents = tuple(parents)
        return out

    def _accum(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad`` (dense accumulation)."""
        if not self.requires_grad:
            return
        grad = np.asarray(grad)
        if grad.shape != self.data.shape:
            grad = unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        Parameters
        ----------
        grad:
            Incoming gradient.  Defaults to ones (scalar outputs only need
            the default).
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order over the subgraph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if id(p) not in visited and p.requires_grad:
                    stack.append((p, False))

        # Seed and propagate. ``grad`` buffers on interior nodes are freed
        # as soon as consumed to bound peak memory (cf. paper §III-D).
        self._accum(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
            if node is not self and node._parents:
                node.grad = None  # interior node: gradient already pushed

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = astensor(other)
        if _tracing():
            return _trace_apply("add", (self, other))
        out = self._make(self.data + other.data, (self, other))
        if out.requires_grad:
            def _bw(g):
                self._accum(g)
                other._accum(g)
            out._backward = _bw
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        if _tracing():
            return _trace_apply("neg", (self,))
        out = self._make(-self.data, (self,))
        if out.requires_grad:
            def _bw(g):
                self._accum(-g)
            out._backward = _bw
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = astensor(other)
        if _tracing():
            return _trace_apply("sub", (self, other))
        out = self._make(self.data - other.data, (self, other))
        if out.requires_grad:
            def _bw(g):
                self._accum(g)
                other._accum(-g)
            out._backward = _bw
        return out

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return astensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = astensor(other)
        if _tracing():
            return _trace_apply("mul", (self, other))
        out = self._make(self.data * other.data, (self, other))
        if out.requires_grad:
            a, b = self.data, other.data
            def _bw(g):
                self._accum(g * b)
                other._accum(g * a)
            out._backward = _bw
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = astensor(other)
        if _tracing():
            return _trace_apply("div", (self, other))
        out = self._make(self.data / other.data, (self, other))
        if out.requires_grad:
            a, b = self.data, other.data
            def _bw(g):
                self._accum(g / b)
                other._accum(-g * a / (b * b))
            out._backward = _bw
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return astensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        if _tracing():
            return _trace_apply("pow", (self,), {"exponent": exponent})
        out = self._make(self.data ** exponent, (self,))
        if out.requires_grad:
            a = self.data
            def _bw(g):
                self._accum(g * exponent * a ** (exponent - 1))
            out._backward = _bw
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Batched matrix product with full broadcasting on batch dims."""
        other = astensor(other)
        if _tracing():
            return _trace_apply("matmul", (self, other))
        out = self._make(self.data @ other.data, (self, other))
        if out.requires_grad:
            a, b = self.data, other.data
            def _bw(g):
                if a.ndim == 1 and b.ndim == 1:
                    self._accum(g * b)
                    other._accum(g * a)
                    return
                ga = g @ np.swapaxes(b, -1, -2) if b.ndim > 1 else np.outer(g, b)
                gb = np.swapaxes(a, -1, -2) @ g if a.ndim > 1 else np.outer(a, g)
                self._accum(unbroadcast(ga, a.shape))
                other._accum(unbroadcast(gb, b.shape))
            out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # elementwise transcendental
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        if _tracing():
            return _trace_apply("exp", (self,))
        out_data = np.exp(self.data)
        out = self._make(out_data, (self,))
        if out.requires_grad:
            def _bw(g):
                self._accum(g * out_data)
            out._backward = _bw
        return out

    def sin(self) -> "Tensor":
        if _tracing():
            return _trace_apply("sin", (self,))
        out = self._make(np.sin(self.data), (self,))
        if out.requires_grad:
            cos_a = np.cos(self.data)
            def _bw(g):
                self._accum(g * cos_a)
            out._backward = _bw
        return out

    def cos(self) -> "Tensor":
        if _tracing():
            return _trace_apply("cos", (self,))
        out = self._make(np.cos(self.data), (self,))
        if out.requires_grad:
            neg_sin_a = -np.sin(self.data)
            def _bw(g):
                self._accum(g * neg_sin_a)
            out._backward = _bw
        return out

    def log(self) -> "Tensor":
        if _tracing():
            return _trace_apply("log", (self,))
        out = self._make(np.log(self.data), (self,))
        if out.requires_grad:
            a = self.data
            def _bw(g):
                self._accum(g / a)
            out._backward = _bw
        return out

    def sqrt(self) -> "Tensor":
        if _tracing():
            return _trace_apply("sqrt", (self,))
        out_data = np.sqrt(self.data)
        out = self._make(out_data, (self,))
        if out.requires_grad:
            def _bw(g):
                self._accum(g * 0.5 / out_data)
            out._backward = _bw
        return out

    def tanh(self) -> "Tensor":
        if _tracing():
            return _trace_apply("tanh", (self,))
        out_data = np.tanh(self.data)
        out = self._make(out_data, (self,))
        if out.requires_grad:
            def _bw(g):
                self._accum(g * (1.0 - out_data * out_data))
            out._backward = _bw
        return out

    def sigmoid(self) -> "Tensor":
        if _tracing():
            return _trace_apply("sigmoid", (self,))
        out_data = _sp_special.expit(self.data)
        out = self._make(out_data, (self,))
        if out.requires_grad:
            def _bw(g):
                self._accum(g * out_data * (1.0 - out_data))
            out._backward = _bw
        return out

    def erf(self) -> "Tensor":
        """Gauss error function — the exact GELU building block."""
        if _tracing():
            return _trace_apply("erf", (self,))
        out = self._make(_sp_special.erf(self.data), (self,))
        if out.requires_grad:
            a = self.data
            two_over_sqrt_pi = 2.0 / np.sqrt(np.pi)
            def _bw(g):
                self._accum(g * two_over_sqrt_pi * np.exp(-a * a))
            out._backward = _bw
        return out

    def abs(self) -> "Tensor":
        if _tracing():
            return _trace_apply("abs", (self,))
        out = self._make(np.abs(self.data), (self,))
        if out.requires_grad:
            sign = np.sign(self.data)
            def _bw(g):
                self._accum(g * sign)
            out._backward = _bw
        return out

    def relu(self) -> "Tensor":
        if _tracing():
            return _trace_apply("relu", (self,))
        mask = self.data > 0
        out = self._make(self.data * mask, (self,))
        if out.requires_grad:
            def _bw(g):
                self._accum(g * mask)
            out._backward = _bw
        return out

    def maximum(self, other: ArrayLike) -> "Tensor":
        """Elementwise max; ties send the full gradient to ``self``."""
        other = astensor(other)
        if _tracing():
            return _trace_apply("maximum", (self, other))
        out = self._make(np.maximum(self.data, other.data), (self, other))
        if out.requires_grad:
            mask = self.data >= other.data
            def _bw(g):
                self._accum(g * mask)
                other._accum(g * ~mask)
            out._backward = _bw
        return out

    def clip(self, lo: float, hi: float) -> "Tensor":
        if _tracing():
            return _trace_apply("clip", (self,), {"lo": lo, "hi": hi})
        out = self._make(np.clip(self.data, lo, hi), (self,))
        if out.requires_grad:
            mask = (self.data >= lo) & (self.data <= hi)
            def _bw(g):
                self._accum(g * mask)
            out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        if _tracing():
            return _trace_apply("sum", (self,),
                                {"axis": axis, "keepdims": keepdims})
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            shape = self.data.shape
            def _bw(g):
                gg = np.asarray(g)
                if axis is not None and not keepdims:
                    ax = axis if isinstance(axis, tuple) else (axis,)
                    ax = tuple(a % len(shape) for a in ax)
                    for a in sorted(ax):
                        gg = np.expand_dims(gg, a)
                self._accum(np.broadcast_to(gg, shape))
            out._backward = _bw
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        n = self.data.size if axis is None else _axis_size(self.data.shape, axis)
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def var(self, axis=None, keepdims: bool = False, ddof: int = 0) -> "Tensor":
        """Differentiable variance built from mean()."""
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) * (self - mu)
        n = self.data.size if axis is None else _axis_size(self.data.shape, axis)
        scale = n / max(n - ddof, 1) if ddof else 1.0
        return sq.mean(axis=axis, keepdims=keepdims) * scale

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        if _tracing():
            return _trace_apply("max", (self,),
                                {"axis": axis, "keepdims": keepdims})
        out_data = self.data.max(axis=axis, keepdims=True)
        if keepdims:
            ret = out_data
        elif axis is None:
            ret = out_data.reshape(())
        else:
            ax = axis if isinstance(axis, tuple) else (axis,)
            ret = out_data.squeeze(axis=ax)
        out = self._make(ret, (self,))
        if out.requires_grad:
            mask = self.data == out_data
            counts = mask.sum(axis=axis, keepdims=True)
            def _bw(g):
                gg = np.asarray(g)
                if axis is not None and not keepdims:
                    ax = axis if isinstance(axis, tuple) else (axis,)
                    ax = tuple(a % self.data.ndim for a in ax)
                    for a in sorted(ax):
                        gg = np.expand_dims(gg, a)
                self._accum(mask * gg / counts)
            out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        if _tracing():
            return _trace_apply("reshape", (self,), {"shape": shape})
        out = self._make(self.data.reshape(shape), (self,))
        if out.requires_grad:
            orig = self.data.shape
            def _bw(g):
                self._accum(np.asarray(g).reshape(orig))
            out._backward = _bw
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        if _tracing():
            return _trace_apply("transpose", (self,), {"axes": axes})
        out = self._make(self.data.transpose(axes), (self,))
        if out.requires_grad:
            inv = np.argsort(axes)
            def _bw(g):
                self._accum(np.asarray(g).transpose(inv))
            out._backward = _bw
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, idx) -> "Tensor":
        if _tracing():
            return _trace_apply("getitem", (self,), {"idx": idx})
        out = self._make(self.data[idx], (self,))
        if out.requires_grad:
            shape = self.data.shape
            dtype = self.data.dtype
            def _bw(g):
                full = np.zeros(shape, dtype=dtype)
                np.add.at(full, idx, g)
                self._accum(full)
            out._backward = _bw
        return out

    def pad(self, pad_width: Sequence[Tuple[int, int]], value: float = 0.0) -> "Tensor":
        """Constant-pad; ``pad_width`` follows ``np.pad`` convention."""
        pw = tuple(tuple(p) for p in pad_width)
        if _tracing():
            return _trace_apply("pad", (self,),
                                {"pad_width": pw, "value": value})
        out = self._make(
            np.pad(self.data, pw, mode="constant", constant_values=value), (self,)
        )
        if out.requires_grad:
            slices = tuple(
                slice(lo, lo + s) for (lo, _), s in zip(pw, self.data.shape)
            )
            def _bw(g):
                self._accum(np.asarray(g)[slices])
            out._backward = _bw
        return out

    def roll(self, shift, axis) -> "Tensor":
        """Cyclic shift — the core of shifted-window attention (SW-MSA)."""
        if _tracing():
            return _trace_apply("roll", (self,),
                                {"shift": shift, "axis": axis})
        out = self._make(np.roll(self.data, shift, axis=axis), (self,))
        if out.requires_grad:
            if isinstance(shift, (tuple, list)):
                inv_shift = tuple(-s for s in shift)
            else:
                inv_shift = -shift
            def _bw(g):
                self._accum(np.roll(np.asarray(g), inv_shift, axis=axis))
            out._backward = _bw
        return out

    # ------------------------------------------------------------------
    # composite ops
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax with a fused backward.

        Computed with one temporary (shift, exp and normalise reuse the
        same buffer) — the backward only needs the final probabilities.
        """
        if _tracing():
            return _trace_apply("softmax", (self,), {"axis": axis})
        p = self.data - self.data.max(axis=axis, keepdims=True)
        np.exp(p, out=p)
        p /= p.sum(axis=axis, keepdims=True)
        out = self._make(p, (self,))
        if out.requires_grad:
            def _bw(g):
                gp = g * p
                self._accum(gp - p * gp.sum(axis=axis, keepdims=True))
            out._backward = _bw
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        if _tracing():
            return _trace_apply("log_softmax", (self,), {"axis": axis})
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        ls = shifted - lse
        out = self._make(ls, (self,))
        if out.requires_grad:
            p = np.exp(ls)
            def _bw(g):
                self._accum(g - p * g.sum(axis=axis, keepdims=True))
            out._backward = _bw
        return out

    # comparison helpers (non-differentiable, return ndarray masks)
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)


def _axis_size(shape: Tuple[int, ...], axis) -> int:
    if isinstance(axis, tuple):
        n = 1
        for a in axis:
            n *= shape[a % len(shape)]
        return n
    return shape[axis % len(shape)]


# ----------------------------------------------------------------------
# free functions
# ----------------------------------------------------------------------
def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    ts = [astensor(t) for t in tensors]
    if _tracing():
        return _trace_apply("concatenate", ts, {"axis": axis})
    data = np.concatenate([t.data for t in ts], axis=axis)
    rg = is_grad_enabled() and any(t.requires_grad for t in ts)
    out = Tensor(data)
    out.requires_grad = rg
    if rg:
        out._parents = tuple(ts)
        sizes = [t.data.shape[axis] for t in ts]
        offsets = np.cumsum([0] + sizes)
        def _bw(g):
            g = np.asarray(g)
            for t, lo, hi in zip(ts, offsets[:-1], offsets[1:]):
                idx = [slice(None)] * g.ndim
                idx[axis] = slice(lo, hi)
                t._accum(g[tuple(idx)])
        out._backward = _bw
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    ts = [astensor(t) for t in tensors]
    if _tracing():
        return _trace_apply("stack", ts, {"axis": axis})
    data = np.stack([t.data for t in ts], axis=axis)
    rg = is_grad_enabled() and any(t.requires_grad for t in ts)
    out = Tensor(data)
    out.requires_grad = rg
    if rg:
        out._parents = tuple(ts)
        def _bw(g):
            g = np.asarray(g)
            for i, t in enumerate(ts):
                idx = [slice(None)] * g.ndim
                idx[axis] = i
                t._accum(g[tuple(idx)])
        out._backward = _bw
    return out


def where(cond: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable select: ``cond ? a : b`` (cond is a plain mask)."""
    a, b = astensor(a), astensor(b)
    cond = np.asarray(cond, dtype=bool)
    if _tracing():
        return _trace_apply("where", (Tensor(cond), a, b))
    out_data = np.where(cond, a.data, b.data)
    rg = is_grad_enabled() and (a.requires_grad or b.requires_grad)
    out = Tensor(out_data)
    out.requires_grad = rg
    if rg:
        out._parents = (a, b)
        def _bw(g):
            a._accum(np.where(cond, g, 0.0))
            b._accum(np.where(cond, 0.0, g))
        out._backward = _bw
    return out


# ----------------------------------------------------------------------
# plan kernels owned by this module (scipy ufuncs and composite eager
# expressions the generic registry in repro.tensor.plan cannot host)
# ----------------------------------------------------------------------
@_plan.register_kernel("sigmoid", "compute")
def _k_sigmoid(out, ins, consts):
    return _sp_special.expit(ins[0], out=out)


@_plan.register_kernel("erf", "compute")
def _k_erf(out, ins, consts):
    return _sp_special.erf(ins[0], out=out)


@_plan.register_kernel("copy", "compute")
def _k_copy(out, ins, consts):
    if out is None:
        return ins[0].copy()
    np.copyto(out, ins[0])
    return out


@_plan.register_kernel("log_softmax", "fresh")
def _k_log_softmax(out, ins, consts):
    a, axis = ins[0], consts["axis"]
    shifted = a - a.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    return shifted - lse


_plan.bind_runtime(Tensor, no_grad, is_grad_enabled)
