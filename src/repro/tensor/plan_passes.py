"""Plan-IR optimisation passes: treat the flat step list as a program.

A finalized :class:`~repro.tensor.plan.ExecutionPlan` is a flat IR —
numbered value slots, a step list of registered kernels, a liveness
analysis.  This module optimises that IR the way an inference compiler
would, in three independent layers:

* **peephole fusion** (:func:`fuse_elementwise`) — adjacent
  producer/consumer step pairs from a fixed pattern table collapse
  into single registered kernels: the GEMM→bias ``iadd`` that follows
  every ``Linear``, the bias/BN-affine→GELU chains of the MLP blocks,
  and attention's scale→mask→softmax score pipeline.  Each fused
  kernel replays the *exact* NumPy ufunc sequence of the pair it
  replaces (same calls, same buffers disjointness, fewer Python
  dispatches), so fusion preserves the plan's bitwise-vs-eager
  guarantee.  Fused kernels that need the intermediate value keep it
  in a *scratch* slot (``Step.scratch``) — an arena buffer scoped to
  that one step, placed by :func:`~repro.tensor.plan.repack`.
* **constant folding + dead-step elimination**
  (:func:`fold_constants`, :func:`eliminate_dead_steps`) — steps whose
  inputs are all constants evaluate at pass time and become constants
  themselves; steps whose alias group is never read again (and is not
  a plan output) are dropped.  Both are no-ops on a fresh model trace
  (the tracer already folds constants and records no unused ops) but
  keep rewritten plans clean.
* **reduced-precision variants** (:func:`cast_plan`) — a cloned plan
  whose floating slots, constants and baked arrays are narrowed to a
  target dtype (float32 for a float64-traced program, float16 storage
  for the already-float32 model forward).  Explicit float64
  accumulation the trace demanded (``astype`` steps to float64) is
  preserved.  Variants are NOT bitwise and must pass an accuracy gate
  before serving — see
  :meth:`~repro.workflow.engine.ForecastEngine.compile_reduced`, which
  gates against :mod:`repro.eval.metrics` tolerances.

Batch-shape **bucketing** (:func:`plan_buckets`) is the policy side of
the same layer: compile plans at a few canonical batch sizes, pad
undersized micro-batches up to the nearest bucket and slice outputs
back (row-independence of the forward makes the sliced result
bitwise-identical to the unpadded run), so the plan cache hits at any
arrival pattern instead of falling back to eager.

Every structural pass mutates the plan in place and finishes with
:func:`~repro.tensor.plan.repack`, so liveness, arena offsets and
release lists always describe the rewritten program.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import special as _sp_special

from .plan import (ExecutionPlan, KERNELS, SlotSpec, Step, TraceError,
                   register_kernel, repack)

__all__ = [
    "plan_buckets",
    "plan_buckets_from_histogram",
    "optimize",
    "fuse_elementwise",
    "fold_constants",
    "eliminate_dead_steps",
    "cast_plan",
    "FUSION_PATTERNS",
]


# ----------------------------------------------------------------------
# batch-shape bucketing policy
# ----------------------------------------------------------------------
def plan_buckets(max_batch: int) -> Tuple[int, ...]:
    """Canonical batch sizes to compile for a ``max_batch`` scheduler.

    Powers of two up to ``max_batch``, plus ``max_batch`` itself
    (e.g. ``8 → (1, 2, 4, 8)``, ``6 → (1, 2, 4, 6)``).  An undersized
    micro-batch pads to the nearest bucket above it, so the worst-case
    padding overhead is bounded at just under 2× rows while the plan
    cache stays small.
    """
    max_batch = int(max_batch)
    if max_batch < 1:
        raise ValueError("plan_buckets() needs max_batch >= 1")
    sizes = {max_batch}
    b = 1
    while b < max_batch:
        sizes.add(b)
        b *= 2
    return tuple(sorted(sizes))


def plan_buckets_from_histogram(observed, max_batch: Optional[int] = None,
                                max_plans: Optional[int] = None
                                ) -> Tuple[int, ...]:
    """Pick compile buckets from an observed batch-size histogram.

    ``observed`` is either a ``{batch_size: count}`` mapping (e.g. the
    scheduler's ``ServeMetrics.occupancy_histogram()``) or an iterable
    of batch sizes, one entry per flushed batch.  The returned bucket
    set minimises the total pad rows ``Σ count(s) · (bucket(s) − s)``
    over the histogram — each observed size maps to the smallest
    chosen bucket ≥ it — under a plan-cache budget of ``max_plans``
    buckets (default: the size of the canonical power-of-two set, so
    the cache cost matches :func:`plan_buckets`).  The largest
    observed size is always a bucket (nothing may fall back to eager),
    and ``max_batch``, when given, joins the candidate set so a
    scheduler's full flushes stay exact hits even before one has been
    observed.

    Solved exactly by dynamic programming over the (few dozen at most)
    distinct observed sizes — this is the classic 1-D k-median-style
    partition, ``O(k² · budget)``.
    """
    if isinstance(observed, dict):
        counts: Dict[int, int] = {}
        for s, c in observed.items():
            counts[int(s)] = counts.get(int(s), 0) + int(c)
    else:
        counts = {}
        for s in observed:
            s = int(s)
            counts[s] = counts.get(s, 0) + 1
    if max_batch is not None:
        # candidate (count 0): full flushes must stay exact hits
        counts.setdefault(int(max_batch), 0)
    if not counts:
        raise ValueError(
            "plan_buckets_from_histogram() needs at least one "
            "observed batch size")
    if min(counts) < 1:
        raise ValueError(
            f"batch sizes must be >= 1, got {min(counts)}")

    sizes = sorted(counts)                       # c_1 < ... < c_k
    k = len(sizes)
    budget = max_plans if max_plans is not None \
        else len(plan_buckets(sizes[-1]))
    budget = max(1, min(int(budget), k))
    if budget >= k:
        return tuple(sizes)

    # cost(i, j): map sizes c_{i+1}..c_j onto bucket c_j
    cost = [[0] * k for _ in range(k + 1)]
    for i in range(k + 1):
        for j in range(i, k):
            cost[i][j] = sum(counts[sizes[m]] * (sizes[j] - sizes[m])
                             for m in range(i, j + 1))
    INF = float("inf")
    # dp[m][j]: min pad rows covering c_1..c_j with m buckets, largest
    # bucket = c_j; prev[m][j] reconstructs the chosen set
    dp = [[INF] * k for _ in range(budget + 1)]
    prev: List[List[Optional[int]]] = \
        [[None] * k for _ in range(budget + 1)]
    for j in range(k):
        dp[1][j] = cost[0][j]
    for m in range(2, budget + 1):
        for j in range(m - 1, k):
            for i in range(m - 2, j):
                cand = dp[m - 1][i] + cost[i + 1][j]
                if cand < dp[m][j]:
                    dp[m][j] = cand
                    prev[m][j] = i
    best_m = min(range(1, budget + 1), key=lambda m: dp[m][k - 1])
    chosen = []
    m, j = best_m, k - 1
    while j is not None and m >= 1:
        chosen.append(sizes[j])
        j = prev[m][j]
        m -= 1
    return tuple(sorted(chosen))


# ----------------------------------------------------------------------
# fused kernels
#
# Every kernel reproduces the exact ufunc sequence of the step pair it
# replaces (see repro.tensor.plan / repro.nn.layers /
# repro.nn.attention for the originals), so replay stays bitwise
# identical to the unfused plan — and therefore to the eager path.
# Kernels taking a scratch buffer receive it appended to ``ins``.
# ----------------------------------------------------------------------
def _gelu_from(a, out):
    # the exact eager GELU sequence (repro.nn.layers._k_gelu)
    y = np.multiply(a, np.float32(1.0 / np.sqrt(2.0)), out=out)
    _sp_special.erf(y, out=y)
    y += 1.0
    y *= a
    y *= 0.5
    return y


def _softmax_from(a, out, axis):
    # the exact eager softmax sequence (repro.tensor.plan._k_softmax)
    p = np.subtract(a, a.max(axis=axis, keepdims=True), out=out)
    np.exp(p, out=p)
    p /= p.sum(axis=axis, keepdims=True)
    return p


def _masked_add(t, consts):
    # the exact SW-MSA mask add (repro.nn.attention._k_add_window_mask)
    m, nW, heads = consts["mask"], consts["nW"], consts["heads"]
    B, N = t.shape[0], t.shape[-1]
    t.reshape(B // nW, nW, heads, N, N)[...] += m[None]
    return t


@register_kernel("matmul_bias", "compute")
def _k_matmul_bias(out, ins, consts):
    # matmul ; iadd — the Linear layer's GEMM with its bias add
    y = np.matmul(ins[0], ins[1], out=out)
    y += ins[2]
    return y


@register_kernel("matmul_scale", "compute")
def _k_matmul_scale(out, ins, consts):
    # matmul ; imul_scalar — attention's scaled q·kᵀ scores
    y = np.matmul(ins[0], ins[1], out=out)
    y *= consts["scale"]
    return y


@register_kernel("matmul_scale_mask", "compute")
def _k_matmul_scale_mask(out, ins, consts):
    # matmul ; imul_scalar ; add_window_mask — shifted-window scores
    y = np.matmul(ins[0], ins[1], out=out)
    y *= consts["scale"]
    return _masked_add(y, consts)


@register_kernel("matmul_bias_gelu", "compute")
def _k_matmul_bias_gelu(out, ins, consts):
    # matmul ; iadd ; gelu — a whole MLP fc1 in one dispatch; the
    # biased GEMM result lives in the scratch buffer (gelu re-reads it)
    a, b, bias, tmp = ins
    t = np.matmul(a, b, out=tmp)
    t += bias
    return _gelu_from(t, out)


@register_kernel("bn_affine_gelu", "compute", rowwise=True)
def _k_bn_affine_gelu(out, ins, consts):
    # bn_affine ; gelu — folded BatchNorm into its activation
    x, tmp = ins
    t = np.multiply(x, consts["scale"], out=tmp)
    t += consts["shift"]
    return _gelu_from(t, out)


@register_kernel("matmul_scale_softmax", "compute")
def _k_matmul_scale_softmax(out, ins, consts):
    # matmul ; imul_scalar ; softmax — unmasked attention scores
    a, b, tmp = ins
    t = np.matmul(a, b, out=tmp)
    t *= consts["scale"]
    return _softmax_from(t, out, consts["axis"])


@register_kernel("matmul_scale_mask_softmax", "compute")
def _k_matmul_scale_mask_softmax(out, ins, consts):
    # matmul ; imul_scalar ; add_window_mask ; softmax — the whole
    # shifted-window attention score pipeline in one dispatch
    a, b, tmp = ins
    t = np.matmul(a, b, out=tmp)
    t *= consts["scale"]
    _masked_add(t, consts)
    return _softmax_from(t, out, consts["axis"])


#: (first kernel, second kernel) -> (fused kernel, needs scratch slot).
#: Pairs fuse iteratively, so chains collapse through intermediate
#: fused names: matmul → imul_scalar → add_window_mask → softmax
#: becomes matmul_scale, then matmul_scale_mask, then
#: matmul_scale_mask_softmax.
FUSION_PATTERNS: Dict[Tuple[str, str], Tuple[str, bool]] = {
    ("matmul", "iadd"): ("matmul_bias", False),
    ("matmul", "imul_scalar"): ("matmul_scale", False),
    ("matmul_scale", "add_window_mask"): ("matmul_scale_mask", False),
    ("matmul_bias", "gelu"): ("matmul_bias_gelu", True),
    ("bn_affine", "gelu"): ("bn_affine_gelu", True),
    ("matmul_scale", "softmax"): ("matmul_scale_softmax", True),
    ("matmul_scale_mask", "softmax"): ("matmul_scale_mask_softmax", True),
}


# ----------------------------------------------------------------------
# pass helpers
# ----------------------------------------------------------------------
def _slot_reads(plan: ExecutionPlan) -> Dict[int, int]:
    """How many times each slot id is referenced (step inputs, scratch,
    plan outputs)."""
    reads: Dict[int, int] = {}
    for st in plan.steps:
        for tag, ref in st.ins:
            if tag == "s":
                reads[ref] = reads.get(ref, 0) + 1
        for sid in st.scratch:
            reads[sid] = reads.get(sid, 0) + 1
    for sid in plan.outputs:
        reads[sid] = reads.get(sid, 0) + 1
    return reads


def _merge_consts(a: Dict[str, Any], b: Dict[str, Any]
                  ) -> Optional[Dict[str, Any]]:
    """Union of two const dicts; ``None`` if a key collides (the pair
    is then left unfused rather than guessed at)."""
    merged = dict(a)
    for k, v in b.items():
        if k in merged and merged[k] is not v:
            return None
        merged[k] = v
    return merged


# ----------------------------------------------------------------------
# peephole fusion
# ----------------------------------------------------------------------
def fuse_elementwise(plan: ExecutionPlan) -> Dict[str, int]:
    """Fuse adjacent step pairs from :data:`FUSION_PATTERNS` in place.

    A pair ``(i, i+1)`` fuses only when the second step is the *sole*
    reader of the first step's output slot (which is not a plan
    output), so the intermediate value is provably dead outside the
    pair.  Two shapes exist:

    * second step **in-place** on the first's output — the fused
      kernel writes the second step's (alias) slot directly, which
      becomes a storage-owning compute slot of the same alias group;
    * second step a **compute** consumer — the first's output slot
      becomes the fused step's scratch buffer, scoped to the step.

    Runs to a fixpoint so chains collapse through intermediate fused
    names.  Returns ``{fused kernel name: count}``.  The caller must
    :func:`~repro.tensor.plan.repack` afterwards.
    """
    counts: Dict[str, int] = {}
    changed = True
    while changed:
        changed = False
        reads = _slot_reads(plan)
        i = 0
        while i + 1 < len(plan.steps):
            first, second = plan.steps[i], plan.steps[i + 1]
            pattern = FUSION_PATTERNS.get((first.name, second.name))
            if pattern is None or first.kind != "compute":
                i += 1
                continue
            fused_name, needs_scratch = pattern
            x = first.out
            # the second step must consume X as its primary input, and
            # nothing else may ever read X (or alias into its group)
            if not second.ins or second.ins[0] != ("s", x) \
                    or reads.get(x, 0) != 1:
                i += 1
                continue
            xroot = plan.slots[x].root
            if any(tag == "s" and plan.slots[ref].root == xroot
                   for tag, ref in second.ins[1:]):
                i += 1
                continue
            consts = _merge_consts(first.consts, second.consts)
            if consts is None:
                i += 1
                continue
            kernel = KERNELS[fused_name]
            ins = first.ins + second.ins[1:]
            if second.kind == "inplace":
                # fused kernel writes the alias slot directly; it
                # becomes the group's storage-owning buffer
                out = second.out
                scratch = first.scratch + second.scratch
                plan.slots[out].kind = "compute"
            elif second.kind == "compute" and needs_scratch:
                out = second.out
                scratch = first.scratch + second.scratch + (x,)
            else:
                i += 1
                continue
            plan.steps[i] = Step(fused_name, kernel.fn, "compute", out,
                                 ins, consts, kernel.rowwise, scratch)
            del plan.steps[i + 1]
            counts[fused_name] = counts.get(fused_name, 0) + 1
            changed = True
            reads = _slot_reads(plan)
            # stay at i: the fused step may itself start a new pattern
        # sweep again from the top until a full pass fuses nothing
    return counts


# ----------------------------------------------------------------------
# constant folding
# ----------------------------------------------------------------------
def fold_constants(plan: ExecutionPlan) -> int:
    """Evaluate steps whose inputs are all constants, in place.

    The tracer already folds anything constant at trace time, so this
    is a no-op on fresh model plans — it exists for rewritten or
    hand-built plans, where an earlier pass can leave a step with only
    constant inputs.  The folded value becomes a frozen plan constant
    and later references to the step's slot are redirected to it.
    Returns the number of steps folded.
    """
    folded = 0
    while True:
        victim = None
        for idx, st in enumerate(plan.steps):
            if st.kind == "inplace" or st.scratch or not st.ins:
                continue
            if any(tag != "c" for tag, _ in st.ins):
                continue
            if st.out in plan.outputs:
                continue
            # an in-place step targeting this slot's group would need
            # the constant to stay mutable; leave such steps alone
            root = plan.slots[st.out].root
            if any(other.kind == "inplace"
                   and plan.slots[other.out].root == root
                   for other in plan.steps):
                continue
            victim = (idx, st)
            break
        if victim is None:
            return folded
        idx, st = victim
        args = tuple(plan.const_arrays[ref] for _, ref in st.ins)
        value = np.ascontiguousarray(st.fn(None, args, st.consts)).copy()
        value.flags.writeable = False
        cid = len(plan.const_arrays)
        plan.const_arrays.append(value)
        del plan.steps[idx]
        for other in plan.steps:
            other.ins = tuple(("c", cid) if ref == ("s", st.out) else ref
                              for ref in other.ins)
        folded += 1


# ----------------------------------------------------------------------
# dead-step elimination
# ----------------------------------------------------------------------
def eliminate_dead_steps(plan: ExecutionPlan) -> int:
    """Drop steps whose alias group is never read afterwards, in place.

    Alias-group aware: an in-place step mutates a buffer other slots
    of its group may read later, so a step survives while *any* slot
    of its output's group feeds a later surviving step or a plan
    output.  Returns the number of steps removed.
    """
    live = {plan.slots[s].root for s in plan.outputs}
    kept: List[Step] = []
    removed = 0
    for st in reversed(plan.steps):
        if plan.slots[st.out].root in live:
            kept.append(st)
            for tag, ref in st.ins:
                if tag == "s":
                    live.add(plan.slots[ref].root)
            for sid in st.scratch:
                live.add(plan.slots[sid].root)
        else:
            removed += 1
    plan.steps[:] = reversed(kept)
    return removed


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def optimize(plan: ExecutionPlan, *, fuse: bool = True, fold: bool = True,
             dce: bool = True) -> Tuple[ExecutionPlan, Dict[str, Any]]:
    """Run the structural passes and re-pack the arena.

    Mutates ``plan`` in place (it must not be executing) and returns it
    with a stats dict recording what each pass did — surfaced through
    ``engine.plan_stats()['pass_stats']`` and the inference bench's
    ``plan_pass_stats`` record.
    """
    stats: Dict[str, Any] = {
        "steps_before": plan.n_steps,
        "arena_bytes_before": plan.arena_total,
    }
    stats["folded_steps"] = fold_constants(plan) if fold else 0
    stats["fused"] = fuse_elementwise(plan) if fuse else {}
    stats["dead_steps"] = eliminate_dead_steps(plan) if dce else 0
    repack(plan)
    stats["steps_after"] = plan.n_steps
    stats["arena_bytes_after"] = plan.arena_total
    return plan, stats


# ----------------------------------------------------------------------
# reduced-precision variants
# ----------------------------------------------------------------------
def cast_plan(plan: ExecutionPlan, dtype) -> ExecutionPlan:
    """Clone ``plan`` with floating storage narrowed to ``dtype``.

    Every floating slot, baked constant and const-dict array wider
    than the target narrows to it — float32 for a float64-traced
    program, float16 storage for a float32 one — except float64
    accumulation the trace demanded explicitly (``astype`` steps to
    float64 and the slots/constants they feed keep their width).
    NumPy's ufunc machinery still *computes* in the promoted dtype and
    casts on store, so narrowing is a storage/bandwidth change, not a
    change of kernel algebra.

    The variant is NOT bitwise-identical to the source plan and must
    be tolerance-gated before serving (see
    :meth:`~repro.workflow.engine.ForecastEngine.compile_reduced`).
    The source plan is left untouched and keeps its guarantee.  Input
    slots narrow too: callers must feed ``dtype`` inputs.
    """
    target = np.dtype(dtype)
    if target.kind != "f":
        raise ValueError(
            f"cast_plan() targets a float dtype, got {target}")

    slots = [SlotSpec(s.shape, s.dtype, s.kind, s.root) for s in plan.slots]
    steps = [Step(s.name, s.fn, s.kind, s.out, s.ins, dict(s.consts),
                  s.rowwise, s.scratch) for s in plan.steps]
    out = ExecutionPlan(slots, steps, list(plan.inputs),
                        list(plan.outputs), list(plan.const_arrays))

    # float64 accumulation the trace demanded: explicit astype steps to
    # float64 keep their width, as does everything aliasing their output
    preserve = set()
    for st in steps:
        if st.name == "astype" \
                and np.dtype(st.consts["dtype"]) == np.float64 \
                and target.itemsize < np.dtype(np.float64).itemsize:
            preserve.add(slots[st.out].root)

    def narrows(dt: np.dtype) -> bool:
        return dt.kind == "f" and dt.itemsize > target.itemsize

    for spec in slots:
        if narrows(spec.dtype) and spec.root not in preserve:
            spec.dtype = target

    # constants consumed only by preserved (float64) steps keep their
    # width; everything else narrows
    keep_wide = {ref for st in steps
                 if slots[st.out].root in preserve
                 for tag, ref in st.ins if tag == "c"}
    consts: List[np.ndarray] = []
    for cid, arr in enumerate(plan.const_arrays):
        if narrows(arr.dtype) and cid not in keep_wide:
            cast = np.ascontiguousarray(arr.astype(target))
            cast.flags.writeable = False
            consts.append(cast)
        else:
            consts.append(arr)
    out.const_arrays = consts

    for st in steps:
        if slots[st.out].root in preserve:
            continue
        for k, v in list(st.consts.items()):
            if isinstance(v, np.ndarray) and narrows(v.dtype):
                st.consts[k] = v.astype(target)
        if st.name == "astype":
            dt = np.dtype(st.consts["dtype"])
            if narrows(dt):
                st.consts = dict(st.consts, dtype=target)

    repack(out)
    return out
