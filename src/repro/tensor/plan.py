"""Compiled inference plans: capture a forward once, replay it raw.

Eager inference walks the full dynamic machinery on every call —
per-op :class:`~repro.tensor.tensor.Tensor` wrapping, ``requires_grad``
bookkeeping, Python control flow in every module, and a fresh output
allocation per primitive.  None of that work depends on the *data*:
under ``no_grad`` the surrogate's forward is a fixed sequence of NumPy
kernel calls whose shapes are fully determined by the input shapes.

This module captures that sequence once and replays it with none of
the dynamic machinery:

* **trace** — :func:`trace` runs a function of Tensors with a
  thread-local :class:`PlanBuilder` active.  Each primitive op (ufunc,
  matmul, conv-GEMM, reshape/transpose, reduction, fused inference
  kernel) routes through :func:`trace_apply`, which executes the op's
  kernel eagerly (so shapes and values propagate) *and* records it as
  a step against numbered buffer slots.  Ops whose inputs are all
  constants (parameters, window masks, positional tables, folded
  BatchNorm scale/shift) are constant-folded: their trace-time value
  is captured and no step is recorded.
* **plan** — :class:`ExecutionPlan` is the flat step list plus a
  liveness analysis: every slot's last use is known, so storage-owning
  slots whose lifetimes do not overlap share one physical byte buffer
  (best-fit by size; alias groups — views and in-place updates — are
  tracked so reuse can never clobber a live input).
* **arena + replay** — a :class:`PlanExecutor` binds the plan's
  physical buffers from a size-keyed :class:`BufferArena` once, then
  :meth:`PlanExecutor.run` replays the steps on raw ``np.ndarray``\\ s:
  no Tensor objects, no graph bookkeeping, outputs written in place
  into the reused slots.  Steps marked row-parallel (heavy elementwise
  kernels — GELU's ``erf`` above all) are chunked over the leading
  axis onto a shared thread pool on multi-core hosts; chunks are
  disjoint, so results stay identical to the serial replay.

Replay is **bitwise identical** to the eager path by construction:
under trace the eager value is computed *by the same kernel function*
that replay calls, and every kernel reproduces the exact NumPy
expression of the eager inference fast path (GEMMs are never split or
reordered — only elementwise work is chunked).

Kernels register here for the generic tensor ops and from the modules
that own them (:mod:`repro.tensor.ops_conv` registers the conv-GEMM
kernels, :mod:`repro.nn.layers` / :mod:`repro.nn.attention` the fused
inference kernels, :mod:`repro.tensor.plan_passes` the peephole-fused
kernels its optimisation passes substitute in) via
:func:`register_kernel`.

A finalized plan is also an optimisation substrate:
:mod:`repro.tensor.plan_passes` rewrites the step list (elementwise
fusion, constant folding, dead-step elimination, reduced-precision
variants) and calls :func:`repack` to re-run the liveness analysis and
arena assignment over the rewritten program.  Fused steps may own
*scratch* slots (``Step.scratch``): arena buffers written and read
only inside that one step, placed by the packer with a lifetime of
exactly that step.

This module deliberately imports nothing from
:mod:`repro.tensor.tensor` (which imports it); the Tensor type and the
grad-mode switches are bound at import time through
:func:`bind_runtime`.
"""

from __future__ import annotations

import importlib
import os
import pickle
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ExecutionPlan",
    "PlanBuilder",
    "PlanExecutor",
    "BufferArena",
    "TraceError",
    "trace",
    "tracing",
    "trace_apply",
    "register_kernel",
    "repack",
]


class TraceError(RuntimeError):
    """Raised when a forward cannot be captured as a static plan."""


# ----------------------------------------------------------------------
# runtime binding (set by repro.tensor.tensor to avoid a cycle)
# ----------------------------------------------------------------------
_tensor_type: Optional[type] = None
_no_grad = None
_is_grad_enabled = None


def bind_runtime(tensor_type: type, no_grad, is_grad_enabled) -> None:
    """Wire the Tensor type and grad-mode switches into this module."""
    global _tensor_type, _no_grad, _is_grad_enabled
    _tensor_type = tensor_type
    _no_grad = no_grad
    _is_grad_enabled = is_grad_enabled


# ----------------------------------------------------------------------
# kernel registry
# ----------------------------------------------------------------------
#: kernel kinds (how replay treats the output buffer):
#:   compute — writes into a preallocated arena buffer (``out=``)
#:   fresh   — allocates internally; the returned array becomes the slot
#:   view    — returns a view of its first input (no storage)
#:   movement— view *or* storage, decided per call site at trace time
#:             (``np.shares_memory`` — deterministic across replays
#:             because strides replay identically); the non-view kind
#:             is the kernel's ``nonview`` registration argument
#:   inplace — mutates its first input's buffer and returns it
KERNEL_KINDS = ("compute", "fresh", "view", "movement", "inplace")


@dataclass(frozen=True)
class Kernel:
    fn: Callable
    kind: str
    rowwise: bool = False     # safe to chunk over the leading axis
    nonview: str = "fresh"    # movement kernels: kind when not a view


#: name -> Kernel; fn(out, ins, consts) -> np.ndarray
KERNELS: Dict[str, Kernel] = {}


def register_kernel(name: str, kind: str, rowwise: bool = False,
                    nonview: str = "fresh"):
    """Register ``fn(out, ins, consts) -> np.ndarray`` as a kernel.

    ``out`` is the preallocated output buffer for ``compute`` kernels
    (``None`` at trace time, when the kernel must allocate); ``ins`` is
    the tuple of input arrays; ``consts`` the static argument dict
    captured at trace time.  ``rowwise`` marks elementwise/last-axis
    kernels whose leading axis may be chunked across threads without
    changing any output bit.
    """
    if kind not in KERNEL_KINDS:
        raise ValueError(f"unknown kernel kind {kind!r}")

    def deco(fn):
        if name in KERNELS:
            raise ValueError(f"kernel {name!r} already registered")
        KERNELS[name] = Kernel(fn, kind, rowwise, nonview)
        return fn
    return deco


# ----------------------------------------------------------------------
# trace state
# ----------------------------------------------------------------------
_state = threading.local()


def tracing() -> bool:
    """Whether a plan is being recorded on this thread."""
    return getattr(_state, "builder", None) is not None


# ----------------------------------------------------------------------
# shared elementwise thread pool (multi-core replays only)
# ----------------------------------------------------------------------
#: a rowwise step is chunked only when its output is at least this big
PARALLEL_MIN_BYTES = 1 << 17

_pool_lock = threading.Lock()
_pool: Optional[ThreadPoolExecutor] = None
_pool_workers = 0


def _shared_pool() -> Optional[ThreadPoolExecutor]:
    """Lazy process-wide worker pool; ``None`` on single-core hosts."""
    global _pool, _pool_workers
    cores = os.cpu_count() or 1
    if cores < 2:
        return None
    with _pool_lock:
        if _pool is None:
            _pool_workers = min(cores, 8)
            _pool = ThreadPoolExecutor(
                max_workers=_pool_workers,
                thread_name_prefix="plan-elementwise")
    return _pool


# ----------------------------------------------------------------------
# plan data model
# ----------------------------------------------------------------------
@dataclass
class SlotSpec:
    """One numbered value produced during the forward."""

    shape: Tuple[int, ...]
    dtype: np.dtype
    kind: str                    # 'input' | 'compute' | 'fresh' | 'view' | 'inplace'
    root: int                    # alias-group representative slot id
    phys: Optional[int] = None   # arena byte offset (compute slots only)

    @property
    def nbytes(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n * np.dtype(self.dtype).itemsize


@dataclass
class Step:
    """One recorded kernel call: ``slots[out] = fn(ins, consts)``."""

    name: str
    fn: Callable
    kind: str
    out: int
    #: inputs, each ("s", slot_id) or ("c", const_id)
    ins: Tuple[Tuple[str, int], ...]
    consts: Dict[str, Any] = field(default_factory=dict)
    rowwise: bool = False
    #: arena slots used only inside this step (fused kernels' internal
    #: temporaries); placed by :func:`repack` with a lifetime of
    #: exactly this step and passed to the kernel appended to ``ins``
    scratch: Tuple[int, ...] = ()


class ExecutionPlan:
    """A finalized flat kernel program with buffer-reuse assignment.

    Produced by :func:`trace`; executed by :class:`PlanExecutor`.
    Immutable after :meth:`PlanBuilder.finalize`.
    """

    def __init__(self, slots: List[SlotSpec], steps: List[Step],
                 inputs: List[int], outputs: List[int],
                 const_arrays: List[np.ndarray]):
        self.slots = slots
        self.steps = steps
        self.inputs = inputs          # slot ids bound from run() arguments
        self.outputs = outputs        # slot ids returned by run()
        self.const_arrays = const_arrays
        self.arena_total = 0          # bytes of the single arena blob
        # slot ids droppable after each step (mirrors eager refcount
        # freeing, so live fresh buffers never outstay their last use)
        self.step_releases: List[Tuple[int, ...]] = []

    # -- introspection --------------------------------------------------
    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def n_slots(self) -> int:
        return len(self.slots)

    @property
    def n_buffers(self) -> int:
        """Storage-owning (arena-backed) slots."""
        return sum(1 for s in self.slots if s.phys is not None)

    def kernel_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.steps:
            out[s.name] = out.get(s.name, 0) + 1
        return dict(sorted(out.items()))

    def arena_bytes(self) -> int:
        """Bytes of the preallocated arena blob (all compute slots,
        liveness-packed by offset)."""
        return self.arena_total

    def const_bytes(self) -> int:
        return sum(a.nbytes for a in self.const_arrays)

    # -- analytic peak-memory model ------------------------------------
    def peak_buffer_bytes(self) -> int:
        """Modelled peak intermediate-buffer bytes of one replay:
        the (liveness-reused) arena plus the live fresh-slot
        high-water."""
        return self.arena_bytes() + self._live_peak(("fresh",))

    def eager_peak_bytes(self) -> int:
        """Modelled peak intermediate-buffer bytes of one eager call:
        every storage-owning slot is a separate allocation freed when
        its alias group dies (NumPy refcounting), with no reuse."""
        return self._live_peak(("compute", "fresh"))

    def _live_peak(self, kinds: Tuple[str, ...]) -> int:
        """High-water of live bytes over slots of the given kinds,
        each freed at its alias group's last use."""
        last_use = self._last_uses()
        peak = live = 0
        owned = {s for s in range(self.n_slots)
                 if self.slots[s].kind in kinds}
        for i, step in enumerate(self.steps):
            if step.out in owned:
                live += self.slots[step.out].nbytes
            # scratch slots are born and die inside this one step
            scratch = sum(self.slots[s].nbytes for s in step.scratch
                          if self.slots[s].kind in kinds)
            peak = max(peak, live + scratch)
            for s in list(owned):
                if last_use[s] == i:
                    live -= self.slots[s].nbytes
                    owned.discard(s)
        return max(peak, live)

    def _last_uses(self) -> List[int]:
        """Per-slot index of the last step whose alias group needs it."""
        end = len(self.steps)
        group_last: Dict[int, int] = {}
        for i, step in enumerate(self.steps):
            for tag, ref in step.ins:
                if tag == "s":
                    group_last[self.slots[ref].root] = i
            for sid in step.scratch:
                group_last[self.slots[sid].root] = i
            group_last[self.slots[step.out].root] = i
        for out in self.outputs:
            group_last[self.slots[out].root] = end
        return [group_last.get(self.slots[s].root, -1)
                for s in range(self.n_slots)]

    def _build_releases(self) -> None:
        last_use = self._last_uses()
        group_end: Dict[int, int] = {}
        for sid, spec in enumerate(self.slots):
            group_end[spec.root] = max(group_end.get(spec.root, -1),
                                       last_use[sid])
        by_step: Dict[int, List[int]] = {}
        for sid, spec in enumerate(self.slots):
            end = group_end[spec.root]
            if end < len(self.steps):
                by_step.setdefault(end, []).append(sid)
        self.step_releases = [tuple(by_step.get(i, ()))
                              for i in range(len(self.steps))]

    # -- serialisation --------------------------------------------------
    # A plan is a *description* — flat step list, slot specs, baked
    # constants, the arena offset assignment — plus per-step kernel
    # function references.  The functions are registry closures
    # (unpicklable, and process-local anyway), so pickling ships each
    # step by its registered kernel NAME and rebinds the function from
    # the receiving process's registry.  Live buffers never travel:
    # arena blobs belong to PlanExecutors, which hold plans but are not
    # part of them.  Constants (folded weights, masks, tables) DO
    # travel — they are the baked state a worker process needs — and
    # pickling preserves their float bits exactly, so a round-tripped
    # plan replays bitwise-identical to the original.

    def __getstate__(self) -> Dict[str, Any]:
        return {
            "slots": self.slots,
            "steps": [(s.name, s.kind, s.out, s.ins, s.consts, s.rowwise,
                       s.scratch)
                      for s in self.steps],
            "inputs": self.inputs,
            "outputs": self.outputs,
            "const_arrays": self.const_arrays,
            "arena_total": self.arena_total,
            "step_releases": self.step_releases,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        _ensure_kernels_registered()
        steps = []
        for rec in state["steps"]:
            name, kind, out, ins, consts, rowwise = rec[:6]
            scratch = tuple(rec[6]) if len(rec) > 6 else ()
            kernel = KERNELS.get(name)
            if kernel is None:
                raise TraceError(
                    f"cannot deserialize plan: kernel {name!r} is not "
                    "registered in this process (import the module that "
                    "registers it before loading the plan)")
            steps.append(Step(name, kernel.fn, kind, out, ins, consts,
                              rowwise, scratch))
        self.slots = state["slots"]
        self.steps = steps
        self.inputs = state["inputs"]
        self.outputs = state["outputs"]
        self.const_arrays = state["const_arrays"]
        self.arena_total = state["arena_total"]
        self.step_releases = state["step_releases"]

    def to_bytes(self) -> bytes:
        """Serialize the plan (steps by kernel name, constants by
        value, no live arena blobs) for a worker process or disk."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_bytes(blob: bytes) -> "ExecutionPlan":
        """Inverse of :meth:`to_bytes`; replays bitwise-identical."""
        plan = pickle.loads(blob)
        if not isinstance(plan, ExecutionPlan):
            raise TraceError(
                f"from_bytes: expected an ExecutionPlan, got "
                f"{type(plan).__name__}")
        return plan


def _ensure_kernels_registered() -> None:
    """Import every module that registers kernels (idempotent).

    Deserialising a plan needs the full registry; in a fresh worker
    process only this module's generic kernels exist until the conv and
    fused-NN modules have been imported.
    """
    for mod in ("repro.tensor", "repro.nn.layers", "repro.nn.attention",
                "repro.tensor.plan_passes"):
        try:
            importlib.import_module(mod)
        except ImportError:
            pass


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------
class PlanBuilder:
    """Mutable recording state while a trace is active."""

    def __init__(self):
        self.slots: List[SlotSpec] = []
        self.steps: List[Step] = []
        self.inputs: List[int] = []
        self.const_arrays: List[np.ndarray] = []
        self._const_by_id: Dict[int, int] = {}

    # -- slots ----------------------------------------------------------
    def _new_slot(self, arr: np.ndarray, kind: str,
                  root: Optional[int] = None) -> int:
        sid = len(self.slots)
        self.slots.append(SlotSpec(tuple(arr.shape), arr.dtype, kind,
                                   sid if root is None else root))
        return sid

    def add_input(self, arr: np.ndarray) -> int:
        sid = self._new_slot(arr, "input")
        self.inputs.append(sid)
        return sid

    def add_const(self, arr: np.ndarray, stable: bool) -> int:
        """Capture a constant array.

        ``stable`` constants (model parameters) are captured **by
        reference** — in-place weight updates (``load_state_dict``)
        propagate into existing plans.  Everything else (masks, folded
        scale/shift, positional sums) is captured by value and frozen.
        """
        key = id(arr)
        if key in self._const_by_id:
            return self._const_by_id[key]
        if stable:
            stored = arr
        else:
            stored = np.ascontiguousarray(arr).copy()
            stored.flags.writeable = False
        cid = len(self.const_arrays)
        self.const_arrays.append(stored)
        if stable:
            self._const_by_id[key] = cid
        return cid

    def add_step(self, name: str, kernel: Kernel, kind: str,
                 ins: Sequence[Tuple[str, int]], consts: Dict[str, Any],
                 out_arr: np.ndarray) -> int:
        if kind in ("view", "inplace"):
            root = self.slots[ins[0][1]].root
            out = self._new_slot(out_arr, kind, root=root)
        else:
            out = self._new_slot(out_arr, kind)
        self.steps.append(Step(name, kernel.fn, kind, out, tuple(ins),
                               dict(consts), kernel.rowwise))
        return out

    # -- finalize: liveness → physical buffer assignment ----------------
    def finalize(self, outputs: List[int]) -> ExecutionPlan:
        for sid in self.inputs:
            # an in-place step writing through to a run() argument would
            # corrupt the caller's array on every replay
            for step in self.steps:
                if step.kind == "inplace" and \
                        self.slots[step.out].root == sid:
                    raise TraceError(
                        f"in-place kernel {step.name!r} targets input "
                        f"slot {sid}; refusing to capture a plan that "
                        "would mutate caller data")
        plan = ExecutionPlan(self.slots, self.steps, self.inputs, outputs,
                             self.const_arrays)
        repack(plan)
        return plan


def repack(plan: ExecutionPlan) -> ExecutionPlan:
    """(Re)run liveness analysis and physical buffer assignment.

    Called by :meth:`PlanBuilder.finalize` on a fresh trace, and again
    by the :mod:`repro.tensor.plan_passes` optimisation passes after
    they rewrite the step list — fused steps change slot lifetimes and
    introduce scratch slots, so the offsets must be re-derived.
    Idempotent: running it twice on an unchanged plan yields the same
    assignment.
    """
    for spec in plan.slots:
        spec.phys = None
    last_use = plan._last_uses()

    # group slots by alias root; a physical buffer frees only when
    # its whole group (the buffer plus every view / in-place handle
    # of it) is past its last use
    group_end: Dict[int, int] = {}
    for sid, spec in enumerate(plan.slots):
        group_end[spec.root] = max(group_end.get(spec.root, -1),
                                   last_use[sid])

    # offset assignment into one arena blob (address-ordered
    # first-fit over live byte ranges, the classic static memory
    # plan): slots with disjoint lifetimes share bytes whatever
    # their shapes, so the arena high-water tracks the live peak
    # instead of the allocation total — this is what makes peak
    # memory drop below the eager path
    align = 64
    active: List[Tuple[int, int, int]] = []   # (offset, size, end)
    total = 0
    for i, step in enumerate(plan.steps):
        # scratch slots place first: they are read and written during
        # this step, so their ranges (end == i) stay active while the
        # output buffer is placed and can never overlap it
        place = list(step.scratch)
        if step.kind == "compute":
            place.append(step.out)
        for sid in place:
            spec = plan.slots[sid]
            need = -(-spec.nbytes // align) * align
            # a range is reusable once its whole alias group is past
            # its last read (end < i); ranges read *during* this step
            # (end == i) must survive until the write completes
            active = [a for a in active if a[2] >= i]
            active.sort()
            offset = 0
            for o, s, _ in active:
                if offset + need <= o:
                    break
                offset = max(offset, o + s)
            active.append((offset, need, group_end[spec.root]))
            spec.phys = offset
            total = max(total, offset + need)
    plan.arena_total = total
    plan._build_releases()
    return plan


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------
def trace_apply(name: str, inputs: Sequence[Any],
                consts: Optional[Dict[str, Any]] = None) -> Any:
    """Execute kernel ``name`` eagerly under trace and record it.

    ``inputs`` may be Tensors or plain arrays/scalars.  Inputs carrying
    a trace slot keep the plan data-dependent; slotless inputs become
    plan constants.  If *no* input has a slot the op is constant-folded
    (executed, not recorded).  Returns the result wrapped as a Tensor.
    """
    b = _state.builder
    kernel = KERNELS[name]
    consts = consts or {}
    arrays: List[np.ndarray] = []
    refs: List[Optional[int]] = []
    stable: List[bool] = []
    for x in inputs:
        if isinstance(x, _tensor_type):
            arrays.append(x.data)
            refs.append(getattr(x, "_slot", None))
            stable.append(bool(getattr(x, "requires_grad", False)))
        else:
            arrays.append(np.asarray(x))
            refs.append(None)
            stable.append(False)

    out_arr = kernel.fn(None, tuple(arrays), consts)
    out = _tensor_type(out_arr)

    if any(r is not None for r in refs):
        kind = kernel.kind
        if kind == "movement":
            kind = "view" if np.shares_memory(out_arr, arrays[0]) \
                else kernel.nonview
        if kind == "view" and refs[0] is None:
            # view of a constant: the whole result is constant
            return out
        if kind == "inplace" and refs[0] is None:
            # in-place into a constant with a data-dependent operand
            # cannot be captured: each replay would need to re-mutate
            # the (shared, frozen) constant
            raise TraceError(
                f"in-place kernel {name!r} targets a constant while "
                "another input depends on the traced inputs")
        ins = []
        for arr, ref, stb in zip(arrays, refs, stable):
            if ref is not None:
                ins.append(("s", ref))
            else:
                ins.append(("c", b.add_const(arr, stable=stb)))
        out._slot = b.add_step(name, kernel, kind, ins, consts, out_arr)
    return out


def trace(fn: Callable, example_inputs: Sequence[np.ndarray]
          ) -> Tuple[ExecutionPlan, Any]:
    """Capture ``fn(*tensors)`` as an :class:`ExecutionPlan`.

    Parameters
    ----------
    fn: a function of Tensors returning a Tensor or a (nested) tuple /
        list of Tensors.  It must be shape-static: no data-dependent
        Python branching, every primitive routed through a registered
        kernel.
    example_inputs: arrays fixing the input shapes/dtypes (their values
        are irrelevant to the captured program, only to the trace-time
        outputs).

    Returns
    -------
    ``(plan, outputs)`` — the finalized plan and the trace-time eager
    outputs (same structure ``fn`` returned).
    """
    if _tensor_type is None:
        raise TraceError("plan runtime not bound; import repro.tensor first")
    if tracing():
        raise TraceError("trace() is not reentrant")
    builder = PlanBuilder()
    _state.builder = builder
    try:
        with _no_grad():
            tensors = []
            for arr in example_inputs:
                t = _tensor_type(np.ascontiguousarray(arr))
                t._slot = builder.add_input(t.data)
                tensors.append(t)
            result = fn(*tensors)
    finally:
        _state.builder = None

    out_slots: List[int] = []
    for t in _flatten(result):
        slot = getattr(t, "_slot", None)
        if slot is None:
            raise TraceError(
                "a traced output does not depend on the inputs "
                "(constant output) — nothing to replay")
        out_slots.append(slot)
    return builder.finalize(out_slots), result


def _flatten(x) -> List[Any]:
    if isinstance(x, (tuple, list)):
        out = []
        for item in x:
            out.extend(_flatten(item))
        return out
    return [x]


# ----------------------------------------------------------------------
# arena + executor
# ----------------------------------------------------------------------
class BufferArena:
    """Size-keyed pool of preallocated scratch byte buffers.

    Executors draw their physical buffers here; releasing an executor
    returns them for the next one, so steady-state serving allocates
    nothing.  Buffers are raw byte blobs — a freed blob hosts any
    later request that fits (best-fit), whatever shape the slots view
    it as.  Thread safety: :meth:`take`/:meth:`give` are locked; the
    arrays themselves are handed out exclusively.
    """

    def __init__(self):
        self._free: List[np.ndarray] = []   # sorted by nbytes
        self._lock = threading.Lock()
        self.allocated_bytes = 0
        self.allocations = 0     # arena growth events (unseen sizes/demand)
        self.reuses = 0

    def take(self, nbytes: int) -> np.ndarray:
        with self._lock:
            fit = next((i for i, b in enumerate(self._free)
                        if b.nbytes >= nbytes), None)
            if fit is not None:
                self.reuses += 1
                return self._free.pop(fit)
            self.allocations += 1
            self.allocated_bytes += nbytes
        return self._alloc(nbytes)

    def _alloc(self, nbytes: int) -> np.ndarray:
        """Allocate one fresh blob; subclasses override to place blobs
        in alternative storage (e.g. a shared-memory segment — see
        :class:`repro.serve.procpool.ShmArena`)."""
        return np.empty(nbytes, np.uint8)

    def give(self, blob: np.ndarray) -> None:
        with self._lock:
            at = next((i for i, b in enumerate(self._free)
                       if b.nbytes >= blob.nbytes), len(self._free))
            self._free.insert(at, blob)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"allocated_bytes": self.allocated_bytes,
                    "allocations": self.allocations,
                    "reuses": self.reuses}


class PlanExecutor:
    """Replays one :class:`ExecutionPlan` on raw arrays.

    Owns one set of the plan's physical buffers (drawn from ``arena``
    if given), so an executor is **not** thread-safe — concurrent
    callers each use their own executor (see
    ``workflow.engine.CompiledForward``).  :meth:`run` outputs are
    views into those buffers, valid until the next :meth:`run`.

    ``parallel=None`` (the default) chunks row-parallel steps across
    the shared elementwise thread pool when the host has more than one
    core; pass ``False`` to force serial replay (results are identical
    either way — chunks are disjoint rows).
    """

    def __init__(self, plan: ExecutionPlan,
                 arena: Optional[BufferArena] = None,
                 parallel: Optional[bool] = None):
        self.plan = plan
        self._arena = arena
        if arena is None:
            self._blob = np.empty(plan.arena_total, np.uint8)
        else:
            self._blob = arena.take(plan.arena_total)
        self._env: List[Optional[np.ndarray]] = [None] * plan.n_slots
        pool = _shared_pool() if parallel in (None, True) else None
        self._pool = pool

        # precompile the program: resolve constants, bind output views
        # into the arena blob, precompute row-chunk bounds
        consts = plan.const_arrays
        prog = []
        for i, step in enumerate(plan.steps):
            spec = plan.slots[step.out]
            out_view = None
            if spec.phys is not None:
                out_view = self._blob[spec.phys:spec.phys + spec.nbytes] \
                    .view(spec.dtype).reshape(spec.shape)
            ins_spec = tuple(ref if tag == "s" else consts[ref]
                             for tag, ref in step.ins)
            if step.scratch:
                # scratch buffers are fixed arena views, appended to the
                # kernel's inputs (fused kernels know their arity)
                ins_spec += tuple(
                    self._blob[plan.slots[s].phys:
                               plan.slots[s].phys + plan.slots[s].nbytes]
                    .view(plan.slots[s].dtype).reshape(plan.slots[s].shape)
                    for s in step.scratch)
            bounds = None
            if pool is not None and step.rowwise \
                    and spec.nbytes >= PARALLEL_MIN_BYTES \
                    and len(spec.shape) >= 2 and spec.shape[0] >= 2:
                axis = step.consts.get("axis", -1)
                if isinstance(axis, int) and axis % len(spec.shape) != 0:
                    n = min(_pool_workers, spec.shape[0])
                    edges = np.linspace(0, spec.shape[0], n + 1, dtype=int)
                    bounds = tuple((int(lo), int(hi)) for lo, hi
                                   in zip(edges[:-1], edges[1:])
                                   if hi > lo)
            prog.append((step.fn, step.out, ins_spec, step.consts,
                         out_view, plan.step_releases[i], bounds,
                         spec.shape))
        self._prog = prog

    def release(self) -> None:
        """Return the arena blob for the next executor."""
        if self._arena is not None and self._blob is not None:
            self._arena.give(self._blob)
        self._blob = None
        self._prog = []
        self._env = []

    def run(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Replay the plan; returns the output arrays (arena views)."""
        plan = self.plan
        env = self._env
        if len(inputs) != len(plan.inputs):
            raise ValueError(
                f"plan expects {len(plan.inputs)} inputs, got {len(inputs)}")
        for sid, arr in zip(plan.inputs, inputs):
            spec = plan.slots[sid]
            if arr.shape != spec.shape or arr.dtype != spec.dtype \
                    or not arr.flags.c_contiguous:
                raise ValueError(
                    f"input slot {sid} expects C-contiguous "
                    f"{spec.shape} {spec.dtype}, got {arr.shape} "
                    f"{arr.dtype} (contiguous={arr.flags.c_contiguous})")
            env[sid] = arr
        pool = self._pool
        for fn, out_slot, ins_spec, consts, out, rel, bounds, shape \
                in self._prog:
            ins = tuple(env[r] if type(r) is int else r for r in ins_spec)
            if bounds is None:
                env[out_slot] = fn(out, ins, consts)
            else:
                env[out_slot] = self._run_chunked(
                    pool, fn, out, ins, consts, bounds, shape)
            for sid in rel:
                env[sid] = None      # fresh/view buffers free like eager
        return [env[s] for s in plan.outputs]

    @staticmethod
    def _run_chunked(pool, fn, out, ins, consts, bounds, shape):
        """Fan a rowwise step over disjoint leading-axis chunks.

        Inputs spanning the output's leading axis (same rank, same
        leading extent — trailing axes may still broadcast) are
        chunked; everything else (biases, leading-broadcast operands,
        lower-rank constants) passes through whole and broadcasts per
        chunk.  Disjoint rows ⇒ bit-identical to the serial call.
        """
        ndim, rows = len(shape), shape[0]
        futures = []
        for lo, hi in bounds:
            o = out[lo:hi] if out is not None else None
            cins = tuple(
                a[lo:hi] if a.ndim == ndim and a.shape[0] == rows else a
                for a in ins)
            futures.append(pool.submit(fn, o, cins, consts))
        for f in futures:
            f.result()
        return out if out is not None else ins[0]


# ----------------------------------------------------------------------
# generic tensor kernels (conv / fused-NN kernels register from their
# owning modules; every kernel reproduces the eager inference NumPy
# expression bit for bit)
# ----------------------------------------------------------------------
def _binary(name, ufunc):
    @register_kernel(name, "compute", rowwise=True)
    def _k(out, ins, consts):
        return ufunc(ins[0], ins[1], out=out)
    return _k


_binary("add", np.add)
_binary("sub", np.subtract)
_binary("mul", np.multiply)
_binary("div", np.true_divide)
_binary("maximum", np.maximum)


def _unary(name, ufunc):
    @register_kernel(name, "compute", rowwise=True)
    def _k(out, ins, consts):
        return ufunc(ins[0], out=out)
    return _k


_unary("neg", np.negative)
_unary("sin", np.sin)
_unary("cos", np.cos)
_unary("exp", np.exp)
_unary("log", np.log)
_unary("sqrt", np.sqrt)
_unary("tanh", np.tanh)
_unary("abs", np.abs)


@register_kernel("pow", "compute", rowwise=True)
def _k_pow(out, ins, consts):
    return np.power(ins[0], consts["exponent"], out=out)


@register_kernel("matmul", "compute")
def _k_matmul(out, ins, consts):
    # never chunked: BLAS blocking must stay identical to the eager call
    return np.matmul(ins[0], ins[1], out=out)


@register_kernel("relu", "compute", rowwise=True)
def _k_relu(out, ins, consts):
    # eager computes x * (x > 0); keep the exact same expression
    return np.multiply(ins[0], ins[0] > 0, out=out)


@register_kernel("clip", "compute", rowwise=True)
def _k_clip(out, ins, consts):
    return np.clip(ins[0], consts["lo"], consts["hi"], out=out)


@register_kernel("sum", "compute")
def _k_sum(out, ins, consts):
    return np.sum(ins[0], axis=consts["axis"],
                  keepdims=consts["keepdims"], out=out)


@register_kernel("max", "fresh")
def _k_max(out, ins, consts):
    axis, keepdims = consts["axis"], consts["keepdims"]
    r = ins[0].max(axis=axis, keepdims=True)
    if keepdims:
        return r
    if axis is None:
        return r.reshape(())
    ax = axis if isinstance(axis, tuple) else (axis,)
    return r.squeeze(axis=ax)


@register_kernel("softmax", "compute", rowwise=True)
def _k_softmax(out, ins, consts):
    a = ins[0]
    p = np.subtract(a, a.max(axis=consts["axis"], keepdims=True), out=out)
    np.exp(p, out=p)
    p /= p.sum(axis=consts["axis"], keepdims=True)
    return p


@register_kernel("reshape", "movement", nonview="compute")
def _k_reshape(out, ins, consts):
    if out is None:
        return ins[0].reshape(consts["shape"])
    # non-view reshape is exactly a C-order copy of the source
    np.copyto(out.reshape(ins[0].shape), ins[0])
    return out


@register_kernel("transpose", "view")
def _k_transpose(out, ins, consts):
    return ins[0].transpose(consts["axes"])


@register_kernel("getitem", "movement")
def _k_getitem(out, ins, consts):
    return ins[0][consts["idx"]]


@register_kernel("pad", "fresh")
def _k_pad(out, ins, consts):
    return np.pad(ins[0], consts["pad_width"], mode="constant",
                  constant_values=consts["value"])


@register_kernel("roll", "compute")
def _k_roll(out, ins, consts):
    x, shift, axis = ins[0], consts["shift"], consts["axis"]
    if out is None:
        return np.roll(x, shift, axis=axis)
    # roll is pure data movement: write the shifted blocks straight
    # into the arena buffer (same elements, same values as np.roll)
    shifts = shift if isinstance(shift, (tuple, list)) else (shift,)
    axes = axis if isinstance(axis, (tuple, list)) else (axis,)
    total: Dict[int, int] = {}
    for s, ax in zip(shifts, axes):
        # np.roll accumulates shifts on a repeated axis
        total[ax % x.ndim] = total.get(ax % x.ndim, 0) + s
    pairs: List[List[Tuple[slice, slice]]] = \
        [[(slice(None), slice(None))] for _ in range(x.ndim)]
    for ax, s in total.items():
        n = x.shape[ax]
        s %= n
        if s != 0:
            # out[s:] = x[:n-s]; out[:s] = x[n-s:]
            pairs[ax] = [(slice(s, None), slice(None, n - s)),
                         (slice(None, s), slice(n - s, None))]
    import itertools
    for combo in itertools.product(*pairs):
        dst = tuple(c[0] for c in combo)
        src = tuple(c[1] for c in combo)
        out[dst] = x[src]
    return out


@register_kernel("concatenate", "compute")
def _k_concatenate(out, ins, consts):
    return np.concatenate(ins, axis=consts["axis"], out=out)


@register_kernel("stack", "compute")
def _k_stack(out, ins, consts):
    return np.stack(ins, axis=consts["axis"], out=out)


@register_kernel("where", "fresh")
def _k_where(out, ins, consts):
    return np.where(ins[0], ins[1], ins[2])


@register_kernel("astype", "fresh")
def _k_astype(out, ins, consts):
    return ins[0].astype(consts["dtype"])


@register_kernel("iadd", "inplace", rowwise=True)
def _k_iadd(out, ins, consts):
    t = ins[0]
    t += ins[1]
    return t


@register_kernel("imul_scalar", "inplace", rowwise=True)
def _k_imul_scalar(out, ins, consts):
    t = ins[0]
    t *= consts["scale"]
    return t
