"""N-dimensional convolution primitives with explicit adjoints.

The surrogate's decoder (paper §III-C) is built from 2-D/3-D transposed
convolutions plus 1×1 convolutions.  Rather than an im2col matmul (which
materialises a huge column matrix for 3-D volumes), the kernels here loop
over the *kernel offsets* — a tiny loop (≤ 5³ iterations) — with every
other dimension fully vectorised.  This follows the hpc-parallel guide's
advice: vectorise the big axes, keep the strides contiguous, and avoid
gratuitous copies.

Layouts
-------
* ``conv_nd``:            x ``(N, C_in, *S)``,  w ``(C_out, C_in, *K)``
* ``conv_transpose_nd``:  x ``(N, C_in, *S)``,  w ``(C_in, C_out, *K)``

which matches the PyTorch convention so the surrogate's weights keep the
same shapes as the paper's reference implementation.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

import numpy as np

from . import plan as _plan
from .tensor import Tensor, astensor, is_grad_enabled

__all__ = ["conv_nd", "conv_transpose_nd", "conv_output_shape",
           "conv_transpose_output_shape"]


def _as_tuple(v, n: int) -> Tuple[int, ...]:
    if isinstance(v, (tuple, list)):
        if len(v) != n:
            raise ValueError(f"expected length-{n} tuple, got {v}")
        return tuple(int(x) for x in v)
    return (int(v),) * n


def conv_output_shape(spatial: Sequence[int], kernel: Sequence[int],
                      stride: Sequence[int], padding: Sequence[int]) -> Tuple[int, ...]:
    """Spatial output shape of a strided, padded correlation."""
    return tuple(
        (s + 2 * p - k) // st + 1
        for s, k, st, p in zip(spatial, kernel, stride, padding)
    )


def conv_transpose_output_shape(spatial: Sequence[int], kernel: Sequence[int],
                                stride: Sequence[int],
                                output_padding: Sequence[int]) -> Tuple[int, ...]:
    """Spatial output shape of a transposed convolution."""
    return tuple(
        (s - 1) * st + k + op
        for s, k, st, op in zip(spatial, kernel, stride, output_padding)
    )


def _fwd_patch(x: np.ndarray, w: np.ndarray, out_sp: Tuple[int, ...],
               out: Optional[np.ndarray] = None) -> np.ndarray:
    """stride == kernel special case: non-overlapping patches.

    Every output site reads one disjoint input patch, so the whole
    correlation collapses to a single GEMM over flattened patches —
    one pass over the input instead of one strided pass per kernel
    offset.  This is the hot path of patch embedding (and, through
    :func:`_grad_input`, patch recovery), where batched inference
    spends most of its time.  With ``out`` (the compiled plan's arena
    buffer) the final interleaving copy lands there instead of a fresh
    allocation — a copy of the same GEMM values either way, so eager
    and replay stay bitwise identical.
    """
    kshape = w.shape[2:]
    N, Ci = x.shape[:2]
    Co = w.shape[0]
    crop = tuple(slice(0, o * k) for o, k in zip(out_sp, kshape))
    xv = x[(slice(None), slice(None)) + crop]
    split = (N, Ci) + tuple(v for ok in zip(out_sp, kshape) for v in ok)
    xv = xv.reshape(split)                      # (N, Ci, o1, k1, …, od, kd)
    nd = len(kshape)
    o_axes = tuple(2 + 2 * i for i in range(nd))
    k_axes = tuple(3 + 2 * i for i in range(nd))
    xv = xv.transpose((0,) + o_axes + (1,) + k_axes)   # (N, o…, Ci, k…)
    xmat = xv.reshape(N, int(np.prod(out_sp)), Ci * int(np.prod(kshape)))
    gemm = xmat @ w.reshape(Co, -1).T           # (N, O, Co)
    if out is None:
        return np.ascontiguousarray(np.moveaxis(gemm, -1, 1)).reshape(
            (N, Co) + tuple(out_sp))
    np.copyto(out.reshape(N, Co, -1), np.moveaxis(gemm, -1, 1))
    return out


def _fwd(x: np.ndarray, w: np.ndarray, stride: Tuple[int, ...]) -> np.ndarray:
    """Correlation: out[n,co,o] = sum_{ci,k} w[co,ci,k] x[n,ci,o*s+k]."""
    nd = x.ndim - 2
    kshape = w.shape[2:]
    out_sp = conv_output_shape(x.shape[2:], kshape, stride, (0,) * nd)
    if tuple(stride) == tuple(kshape):
        return _fwd_patch(x, w, out_sp)
    out = np.zeros((x.shape[0], w.shape[0]) + out_sp, dtype=np.result_type(x, w))
    for koff in itertools.product(*[range(k) for k in kshape]):
        sl = tuple(
            slice(k0, k0 + st * o, st) for k0, st, o in zip(koff, stride, out_sp)
        )
        xs = x[(slice(None), slice(None)) + sl]
        wk = w[(slice(None), slice(None)) + koff]  # (Co, Ci)
        out += np.einsum("nc...,oc->no...", xs, wk, optimize=True)
    return out


def _grad_input_patch(gout: np.ndarray, w: np.ndarray,
                      in_spatial: Tuple[int, ...],
                      out: Optional[np.ndarray] = None) -> np.ndarray:
    """stride == kernel adjoint: one GEMM + one interleaving copy.

    Each input patch receives gradient from exactly one output site, so
    the scatter collapses to ``gout @ w`` followed by reshaping the
    kernel axes back between the spatial axes — two passes over the
    (large, full-resolution) result instead of one per kernel offset.
    ``out`` as in :func:`_fwd_patch`: same values, arena-placed.
    """
    kshape = w.shape[2:]
    out_sp = gout.shape[2:]
    N, Co = gout.shape[:2]
    Ci = w.shape[1]
    nd = len(kshape)
    gmat = np.moveaxis(gout, 1, -1).reshape(N, int(np.prod(out_sp)), Co)
    gx = gmat @ w.reshape(Co, -1)               # (N, O, Ci·K)
    gx = gx.reshape((N,) + tuple(out_sp) + (Ci,) + tuple(kshape))
    o_axes = tuple(1 + i for i in range(nd))
    k_axes = tuple(2 + nd + i for i in range(nd))
    perm = (0, 1 + nd) + tuple(v for ok in zip(o_axes, k_axes) for v in ok)
    gx = gx.transpose(perm)                     # (N, Ci, o1, k1, …, od, kd)
    if out is None:
        return np.ascontiguousarray(gx).reshape(
            (N, Ci) + tuple(o * k for o, k in zip(out_sp, kshape)))
    np.copyto(out.reshape((N, Ci) + tuple(
        v for ok in zip(out_sp, kshape) for v in ok)), gx)
    return out


def _grad_input(gout: np.ndarray, w: np.ndarray, in_spatial: Tuple[int, ...],
                stride: Tuple[int, ...]) -> np.ndarray:
    """Adjoint of :func:`_fwd` w.r.t. its input (also = transposed conv)."""
    kshape = w.shape[2:]
    out_sp = gout.shape[2:]
    if tuple(stride) == tuple(kshape) and tuple(in_spatial) == tuple(
            o * k for o, k in zip(out_sp, kshape)):
        return _grad_input_patch(gout, w, in_spatial)
    gx = np.zeros(
        (gout.shape[0], w.shape[1]) + tuple(in_spatial),
        dtype=np.result_type(gout, w),
    )
    for koff in itertools.product(*[range(k) for k in kshape]):
        sl = tuple(
            slice(k0, k0 + st * o, st) for k0, st, o in zip(koff, stride, out_sp)
        )
        wk = w[(slice(None), slice(None)) + koff]  # (Co, Ci)
        gx[(slice(None), slice(None)) + sl] += np.einsum(
            "no...,oc->nc...", gout, wk, optimize=True
        )
    return gx


def _grad_weight(gout: np.ndarray, x: np.ndarray, kshape: Tuple[int, ...],
                 stride: Tuple[int, ...]) -> np.ndarray:
    """Adjoint of :func:`_fwd` w.r.t. the weight."""
    out_sp = gout.shape[2:]
    gw = np.zeros(
        (gout.shape[1], x.shape[1]) + tuple(kshape),
        dtype=np.result_type(gout, x),
    )
    for koff in itertools.product(*[range(k) for k in kshape]):
        sl = tuple(
            slice(k0, k0 + st * o, st) for k0, st, o in zip(koff, stride, out_sp)
        )
        xs = x[(slice(None), slice(None)) + sl]
        gw[(slice(None), slice(None)) + koff] = np.einsum(
            "no...,nc...->oc", gout, xs, optimize=True
        )
    return gw


def conv_nd(x: Tensor, w: Tensor, b: Optional[Tensor] = None,
            stride=1, padding=0) -> Tensor:
    """N-d strided correlation (a "convolution" in NN parlance).

    Parameters
    ----------
    x: ``(N, C_in, *S)`` input.
    w: ``(C_out, C_in, *K)`` kernel.
    b: optional ``(C_out,)`` bias.
    stride, padding: ints or per-axis tuples over the spatial dims.
    """
    x, w = astensor(x), astensor(w)
    nd = x.data.ndim - 2
    stride = _as_tuple(stride, nd)
    padding = _as_tuple(padding, nd)
    if _plan.tracing():
        ins = (x, w) if b is None else (x, w, astensor(b))
        return _plan.trace_apply("conv_nd", ins,
                                 {"stride": stride, "padding": padding})
    xd = x.data
    if any(padding):
        pw = ((0, 0), (0, 0)) + tuple((p, p) for p in padding)
        xd = np.pad(xd, pw)
    out_data = _fwd(xd, w.data, stride)
    if b is not None:
        b = astensor(b)
        out_data = out_data + b.data.reshape((1, -1) + (1,) * nd)

    parents = (x, w) if b is None else (x, w, b)
    rg = is_grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(out_data)
    out.requires_grad = rg
    if rg:
        out._parents = parents
        xd_saved, wd_saved = xd, w.data
        kshape = w.data.shape[2:]

        def _bw(g):
            g = np.asarray(g)
            if x.requires_grad:
                gx = _grad_input(g, wd_saved, xd_saved.shape[2:], stride)
                if any(padding):
                    sl = (slice(None), slice(None)) + tuple(
                        slice(p, s - p) for p, s in zip(padding, gx.shape[2:])
                    )
                    gx = gx[sl]
                x._accum(gx)
            if w.requires_grad:
                w._accum(_grad_weight(g, xd_saved, kshape, stride))
            if b is not None and b.requires_grad:
                b._accum(g.sum(axis=(0,) + tuple(range(2, g.ndim))))

        out._backward = _bw
    return out


def conv_transpose_nd(x: Tensor, w: Tensor, b: Optional[Tensor] = None,
                      stride=1, output_padding=0) -> Tensor:
    """N-d transposed convolution (fractionally-strided upsampling).

    Parameters
    ----------
    x: ``(N, C_in, *S)`` input.
    w: ``(C_in, C_out, *K)`` kernel (PyTorch ConvTranspose layout).
    b: optional ``(C_out,)`` bias.
    stride: upsampling factor per axis.
    output_padding: extra trailing zeros per axis, to hit exact sizes.
    """
    x, w = astensor(x), astensor(w)
    nd = x.data.ndim - 2
    stride = _as_tuple(stride, nd)
    output_padding = _as_tuple(output_padding, nd)
    if _plan.tracing():
        ins = (x, w) if b is None else (x, w, astensor(b))
        return _plan.trace_apply(
            "conv_transpose_nd", ins,
            {"stride": stride, "output_padding": output_padding})
    kshape = w.data.shape[2:]
    out_sp = conv_transpose_output_shape(x.data.shape[2:], kshape, stride,
                                         output_padding)
    # Forward of transposed conv == input-gradient of the forward conv,
    # with x playing the role of the output gradient.
    core_sp = tuple(o - op for o, op in zip(out_sp, output_padding))
    out_data = _grad_input(x.data, w.data, core_sp, stride)
    if any(output_padding):
        pw = ((0, 0), (0, 0)) + tuple((0, p) for p in output_padding)
        out_data = np.pad(out_data, pw)
    if b is not None:
        b = astensor(b)
        out_data = out_data + b.data.reshape((1, -1) + (1,) * nd)

    parents = (x, w) if b is None else (x, w, b)
    rg = is_grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(out_data)
    out.requires_grad = rg
    if rg:
        out._parents = parents
        xd_saved, wd_saved = x.data, w.data

        def _bw(g):
            g = np.asarray(g)
            if any(output_padding):
                sl = (slice(None), slice(None)) + tuple(
                    slice(0, s - p) for s, p in zip(g.shape[2:], output_padding)
                )
                g_core = g[sl]
            else:
                g_core = g
            if x.requires_grad:
                # adjoint of _grad_input w.r.t. gout is the forward conv
                x._accum(_fwd(g_core, wd_saved, stride))
            if w.requires_grad:
                # gw[ci, co, k] = sum_{n,o} x[n,ci,o] * g[n,co,o*s+k]
                w._accum(_grad_weight(xd_saved, g_core, kshape, stride))
            if b is not None and b.requires_grad:
                b._accum(g.sum(axis=(0,) + tuple(range(2, g.ndim))))

        out._backward = _bw
    return out


# ----------------------------------------------------------------------
# plan kernels — byte-for-byte the eager expressions above (the very
# same functions run both paths), so traced replays of the conv-GEMM
# fast paths are bitwise identical.  With a preallocated ``out`` the
# final interleaving copy of the patch GEMM lands directly in the
# arena buffer.
# ----------------------------------------------------------------------
@_plan.register_kernel("conv_nd", "compute")
def _k_conv_nd(out, ins, consts):
    x, w = ins[0], ins[1]
    stride, padding = consts["stride"], consts["padding"]
    nd = x.ndim - 2
    if any(padding):
        pw = ((0, 0), (0, 0)) + tuple((p, p) for p in padding)
        x = np.pad(x, pw)
    kshape = w.shape[2:]
    out_sp = conv_output_shape(x.shape[2:], kshape, stride, (0,) * nd)
    if out is None:
        r = _fwd(x, w, stride)
        if len(ins) > 2:
            r = r + ins[2].reshape((1, -1) + (1,) * nd)
        return r
    if tuple(stride) == tuple(kshape):
        _fwd_patch(x, w, out_sp, out)
    else:
        np.copyto(out, _fwd(x, w, stride))
    if len(ins) > 2:
        out += ins[2].reshape((1, -1) + (1,) * nd)
    return out


@_plan.register_kernel("conv_transpose_nd", "compute")
def _k_conv_transpose_nd(out, ins, consts):
    x, w = ins[0], ins[1]
    stride = consts["stride"]
    output_padding = consts["output_padding"]
    nd = x.ndim - 2
    kshape = w.shape[2:]
    out_sp = conv_transpose_output_shape(x.shape[2:], kshape, stride,
                                         output_padding)
    core_sp = tuple(o - op for o, op in zip(out_sp, output_padding))
    if out is None or any(output_padding):
        r = _grad_input(x, w, core_sp, stride)
        if any(output_padding):
            pw = ((0, 0), (0, 0)) + tuple((0, p) for p in output_padding)
            r = np.pad(r, pw)
        if len(ins) > 2:
            r = r + ins[2].reshape((1, -1) + (1,) * nd)
        if out is not None:
            np.copyto(out, r)
            return out
        return r
    if tuple(stride) == tuple(kshape) and tuple(core_sp) == tuple(
            o * k for o, k in zip(x.shape[2:], kshape)):
        _grad_input_patch(x, w, core_sp, out)
    else:
        np.copyto(out, _grad_input(x, w, core_sp, stride))
    if len(ins) > 2:
        out += ins[2].reshape((1, -1) + (1,) * nd)
    return out
