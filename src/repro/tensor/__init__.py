"""NumPy-backed reverse-mode autodiff engine.

Public surface:

* :class:`Tensor` — array + gradient tape node.
* :func:`concatenate`, :func:`stack`, :func:`where` — multi-input ops.
* :func:`conv_nd`, :func:`conv_transpose_nd` — N-d convolution kernels.
* :func:`no_grad` / :func:`enable_grad` — thread-local gradient switch
  (inference mode, and its inverse for backward passes on serving
  threads).
* :func:`gradcheck` / :func:`numerical_grad` — finite-difference
  verification (see ``docs/differentiation.md``).
* :mod:`~repro.tensor.plan` — compiled inference plans: :func:`trace`
  captures a forward as an :class:`ExecutionPlan`; a
  :class:`PlanExecutor` replays it allocation-free on raw arrays.
* :mod:`~repro.tensor.plan_passes` — plan-IR optimisation:
  :func:`optimize` (peephole fusion + folding + dead-step
  elimination), :func:`plan_buckets` (batch-shape bucketing policy),
  :func:`cast_plan` (tolerance-gated reduced-precision variants).
"""

from .plan import (
    BufferArena,
    ExecutionPlan,
    PlanExecutor,
    TraceError,
    trace,
    tracing,
)
from .plan_passes import (
    cast_plan,
    optimize,
    plan_buckets,
    plan_buckets_from_histogram,
)
from .tensor import (
    Tensor,
    astensor,
    concatenate,
    enable_grad,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
    stack,
    unbroadcast,
    where,
)
from .ops_conv import (
    conv_nd,
    conv_output_shape,
    conv_transpose_nd,
    conv_transpose_output_shape,
)
from .gradcheck import gradcheck, numerical_grad

__all__ = [
    "Tensor",
    "astensor",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "unbroadcast",
    "conv_nd",
    "conv_transpose_nd",
    "conv_output_shape",
    "conv_transpose_output_shape",
    "gradcheck",
    "numerical_grad",
    "BufferArena",
    "ExecutionPlan",
    "PlanExecutor",
    "TraceError",
    "trace",
    "tracing",
    "plan_buckets",
    "plan_buckets_from_histogram",
    "optimize",
    "cast_plan",
]
