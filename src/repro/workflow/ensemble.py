"""Ensemble uncertainty quantification (paper §V future work).

The paper's conclusion names an "uncertainty quantification module for
the AI surrogate" as future work and motivates the speed of the
surrogate with "an ensemble of tens of thousands of models for
uncertainty quantification" (§I).  This module implements the standard
initial-condition-perturbation ensemble on top of the forecaster: N
surrogate episodes from perturbed ICs give a per-cell forecast mean,
spread (standard deviation), and exceedance probabilities — the
quantities an early-warning system consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .forecast import FieldWindow, SurrogateForecaster

__all__ = ["EnsembleForecast", "EnsembleForecaster"]


@dataclass
class EnsembleForecast:
    """Statistics of an N-member surrogate ensemble."""

    members: List[FieldWindow]
    mean: FieldWindow
    spread: FieldWindow          # per-cell std over members
    inference_seconds: float

    @property
    def n_members(self) -> int:
        return len(self.members)

    def exceedance_probability(self, zeta_level: float) -> np.ndarray:
        """P(ζ > level) per (T, H, W) cell — the early-warning product."""
        stack = np.stack([m.zeta for m in self.members])   # (N, T, H, W)
        return (stack > zeta_level).mean(axis=0)


class EnsembleForecaster:
    """Initial-condition-perturbation ensemble around one surrogate.

    Parameters
    ----------
    forecaster: any batch executor — an object with
        ``forecast_batch(windows) -> list[ForecastResult]``.  Direct
        callers pass a :class:`SurrogateForecaster` (or the engine
        itself); a serving deployment injects a
        :class:`~repro.serve.scheduler.MicroBatchScheduler`, which
        shards the members across its micro-batches.  Both routes run
        the same code.
    n_members: ensemble size (member 0 is always unperturbed).
    zeta_sigma, velocity_sigma: IC perturbation scales [m], [m/s] —
        calibrate to the analysis uncertainty of the operational system.
    seed: RNG seed; the ensemble is fully reproducible.
    """

    def __init__(self, forecaster: "SurrogateForecaster",
                 n_members: int = 8, zeta_sigma: float = 0.02,
                 velocity_sigma: float = 0.02, seed: int = 0):
        if n_members < 2:
            raise ValueError("an ensemble needs at least 2 members")
        self.forecaster = forecaster
        self.n_members = n_members
        self.zeta_sigma = zeta_sigma
        self.velocity_sigma = velocity_sigma
        self.seed = seed

    # ------------------------------------------------------------------
    def _perturbed(self, reference: FieldWindow, member: int,
                   wet: Optional[np.ndarray]) -> FieldWindow:
        if member == 0:
            return reference
        rng = np.random.default_rng(self.seed + member)
        ref = reference.copy()
        zp = rng.normal(0.0, self.zeta_sigma, size=ref.zeta[0].shape)
        up = rng.normal(0.0, self.velocity_sigma, size=ref.u3[0].shape)
        vp = rng.normal(0.0, self.velocity_sigma, size=ref.v3[0].shape)
        if wet is not None:
            zp[~wet] = 0.0
            up[~wet] = 0.0
            vp[~wet] = 0.0
        # perturb the initial condition only; boundary slots untouched
        ref.zeta[0] += zp
        ref.u3[0] += up
        ref.v3[0] += vp
        return ref

    def forecast(self, reference: FieldWindow,
                 wet: Optional[np.ndarray] = None) -> EnsembleForecast:
        """Run the ensemble for one episode.

        All N members go through the injected executor's
        ``forecast_batch``: one batched model forward when driven
        directly, scheduler micro-batches when served.
        """
        perturbed = [self._perturbed(reference, m, wet)
                     for m in range(self.n_members)]
        outs = self.forecaster.forecast_batch(perturbed)
        members: List[FieldWindow] = [o.fields for o in outs]
        seconds = sum(o.inference_seconds for o in outs)

        def stat(fn):
            return FieldWindow(
                fn(np.stack([m.u3 for m in members]), axis=0),
                fn(np.stack([m.v3 for m in members]), axis=0),
                fn(np.stack([m.w3 for m in members]), axis=0),
                fn(np.stack([m.zeta for m in members]), axis=0),
            )

        return EnsembleForecast(
            members=members,
            mean=stat(np.mean),
            spread=stat(np.std),
            inference_seconds=seconds,
        )
