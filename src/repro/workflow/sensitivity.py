"""Differentiable diagnostics and storm-forcing overlays (adjoint tier).

This module holds everything the gradient-serving path needs besides the
engine itself:

* :data:`DIAGNOSTICS` — scalar reductions of a forecast surge window
  (peak surge, mean surge, misfit against observations) written in
  :class:`~repro.tensor.Tensor` ops so they are differentiable, but
  equally callable on plain arrays for finite-difference reference runs.
* :class:`StormOverlay` — a differentiable re-expression of the
  :class:`~repro.ocean.storm.ParametricCyclone` Holland profile as
  additive wind/surge increments on a :class:`FieldWindow`, with one
  code path serving both the numpy forward (``apply``) and the autograd
  graph (``increments``) so autograd and finite differences see the
  *same* function.
* :class:`GradientRequest` / :class:`SensitivityResult` — the request
  and response payloads routed by the serving tier
  (:meth:`repro.serve.server.ForecastServer.submit_sensitivity`).

The engine-side backward pass lives in
:meth:`repro.workflow.engine.ForecastEngine.sensitivity_batch`; the
methodology and knobs are documented in ``docs/differentiation.md``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..tensor import Tensor, astensor, stack
from .engine import FieldWindow

__all__ = [
    "DIAGNOSTICS",
    "GRAVITY",
    "STORM_PARAMS",
    "GradientRequest",
    "SensitivityResult",
    "StormOverlay",
    "evaluate_diagnostic",
]

GRAVITY = 9.81  # m/s² — matches the SWE solver's gravitational constant.

#: Storm-overlay fields exposed as differentiable parameters, in the
#: order their gradients are reported in ``SensitivityResult.d_storm``.
STORM_PARAMS = (
    "x0",
    "y0",
    "max_wind",
    "radius_max_wind",
    "central_pressure_drop",
    "inflow_angle_rad",
)


# ---------------------------------------------------------------------------
# scalar diagnostics
# ---------------------------------------------------------------------------

def _forecast_slab(zeta: Tensor) -> Tensor:
    """Drop the initial-condition slot and flatten per episode.

    ``zeta`` is (N, T, H, W); slot 0 is the (exactly restored) initial
    condition, which carries no model sensitivity — diagnostics reduce
    over the *forecast* steps ``1..T-1`` only.
    """
    n = zeta.shape[0]
    return zeta[:, 1:].reshape((n, -1))


def _peak_surge(zeta: Tensor, observation: Optional[Tensor]) -> Tensor:
    """Per-episode maximum surge height over the forecast window [m]."""
    return _forecast_slab(zeta).max(axis=1)


def _mean_surge(zeta: Tensor, observation: Optional[Tensor]) -> Tensor:
    """Per-episode mean surge height over the forecast window [m]."""
    return _forecast_slab(zeta).mean(axis=1)


def _surge_mse(zeta: Tensor, observation: Optional[Tensor]) -> Tensor:
    """Mean squared misfit against an observed surge window [m²].

    The assimilation cost function: ``observation`` must broadcast to
    ``zeta``'s (N, T, H, W); its forecast steps are compared pointwise.
    """
    if observation is None:
        raise ValueError("diagnostic 'surge_mse' requires an observation")
    diff = _forecast_slab(zeta) - _forecast_slab(observation)
    return (diff * diff).mean(axis=1)


#: Registry of scalar diagnostics: name -> fn(zeta, observation) -> (N,)
#: per-episode values.  All are written in Tensor ops so the same
#: callable serves the backward pass and the FD reference evaluation.
DIAGNOSTICS = {
    "peak_surge": _peak_surge,
    "mean_surge": _mean_surge,
    "surge_mse": _surge_mse,
}


def evaluate_diagnostic(name: str, zeta: np.ndarray,
                        observation: Optional[np.ndarray] = None
                        ) -> np.ndarray:
    """Evaluate a registered diagnostic on plain arrays (no graph).

    The numpy reference used by finite-difference validation and by the
    benchmarks: wraps the arrays in graph-free Tensors, applies the same
    registered reduction, and returns the per-episode values as a
    float64 array of shape (N,).
    """
    if name not in DIAGNOSTICS:
        raise ValueError(
            f"unknown diagnostic {name!r}; expected one of "
            f"{sorted(DIAGNOSTICS)}")
    obs = None if observation is None else astensor(np.asarray(observation))
    out = DIAGNOSTICS[name](astensor(np.asarray(zeta)), obs)
    return np.asarray(out.data, dtype=np.float64)


# ---------------------------------------------------------------------------
# differentiable storm-forcing overlay
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StormOverlay:
    """Differentiable Holland-cyclone increments over a field window.

    Re-expresses :class:`~repro.ocean.storm.ParametricCyclone` (same
    parameter names, units, and sign conventions) as *additive
    increments* to an existing :class:`FieldWindow`, so a storm
    hypothesis can be overlaid on any reference window and its
    parameters calibrated by gradient descent.  The wind field follows
    the Holland (1980) radial profile with B = 1.4 and the surge
    increment is the static inverse-barometer response
    ``Δζ = Δp·(1 − exp(−(r_mw/r)^B)) / (ρ_w g)``.

    Differentiable parameters (see :data:`STORM_PARAMS`):

    * ``x0``, ``y0`` — storm-centre position at window start [m,
      grid coordinates; +x east / +y north].
    * ``max_wind`` — peak gradient wind speed [m/s, ≥ 0].
    * ``radius_max_wind`` — radius of maximum winds [m, > 0].
    * ``central_pressure_drop`` — ambient minus central pressure
      [Pa, ≥ 0]; larger drop ⇒ deeper storm ⇒ higher surge.
    * ``inflow_angle_rad`` — cross-isobar inflow rotation [rad,
      positive rotates the cyclonic wind inward].

    Fixed (non-differentiated) geometry:

    * ``vx``, ``vy`` — translation velocity [m/s].
    * ``spacing`` — grid spacing ``(dy, dx)`` [m].
    * ``dt`` — time between window slots [s].
    * ``wind_coupling`` — fraction of the 10 m wind imprinted on the
      surface current (the ~3 % rule of thumb).
    * ``depth_efold`` — e-folding depth, in vertical *levels*, of the
      wind-driven current.

    Two smoothing choices diverge (deliberately) from the numpy
    :class:`ParametricCyclone`: the radius uses a smooth grid-scale
    floor ``r = sqrt(dx² + dy² + r₀²)`` instead of a hard
    ``maximum(r, ε)``, and the profile is algebraically rearranged to
    ``V(r) = V_max · (r_mw/r)^0.7 · exp((1 − (r_mw/r)^B)/2)`` so no
    ``sqrt`` is taken of a quantity that underflows to zero near the
    domain edge — both keep the overlay C¹ everywhere, which central
    finite differences (and gradient descent) require.
    """

    x0: float
    y0: float
    vx: float = 5.0
    vy: float = 0.0
    max_wind: float = 30.0
    radius_max_wind: float = 25_000.0
    central_pressure_drop: float = 4_000.0
    inflow_angle_rad: float = 0.35
    spacing: Tuple[float, float] = (1000.0, 1000.0)
    dt: float = 3600.0
    wind_coupling: float = 0.03
    depth_efold: float = 2.0

    HOLLAND_B = 1.4
    RHO_WATER = 1025.0  # kg/m³ — matches repro.ocean.storm.RHO_WATER

    def params(self) -> Dict[str, float]:
        """The differentiable parameters as a plain name -> float dict."""
        return {name: float(getattr(self, name)) for name in STORM_PARAMS}

    def replace(self, **updates: float) -> "StormOverlay":
        """Return a copy with the given parameters replaced."""
        return dataclasses.replace(self, **updates)

    def increments(self, params: Dict[str, Tensor],
                   time_steps: int, mesh: Tuple[int, int], depth: int
                   ) -> Tuple[Tensor, Tensor, Tensor]:
        """Build the (du3, dv3, dzeta) increment graph from Tensor params.

        ``params`` maps each :data:`STORM_PARAMS` name to a 0-d Tensor
        (typically ``requires_grad=True`` during a backward pass).
        Returns Tensors of shapes (T, H, W, D), (T, H, W, D) and
        (T, H, W): depth-decaying wind-driven current increments for u/v
        and the inverse-barometer surge increment for ζ.
        """
        h, w = mesh
        dy, dx = self.spacing
        yg = astensor(np.arange(h, dtype=np.float64)[:, None] * dy)
        xg = astensor(np.arange(w, dtype=np.float64)[None, :] * dx)
        # smooth radius floor at grid scale keeps r (and 1/r) C¹ at the eye
        r_floor_sq = float(dx * dx + dy * dy)

        cosa = params["inflow_angle_rad"].cos()
        sina = params["inflow_angle_rad"].sin()
        v_max = params["max_wind"]
        r_mw = params["radius_max_wind"]
        dp = params["central_pressure_drop"]

        du_t, dv_t, dz_t = [], [], []
        for k in range(time_steps):
            t = k * self.dt
            dxf = xg - (params["x0"] + self.vx * t)
            dyf = yg - (params["y0"] + self.vy * t)
            r = (dxf * dxf + dyf * dyf + r_floor_sq).sqrt()
            ratio = r_mw / r
            r_b = ratio ** self.HOLLAND_B
            # V(r) = V_max · sqrt(ratio^B · exp(1 − ratio^B)), rearranged
            # so nothing underflows under a sqrt (see class docstring)
            speed = v_max * ratio ** (self.HOLLAND_B / 2.0) \
                * ((1.0 - r_b) * 0.5).exp()
            # unit direction of (cyclonic + inflow-rotated) wind without
            # arctan2: cos(θ+π/2+α), sin(θ+π/2+α) expanded with
            # cosθ = dx/r, sinθ = dy/r
            wu = speed * (-(dyf * cosa + dxf * sina) / r)
            wv = speed * ((dxf * cosa - dyf * sina) / r)
            dz = dp * (1.0 - (-r_b).exp()) \
                * (1.0 / (self.RHO_WATER * GRAVITY))
            du_t.append(wu * self.wind_coupling)
            dv_t.append(wv * self.wind_coupling)
            dz_t.append(dz)

        du2 = stack(du_t, axis=0)   # (T, H, W) surface current increment
        dv2 = stack(dv_t, axis=0)
        dzeta = stack(dz_t, axis=0)
        decay = astensor(np.exp(-np.arange(depth, dtype=np.float64)
                                / self.depth_efold))
        du3 = du2.reshape((time_steps, h, w, 1)) * decay
        dv3 = dv2.reshape((time_steps, h, w, 1)) * decay
        return du3, dv3, dzeta

    def tensor_params(self, requires_grad: bool = False
                      ) -> Dict[str, Tensor]:
        """The differentiable parameters as 0-d float64 Tensors."""
        return {
            name: Tensor(np.asarray(float(getattr(self, name)),
                                    dtype=np.float64),
                         requires_grad=requires_grad)
            for name in STORM_PARAMS
        }

    def apply(self, window: FieldWindow) -> FieldWindow:
        """Overlay the storm on a reference window (numpy forward).

        Runs the *same* increment construction as :meth:`increments`
        (graph-free) and returns a new :class:`FieldWindow` with the
        increments added — the composition the engine differentiates.
        """
        t, h, w, d = window.u3.shape
        du3, dv3, dzeta = self.increments(self.tensor_params(), t, (h, w), d)
        return FieldWindow(
            u3=window.u3 + du3.data,
            v3=window.v3 + dv3.data,
            w3=window.w3.copy(),
            zeta=window.zeta + dzeta.data,
        )


# ---------------------------------------------------------------------------
# request / response payloads
# ---------------------------------------------------------------------------

_VALID_WRT = ("fields", "storm")


@dataclass(frozen=True)
class GradientRequest:
    """A served sensitivity query: differentiate a diagnostic of one window.

    Parameters
    ----------
    window: the reference :class:`FieldWindow` (pre-normalisation,
        physical units).  When ``storm`` is set, the served engine
        overlays ``storm.apply(window)`` before forecasting so storm
        parameters remain upstream of the forward pass.
    diagnostic: a :data:`DIAGNOSTICS` name reduced over the forecast
        steps of the predicted surge.
    wrt: subset of ``("fields", "storm")`` — which sensitivities to
        compute.  ``"fields"`` returns a :class:`FieldWindow` of
        ∂J/∂(input fields); ``"storm"`` returns ∂J/∂θ for each
        :data:`STORM_PARAMS` entry and requires ``storm``.
    observation: observed surge (T, H, W), required by ``surge_mse``.
    storm: optional :class:`StormOverlay` hypothesis.
    """

    window: FieldWindow
    diagnostic: str = "peak_surge"
    wrt: Tuple[str, ...] = ("fields",)
    observation: Optional[np.ndarray] = None
    storm: Optional[StormOverlay] = None

    def __post_init__(self):
        wrt = tuple(self.wrt)
        object.__setattr__(self, "wrt", wrt)
        if not wrt:
            raise ValueError("GradientRequest.wrt must not be empty")
        bad = [w for w in wrt if w not in _VALID_WRT]
        if bad:
            raise ValueError(
                f"unknown wrt targets {bad}; expected subset of "
                f"{_VALID_WRT}")
        if self.diagnostic not in DIAGNOSTICS:
            raise ValueError(
                f"unknown diagnostic {self.diagnostic!r}; expected one "
                f"of {sorted(DIAGNOSTICS)}")
        if self.diagnostic == "surge_mse" and self.observation is None:
            raise ValueError(
                "diagnostic 'surge_mse' requires an observation window")
        if "storm" in wrt and self.storm is None:
            raise ValueError(
                "wrt='storm' requires a StormOverlay on the request")


@dataclass
class SensitivityResult:
    """Gradients of one episode's diagnostic (see :class:`GradientRequest`).

    ``value`` is the diagnostic itself (from the differentiable
    forward); ``d_fields``/``d_storm`` are populated per the request's
    ``wrt``.  ``d_fields`` is a :class:`FieldWindow` holding
    ∂J/∂(u3, v3, w3, ζ) in physical units — gradients have flowed back
    through denormalisation, the model, normalisation, padding and the
    boundary-rim assembly mask.  ``d_storm`` maps each
    :data:`STORM_PARAMS` name to ∂J/∂θ.
    """

    value: float
    diagnostic: str
    wrt: Tuple[str, ...]
    d_fields: Optional[FieldWindow] = None
    d_storm: Optional[Dict[str, float]] = None
    backward_seconds: float = 0.0
    episodes: int = 1
    engine_version: Optional[int] = None

    def copy(self) -> "SensitivityResult":
        """Deep copy (cache isolation — mirrors ForecastResult copies)."""
        return SensitivityResult(
            value=self.value,
            diagnostic=self.diagnostic,
            wrt=tuple(self.wrt),
            d_fields=None if self.d_fields is None else self.d_fields.copy(),
            d_storm=None if self.d_storm is None else dict(self.d_storm),
            backward_seconds=self.backward_seconds,
            episodes=self.episodes,
            engine_version=self.engine_version,
        )

    def nbytes(self) -> int:
        """Approximate payload size (cache accounting)."""
        total = 64
        if self.d_fields is not None:
            for arr in (self.d_fields.u3, self.d_fields.v3,
                        self.d_fields.w3, self.d_fields.zeta):
                total += int(arr.nbytes)
        if self.d_storm is not None:
            total += 16 * len(self.d_storm)
        return total
