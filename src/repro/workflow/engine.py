"""Batched forecast engine: the vectorised inference core.

Every consumer of the surrogate — single-episode forecasts, ensemble
uncertainty quantification, dual-model rollouts, multi-scenario hybrid
serving — ultimately needs the same five steps: normalisation, mesh
padding, episode assembly, the model forward, and denormalisation +
cropping.  :class:`ForecastEngine` runs all five vectorised over a
leading batch axis in a single pass, so N episodes cost one model
forward instead of N.  The paper motivates exactly this regime: "an
ensemble of tens of thousands of models for uncertainty
quantification" (§I) is only affordable when members share a forward.

:class:`~repro.workflow.forecast.SurrogateForecaster` keeps its
one-episode API as the batch-1 special case of this engine.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import _rim_mask, assemble_episode_input_batch
from ..data.preprocess import Normalizer, pad_mesh
from ..swin.model import CoastalSurrogate
from ..tensor import BufferArena, PlanExecutor, Tensor, enable_grad, no_grad
from ..tensor import plan as _plan
from ..tensor import plan_passes as _passes

__all__ = ["FieldWindow", "ForecastResult", "CompiledForward",
           "ForecastEngine", "PlanAccuracyError"]


class PlanAccuracyError(RuntimeError):
    """A reduced-precision plan variant failed its accuracy gate.

    Raised by :meth:`ForecastEngine.compile_reduced` when the variant's
    forecast errors against the bitwise path exceed the tolerance; the
    failing variant is **not** installed, so serving keeps running on
    the exact plan."""


@dataclass
class FieldWindow:
    """A window of physical fields (denormalised, unpadded).

    ``u3, v3, w3``: (T, H, W, D); ``zeta``: (T, H, W).
    """

    u3: np.ndarray
    v3: np.ndarray
    w3: np.ndarray
    zeta: np.ndarray

    @property
    def T(self) -> int:
        return self.zeta.shape[0]

    def snapshot(self, t: int) -> "FieldWindow":
        """Single-snapshot view (T = 1)."""
        return FieldWindow(self.u3[t:t + 1], self.v3[t:t + 1],
                           self.w3[t:t + 1], self.zeta[t:t + 1])

    def copy(self) -> "FieldWindow":
        return FieldWindow(self.u3.copy(), self.v3.copy(),
                           self.w3.copy(), self.zeta.copy())

    @staticmethod
    def concat(windows: Sequence["FieldWindow"]) -> "FieldWindow":
        """Concatenate windows along time; meshes must match exactly."""
        windows = list(windows)
        if not windows:
            raise ValueError("FieldWindow.concat: no windows to concatenate")
        base = windows[0]
        for i, w in enumerate(windows[1:], start=1):
            for var in ("u3", "v3", "w3", "zeta"):
                got = getattr(w, var).shape[1:]
                want = getattr(base, var).shape[1:]
                if got != want:
                    raise ValueError(
                        "FieldWindow.concat: windows must share one mesh; "
                        f"window {i} has {var} mesh {got} != {want}")
        return FieldWindow(
            np.concatenate([w.u3 for w in windows], axis=0),
            np.concatenate([w.v3 for w in windows], axis=0),
            np.concatenate([w.w3 for w in windows], axis=0),
            np.concatenate([w.zeta for w in windows], axis=0),
        )


@dataclass
class ForecastResult:
    """Forecast plus bookkeeping.

    ``inference_seconds`` of episodes that shared a batched forward is
    the batch wall-clock split evenly, so sums over results remain the
    total time actually spent in the model.
    """

    fields: FieldWindow
    inference_seconds: float
    episodes: int = 1
    #: whether the forward replayed a compiled plan (bitwise-identical
    #: to the eager path either way)
    compiled: bool = False
    #: batch size of the plan that served this result — equal to the
    #: request batch on an exact hit, larger when a partial batch was
    #: padded into a bucket, ``None`` on the eager path
    plan_batch: Optional[int] = None
    #: engine version that produced this result when served through a
    #: versioned pool (:class:`~repro.serve.pool.EngineWorkerPool`);
    #: ``None`` for direct engine calls
    engine_version: Optional[int] = None
    #: whether a tolerance-gated reduced-precision plan variant served
    #: this result (only possible with ``serve_reduced`` routing on;
    #: such results are accuracy-gated, not bitwise)
    reduced: bool = False


class CompiledForward:
    """A captured model forward for one input signature.

    Holds the traced :class:`~repro.tensor.plan.ExecutionPlan` plus a
    free-list of :class:`~repro.tensor.plan.PlanExecutor` instances:
    executors are single-threaded by design (they own arena buffers),
    so concurrent engine calls each :meth:`acquire` their own and
    :meth:`release` it once the outputs have been consumed.  The
    free-list is bounded by the actual concurrency, and released
    executors are reused, so steady state allocates nothing.
    """

    def __init__(self, plan, arena: BufferArena):
        self.plan = plan
        self._arena = arena
        self._free: List[PlanExecutor] = []
        self._lock = threading.Lock()
        self.executors_created = 0

    def acquire(self) -> PlanExecutor:
        with self._lock:
            if self._free:
                return self._free.pop()
            self.executors_created += 1
        return PlanExecutor(self.plan, self._arena)

    def release(self, executor: PlanExecutor) -> None:
        with self._lock:
            self._free.append(executor)

    def retire(self) -> None:
        """Return the free executors' arena blobs for reuse by future
        plans (executors still in flight are simply dropped to GC when
        their calls finish)."""
        with self._lock:
            executors, self._free = self._free, []
        for ex in executors:
            ex.release()


class ForecastEngine:
    """Vectorised (IC, boundary-condition) episode inference.

    Parameters
    ----------
    model: trained surrogate; its ``config.mesh`` fixes the padded
        (H', W') every episode is staged onto.
    normalizer: fitted z-score statistics.
    boundary_width: rim width of the boundary-condition slots.

    Batches whose shape matches a plan prepared with :meth:`compile`
    replay that plan instead of walking the dynamic eager path.  When
    ``bucket_partial`` is on (the default), a batch *smaller* than any
    compiled plan is zero-padded up to the nearest compiled batch size
    (its "bucket"), replayed there, and the outputs sliced back — the
    forward is row-independent, so the sliced result is still bitwise
    identical to the unpadded eager run.  Only a batch larger than
    every compiled plan falls back to eager.

    ``optimize_plans`` (default on) runs the
    :mod:`~repro.tensor.plan_passes` structural passes — peephole
    fusion, constant folding, dead-step elimination — on every plan at
    compile time.  Fused kernels replay the exact eager ufunc
    sequences, so the optimised plan keeps the bitwise guarantee; only
    the reduced-precision variants built by :meth:`compile_reduced`
    trade exactness for bandwidth, and those must pass an accuracy
    gate before they are installed.
    """

    def __init__(self, model: CoastalSurrogate, normalizer: Normalizer,
                 boundary_width: int = 1, *,
                 optimize_plans: bool = True,
                 bucket_partial: bool = True,
                 serve_reduced: bool = False):
        self.model = model
        self.normalizer = normalizer
        self.boundary_width = boundary_width
        self.optimize_plans = optimize_plans
        self.bucket_partial = bucket_partial
        # routing knob: prefer installed reduced-precision variants
        # (every one passed its accuracy gate) over the exact plans;
        # off by default — the bitwise guarantee stays the default
        self.serve_reduced = serve_reduced
        cfg = model.config
        self.pad_hw = (cfg.mesh[0], cfg.mesh[1])
        self._plans: Dict[Tuple[int, ...], CompiledForward] = {}
        self._reduced: Dict[Tuple[int, ...], CompiledForward] = {}
        self._pass_stats: Dict[int, Dict[str, object]] = {}
        self._plan_lock = threading.Lock()
        # serialises sensitivity_batch backward passes: the backward
        # temporarily clears parameter requires_grad flags (a model-wide
        # write), which concurrent forecast_batch calls never read (they
        # run under no_grad) but concurrent backwards would race on
        self._grad_lock = threading.Lock()
        self._arena = BufferArena()
        # counters below are written only under _plan_lock, at plan
        # lookup time, so hit/miss attribution is decided in the same
        # critical section as the lookup itself (no mid-forward race
        # with clear_plans()/compile())
        self.plan_hits = 0       # forwards served by a compiled plan
        self.plan_misses = 0     # forwards that ran the eager path
        self.padded_rows = 0     # pad rows added by bucketing
        self.total_rows = 0      # episode rows actually computed
        self.bucket_hits: Dict[int, int] = {}  # plan batch -> hits
        self.reduced_hits = 0    # forwards served by a reduced variant

    @property
    def time_steps(self) -> int:
        """Episode length T — part of the batch-executor protocol."""
        return self.model.config.time_steps

    def with_model(self, model: CoastalSurrogate) -> "ForecastEngine":
        """A fresh engine around ``model`` sharing this engine's
        normalizer and boundary configuration.

        This is the hot-swap constructor: a new checkpoint deploys as
        ``engine.with_model(new_model)`` so the serving-side
        configuration (and the fitted statistics the model was trained
        against) carries over while plans start from a clean cache —
        plans bake weights, so reusing the old engine's plans for new
        weights would be wrong.
        """
        return ForecastEngine(model, self.normalizer, self.boundary_width,
                              optimize_plans=self.optimize_plans,
                              bucket_partial=self.bucket_partial,
                              serve_reduced=self.serve_reduced)

    # ------------------------------------------------------------------
    # compiled plans
    # ------------------------------------------------------------------
    def _input_shapes(self, batch: int) -> Tuple[Tuple[int, ...],
                                                 Tuple[int, ...]]:
        """(x3d, x2d) shapes for a ``batch``-episode forward — fully
        determined by the model config, independent of the request
        mesh (episodes are padded to ``pad_hw`` before assembly)."""
        ph, pw = self.pad_hw
        D = self.model.config.mesh[2]
        T = self.time_steps
        return (batch, 3, ph, pw, D, T), (batch, 1, ph, pw, T)

    def compile(self, batch: int) -> CompiledForward:
        """Capture the model forward for ``batch`` episodes.

        Traces one forward on zero inputs (the captured program is
        shape-dependent only), finalizes it into a liveness-packed
        :class:`~repro.tensor.plan.ExecutionPlan` and caches it;
        subsequent :meth:`forecast_batch` calls with ``batch`` episodes
        replay the plan.  Idempotent and thread-safe.

        Plans bake the weights they were traced with (BatchNorm
        statistics fold into per-channel scale/shift constants, the
        positional tables into one summed table), exactly like engine
        builds in production inference runtimes — after
        ``load_state_dict`` or further training call
        :meth:`clear_plans` and recompile.
        """
        batch = int(batch)
        if batch < 1:
            raise ValueError("compile() needs batch >= 1")
        s3d, s2d = self._input_shapes(batch)
        with self._plan_lock:
            cached = self._plans.get(s3d)
        if cached is not None:
            return cached
        self.model.eval()
        plan, _ = _plan.trace(
            lambda a, b: self.model(a, b),
            (np.zeros(s3d, np.float32), np.zeros(s2d, np.float32)))
        pass_stats = None
        if self.optimize_plans:
            plan, pass_stats = _passes.optimize(plan)
        compiled = CompiledForward(plan, self._arena)
        with self._plan_lock:
            # a concurrent compile of the same shape may have won
            winner = self._plans.setdefault(s3d, compiled)
            if winner is compiled and pass_stats is not None:
                self._pass_stats[batch] = pass_stats
            return winner

    def compile_buckets(self, max_batch: Optional[int] = None,
                        histogram=None) -> List[int]:
        """Compile a bucket set so partial batches pad into plans.

        Without ``histogram``, compiles the canonical
        :func:`~repro.tensor.plan_passes.plan_buckets` set (powers of
        two up to and including ``max_batch``).  Given a ``histogram``
        — a ``{batch_size: count}`` mapping (e.g.
        ``ServeMetrics.occupancy_histogram()``) or an iterable of
        observed batch sizes — the buckets come from
        :func:`~repro.tensor.plan_passes.plan_buckets_from_histogram`
        instead, minimising expected pad rows for the observed
        arrival pattern.  Either way :meth:`forecast_batch` hits the
        plan cache at any observed size: a partial batch pads into the
        nearest bucket instead of falling back to eager.  Returns the
        bucket sizes, ascending.
        """
        if histogram is not None:
            buckets = _passes.plan_buckets_from_histogram(
                histogram, max_batch=max_batch)
        elif max_batch is not None:
            buckets = _passes.plan_buckets(max_batch)
        else:
            raise ValueError(
                "compile_buckets() needs max_batch or histogram")
        for b in buckets:
            self.compile(b)
        return list(buckets)

    def compile_reduced(self, batch: int, dtype=np.float32,
                        references: Optional[Sequence[FieldWindow]] = None,
                        tol_rmse: float = 1e-3) -> CompiledForward:
        """Build, gate and install a reduced-precision plan variant.

        Clones the (optimised) exact plan for ``batch`` episodes with
        floating storage narrowed to ``dtype`` via
        :func:`~repro.tensor.plan_passes.cast_plan` — float64
        accumulation the trace demanded is preserved — then gates it:
        the ``references`` windows (synthetic tidal-like windows when
        not given) run through both the bitwise path and the variant,
        and every variable's RMSE between the two (computed with
        :func:`repro.eval.metrics.compute_errors_many`, the repo's
        forecast-accuracy yardstick) must stay within ``tol_rmse``.

        On success the variant is installed (see :meth:`plan_stats`'s
        ``reduced_batches``) and returned; on failure it is retired and
        :class:`PlanAccuracyError` is raised — a variant that fails its
        gate is never served.
        """
        # lazy import: eval.metrics -> workflow.forecast -> this module
        from ..eval.metrics import compute_errors_many

        batch = int(batch)
        base = self.compile(batch)
        if references is None:
            references = self._gate_windows(batch)
        references = list(references)
        if len(references) != batch:
            raise ValueError(
                f"compile_reduced() gate needs exactly {batch} reference "
                f"windows, got {len(references)}")

        # the gate baseline must be the bitwise path even if an earlier
        # variant for this shape is installed and routing is on
        prior_route = self.serve_reduced
        self.serve_reduced = False
        try:
            exact = self.forecast_batch(references)
        finally:
            self.serve_reduced = prior_route
        variant_plan = _passes.cast_plan(base.plan, dtype)
        candidate = CompiledForward(variant_plan, self._arena)

        x3d, x2d, crop = self._prepare_inputs(references)
        target = np.dtype(dtype)
        executor = candidate.acquire()
        try:
            p3, p2 = executor.run((x3d.astype(target), x2d.astype(target)))
            vol = np.moveaxis(p3, -1, 2).astype(np.float64)
            zet = np.moveaxis(p2[:, 0], -1, 1).astype(np.float64)
        finally:
            candidate.release(executor)
        approx = self._finalize(references, vol, zet, 0.0,
                                compiled=True, plan_batch=batch,
                                reduced=True)

        errors = compute_errors_many([r.fields for r in approx],
                                     [r.fields for r in exact])
        worst = max(errors.rmse.values())
        if not np.isfinite(worst) or worst > tol_rmse:
            candidate.retire()
            raise PlanAccuracyError(
                f"reduced-precision plan (batch={batch}, dtype={target}) "
                f"failed its accuracy gate: worst RMSE vs the exact path "
                f"{worst:.3e} > tolerance {tol_rmse:.3e}; per-variable "
                f"rmse={ {k: float(v) for k, v in errors.rmse.items()} }")
        s3d, _ = self._input_shapes(batch)
        with self._plan_lock:
            installed = self._reduced.setdefault(s3d, candidate)
        if installed is not candidate:
            candidate.retire()
        return installed

    def _gate_windows(self, batch: int) -> List[FieldWindow]:
        """Deterministic synthetic windows spanning the padded mesh,
        used to gate reduced-precision variants when the caller has no
        held-out data at hand."""
        ph, pw = self.pad_hw
        D = self.model.config.mesh[2]
        T = self.time_steps
        rng = np.random.default_rng(20260807)
        out = []
        for _ in range(batch):
            out.append(FieldWindow(
                rng.normal(size=(T, ph, pw, D)).astype(np.float32),
                rng.normal(size=(T, ph, pw, D)).astype(np.float32),
                rng.normal(size=(T, ph, pw, D)).astype(np.float32),
                rng.normal(size=(T, ph, pw)).astype(np.float32)))
        return out

    def clear_plans(self) -> None:
        """Drop every cached plan (required after retraining: folded
        BatchNorm statistics are baked into plans as constants).  The
        retired executors' arena blobs go back to the engine's
        :class:`~repro.tensor.plan.BufferArena`, so recompiled plans
        reuse them instead of allocating fresh."""
        with self._plan_lock:
            plans, self._plans = dict(self._plans), {}
            reduced, self._reduced = dict(self._reduced), {}
            self._pass_stats = {}
        for compiled in list(plans.values()) + list(reduced.values()):
            compiled.retire()

    @property
    def compiled_batches(self) -> List[int]:
        """Batch sizes with a cached plan, ascending."""
        with self._plan_lock:
            return sorted(k[0] for k in self._plans)

    def plan_stats(self) -> Dict[str, object]:
        """Plan-cache, bucketing and arena counters (for serving
        metrics), read as **one consistent snapshot**: every counter is
        captured inside a single ``_plan_lock`` critical section, so a
        concurrent forward can never show e.g. a hit without its bucket
        attribution."""
        with self._plan_lock:
            plans = dict(self._plans)
            hits, misses = self.plan_hits, self.plan_misses
            padded, total = self.padded_rows, self.total_rows
            bucket_hits = dict(self.bucket_hits)
            pass_stats = dict(self._pass_stats)
            reduced = sorted(k[0] for k in self._reduced)
            reduced_hits = self.reduced_hits
        return {
            "plans": len(plans),
            "batches": sorted(k[0] for k in plans),
            "hits": hits,
            "misses": misses,
            "padded_rows": padded,
            "total_rows": total,
            "bucket_pad_fraction": padded / total if total else 0.0,
            "bucket_hits": bucket_hits,
            "pass_stats": pass_stats,
            "reduced_batches": reduced,
            "reduced_hits": reduced_hits,
            "serve_reduced": self.serve_reduced,
            "arena": self._arena.stats(),
            "executors": sum(p.executors_created for p in plans.values()),
            "arena_bytes": {k[0]: p.plan.arena_bytes()
                            for k, p in plans.items()},
        }

    # ------------------------------------------------------------------
    def _normalize_batch(self, references: Sequence[FieldWindow]
                         ) -> Dict[str, np.ndarray]:
        """Stack, normalise and pad N windows: (N, T, H', W'[, D])."""
        base = references[0]
        for i, r in enumerate(references):
            for var in ("u3", "v3", "w3", "zeta"):
                got, want = getattr(r, var).shape, getattr(base, var).shape
                if got != want:
                    raise ValueError(
                        "all windows of a batch must share one mesh; "
                        f"window {i} has {var} {got} != {want}")
        ph, pw = self.pad_hw
        stacks = {
            "u3": np.stack([r.u3 for r in references]),
            "v3": np.stack([r.v3 for r in references]),
            "w3": np.stack([r.w3 for r in references]),
            "zeta": np.stack([r.zeta for r in references]),
        }
        out = {}
        for var, arr in stacks.items():
            a = self.normalizer.normalize(var, arr.astype(np.float32))
            out[var] = pad_mesh(a, ph, pw, axes=(2, 3))
        return out

    # ------------------------------------------------------------------
    def _prepare_inputs(self, references: Sequence[FieldWindow]
                        ) -> Tuple[np.ndarray, np.ndarray,
                                   Tuple[int, int]]:
        """Validate, normalise and assemble N windows into the model's
        (x3d, x2d) inputs; returns them with the (H, W) crop of the
        request mesh."""
        T = self.time_steps
        for r in references:
            if r.T != T:
                raise ValueError(
                    f"window length {r.T} != model time_steps {T}")
        norm = self._normalize_batch(references)
        x3d, x2d = assemble_episode_input_batch(
            norm["u3"], norm["v3"], norm["w3"], norm["zeta"],
            self.boundary_width)
        x3d = np.ascontiguousarray(x3d, dtype=np.float32)
        x2d = np.ascontiguousarray(x2d, dtype=np.float32)
        H, W = references[0].zeta.shape[1:3]
        return x3d, x2d, (H, W)

    def _lookup_plan(self, shape: Tuple[int, ...]
                     ) -> Tuple[Optional[CompiledForward], Optional[int],
                                bool]:
        """One-critical-section plan lookup **and** outcome recording.

        Exact-shape plans win; otherwise, with ``bucket_partial`` on,
        the smallest compiled plan whose batch exceeds the request's
        serves as its bucket (the batch pads up, outputs slice back).
        With ``serve_reduced`` on, installed reduced-precision variants
        (every one passed its :meth:`compile_reduced` accuracy gate)
        take priority over the exact plans, same exact-then-bucket
        order; the third returned element flags that choice.  The
        hit/miss, per-bucket and padding counters are all updated
        here, inside the same ``_plan_lock`` section as the lookup —
        the counters describe the decision actually taken even if a
        concurrent :meth:`clear_plans`/:meth:`compile` lands while the
        forward itself runs outside the lock.
        """
        n = shape[0]

        def find(table):
            fwd = table.get(shape)
            pb: Optional[int] = n if fwd is not None else None
            if fwd is None and self.bucket_partial:
                tail = shape[1:]
                best = None
                for key in table:
                    if key[1:] == tail and key[0] > n and \
                            (best is None or key[0] < best):
                        best = key[0]
                if best is not None:
                    fwd = table[(best,) + tail]
                    pb = best
            return fwd, pb

        with self._plan_lock:
            compiled_fwd, plan_batch, reduced = None, None, False
            if self.serve_reduced:
                compiled_fwd, plan_batch = find(self._reduced)
                reduced = compiled_fwd is not None
            if compiled_fwd is None:
                compiled_fwd, plan_batch = find(self._plans)
            if compiled_fwd is not None:
                self.plan_hits += 1
                if reduced:
                    self.reduced_hits += 1
                self.bucket_hits[plan_batch] = \
                    self.bucket_hits.get(plan_batch, 0) + 1
                self.padded_rows += plan_batch - n
                self.total_rows += plan_batch
            else:
                self.plan_misses += 1
                self.total_rows += n
        return compiled_fwd, plan_batch, reduced

    def _finalize(self, references: Sequence[FieldWindow],
                  vol: np.ndarray, zet: np.ndarray, seconds: float, *,
                  compiled: bool, plan_batch: Optional[int],
                  reduced: bool = False
                  ) -> List[ForecastResult]:
        """Denormalise, crop to the request mesh, restore the exact
        initial condition and wrap per-episode results."""
        H, W = references[0].zeta.shape[1:3]
        u3 = self.normalizer.denormalize("u3", vol[:, 0])[:, :, :H, :W]
        v3 = self.normalizer.denormalize("v3", vol[:, 1])[:, :, :H, :W]
        w3 = self.normalizer.denormalize("w3", vol[:, 2])[:, :, :H, :W]
        zeta = self.normalizer.denormalize("zeta", zet)[:, :, :H, :W]

        per_episode = seconds / len(references)
        results: List[ForecastResult] = []
        for i, r in enumerate(references):
            fields = FieldWindow(
                np.ascontiguousarray(u3[i]), np.ascontiguousarray(v3[i]),
                np.ascontiguousarray(w3[i]), np.ascontiguousarray(zeta[i]))
            # the initial condition is known exactly — keep it
            fields.u3[0], fields.v3[0], fields.w3[0] = \
                r.u3[0], r.v3[0], r.w3[0]
            fields.zeta[0] = r.zeta[0]
            results.append(ForecastResult(fields, per_episode,
                                          compiled=compiled,
                                          plan_batch=plan_batch,
                                          reduced=reduced))
        return results

    def forecast_batch(self, references: Sequence[FieldWindow]
                       ) -> List[ForecastResult]:
        """Forecast N episodes in one vectorised pass.

        Parameters
        ----------
        references: windows of T snapshots each, all on the same mesh;
            ``u3, v3, w3`` are (T, H, W, D) and ``zeta`` is (T, H, W).
            Slot 0 of each is consumed as the initial condition, slots
            1..T−1 contribute only their lateral boundary rims.

        Returns
        -------
        One :class:`ForecastResult` per input window, in order, each
        holding (T, H, W[, D]) fields on the input mesh; results are
        identical (up to float associativity) to running each window
        through the serial one-episode path.

        A batch with no exact-shape plan pads into the nearest larger
        compiled bucket (zero rows appended, outputs sliced back) when
        ``bucket_partial`` is on; the forward is row-independent, so
        the sliced result stays bitwise-identical to the unpadded eager
        run.  ``ForecastResult.plan_batch`` records the bucket used.

        Thread safety: this method never writes model or normalizer
        state (``eval()`` is an idempotent flag write and the autograd
        switch is thread-local), and the input windows are only read —
        so concurrent calls on one engine, or on several engines
        sharing one model (an
        :class:`~repro.serve.pool.EngineWorkerPool` of replicas), are
        safe without locking.  The compiled path keeps the guarantee:
        plan *executors* own mutable arena buffers, so every call
        acquires a private executor from the plan's free-list
        (:class:`CompiledForward`) and returns it only after the
        outputs have been copied out.
        """
        references = list(references)
        if not references:
            return []
        n = len(references)
        x3d, x2d, _ = self._prepare_inputs(references)
        compiled_fwd, plan_batch, reduced = self._lookup_plan(x3d.shape)

        self.model.eval()
        # (N, 3, H', W', D, T) → (N, 3, T, H', W', D); ζ → (N, T, H', W')
        # denormalised in float64 so the exact initial condition can be
        # restored losslessly below
        if compiled_fwd is not None:
            if plan_batch != n:
                pad = plan_batch - n
                x3d = np.concatenate(
                    [x3d, np.zeros((pad,) + x3d.shape[1:], x3d.dtype)])
                x2d = np.concatenate(
                    [x2d, np.zeros((pad,) + x2d.shape[1:], x2d.dtype)])
            if reduced:
                # cast_plan narrowed the input slots with the storage
                plan = compiled_fwd.plan
                in3, in2 = plan.inputs[0], plan.inputs[1]
                x3d = x3d.astype(plan.slots[in3].dtype, copy=False)
                x2d = x2d.astype(plan.slots[in2].dtype, copy=False)
            executor = compiled_fwd.acquire()
            try:
                t0 = time.perf_counter()
                p3_arr, p2_arr = executor.run((x3d, x2d))
                seconds = time.perf_counter() - t0
                # the outputs are arena views — consume them (and drop
                # any pad rows) before the executor goes back on the
                # free-list
                vol = np.moveaxis(p3_arr[:n], -1, 2).astype(np.float64)
                zet = np.moveaxis(p2_arr[:n, 0], -1, 1).astype(np.float64)
            finally:
                compiled_fwd.release(executor)
        else:
            t0 = time.perf_counter()
            with no_grad():
                p3d, p2d = self.model(Tensor(x3d), Tensor(x2d))
            seconds = time.perf_counter() - t0
            vol = np.moveaxis(p3d.data, -1, 2).astype(np.float64)
            zet = np.moveaxis(p2d.data[:, 0], -1, 1).astype(np.float64)

        return self._finalize(references, vol, zet, seconds,
                              compiled=compiled_fwd is not None,
                              plan_batch=plan_batch, reduced=reduced)

    # ------------------------------------------------------------------
    # adjoint / sensitivity path
    # ------------------------------------------------------------------
    def sensitivity_batch(self, references: Sequence[FieldWindow], *,
                          wrt: Sequence[str] = ("fields",),
                          diagnostic: str = "peak_surge",
                          observations=None, storms=None):
        """Differentiate a scalar diagnostic of N episodes' forecasts.

        The adjoint counterpart of :meth:`forecast_batch`: runs one
        grad-enabled batched forward through the same
        :meth:`_prepare_inputs` staging (normalise → pad → rim-mask
        assembly), reduces the predicted surge to a scalar diagnostic
        per episode, and pulls the gradient back through the model
        *and* the staging pipeline, so the returned sensitivities are
        in physical units on the request mesh.

        Parameters
        ----------
        references: reference windows, exactly as for
            :meth:`forecast_batch`.
        wrt: subset of ``("fields", "storm")``.  ``"fields"`` returns
            ∂J/∂(input fields) as a :class:`FieldWindow` per episode;
            ``"storm"`` additionally chains the field adjoint through a
            differentiable storm overlay and returns ∂J/∂θ for every
            :data:`~repro.workflow.sensitivity.STORM_PARAMS` entry.
        diagnostic: a :data:`~repro.workflow.sensitivity.DIAGNOSTICS`
            name, reduced over forecast steps 1..T−1 of the predicted
            surge (slot 0 is the exactly-restored initial condition and
            carries no model sensitivity).
        observations: per-episode observed surge windows (T, H, W),
            required by ``surge_mse``.
        storms: per-episode
            :class:`~repro.workflow.sensitivity.StormOverlay`
            hypotheses (or ``None`` entries).  Each overlay is applied
            to its reference window *before* the forward, so the storm
            parameters sit upstream of normalisation and the reported
            ∂J/∂θ is the true end-to-end sensitivity.

        Returns
        -------
        One :class:`~repro.workflow.sensitivity.SensitivityResult` per
        episode, in order.  ``backward_seconds`` is the batch's
        forward+backward wall clock split evenly, mirroring
        :class:`ForecastResult.inference_seconds`.

        Notes
        -----
        The backward always runs the eager autograd graph — compiled
        plans are forward-only (traced backward plans are roadmap
        work, see ``docs/differentiation.md``) — and is serialised per
        engine by an internal lock; concurrent :meth:`forecast_batch`
        calls proceed untouched.  Every sensitivity exposed here is
        validated against central finite differences
        (:func:`repro.tensor.gradcheck.numerical_grad`) in
        ``tests/test_sensitivity.py``.
        """
        from .sensitivity import (DIAGNOSTICS, STORM_PARAMS,
                                  SensitivityResult)
        from ..tensor import astensor

        references = list(references)
        if not references:
            return []
        n = len(references)
        wrt = tuple(wrt)
        bad = [w for w in wrt if w not in ("fields", "storm")]
        if bad or not wrt:
            raise ValueError(
                f"wrt must be a non-empty subset of ('fields', 'storm'); "
                f"got {wrt}")
        if diagnostic not in DIAGNOSTICS:
            raise ValueError(
                f"unknown diagnostic {diagnostic!r}; expected one of "
                f"{sorted(DIAGNOSTICS)}")
        observations = list(observations) if observations is not None \
            else [None] * n
        storms = list(storms) if storms is not None else [None] * n
        if len(observations) != n or len(storms) != n:
            raise ValueError(
                "observations/storms must match the reference batch")
        if diagnostic == "surge_mse" and any(o is None for o in observations):
            raise ValueError(
                "diagnostic 'surge_mse' requires an observation per episode")
        if "storm" in wrt and any(s is None for s in storms):
            raise ValueError(
                "wrt='storm' requires a StormOverlay per episode")

        composed = [s.apply(r) if s is not None else r
                    for r, s in zip(references, storms)]
        x3d, x2d, (H, W) = self._prepare_inputs(composed)

        eps = Normalizer.EPS
        std_z = self.normalizer.std["zeta"] + eps
        mean_z = self.normalizer.mean["zeta"]
        obs_t = None
        if diagnostic == "surge_mse":
            obs_t = astensor(np.stack(
                [np.asarray(o, dtype=np.float64) for o in observations]))

        params = list(self.model.parameters())
        with self._grad_lock:
            # the diagnostic differentiates inputs, not weights — mask
            # the parameters out of the tape so backward neither builds
            # nor accumulates weight gradients (restored below; safe
            # because forecast_batch runs under no_grad and never reads
            # the flag, and this lock serialises sensitivity calls)
            prev_flags = [p.requires_grad for p in params]
            for p in params:
                p.requires_grad = False
            self.model.eval()
            try:
                t0 = time.perf_counter()
                with enable_grad():
                    t3 = Tensor(x3d, requires_grad=True)
                    t2 = Tensor(x2d, requires_grad=True)
                    _, p2d = self.model(t3, t2)
                    # ζ head → (N, T, H', W') → denormalise → crop:
                    # the in-graph mirror of _finalize's numpy epilogue
                    z = p2d[:, 0].transpose(0, 3, 1, 2) \
                        .astype(np.float64) * std_z + mean_z
                    z = z[:, :, :H, :W]
                    per = DIAGNOSTICS[diagnostic](z, obs_t)
                    per.sum().backward()
                seconds = time.perf_counter() - t0
            finally:
                for p, flag in zip(params, prev_flags):
                    p.requires_grad = flag
        values = np.asarray(per.data, dtype=np.float64).reshape(n)

        # ---- analytic adjoint of assemble_episode_input_batch --------
        g3 = np.asarray(t3.grad, dtype=np.float64)  # (N,3,H',W',D,T)
        g2 = np.asarray(t2.grad, dtype=np.float64)  # (N,1,H',W',T)
        ph, pw = self.pad_hw
        mask = _rim_mask(ph, pw, self.boundary_width, np.float64)
        gvol = np.moveaxis(g3, -1, 2)               # (N,3,T,H',W',D)
        grad_vol = gvol * mask[:, :, None]
        grad_vol[:, :, 0] = gvol[:, :, 0]           # IC slot: full fields
        gz = np.moveaxis(g2, -1, 2)[:, 0]           # (N,T,H',W')
        grad_zeta = gz * mask
        grad_zeta[:, 0] = gz[:, 0]
        # pad adjoint = crop; z-score adjoint = divide by (std + EPS)
        d_u3 = grad_vol[:, 0, :, :H, :W] / (self.normalizer.std["u3"] + eps)
        d_v3 = grad_vol[:, 1, :, :H, :W] / (self.normalizer.std["v3"] + eps)
        d_w3 = grad_vol[:, 2, :, :H, :W] / (self.normalizer.std["w3"] + eps)
        d_zeta = grad_zeta[:, :, :H, :W] / std_z

        per_episode = seconds / n
        results = []
        for i in range(n):
            d_fields = None
            if "fields" in wrt:
                d_fields = FieldWindow(
                    np.ascontiguousarray(d_u3[i]),
                    np.ascontiguousarray(d_v3[i]),
                    np.ascontiguousarray(d_w3[i]),
                    np.ascontiguousarray(d_zeta[i]))
            d_storm = None
            if "storm" in wrt:
                # chain rule through the additive overlay: the composed
                # window is reference + increments(θ), so ∂J/∂θ is the
                # field adjoint contracted with ∂increments/∂θ — one
                # small vector-Jacobian product per episode
                storm = storms[i]
                T = self.time_steps
                D = references[i].u3.shape[-1]
                with enable_grad():
                    theta = storm.tensor_params(requires_grad=True)
                    du3, dv3, dz = storm.increments(theta, T, (H, W), D)
                    proxy = (du3 * astensor(d_u3[i])).sum() \
                        + (dv3 * astensor(d_v3[i])).sum() \
                        + (dz * astensor(d_zeta[i])).sum()
                    proxy.backward()
                d_storm = {
                    name: float(theta[name].grad)
                    if theta[name].grad is not None else 0.0
                    for name in STORM_PARAMS
                }
            results.append(SensitivityResult(
                value=float(values[i]), diagnostic=diagnostic, wrt=wrt,
                d_fields=d_fields, d_storm=d_storm,
                backward_seconds=per_episode))
        return results
