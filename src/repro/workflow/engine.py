"""Batched forecast engine: the vectorised inference core.

Every consumer of the surrogate — single-episode forecasts, ensemble
uncertainty quantification, dual-model rollouts, multi-scenario hybrid
serving — ultimately needs the same five steps: normalisation, mesh
padding, episode assembly, the model forward, and denormalisation +
cropping.  :class:`ForecastEngine` runs all five vectorised over a
leading batch axis in a single pass, so N episodes cost one model
forward instead of N.  The paper motivates exactly this regime: "an
ensemble of tens of thousands of models for uncertainty
quantification" (§I) is only affordable when members share a forward.

:class:`~repro.workflow.forecast.SurrogateForecaster` keeps its
one-episode API as the batch-1 special case of this engine.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import assemble_episode_input_batch
from ..data.preprocess import Normalizer, pad_mesh
from ..swin.model import CoastalSurrogate
from ..tensor import BufferArena, PlanExecutor, Tensor, no_grad
from ..tensor import plan as _plan

__all__ = ["FieldWindow", "ForecastResult", "CompiledForward",
           "ForecastEngine"]


@dataclass
class FieldWindow:
    """A window of physical fields (denormalised, unpadded).

    ``u3, v3, w3``: (T, H, W, D); ``zeta``: (T, H, W).
    """

    u3: np.ndarray
    v3: np.ndarray
    w3: np.ndarray
    zeta: np.ndarray

    @property
    def T(self) -> int:
        return self.zeta.shape[0]

    def snapshot(self, t: int) -> "FieldWindow":
        """Single-snapshot view (T = 1)."""
        return FieldWindow(self.u3[t:t + 1], self.v3[t:t + 1],
                           self.w3[t:t + 1], self.zeta[t:t + 1])

    def copy(self) -> "FieldWindow":
        return FieldWindow(self.u3.copy(), self.v3.copy(),
                           self.w3.copy(), self.zeta.copy())

    @staticmethod
    def concat(windows: Sequence["FieldWindow"]) -> "FieldWindow":
        """Concatenate windows along time; meshes must match exactly."""
        windows = list(windows)
        if not windows:
            raise ValueError("FieldWindow.concat: no windows to concatenate")
        base = windows[0]
        for i, w in enumerate(windows[1:], start=1):
            for var in ("u3", "v3", "w3", "zeta"):
                got = getattr(w, var).shape[1:]
                want = getattr(base, var).shape[1:]
                if got != want:
                    raise ValueError(
                        "FieldWindow.concat: windows must share one mesh; "
                        f"window {i} has {var} mesh {got} != {want}")
        return FieldWindow(
            np.concatenate([w.u3 for w in windows], axis=0),
            np.concatenate([w.v3 for w in windows], axis=0),
            np.concatenate([w.w3 for w in windows], axis=0),
            np.concatenate([w.zeta for w in windows], axis=0),
        )


@dataclass
class ForecastResult:
    """Forecast plus bookkeeping.

    ``inference_seconds`` of episodes that shared a batched forward is
    the batch wall-clock split evenly, so sums over results remain the
    total time actually spent in the model.
    """

    fields: FieldWindow
    inference_seconds: float
    episodes: int = 1
    #: whether the forward replayed a compiled plan (bitwise-identical
    #: to the eager path either way)
    compiled: bool = False
    #: engine version that produced this result when served through a
    #: versioned pool (:class:`~repro.serve.pool.EngineWorkerPool`);
    #: ``None`` for direct engine calls
    engine_version: Optional[int] = None


class CompiledForward:
    """A captured model forward for one input signature.

    Holds the traced :class:`~repro.tensor.plan.ExecutionPlan` plus a
    free-list of :class:`~repro.tensor.plan.PlanExecutor` instances:
    executors are single-threaded by design (they own arena buffers),
    so concurrent engine calls each :meth:`acquire` their own and
    :meth:`release` it once the outputs have been consumed.  The
    free-list is bounded by the actual concurrency, and released
    executors are reused, so steady state allocates nothing.
    """

    def __init__(self, plan, arena: BufferArena):
        self.plan = plan
        self._arena = arena
        self._free: List[PlanExecutor] = []
        self._lock = threading.Lock()
        self.executors_created = 0

    def acquire(self) -> PlanExecutor:
        with self._lock:
            if self._free:
                return self._free.pop()
            self.executors_created += 1
        return PlanExecutor(self.plan, self._arena)

    def release(self, executor: PlanExecutor) -> None:
        with self._lock:
            self._free.append(executor)

    def retire(self) -> None:
        """Return the free executors' arena blobs for reuse by future
        plans (executors still in flight are simply dropped to GC when
        their calls finish)."""
        with self._lock:
            executors, self._free = self._free, []
        for ex in executors:
            ex.release()


class ForecastEngine:
    """Vectorised (IC, boundary-condition) episode inference.

    Parameters
    ----------
    model: trained surrogate; its ``config.mesh`` fixes the padded
        (H', W') every episode is staged onto.
    normalizer: fitted z-score statistics.
    boundary_width: rim width of the boundary-condition slots.

    Batches whose shape matches a plan prepared with :meth:`compile`
    replay that plan instead of walking the dynamic eager path; unseen
    shapes fall back to eager execution.  Both paths are bitwise
    identical.
    """

    def __init__(self, model: CoastalSurrogate, normalizer: Normalizer,
                 boundary_width: int = 1):
        self.model = model
        self.normalizer = normalizer
        self.boundary_width = boundary_width
        cfg = model.config
        self.pad_hw = (cfg.mesh[0], cfg.mesh[1])
        self._plans: Dict[Tuple[int, ...], CompiledForward] = {}
        self._plan_lock = threading.Lock()
        self._arena = BufferArena()
        self.plan_hits = 0     # forwards served by a compiled plan
        self.plan_misses = 0   # forwards that ran the eager path

    @property
    def time_steps(self) -> int:
        """Episode length T — part of the batch-executor protocol."""
        return self.model.config.time_steps

    def with_model(self, model: CoastalSurrogate) -> "ForecastEngine":
        """A fresh engine around ``model`` sharing this engine's
        normalizer and boundary configuration.

        This is the hot-swap constructor: a new checkpoint deploys as
        ``engine.with_model(new_model)`` so the serving-side
        configuration (and the fitted statistics the model was trained
        against) carries over while plans start from a clean cache —
        plans bake weights, so reusing the old engine's plans for new
        weights would be wrong.
        """
        return ForecastEngine(model, self.normalizer, self.boundary_width)

    # ------------------------------------------------------------------
    # compiled plans
    # ------------------------------------------------------------------
    def _input_shapes(self, batch: int) -> Tuple[Tuple[int, ...],
                                                 Tuple[int, ...]]:
        """(x3d, x2d) shapes for a ``batch``-episode forward — fully
        determined by the model config, independent of the request
        mesh (episodes are padded to ``pad_hw`` before assembly)."""
        ph, pw = self.pad_hw
        D = self.model.config.mesh[2]
        T = self.time_steps
        return (batch, 3, ph, pw, D, T), (batch, 1, ph, pw, T)

    def compile(self, batch: int) -> CompiledForward:
        """Capture the model forward for ``batch`` episodes.

        Traces one forward on zero inputs (the captured program is
        shape-dependent only), finalizes it into a liveness-packed
        :class:`~repro.tensor.plan.ExecutionPlan` and caches it;
        subsequent :meth:`forecast_batch` calls with ``batch`` episodes
        replay the plan.  Idempotent and thread-safe.

        Plans bake the weights they were traced with (BatchNorm
        statistics fold into per-channel scale/shift constants, the
        positional tables into one summed table), exactly like engine
        builds in production inference runtimes — after
        ``load_state_dict`` or further training call
        :meth:`clear_plans` and recompile.
        """
        batch = int(batch)
        if batch < 1:
            raise ValueError("compile() needs batch >= 1")
        s3d, s2d = self._input_shapes(batch)
        with self._plan_lock:
            cached = self._plans.get(s3d)
        if cached is not None:
            return cached
        self.model.eval()
        plan, _ = _plan.trace(
            lambda a, b: self.model(a, b),
            (np.zeros(s3d, np.float32), np.zeros(s2d, np.float32)))
        compiled = CompiledForward(plan, self._arena)
        with self._plan_lock:
            # a concurrent compile of the same shape may have won
            return self._plans.setdefault(s3d, compiled)

    def clear_plans(self) -> None:
        """Drop every cached plan (required after retraining: folded
        BatchNorm statistics are baked into plans as constants).  The
        retired executors' arena blobs go back to the engine's
        :class:`~repro.tensor.plan.BufferArena`, so recompiled plans
        reuse them instead of allocating fresh."""
        with self._plan_lock:
            plans, self._plans = dict(self._plans), {}
        for compiled in plans.values():
            compiled.retire()

    @property
    def compiled_batches(self) -> List[int]:
        """Batch sizes with a cached plan, ascending."""
        with self._plan_lock:
            return sorted(k[0] for k in self._plans)

    def plan_stats(self) -> Dict[str, object]:
        """Plan-cache and arena counters (for serving metrics)."""
        with self._plan_lock:
            plans = dict(self._plans)
            hits, misses = self.plan_hits, self.plan_misses
        return {
            "plans": len(plans),
            "batches": sorted(k[0] for k in plans),
            "hits": hits,
            "misses": misses,
            "arena": self._arena.stats(),
            "executors": sum(p.executors_created for p in plans.values()),
            "arena_bytes": {k[0]: p.plan.arena_bytes()
                            for k, p in plans.items()},
        }

    # ------------------------------------------------------------------
    def _normalize_batch(self, references: Sequence[FieldWindow]
                         ) -> Dict[str, np.ndarray]:
        """Stack, normalise and pad N windows: (N, T, H', W'[, D])."""
        base = references[0]
        for i, r in enumerate(references):
            for var in ("u3", "v3", "w3", "zeta"):
                got, want = getattr(r, var).shape, getattr(base, var).shape
                if got != want:
                    raise ValueError(
                        "all windows of a batch must share one mesh; "
                        f"window {i} has {var} {got} != {want}")
        ph, pw = self.pad_hw
        stacks = {
            "u3": np.stack([r.u3 for r in references]),
            "v3": np.stack([r.v3 for r in references]),
            "w3": np.stack([r.w3 for r in references]),
            "zeta": np.stack([r.zeta for r in references]),
        }
        out = {}
        for var, arr in stacks.items():
            a = self.normalizer.normalize(var, arr.astype(np.float32))
            out[var] = pad_mesh(a, ph, pw, axes=(2, 3))
        return out

    # ------------------------------------------------------------------
    def forecast_batch(self, references: Sequence[FieldWindow]
                       ) -> List[ForecastResult]:
        """Forecast N episodes in one vectorised pass.

        Parameters
        ----------
        references: windows of T snapshots each, all on the same mesh;
            ``u3, v3, w3`` are (T, H, W, D) and ``zeta`` is (T, H, W).
            Slot 0 of each is consumed as the initial condition, slots
            1..T−1 contribute only their lateral boundary rims.

        Returns
        -------
        One :class:`ForecastResult` per input window, in order, each
        holding (T, H, W[, D]) fields on the input mesh; results are
        identical (up to float associativity) to running each window
        through the serial one-episode path.

        Thread safety: this method never writes model or normalizer
        state (``eval()`` is an idempotent flag write and the autograd
        switch is thread-local), and the input windows are only read —
        so concurrent calls on one engine, or on several engines
        sharing one model (an
        :class:`~repro.serve.pool.EngineWorkerPool` of replicas), are
        safe without locking.  The compiled path keeps the guarantee:
        plan *executors* own mutable arena buffers, so every call
        acquires a private executor from the plan's free-list
        (:class:`CompiledForward`) and returns it only after the
        outputs have been copied out.
        """
        references = list(references)
        if not references:
            return []
        T = self.time_steps
        for r in references:
            if r.T != T:
                raise ValueError(
                    f"window length {r.T} != model time_steps {T}")

        norm = self._normalize_batch(references)
        x3d, x2d = assemble_episode_input_batch(
            norm["u3"], norm["v3"], norm["w3"], norm["zeta"],
            self.boundary_width)
        x3d = np.ascontiguousarray(x3d, dtype=np.float32)
        x2d = np.ascontiguousarray(x2d, dtype=np.float32)

        with self._plan_lock:
            compiled_fwd = self._plans.get(x3d.shape)

        self.model.eval()
        # (N, 3, H', W', D, T) → (N, 3, T, H', W', D); ζ → (N, T, H', W')
        # denormalised in float64 so the exact initial condition can be
        # restored losslessly below
        if compiled_fwd is not None:
            executor = compiled_fwd.acquire()
            try:
                t0 = time.perf_counter()
                p3_arr, p2_arr = executor.run((x3d, x2d))
                seconds = time.perf_counter() - t0
                # the outputs are arena views — consume them before the
                # executor goes back on the free-list
                vol = np.moveaxis(p3_arr, -1, 2).astype(np.float64)
                zet = np.moveaxis(p2_arr[:, 0], -1, 1).astype(np.float64)
            finally:
                compiled_fwd.release(executor)
            with self._plan_lock:
                self.plan_hits += 1
        else:
            t0 = time.perf_counter()
            with no_grad():
                p3d, p2d = self.model(Tensor(x3d), Tensor(x2d))
            seconds = time.perf_counter() - t0
            vol = np.moveaxis(p3d.data, -1, 2).astype(np.float64)
            zet = np.moveaxis(p2d.data[:, 0], -1, 1).astype(np.float64)
            with self._plan_lock:
                self.plan_misses += 1

        H, W = references[0].zeta.shape[1:3]
        u3 = self.normalizer.denormalize("u3", vol[:, 0])[:, :, :H, :W]
        v3 = self.normalizer.denormalize("v3", vol[:, 1])[:, :, :H, :W]
        w3 = self.normalizer.denormalize("w3", vol[:, 2])[:, :, :H, :W]
        zeta = self.normalizer.denormalize("zeta", zet)[:, :, :H, :W]

        per_episode = seconds / len(references)
        results: List[ForecastResult] = []
        for i, r in enumerate(references):
            fields = FieldWindow(
                np.ascontiguousarray(u3[i]), np.ascontiguousarray(v3[i]),
                np.ascontiguousarray(w3[i]), np.ascontiguousarray(zeta[i]))
            # the initial condition is known exactly — keep it
            fields.u3[0], fields.v3[0], fields.w3[0] = \
                r.u3[0], r.v3[0], r.w3[0]
            fields.zeta[0] = r.zeta[0]
            results.append(ForecastResult(fields, per_episode,
                                          compiled=compiled_fwd is not None))
        return results
