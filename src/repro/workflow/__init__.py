"""End-to-end hybrid forecasting workflow (paper Fig. 1 / §III-A)."""

from .engine import ForecastEngine
from .forecast import (
    DualModelForecaster,
    FieldWindow,
    ForecastResult,
    SurrogateForecaster,
)
from .hybrid import EpisodeReport, HybridWorkflow, WorkflowReport
from .ensemble import EnsembleForecast, EnsembleForecaster

__all__ = [
    "ForecastEngine",
    "FieldWindow",
    "ForecastResult",
    "SurrogateForecaster",
    "DualModelForecaster",
    "EpisodeReport",
    "HybridWorkflow",
    "WorkflowReport",
    "EnsembleForecast",
    "EnsembleForecaster",
]
