"""End-to-end hybrid forecasting workflow (paper Fig. 1 / §III-A).

:class:`ForecastEngine` is the vectorised inference core; every other
class here composes it behind the *batch-executor protocol*
(``forecast_batch(windows) -> list[ForecastResult]`` plus a
``time_steps`` property).  Anything implementing that protocol — the
engine itself, a :class:`SurrogateForecaster`, a serving-side
:class:`~repro.serve.scheduler.MicroBatchScheduler` or
:class:`~repro.serve.pool.EngineWorkerPool` — slots into
:class:`EnsembleForecaster` and :class:`HybridWorkflow` unchanged, so
direct and served calls run one code path.
"""

from .engine import CompiledForward, ForecastEngine
from .forecast import (
    DualModelForecaster,
    FieldWindow,
    ForecastResult,
    SurrogateForecaster,
)
from .hybrid import EpisodeReport, HybridWorkflow, WorkflowReport
from .ensemble import EnsembleForecast, EnsembleForecaster

__all__ = [
    "CompiledForward",
    "ForecastEngine",
    "FieldWindow",
    "ForecastResult",
    "SurrogateForecaster",
    "DualModelForecaster",
    "EpisodeReport",
    "HybridWorkflow",
    "WorkflowReport",
    "EnsembleForecast",
    "EnsembleForecaster",
]
