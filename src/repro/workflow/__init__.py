"""End-to-end hybrid forecasting workflow (paper Fig. 1 / §III-A).

:class:`ForecastEngine` is the vectorised inference core; every other
class here composes it behind the *batch-executor protocol*
(``forecast_batch(windows) -> list[ForecastResult]`` plus a
``time_steps`` property).  Anything implementing that protocol — the
engine itself, a :class:`SurrogateForecaster`, a serving-side
:class:`~repro.serve.scheduler.MicroBatchScheduler` or
:class:`~repro.serve.pool.EngineWorkerPool` — slots into
:class:`EnsembleForecaster` and :class:`HybridWorkflow` unchanged, so
direct and served calls run one code path.

The adjoint tier mirrors the protocol:
``sensitivity_batch(windows, wrt=...) -> list[SensitivityResult]``
differentiates scalar surge diagnostics with respect to input fields
and storm-overlay parameters (see :mod:`~repro.workflow.sensitivity`
and ``docs/differentiation.md``).
"""

from .engine import CompiledForward, ForecastEngine
from .forecast import (
    DualModelForecaster,
    FieldWindow,
    ForecastResult,
    SurrogateForecaster,
)
from .hybrid import EpisodeReport, HybridWorkflow, WorkflowReport
from .ensemble import EnsembleForecast, EnsembleForecaster
from .sensitivity import (
    DIAGNOSTICS,
    STORM_PARAMS,
    GradientRequest,
    SensitivityResult,
    StormOverlay,
    evaluate_diagnostic,
)

__all__ = [
    "CompiledForward",
    "ForecastEngine",
    "FieldWindow",
    "ForecastResult",
    "SurrogateForecaster",
    "DualModelForecaster",
    "EpisodeReport",
    "HybridWorkflow",
    "WorkflowReport",
    "EnsembleForecast",
    "EnsembleForecaster",
    "DIAGNOSTICS",
    "STORM_PARAMS",
    "GradientRequest",
    "SensitivityResult",
    "StormOverlay",
    "evaluate_diagnostic",
]
