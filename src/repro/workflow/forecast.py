"""Surrogate forecasting: single episodes and dual-model rollouts.

Implements the inference side of the paper's workflow (§III-A) on top
of the batched :class:`~repro.workflow.engine.ForecastEngine`:

* :class:`SurrogateForecaster` — runs one trained surrogate on
  episodes assembled from an initial condition plus future boundary
  conditions; ``forecast_episode`` is the batch-1 special case of the
  engine and ``forecast_batch`` exposes the vectorised path.
* :class:`DualModelForecaster` — the paper's long-horizon scheme: a
  coarse-interval model forecasts the full horizon, then each coarse
  snapshot seeds the fine-interval model.  All T_c fine episodes run
  in ONE batched forward after the coarse pass (two model forwards
  total for the whole 12-day rollout).
"""

from __future__ import annotations

from typing import List, Sequence

from ..data.preprocess import Normalizer
from ..swin.model import CoastalSurrogate
from .engine import FieldWindow, ForecastEngine, ForecastResult

__all__ = ["FieldWindow", "ForecastResult", "SurrogateForecaster",
           "DualModelForecaster"]


class SurrogateForecaster:
    """Run a trained surrogate on (IC, boundary-condition) episodes."""

    def __init__(self, model: CoastalSurrogate, normalizer: Normalizer,
                 boundary_width: int = 1):
        self.engine = ForecastEngine(model, normalizer, boundary_width)
        self.model = model
        self.normalizer = normalizer
        self.boundary_width = boundary_width
        self.pad_hw = self.engine.pad_hw

    @property
    def time_steps(self) -> int:
        """Episode length T — part of the batch-executor protocol."""
        return self.engine.time_steps

    def forecast_batch(self, references: Sequence[FieldWindow]
                       ) -> List[ForecastResult]:
        """Forecast N episodes in one vectorised model forward."""
        return self.engine.forecast_batch(references)

    def forecast_episode(self, reference: FieldWindow) -> ForecastResult:
        """Forecast one episode (batch-1 special case of the engine).

        Parameters
        ----------
        reference: window of T snapshots; slot 0 is consumed as the
            initial condition, slots 1..T−1 contribute only their
            lateral boundary rims (the surrogate never sees the interior
            of future snapshots).
        """
        return self.engine.forecast_batch([reference])[0]


class DualModelForecaster:
    """Coarse 12-day model + fine 12-hour model (paper §III-A).

    The coarse model forecasts the full horizon at the coarse interval;
    each coarse snapshot then serves as the initial condition of a fine
    episode.  Boundary conditions at the fine interval come from the
    reference data (as in the paper, future lateral boundary conditions
    are exogenous inputs supplied by a larger-domain model).
    """

    def __init__(self, coarse: SurrogateForecaster, fine: SurrogateForecaster,
                 coarse_ratio: int = 24):
        self.coarse = coarse
        self.fine = fine
        self.coarse_ratio = int(coarse_ratio)

    def forecast(self, reference_fine: FieldWindow) -> ForecastResult:
        """Full-horizon forecast at the fine interval.

        One coarse forward, then one batched fine forward covering all
        T_c fine episodes at once.

        Parameters
        ----------
        reference_fine: (T_c · ratio) fine-interval snapshots providing
            the initial condition (slot 0) and boundary rims throughout.

        Returns
        -------
        ForecastResult whose fields hold T_c · ratio fine snapshots.
        """
        Tc = self.coarse.model.config.time_steps
        Tf = self.fine.model.config.time_steps
        ratio = self.coarse_ratio
        if Tf != ratio:
            raise ValueError(
                f"fine model time_steps {Tf} must equal coarse_ratio {ratio}")
        need = Tc * ratio
        if reference_fine.T < need:
            raise ValueError(
                f"need {need} fine snapshots, got {reference_fine.T}")

        # coarse window: every ratio-th fine snapshot
        sub = slice(0, need, ratio)
        coarse_ref = FieldWindow(
            reference_fine.u3[sub], reference_fine.v3[sub],
            reference_fine.w3[sub], reference_fine.zeta[sub])
        coarse_out = self.coarse.forecast_episode(coarse_ref)

        # every coarse snapshot seeds one fine episode; run them all in
        # a single batched forward
        fine_refs: List[FieldWindow] = []
        for k in range(Tc):
            sl = slice(k * ratio, (k + 1) * ratio)
            fine_ref = FieldWindow(
                reference_fine.u3[sl].copy(), reference_fine.v3[sl].copy(),
                reference_fine.w3[sl].copy(), reference_fine.zeta[sl].copy())
            fine_ref.u3[0] = coarse_out.fields.u3[k]
            fine_ref.v3[0] = coarse_out.fields.v3[k]
            fine_ref.w3[0] = coarse_out.fields.w3[k]
            fine_ref.zeta[0] = coarse_out.fields.zeta[k]
            fine_refs.append(fine_ref)
        fine_outs = self.fine.forecast_batch(fine_refs)

        total_seconds = coarse_out.inference_seconds \
            + sum(o.inference_seconds for o in fine_outs)
        return ForecastResult(
            FieldWindow.concat([o.fields for o in fine_outs]),
            total_seconds, episodes=1 + Tc)
