"""Surrogate forecasting: single episodes and dual-model rollouts.

Implements the inference side of the paper's workflow (§III-A):

* :class:`SurrogateForecaster` — runs one trained surrogate on an
  episode assembled from an initial condition plus future boundary
  conditions, handling normalisation, mesh padding and fp16 staging.
* :class:`DualModelForecaster` — the paper's long-horizon scheme: a
  coarse-interval model forecasts the full horizon, then each coarse
  snapshot seeds the fine-interval model, yielding the full horizon at
  fine resolution (12 days of half-hourly snapshots from 24 coarse
  steps × 24 fine steps).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import assemble_episode_input
from ..data.preprocess import Normalizer, pad_mesh, padded_shape, unpad_mesh
from ..swin.model import CoastalSurrogate
from ..tensor import Tensor, no_grad

__all__ = ["FieldWindow", "ForecastResult", "SurrogateForecaster",
           "DualModelForecaster"]


@dataclass
class FieldWindow:
    """A window of physical fields (denormalised, unpadded).

    ``u3, v3, w3``: (T, H, W, D); ``zeta``: (T, H, W).
    """

    u3: np.ndarray
    v3: np.ndarray
    w3: np.ndarray
    zeta: np.ndarray

    @property
    def T(self) -> int:
        return self.zeta.shape[0]

    def snapshot(self, t: int) -> "FieldWindow":
        """Single-snapshot view (T = 1)."""
        return FieldWindow(self.u3[t:t + 1], self.v3[t:t + 1],
                           self.w3[t:t + 1], self.zeta[t:t + 1])

    @staticmethod
    def concat(windows: Sequence["FieldWindow"]) -> "FieldWindow":
        return FieldWindow(
            np.concatenate([w.u3 for w in windows], axis=0),
            np.concatenate([w.v3 for w in windows], axis=0),
            np.concatenate([w.w3 for w in windows], axis=0),
            np.concatenate([w.zeta for w in windows], axis=0),
        )


@dataclass
class ForecastResult:
    """Forecast plus bookkeeping."""

    fields: FieldWindow
    inference_seconds: float
    episodes: int = 1


class SurrogateForecaster:
    """Run a trained surrogate on (IC, boundary-condition) episodes."""

    def __init__(self, model: CoastalSurrogate, normalizer: Normalizer,
                 boundary_width: int = 1):
        self.model = model
        self.normalizer = normalizer
        self.boundary_width = boundary_width
        cfg = model.config
        self.pad_hw = (cfg.mesh[0], cfg.mesh[1])

    # ------------------------------------------------------------------
    def _normalize_window(self, window: FieldWindow
                          ) -> Dict[str, np.ndarray]:
        ph, pw = self.pad_hw
        out = {}
        for var, arr in (("u3", window.u3), ("v3", window.v3),
                         ("w3", window.w3), ("zeta", window.zeta)):
            a = self.normalizer.normalize(var, arr.astype(np.float32))
            a = np.moveaxis(a, 0, -1)
            a = pad_mesh(a, ph, pw)
            out[var] = np.moveaxis(a, -1, 0)
        return out

    def forecast_episode(self, reference: FieldWindow) -> ForecastResult:
        """Forecast one episode.

        Parameters
        ----------
        reference: window of T snapshots; slot 0 is consumed as the
            initial condition, slots 1..T−1 contribute only their
            lateral boundary rims (the surrogate never sees the interior
            of future snapshots).
        """
        T = reference.T
        cfg = self.model.config
        if T != cfg.time_steps:
            raise ValueError(
                f"window length {T} != model time_steps {cfg.time_steps}")
        norm = self._normalize_window(reference)
        x3d, x2d = assemble_episode_input(
            norm["u3"], norm["v3"], norm["w3"], norm["zeta"],
            self.boundary_width)

        self.model.eval()
        t0 = time.perf_counter()
        with no_grad():
            p3d, p2d = self.model(Tensor(x3d[None].astype(np.float32)),
                                  Tensor(x2d[None].astype(np.float32)))
        seconds = time.perf_counter() - t0

        H, W = reference.zeta.shape[1:3]
        # (1, 3, H', W', D, T) → per-variable (T, H, W, D)
        vol = np.moveaxis(p3d.data[0], -1, 1)      # (3, T, H', W', D)
        zet = np.moveaxis(p2d.data[0, 0], -1, 0)   # (T, H', W')
        def crop_seq(a: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(a[:, :H, :W, ...])

        u3 = crop_seq(self.normalizer.denormalize("u3", vol[0]))
        v3 = crop_seq(self.normalizer.denormalize("v3", vol[1]))
        w3 = crop_seq(self.normalizer.denormalize("w3", vol[2]))
        zeta = crop_seq(self.normalizer.denormalize("zeta", zet))

        # the initial condition is known exactly — keep it
        u3[0], v3[0], w3[0] = reference.u3[0], reference.v3[0], reference.w3[0]
        zeta[0] = reference.zeta[0]
        return ForecastResult(FieldWindow(u3, v3, w3, zeta), seconds)


class DualModelForecaster:
    """Coarse 12-day model + fine 12-hour model (paper §III-A).

    The coarse model forecasts the full horizon at the coarse interval;
    each coarse snapshot then serves as the initial condition of a fine
    episode.  Boundary conditions at the fine interval come from the
    reference data (as in the paper, future lateral boundary conditions
    are exogenous inputs supplied by a larger-domain model).
    """

    def __init__(self, coarse: SurrogateForecaster, fine: SurrogateForecaster,
                 coarse_ratio: int = 24):
        self.coarse = coarse
        self.fine = fine
        self.coarse_ratio = int(coarse_ratio)

    def forecast(self, reference_fine: FieldWindow) -> ForecastResult:
        """Full-horizon forecast at the fine interval.

        Parameters
        ----------
        reference_fine: (T_c · ratio) fine-interval snapshots providing
            the initial condition (slot 0) and boundary rims throughout.

        Returns
        -------
        ForecastResult whose fields hold T_c · ratio fine snapshots.
        """
        Tc = self.coarse.model.config.time_steps
        Tf = self.fine.model.config.time_steps
        ratio = self.coarse_ratio
        if Tf != ratio:
            raise ValueError(
                f"fine model time_steps {Tf} must equal coarse_ratio {ratio}")
        need = Tc * ratio
        if reference_fine.T < need:
            raise ValueError(
                f"need {need} fine snapshots, got {reference_fine.T}")

        # coarse window: every ratio-th fine snapshot
        sub = slice(0, need, ratio)
        coarse_ref = FieldWindow(
            reference_fine.u3[sub], reference_fine.v3[sub],
            reference_fine.w3[sub], reference_fine.zeta[sub])
        coarse_out = self.coarse.forecast_episode(coarse_ref)

        total_seconds = coarse_out.inference_seconds
        pieces: List[FieldWindow] = []
        episodes = 1
        for k in range(Tc):
            fine_ref_slice = slice(k * ratio, (k + 1) * ratio)
            fine_ref = FieldWindow(
                reference_fine.u3[fine_ref_slice].copy(),
                reference_fine.v3[fine_ref_slice].copy(),
                reference_fine.w3[fine_ref_slice].copy(),
                reference_fine.zeta[fine_ref_slice].copy())
            # seed the fine episode with the coarse model's snapshot k
            fine_ref.u3[0] = coarse_out.fields.u3[k]
            fine_ref.v3[0] = coarse_out.fields.v3[k]
            fine_ref.w3[0] = coarse_out.fields.w3[k]
            fine_ref.zeta[0] = coarse_out.fields.zeta[k]
            out = self.fine.forecast_episode(fine_ref)
            total_seconds += out.inference_seconds
            episodes += 1
            pieces.append(out.fields)

        return ForecastResult(FieldWindow.concat(pieces), total_seconds,
                              episodes)
