"""Hybrid AI + ROMS workflow with physics verification (paper Fig. 1).

For every forecast episode the workflow:

1. runs the AI surrogate,
2. verifies the water-mass residual of its output,
3. on failure, reverts to the ROMS-like solver for that episode and
   continues from the solver's state.

:meth:`HybridWorkflow.run_many` serves many scenarios at once: at each
episode index the surrogate passes of all still-active scenarios run
in ONE batched model forward and the verification gate is evaluated in
one vectorised residual pass; only failed scenarios fall back to the
(inherently serial) solver individually.  :meth:`HybridWorkflow.run`
is the single-scenario special case.

The report accounts both *measured* wall-clock on this machine and
*modelled* paper-scale timing (through
:class:`~repro.hpc.roms_perf.RomsPerfModel`), which regenerates
Fig. 8's time/speedup-vs-threshold curves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..ocean.model import RomsLikeModel, Snapshot
from ..ocean.swe import ShallowWaterState
from ..physics.verifier import VerificationResult, Verifier
from .forecast import FieldWindow, SurrogateForecaster

__all__ = ["EpisodeReport", "WorkflowReport", "HybridWorkflow"]


@dataclass
class EpisodeReport:
    """Outcome of one episode of the hybrid loop."""

    index: int
    verification: VerificationResult
    used_fallback: bool
    surrogate_seconds: float
    fallback_seconds: float


@dataclass
class WorkflowReport:
    """End-to-end accounting for a hybrid run."""

    episodes: List[EpisodeReport] = field(default_factory=list)

    @property
    def n_episodes(self) -> int:
        return len(self.episodes)

    @property
    def n_fallbacks(self) -> int:
        return sum(e.used_fallback for e in self.episodes)

    @property
    def pass_rate(self) -> float:
        if not self.episodes:
            return float("nan")
        return 1.0 - self.n_fallbacks / self.n_episodes

    @property
    def surrogate_seconds(self) -> float:
        return sum(e.surrogate_seconds for e in self.episodes)

    @property
    def fallback_seconds(self) -> float:
        return sum(e.fallback_seconds for e in self.episodes)

    @property
    def total_seconds(self) -> float:
        return self.surrogate_seconds + self.fallback_seconds


class HybridWorkflow:
    """Episode loop: surrogate → verify → (maybe) solver fallback.

    Parameters
    ----------
    forecaster: any batch executor — an object with
        ``forecast_batch(windows) -> list[ForecastResult]`` and a
        ``time_steps`` property.  Direct callers pass a
        :class:`SurrogateForecaster`; a serving deployment injects a
        :class:`~repro.serve.scheduler.MicroBatchScheduler` so hybrid
        surrogate passes coalesce with unrelated traffic.  Both routes
        run the same code.
    ocean: the ROMS-like model used both for fallback simulation and
        for the verification geometry.
    verifier: mass-conservation check; its threshold is the workflow's
        quality gate.
    fallback_pool: optional executor with
        ``submit(fn, *args) -> future`` (e.g.
        :class:`concurrent.futures.ThreadPoolExecutor`).  When set,
        solver fallbacks of an episode index are dispatched out-of-band
        and run concurrently with each other instead of serially in the
        episode loop; results are identical (the solver is
        deterministic and each scenario's chain is preserved).
    """

    def __init__(self, forecaster: SurrogateForecaster,
                 ocean: RomsLikeModel, verifier: Verifier,
                 fallback_pool=None):
        self.forecaster = forecaster
        self.ocean = ocean
        self.verifier = verifier
        self.fallback_pool = fallback_pool

    # ------------------------------------------------------------------
    def run(self, reference: FieldWindow,
            fallback_states: Sequence[ShallowWaterState],
            threshold: Optional[float] = None
            ) -> tuple[FieldWindow, WorkflowReport]:
        """Run the hybrid loop over consecutive episodes of one scenario.

        Parameters
        ----------
        reference: (n_episodes · T) snapshots providing ICs and boundary
            conditions (see :meth:`SurrogateForecaster.forecast_episode`).
        fallback_states: solver prognostic states aligned with each
            episode start, used when an episode must be re-simulated.
        threshold: override the verifier's threshold (Fig. 8 sweeps).

        Returns
        -------
        (forecast fields over the full horizon, workflow report).
        """
        return self.run_many([reference], [fallback_states], threshold)[0]

    # ------------------------------------------------------------------
    def run_many(self, references: Sequence[FieldWindow],
                 fallback_states: Sequence[Sequence[ShallowWaterState]],
                 threshold: Optional[float] = None
                 ) -> List[Tuple[FieldWindow, WorkflowReport]]:
        """Run the hybrid loop over many scenarios concurrently.

        Episodes within a scenario stay sequential (each initial
        condition chains from the previous episode's output), but at a
        given episode index the scenarios are independent — so their
        surrogate passes share one batched forward and one vectorised
        batch verification.  Scenarios whose episode fails the gate
        fall back to the solver individually.

        Parameters
        ----------
        references: one reference window per scenario (lengths may
            differ; all scenarios must share the forecaster's mesh).
        fallback_states: per scenario, solver states aligned with each
            episode start.
        threshold: override the verifier's threshold for all scenarios.

        Returns
        -------
        One (forecast fields, workflow report) pair per scenario, in
        input order.
        """
        if len(references) != len(fallback_states):
            raise ValueError(
                f"{len(references)} references but "
                f"{len(fallback_states)} fallback-state sequences")
        T = self.forecaster.time_steps
        n_eps: List[int] = []
        for reference, states in zip(references, fallback_states):
            n = reference.T // T
            if n == 0:
                raise ValueError(
                    f"reference window of {reference.T} < T={T}")
            if len(states) < n:
                raise ValueError("need one fallback state per episode")
            n_eps.append(n)

        n_scen = len(references)
        reports = [WorkflowReport() for _ in range(n_scen)]
        pieces: List[List[FieldWindow]] = [[] for _ in range(n_scen)]
        prev_fields: List[Optional[FieldWindow]] = [None] * n_scen

        for ep in range(max(n_eps)):
            active = [i for i in range(n_scen) if ep < n_eps[i]]
            refs: List[FieldWindow] = []
            for i in active:
                sl = slice(ep * T, (ep + 1) * T)
                reference = references[i]
                ref = FieldWindow(
                    reference.u3[sl].copy(), reference.v3[sl].copy(),
                    reference.w3[sl].copy(), reference.zeta[sl].copy())
                if prev_fields[i] is not None:
                    # chain episodes: IC is the previous episode's output
                    ref.u3[0] = prev_fields[i].u3[-1]
                    ref.v3[0] = prev_fields[i].v3[-1]
                    ref.w3[0] = prev_fields[i].w3[-1]
                    ref.zeta[0] = prev_fields[i].zeta[-1]
                refs.append(ref)

            results = self.forecaster.forecast_batch(refs)
            vers = self.verifier.verify_batch(
                [r.fields.zeta for r in results],
                [r.fields.u3 for r in results],
                [r.fields.v3 for r in results], threshold)

            # gate first, then dispatch every failed scenario's solver
            # run; with a pool the fallbacks of this episode index run
            # concurrently (out-of-band) instead of serially here
            jobs = {}
            if self.fallback_pool is not None:
                for i, ver in zip(active, vers):
                    if not ver.passed:
                        jobs[i] = self.fallback_pool.submit(
                            self._run_fallback, fallback_states[i][ep], T)

            for i, ref, result, ver in zip(active, refs, results, vers):
                fallback_seconds = 0.0
                if ver.passed:
                    fields = result.fields
                    used_fallback = False
                else:
                    snaps, fallback_seconds = jobs[i].result() \
                        if i in jobs \
                        else self._run_fallback(fallback_states[i][ep], T)
                    fields = self._snaps_to_window(ref, snaps)
                    used_fallback = True

                pieces[i].append(fields)
                prev_fields[i] = fields
                reports[i].episodes.append(EpisodeReport(
                    index=ep, verification=ver, used_fallback=used_fallback,
                    surrogate_seconds=result.inference_seconds,
                    fallback_seconds=fallback_seconds,
                ))

        return [(FieldWindow.concat(p), r) for p, r in zip(pieces, reports)]

    # ------------------------------------------------------------------
    def _run_fallback(self, state: ShallowWaterState, T: int
                      ) -> Tuple[Sequence[Snapshot], float]:
        """One solver fallback episode; wall-clock measured where it runs."""
        t0 = time.perf_counter()
        snaps = self.ocean.forecast(state, T - 1)
        return snaps, time.perf_counter() - t0

    # ------------------------------------------------------------------
    @staticmethod
    def _snaps_to_window(ref: FieldWindow,
                         snaps: Sequence[Snapshot]) -> FieldWindow:
        """IC snapshot followed by the solver's T−1 forecast snapshots."""
        u3 = np.concatenate(
            [ref.u3[:1], np.stack([s.u3 for s in snaps])], axis=0)
        v3 = np.concatenate(
            [ref.v3[:1], np.stack([s.v3 for s in snaps])], axis=0)
        w3 = np.concatenate(
            [ref.w3[:1], np.stack([s.w3 for s in snaps])], axis=0)
        zeta = np.concatenate(
            [ref.zeta[:1], np.stack([s.zeta for s in snaps])], axis=0)
        return FieldWindow(u3, v3, w3, zeta)
