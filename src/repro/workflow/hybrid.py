"""Hybrid AI + ROMS workflow with physics verification (paper Fig. 1).

For every forecast episode the workflow:

1. runs the AI surrogate,
2. verifies the water-mass residual of its output,
3. on failure, reverts to the ROMS-like solver for that episode and
   continues from the solver's state.

The report accounts both *measured* wall-clock on this machine and
*modelled* paper-scale timing (through
:class:`~repro.hpc.roms_perf.RomsPerfModel`), which regenerates
Fig. 8's time/speedup-vs-threshold curves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..ocean.model import RomsLikeModel, Snapshot
from ..ocean.swe import ShallowWaterState
from ..physics.verifier import VerificationResult, Verifier
from .forecast import FieldWindow, SurrogateForecaster

__all__ = ["EpisodeReport", "WorkflowReport", "HybridWorkflow"]


@dataclass
class EpisodeReport:
    """Outcome of one episode of the hybrid loop."""

    index: int
    verification: VerificationResult
    used_fallback: bool
    surrogate_seconds: float
    fallback_seconds: float


@dataclass
class WorkflowReport:
    """End-to-end accounting for a hybrid run."""

    episodes: List[EpisodeReport] = field(default_factory=list)

    @property
    def n_episodes(self) -> int:
        return len(self.episodes)

    @property
    def n_fallbacks(self) -> int:
        return sum(e.used_fallback for e in self.episodes)

    @property
    def pass_rate(self) -> float:
        if not self.episodes:
            return float("nan")
        return 1.0 - self.n_fallbacks / self.n_episodes

    @property
    def surrogate_seconds(self) -> float:
        return sum(e.surrogate_seconds for e in self.episodes)

    @property
    def fallback_seconds(self) -> float:
        return sum(e.fallback_seconds for e in self.episodes)

    @property
    def total_seconds(self) -> float:
        return self.surrogate_seconds + self.fallback_seconds


class HybridWorkflow:
    """Episode loop: surrogate → verify → (maybe) solver fallback.

    Parameters
    ----------
    forecaster: trained surrogate wrapper.
    ocean: the ROMS-like model used both for fallback simulation and
        for the verification geometry.
    verifier: mass-conservation check; its threshold is the workflow's
        quality gate.
    """

    def __init__(self, forecaster: SurrogateForecaster,
                 ocean: RomsLikeModel, verifier: Verifier):
        self.forecaster = forecaster
        self.ocean = ocean
        self.verifier = verifier

    # ------------------------------------------------------------------
    def run(self, reference: FieldWindow,
            fallback_states: Sequence[ShallowWaterState],
            threshold: Optional[float] = None
            ) -> tuple[FieldWindow, WorkflowReport]:
        """Run the hybrid loop over consecutive episodes.

        Parameters
        ----------
        reference: (n_episodes · T) snapshots providing ICs and boundary
            conditions (see :meth:`SurrogateForecaster.forecast_episode`).
        fallback_states: solver prognostic states aligned with each
            episode start, used when an episode must be re-simulated.
        threshold: override the verifier's threshold (Fig. 8 sweeps).

        Returns
        -------
        (forecast fields over the full horizon, workflow report).
        """
        T = self.forecaster.model.config.time_steps
        n_episodes = reference.T // T
        if n_episodes == 0:
            raise ValueError(f"reference window of {reference.T} < T={T}")
        if len(fallback_states) < n_episodes:
            raise ValueError("need one fallback state per episode")

        report = WorkflowReport()
        pieces: List[FieldWindow] = []
        prev_fields: Optional[FieldWindow] = None

        for ep in range(n_episodes):
            sl = slice(ep * T, (ep + 1) * T)
            ref = FieldWindow(reference.u3[sl].copy(), reference.v3[sl].copy(),
                              reference.w3[sl].copy(),
                              reference.zeta[sl].copy())
            if prev_fields is not None:
                # chain episodes: IC is the previous episode's last output
                ref.u3[0] = prev_fields.u3[-1]
                ref.v3[0] = prev_fields.v3[-1]
                ref.w3[0] = prev_fields.w3[-1]
                ref.zeta[0] = prev_fields.zeta[-1]

            result = self.forecaster.forecast_episode(ref)
            ver = self.verifier.verify(result.fields.zeta, result.fields.u3,
                                       result.fields.v3, threshold)

            fallback_seconds = 0.0
            if ver.passed:
                fields = result.fields
                used_fallback = False
            else:
                t0 = time.perf_counter()
                snaps = self.ocean.forecast(fallback_states[ep], T - 1)
                fallback_seconds = time.perf_counter() - t0
                fields = self._snaps_to_window(ref, snaps)
                used_fallback = True

            pieces.append(fields)
            prev_fields = fields
            report.episodes.append(EpisodeReport(
                index=ep, verification=ver, used_fallback=used_fallback,
                surrogate_seconds=result.inference_seconds,
                fallback_seconds=fallback_seconds,
            ))

        return FieldWindow.concat(pieces), report

    # ------------------------------------------------------------------
    @staticmethod
    def _snaps_to_window(ref: FieldWindow,
                         snaps: Sequence[Snapshot]) -> FieldWindow:
        """IC snapshot followed by the solver's T−1 forecast snapshots."""
        u3 = np.concatenate(
            [ref.u3[:1], np.stack([s.u3 for s in snaps])], axis=0)
        v3 = np.concatenate(
            [ref.v3[:1], np.stack([s.v3 for s in snaps])], axis=0)
        w3 = np.concatenate(
            [ref.w3[:1], np.stack([s.w3 for s in snaps])], axis=0)
        zeta = np.concatenate(
            [ref.zeta[:1], np.stack([s.zeta for s in snaps])], axis=0)
        return FieldWindow(u3, v3, w3, zeta)
