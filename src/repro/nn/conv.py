"""Convolution layer modules wrapping the N-d kernels in repro.tensor.

The decoder of the surrogate (paper Fig. 2) is a stack of 2-D/3-D
transposed convolutions with BatchNorm + GELU; patch recovery finishes
with 1×1 convolutions.  All four layer classes below share the generic
N-d implementations.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..tensor import Tensor, conv_nd, conv_transpose_nd
from . import init
from .module import Module, Parameter

__all__ = ["Conv2d", "Conv3d", "ConvTranspose2d", "ConvTranspose3d"]

IntOrTuple = Union[int, Tuple[int, ...]]


def _tup(v: IntOrTuple, n: int) -> Tuple[int, ...]:
    return tuple(v) if isinstance(v, (tuple, list)) else (int(v),) * n


class _ConvNd(Module):
    """Shared implementation for direct convolutions."""

    nd: int = 2

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: IntOrTuple, stride: IntOrTuple = 1,
                 padding: IntOrTuple = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        k = _tup(kernel_size, self.nd)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = k
        self.stride = _tup(stride, self.nd)
        self.padding = _tup(padding, self.nd)
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels) + k, rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != self.nd + 2:
            raise ValueError(
                f"{type(self).__name__} expects {self.nd + 2}-d input, "
                f"got shape {x.shape}"
            )
        return conv_nd(x, self.weight, self.bias,
                       stride=self.stride, padding=self.padding)


class Conv2d(_ConvNd):
    """2-D convolution over ``(N, C, H, W)``."""
    nd = 2


class Conv3d(_ConvNd):
    """3-D convolution over ``(N, C, H, W, D)``."""
    nd = 3


class _ConvTransposeNd(Module):
    """Shared implementation for transposed (upsampling) convolutions."""

    nd: int = 2

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: IntOrTuple, stride: IntOrTuple = 1,
                 output_padding: IntOrTuple = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        k = _tup(kernel_size, self.nd)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = k
        self.stride = _tup(stride, self.nd)
        self.output_padding = _tup(output_padding, self.nd)
        self.weight = Parameter(
            init.kaiming_uniform((in_channels, out_channels) + k, rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != self.nd + 2:
            raise ValueError(
                f"{type(self).__name__} expects {self.nd + 2}-d input, "
                f"got shape {x.shape}"
            )
        return conv_transpose_nd(x, self.weight, self.bias,
                                 stride=self.stride,
                                 output_padding=self.output_padding)


class ConvTranspose2d(_ConvTransposeNd):
    """2-D transposed convolution over ``(N, C, H, W)``."""
    nd = 2


class ConvTranspose3d(_ConvTransposeNd):
    """3-D transposed convolution over ``(N, C, H, W, D)``."""
    nd = 3
