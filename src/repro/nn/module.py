"""Module system: parameter containers with state-dict (de)serialisation.

Mirrors the ergonomics of ``torch.nn.Module`` closely enough that the
surrogate model code reads like the paper's reference implementation:
attribute assignment registers parameters/submodules, ``state_dict`` /
``load_state_dict`` round-trip through flat name→array mappings (used by
:mod:`repro.train.checkpoint`), and ``train()``/``eval()`` toggle
behavioural flags (dropout, batch-norm statistics).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A Tensor that is registered as a trainable leaf when assigned."""

    def __init__(self, data, name: str = ""):
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=True,
                         name=name)


class Module:
    """Base class for all neural-network layers and models."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    def register_buffer(self, key: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BatchNorm running stats)."""
        self._buffers[key] = np.asarray(value)
        object.__setattr__(self, key, self._buffers[key])

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", self._buffers[name])
        for name, mod in self._modules.items():
            yield from mod.named_buffers(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for mod in self._modules.values():
            yield from mod.modules()

    def num_parameters(self) -> int:
        """Total trainable scalar count (paper reports this in Table IV)."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[f"{name}"] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray],
                        strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = []
        for name, p in own.items():
            if name in state:
                if p.data.shape != state[name].shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{p.data.shape} vs {state[name].shape}"
                    )
                p.data[...] = state[name]
            else:
                missing.append(name)
        for name, buf in self.named_buffers():
            if name in state:
                buf[...] = state[name]
        if strict and missing:
            raise KeyError(f"missing parameters in state dict: {missing}")

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = ModuleList(list(layers))

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]

    def __len__(self) -> int:
        return len(self.layers)


class ModuleList(Module):
    """List container whose entries are registered submodules."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._list: List[Module] = []
        for m in modules or []:
            self.append(m)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._list))] = module
        self._list.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def __getitem__(self, i: int) -> Module:
        return self._list[i]

    def __len__(self) -> int:
        return len(self._list)

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container; call its entries")
