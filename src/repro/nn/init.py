"""Weight initialisation schemes.

Swin Transformers initialise linear/attention weights with truncated
normal (std 0.02) and norms with ones/zeros; convolutions use Kaiming
fan-in scaling.  All functions take an explicit ``rng`` so that model
construction is fully deterministic and reproducible across runs — a
hard requirement for the paper-reproduction benchmarks.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "trunc_normal",
    "xavier_uniform",
    "kaiming_uniform",
    "zeros",
    "ones",
    "default_rng",
]


def default_rng(seed: int = 0) -> np.random.Generator:
    """Library-wide RNG constructor (PCG64, explicit seed)."""
    return np.random.default_rng(seed)


def trunc_normal(shape: Sequence[int], rng: np.random.Generator,
                 std: float = 0.02, bound: float = 2.0) -> np.ndarray:
    """Normal(0, std) truncated to ±``bound``·std, via resampling."""
    out = rng.normal(0.0, std, size=tuple(shape))
    lim = bound * std
    bad = np.abs(out) > lim
    # Resample outliers; for std=0.02 this converges in a couple rounds.
    while bad.any():
        out[bad] = rng.normal(0.0, std, size=int(bad.sum()))
        bad = np.abs(out) > lim
    return out.astype(np.float32)


def _fans(shape: Sequence[int]) -> Tuple[int, int]:
    """(fan_in, fan_out) for linear or conv kernels."""
    shape = tuple(shape)
    if len(shape) == 2:
        return shape[1], shape[0]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def xavier_uniform(shape: Sequence[int], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    a = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=tuple(shape)).astype(np.float32)


def kaiming_uniform(shape: Sequence[int], rng: np.random.Generator,
                    a: float = np.sqrt(5.0)) -> np.ndarray:
    """PyTorch's default conv/linear init (LeakyReLU gain)."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + a * a))
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=tuple(shape)).astype(np.float32)


def zeros(shape: Sequence[int]) -> np.ndarray:
    return np.zeros(tuple(shape), dtype=np.float32)


def ones(shape: Sequence[int]) -> np.ndarray:
    return np.ones(tuple(shape), dtype=np.float32)
