"""Multi-head self-attention (paper Eq. 1–2).

Operates on token tensors of shape ``(B, N, C)``.  Window and
shifted-window partitioning (the "Swin" part) live in
:mod:`repro.swin.window`; this module is the plain MSA applied inside
each window, with optional additive attention masks used by SW-MSA to
block attention across the cyclic-shift seams.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, astensor, is_grad_enabled
from ..tensor import plan as _plan
from . import init
from .layers import Dropout, Linear
from .module import Module

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Standard MSA: fused QKV projection, per-head scaled dot product.

    Parameters
    ----------
    dim: embedding dimension ``C``.
    num_heads: number of attention heads ``h``; must divide ``dim``.
    qkv_bias: add bias to the QKV projection (Swin default True).
    attn_drop, proj_drop: dropout rates on attention weights / output.
    """

    def __init__(self, dim: int, num_heads: int, qkv_bias: bool = True,
                 attn_drop: float = 0.0, proj_drop: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng if rng is not None else init.default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.qkv = Linear(dim, 3 * dim, bias=qkv_bias, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)
        self.attn_drop = Dropout(attn_drop, rng=rng)
        self.proj_drop = Dropout(proj_drop, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        """Apply self-attention.

        Parameters
        ----------
        x: ``(B, N, C)`` token batch (B = number of windows × batch).
        mask: optional additive mask broadcastable to
            ``(B, num_heads, N, N)``; −inf entries block attention.  A
            ``(nW, 1, N, N)`` mask with ``nW`` dividing B is broadcast
            over the leading batch groups (B laid out batch-slowest)
            without materialising the tiled copy.
        """
        x = astensor(x)
        B, N, C = x.shape
        qkv = self.qkv(x)  # (B, N, 3C)
        qkv = qkv.reshape(B, N, 3, self.num_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, h, N, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        attn = q.matmul(k.swapaxes(-1, -2))  # (B, h, N, N)
        tracing = _plan.tracing()
        inference = not (is_grad_enabled() and attn.requires_grad)
        if tracing:
            # record the in-place scale against attn's buffer slot
            attn = _plan.trace_apply("imul_scalar", (attn,),
                                     {"scale": self.scale})
        elif inference:
            attn.data *= self.scale            # fresh buffer: scale in place
        else:
            attn = attn * self.scale
        if mask is not None:
            m = np.asarray(mask, dtype=attn.dtype)
            if m.ndim == 4 and m.shape[0] != B and B % m.shape[0] == 0:
                # (nW, 1, N, N) per-window mask broadcast over the batch
                # groups (tokens are laid out batch-slowest)
                nW = m.shape[0]
                if tracing:
                    # the mask is shape-dependent only: a plan constant
                    attn = _plan.trace_apply(
                        "add_window_mask", (attn,),
                        {"mask": m, "nW": nW, "heads": self.num_heads})
                elif inference:
                    attn.data.reshape(B // nW, nW, self.num_heads, N, N)[
                        ...] += m[None]
                else:
                    attn = (attn.reshape(B // nW, nW, self.num_heads, N, N)
                            + Tensor(m[None])).reshape(B, self.num_heads,
                                                       N, N)
            else:
                if tracing:
                    attn = _plan.trace_apply("iadd", (attn, Tensor(m)))
                elif inference:
                    attn.data += m
                else:
                    attn = attn + Tensor(m)
        attn = attn.softmax(axis=-1)
        attn = self.attn_drop(attn)

        out = attn.matmul(v)  # (B, h, N, hd)
        out = out.transpose(0, 2, 1, 3).reshape(B, N, C)
        return self.proj_drop(self.proj(out))


@_plan.register_kernel("add_window_mask", "inplace")
def _k_add_window_mask(out, ins, consts):
    """In-place SW-MSA mask add through the batch-grouped view."""
    t = ins[0]
    m, nW, heads = consts["mask"], consts["nW"], consts["heads"]
    B, N = t.shape[0], t.shape[-1]
    t.reshape(B // nW, nW, heads, N, N)[...] += m[None]
    return t
