"""Neural-network layer library on top of :mod:`repro.tensor`.

Provides the module system plus every layer the 4-D Swin surrogate
needs: linear/MLP, LayerNorm/BatchNorm, GELU, dropout, multi-head
self-attention, and 2-D/3-D (transposed) convolutions.
"""

from .module import Module, ModuleList, Parameter, Sequential
from .layers import (
    BatchNorm,
    Dropout,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    MLP,
    ReLU,
    gelu,
)
from .conv import Conv2d, Conv3d, ConvTranspose2d, ConvTranspose3d
from .attention import MultiHeadSelfAttention
from . import init

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "LayerNorm",
    "BatchNorm",
    "GELU",
    "ReLU",
    "Identity",
    "Dropout",
    "MLP",
    "gelu",
    "Conv2d",
    "Conv3d",
    "ConvTranspose2d",
    "ConvTranspose3d",
    "MultiHeadSelfAttention",
    "init",
]
