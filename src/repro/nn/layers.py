"""Core layers: Linear, LayerNorm, BatchNorm, activations, dropout, MLP.

These are the building blocks of the Swin encoder (LayerNorm + MLP with
GELU, Eq. 3 of the paper) and the decoder (BatchNorm + GELU after each
transposed convolution, §III-C).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import special as _sp_special

from ..tensor import Tensor, astensor, is_grad_enabled
from ..tensor import plan as _plan
from . import init
from .module import Module, Parameter

__all__ = [
    "Linear",
    "LayerNorm",
    "BatchNorm",
    "GELU",
    "ReLU",
    "Dropout",
    "Identity",
    "MLP",
    "gelu",
]


def gelu(x: Tensor) -> Tensor:
    """Exact GELU: ``x * Phi(x)`` using the error function.

    Outside of autograd the five-op chain is fused into in-place
    updates of a single buffer — GELU runs over full-resolution decoder
    activations, where every extra temporary is a pass over main
    memory.
    """
    x = astensor(x)
    if _plan.tracing():
        return _plan.trace_apply("gelu", (x,))
    if not (is_grad_enabled() and x.requires_grad):
        y = x.data * np.float32(1.0 / np.sqrt(2.0))
        _sp_special.erf(y, out=y)
        y += 1.0
        y *= x.data
        y *= 0.5
        return Tensor(y)
    return x * ((x * (1.0 / np.sqrt(2.0))).erf() + 1.0) * 0.5


class GELU(Module):
    """Gaussian Error Linear Unit activation (Hendrycks & Gimpel)."""

    def forward(self, x: Tensor) -> Tensor:
        return gelu(x)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine map over the trailing feature axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.trunc_normal((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = astensor(x)
        out = x.matmul(self.weight)
        if self.bias is not None:
            if _plan.tracing():
                # record the in-place bias add against out's buffer slot
                out = _plan.trace_apply("iadd", (out, self.bias))
            elif not (is_grad_enabled() and
                      (x.requires_grad or self.weight.requires_grad)):
                out.data += self.bias.data     # fresh buffer: add in place
            else:
                out = out + self.bias
        return out


class LayerNorm(Module):
    """Normalise over the trailing feature axis with learned affine."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(init.ones((dim,)))
        self.bias = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        x = astensor(x)
        if _plan.tracing():
            return _plan.trace_apply("layernorm",
                                     (x, self.weight, self.bias),
                                     {"eps": self.eps})
        if not (is_grad_enabled() and
                (x.requires_grad or self.weight.requires_grad)):
            # fused inference path: one working buffer, in-place updates
            y = x.data - x.data.mean(axis=-1, keepdims=True)
            var = np.mean(np.square(y), axis=-1, keepdims=True)
            var += self.eps
            np.sqrt(var, out=var)
            y /= var
            y *= self.weight.data
            y += self.bias.data
            return Tensor(y)
        mu = x.mean(axis=-1, keepdims=True)
        var = ((x - mu) * (x - mu)).mean(axis=-1, keepdims=True)
        norm = (x - mu) / (var + self.eps).sqrt()
        return norm * self.weight + self.bias


class BatchNorm(Module):
    """Batch normalisation over channel axis 1 of ``(N, C, *spatial)``.

    Covers BatchNorm2d and BatchNorm3d by normalising over every axis
    except the channel axis; running statistics follow the standard
    exponential-moving-average update in training mode.
    """

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, np.float32))
        self.register_buffer("running_var", np.ones(num_features, np.float32))

    def forward(self, x: Tensor) -> Tensor:
        x = astensor(x)
        axes = (0,) + tuple(range(2, x.ndim))
        bshape = (1, self.num_features) + (1,) * (x.ndim - 2)
        if self.training:
            if _plan.tracing():
                raise _plan.TraceError(
                    "BatchNorm in training mode mutates running stats; "
                    "call model.eval() before tracing")
            mu = x.mean(axis=axes, keepdims=True)
            var = ((x - mu) * (x - mu)).mean(axis=axes, keepdims=True)
            n = x.size // self.num_features
            unbiased = var.data.reshape(-1) * n / max(n - 1, 1)
            self.running_mean *= 1.0 - self.momentum
            self.running_mean += self.momentum * mu.data.reshape(-1)
            self.running_var *= 1.0 - self.momentum
            self.running_var += self.momentum * unbiased
        else:
            # fold running stats into one scale + shift (two passes over
            # x instead of four; x is full-resolution in the decoder)
            inv = (1.0 / np.sqrt(self.running_var + self.eps)).reshape(bshape)
            if not (is_grad_enabled() and
                    (x.requires_grad or self.weight.requires_grad)):
                scale = self.weight.data.reshape(bshape) * inv
                shift = self.bias.data.reshape(bshape) \
                    - self.running_mean.reshape(bshape) * scale
                if _plan.tracing():
                    # running stats fold into per-channel scale/shift plan
                    # constants (recompile after loading new weights)
                    return _plan.trace_apply(
                        "bn_affine", (x,), {"scale": scale, "shift": shift})
                y = x.data * scale
                y += shift
                return Tensor(y)
            scale = self.weight.reshape(bshape) * Tensor(inv)
            shift = self.bias.reshape(bshape) \
                - Tensor(self.running_mean.reshape(bshape)) * scale
            return x * scale + shift
        norm = (x - mu) / (var + self.eps).sqrt()
        return norm * self.weight.reshape(bshape) + self.bias.reshape(bshape)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else init.default_rng(1234)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return astensor(x)
        if _plan.tracing():
            raise _plan.TraceError(
                "Dropout in training mode is stochastic; call "
                "model.eval() before tracing")
        x = astensor(x)
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * Tensor(mask)


class MLP(Module):
    """Two-layer feed-forward block used inside every Swin block (Eq. 3)."""

    def __init__(self, dim: int, hidden_ratio: float = 4.0,
                 drop: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        hidden = int(dim * hidden_ratio)
        rng = rng if rng is not None else init.default_rng()
        self.fc1 = Linear(dim, hidden, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(hidden, dim, rng=rng)
        self.drop = Dropout(drop, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.drop(self.fc2(self.act(self.fc1(x))))


# ----------------------------------------------------------------------
# plan kernels — the fused inference fast paths above, replayed
# verbatim (same in-place NumPy chains, arena buffer as the working
# buffer), so compiled forwards are bitwise identical to eager ones
# ----------------------------------------------------------------------
@_plan.register_kernel("gelu", "compute", rowwise=True)
def _k_gelu(out, ins, consts):
    a = ins[0]
    y = np.multiply(a, np.float32(1.0 / np.sqrt(2.0)), out=out)
    _sp_special.erf(y, out=y)
    y += 1.0
    y *= a
    y *= 0.5
    return y


@_plan.register_kernel("layernorm", "compute", rowwise=True)
def _k_layernorm(out, ins, consts):
    a, w, b = ins
    y = np.subtract(a, a.mean(axis=-1, keepdims=True), out=out)
    var = np.mean(np.square(y), axis=-1, keepdims=True)
    var += consts["eps"]
    np.sqrt(var, out=var)
    y /= var
    y *= w
    y += b
    return y


@_plan.register_kernel("bn_affine", "compute", rowwise=True)
def _k_bn_affine(out, ins, consts):
    y = np.multiply(ins[0], consts["scale"], out=out)
    y += consts["shift"]
    return y
