"""Load-adaptive autoscaling of the engine replica pool.

The pool's width is the provisioning knob the capacity model
(:mod:`repro.hpc.serving`) reasons about; this module closes the loop
at runtime.  An :class:`AutoScaler` periodically samples the pool —
request arrivals, sheds, outstanding backlog — into a
:class:`LoadSample`, runs a pure decision function
(:meth:`AutoScaler.decide`) over it, and applies the verdict through
the pool's control plane (:meth:`~repro.serve.pool.EngineWorkerPool.add_worker`
/ :meth:`~repro.serve.pool.EngineWorkerPool.remove_worker`), bounded
by ``min_workers``/``max_workers``.

The decision policy:

* **Scale up** when the window shed anything, or the backlog
  utilisation (outstanding requests over total queue slots) crosses
  ``high_water``.  With a fitted
  :class:`~repro.hpc.serving.PoolCapacityModel` the target width comes
  from the model (:meth:`~repro.hpc.serving.PoolCapacityModel.required_workers`
  at the observed demand); without one the pool grows one replica per
  tick — slower but assumption-free.  A scale-up spawns the replica
  fully warmed *before* it becomes routable.
* **Scale down** when utilisation stays under ``low_water`` for
  ``scale_down_patience`` consecutive ticks (hysteresis: a single
  quiet window is not a trend).  One replica per tick, drained — its
  admitted requests finish before it retires, so shrinking never drops
  work.

Two drive modes, mirroring the scheduler and pool:

* **manual tick** (the default): the operator — or a deterministic
  test — calls :meth:`AutoScaler.tick` whenever a decision should be
  evaluated;
* **threaded**: :meth:`AutoScaler.start` runs ticks every ``interval``
  seconds on a daemon thread until :meth:`AutoScaler.close`.

Every transition is recorded as a :class:`ScaleEvent` (and as a
:class:`~repro.serve.pool.PoolEvent` on the pool), so the scaling
trajectory is auditable after the fact.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hpc.serving import PoolCapacityModel
from .pool import EngineWorkerPool

__all__ = ["LoadSample", "ScaleEvent", "AutoScaler"]


@dataclass(frozen=True)
class LoadSample:
    """One observation window of pool load — the decision input.

    ``arrived`` counts admissions *plus* sheds (offered work, not just
    accepted work: a saturated pool that sheds half its traffic must
    read as overloaded, not as comfortable).
    """

    seconds: float              # window wall-clock
    arrived: int                # admitted + shed in the window
    completed: int              # requests finished in the window
    shed: int                   # sheds in the window
    outstanding: int            # instantaneous backlog at sample time
    workers: int                # admissible replicas at sample time
    queue_slots: int            # workers * max_queue

    @property
    def demand_qps(self) -> float:
        """Offered load over the window [requests/s]."""
        return self.arrived / self.seconds if self.seconds > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Backlog over capacity: outstanding / queue slots, in [0, ∞)."""
        return self.outstanding / self.queue_slots if self.queue_slots \
            else 0.0


@dataclass(frozen=True)
class ScaleEvent:
    """One applied scaling transition."""

    when: float                 # time.time()
    action: str                 # "up" | "down"
    workers_before: int
    workers_after: int
    reason: str
    sample: LoadSample


class AutoScaler:
    """Grow/shrink a pool's live worker count with offered load.

    Parameters
    ----------
    pool: the :class:`~repro.serve.pool.EngineWorkerPool` to scale.
    min_workers, max_workers: inclusive width bounds; the scaler never
        leaves them (and never fights a concurrent deploy — topology
        mutations serialise on the pool's lock).
    high_water: backlog utilisation at/above which the pool scales up.
    low_water: utilisation at/below which a window counts toward
        scaling down.
    scale_down_patience: consecutive low-utilisation ticks required
        before one replica is drained — hysteresis against flapping.
    target_utilization: headroom target handed to the capacity model
        when sizing a scale-up (serve the observed demand at this
        fraction of saturation).
    capacity_model: optional fitted
        :class:`~repro.hpc.serving.PoolCapacityModel`; with it a
        scale-up jumps straight to the modelled width for the observed
        demand instead of stepping one replica per tick.
    interval: tick period of the threaded mode [s].
    spawn_cost_s: wall-clock cost of bringing one replica back after a
        scale-down.  Thread replicas are just objects (cost ~0), but a
        process replica re-spawns an interpreter, re-ships weights and
        plans, and re-maps its shared-memory arena — observed around a
        second.  The scaler stretches its scale-down patience by the
        number of ticks that cost spans
        (``ceil(spawn_cost_s / interval)``), so an expensive-to-revive
        replica needs a proportionally longer quiet spell before it is
        drained — flapping one down and immediately needing it back
        would stall traffic for the whole respawn.  Default (``None``)
        reads the pool's measured
        :attr:`~repro.serve.pool.EngineWorkerPool.mean_spawn_seconds`
        at each tick (0.0 for thread pools: behaviour unchanged).
    """

    def __init__(self, pool: EngineWorkerPool,
                 min_workers: int = 1, max_workers: int = 8,
                 high_water: float = 0.5, low_water: float = 0.1,
                 scale_down_patience: int = 3,
                 target_utilization: float = 0.7,
                 capacity_model: Optional[PoolCapacityModel] = None,
                 interval: float = 0.25,
                 spawn_cost_s: Optional[float] = None):
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if not 0.0 <= low_water < high_water:
            raise ValueError("need 0 <= low_water < high_water")
        if scale_down_patience < 1:
            raise ValueError("scale_down_patience must be >= 1")
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        self.pool = pool
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.high_water = float(high_water)
        self.low_water = float(low_water)
        self.scale_down_patience = int(scale_down_patience)
        self.target_utilization = float(target_utilization)
        self.capacity_model = capacity_model
        self.interval = float(interval)
        self.spawn_cost_s = None if spawn_cost_s is None \
            else float(spawn_cost_s)
        self.events: List[ScaleEvent] = []
        self._low_ticks = 0
        self._last_time = time.perf_counter()
        self._last_arrived = self._pool_arrived()
        self._last_completed = pool.metrics.n_requests
        self._last_shed = pool.shed_requests
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- sampling -------------------------------------------------------
    def _pool_arrived(self) -> int:
        return sum(w.submitted for w in self.pool._all_workers()) \
            + self.pool.shed_requests

    def sample(self) -> LoadSample:
        """Snapshot the window since the previous sample/tick."""
        now = time.perf_counter()
        arrived = self._pool_arrived()
        completed = self.pool.metrics.n_requests
        shed = self.pool.shed_requests
        admissible = [w for w in self.pool.workers if not w.draining]
        live = len(admissible)
        sample = LoadSample(
            seconds=max(now - self._last_time, 1e-9),
            arrived=arrived - self._last_arrived,
            completed=completed - self._last_completed,
            shed=shed - self._last_shed,
            # backlog and slots over the SAME population (admissible
            # replicas): charging a draining replica's backlog against
            # a denominator that excludes its slots would spike the
            # utilisation during every drain and flap a scale-up right
            # after a scale-down or deploy
            outstanding=sum(w.outstanding for w in admissible),
            workers=live,
            queue_slots=live * self.pool.max_queue)
        self._last_time = now
        self._last_arrived = arrived
        self._last_completed = completed
        self._last_shed = shed
        return sample

    # -- decision (pure: scriptable in tests) ---------------------------
    def decide(self, sample: LoadSample) -> Tuple[int, str]:
        """Desired worker count for one observation window.

        Pure function of the sample and the scaler's knobs (the
        patience counter is applied by :meth:`tick`, not here), so
        tests can script arbitrary :class:`LoadSample` sequences
        without a live pool.
        """
        if sample.shed > 0 or sample.utilization >= self.high_water:
            target = sample.workers + 1
            reason = (f"shed {sample.shed} request(s)" if sample.shed
                      else f"utilization {sample.utilization:.2f} >= "
                           f"{self.high_water:.2f}")
            if self.capacity_model is not None and sample.demand_qps > 0:
                modelled = self.capacity_model.required_workers(
                    sample.demand_qps,
                    target_utilization=self.target_utilization,
                    max_workers=self.max_workers)
                if modelled is None:
                    modelled = self.max_workers
                target = max(target, modelled)
                reason += (f"; model wants {modelled} worker(s) for "
                           f"{sample.demand_qps:.0f} req/s")
            return min(max(target, self.min_workers),
                       self.max_workers), reason
        if sample.utilization <= self.low_water:
            return max(sample.workers - 1, self.min_workers), (
                f"utilization {sample.utilization:.2f} <= "
                f"{self.low_water:.2f}")
        return max(min(sample.workers, self.max_workers),
                   self.min_workers), "within band"

    def effective_patience(self) -> int:
        """Scale-down hysteresis in ticks, stretched by replica spawn
        cost: the configured ``scale_down_patience`` plus however many
        ticks one respawn would span.  Pure function of the knobs and
        the (configured or pool-measured) spawn cost, so tests can
        assert it directly."""
        cost = self.spawn_cost_s
        if cost is None:
            cost = getattr(self.pool, "mean_spawn_seconds", 0.0) or 0.0
        if cost <= 0.0:
            return self.scale_down_patience
        return self.scale_down_patience \
            + int(math.ceil(cost / max(self.interval, 1e-9)))

    # -- actuation ------------------------------------------------------
    def tick(self) -> int:
        """Sample, decide, apply; returns the live worker count.

        Scale-down proposals must repeat for :meth:`effective_patience`
        consecutive ticks (``scale_down_patience`` stretched by the
        replica spawn cost) before one replica is drained; scale-ups
        apply immediately (sheds are user-visible, idleness is not).
        """
        sample = self.sample()
        desired, reason = self.decide(sample)
        before = sample.workers
        if desired > before:
            self._low_ticks = 0
            for _ in range(desired - before):
                self.pool.add_worker(kind="scale-up", detail=reason)
            self._record("up", before, desired, reason, sample)
            return desired
        if desired < before:
            self._low_ticks += 1
            if self._low_ticks < self.effective_patience():
                return before
            self._low_ticks = 0
            # the victim pick and the removal race concurrent deploys
            # (which retire workers under the pool's topology lock the
            # scaler does not hold): losing that race is benign — skip
            # this tick rather than let the error kill the tick thread
            try:
                victim = min(
                    (w for w in self.pool.workers if not w.draining),
                    key=lambda w: (w.outstanding, -w.worker_id))
                self.pool.remove_worker(victim.worker_id,
                                        kind="scale-down", detail=reason)
            except ValueError:
                return before
            self._record("down", before, before - 1, reason, sample)
            return before - 1
        self._low_ticks = 0
        return before

    def _record(self, action: str, before: int, after: int, reason: str,
                sample: LoadSample) -> None:
        self.events.append(ScaleEvent(time.time(), action, before, after,
                                      reason, sample))

    # -- threaded drive -------------------------------------------------
    def start(self) -> "AutoScaler":
        """Run :meth:`tick` every ``interval`` seconds on a daemon
        thread until :meth:`close`.  Idempotent."""
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.tick()
                except RuntimeError:
                    return          # pool closed under us: stop scaling

        self._thread = threading.Thread(target=loop, name="autoscaler",
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop the tick thread (the pool itself is left untouched)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "AutoScaler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
