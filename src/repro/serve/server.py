"""Serving front door: a replica pool behind four request kinds.

:class:`ForecastServer` routes

* **plain forecasts** — deduplicated through the keyed result cache,
  then routed to an engine replica by the pool's policy and coalesced
  by that replica's micro-batching scheduler;
* **gradient requests** — sensitivity queries
  (:class:`~repro.workflow.sensitivity.GradientRequest`) served by the
  engines' adjoint path with the same cache/dedup/routing machinery,
  keyed by :func:`~repro.serve.cache.gradient_key` (thread backend
  only; see ``docs/differentiation.md``);
* **ensemble requests** — the N perturbed members are sharded across
  the pool's batch slots (they interleave with unrelated traffic
  instead of monopolising a forward);
* **hybrid runs** — executed by the verifier-gated
  :class:`~repro.workflow.hybrid.HybridWorkflow` with the pool
  injected as its engine, so surrogate passes coalesce while solver
  fallbacks are dispatched out-of-band on a worker pool and never
  block the batch loop.

All three reuse the exact direct-call code paths — the pool is just
another batch executor — so served numbers equal direct numbers.  The
single-engine deployment is not a separate code path either: it is the
pool of 1 (``workers=1``, the default).

The server is also the operations front door (PR 5):
:meth:`ForecastServer.deploy` hot-swaps a new model, checkpoint, or
engine through the pool with zero downtime (and invalidates the result
cache, whose entries were computed by the outgoing weights), and
:meth:`ForecastServer.enable_autoscaling` attaches a load-adaptive
:class:`~repro.serve.autoscale.AutoScaler` to the pool.  See the
Operations section of ``docs/serving.md``.

When the pool is saturated (every admissible replica at its queue
bound), :meth:`submit` propagates the pool's
:class:`~repro.serve.pool.PoolSaturated` so the client can back off by
its ``retry_after`` — the server never queues unboundedly.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from ..ocean.model import RomsLikeModel
from ..ocean.swe import ShallowWaterState
from ..physics.verifier import Verifier
from ..train.checkpoint import load_model_like
from ..workflow.engine import FieldWindow, ForecastResult
from ..workflow.ensemble import EnsembleForecast, EnsembleForecaster
from ..workflow.hybrid import HybridWorkflow, WorkflowReport
from ..workflow.sensitivity import GradientRequest, SensitivityResult
from .autoscale import AutoScaler
from .cache import ForecastCache, gradient_key, window_key
from .pool import EngineVersion, EngineWorkerPool, Router
from .scheduler import MicroBatchScheduler, ServedFuture

__all__ = ["ForecastServer"]


class ForecastServer:
    """Pooled serving endpoint with micro-batching and caching.

    Parameters
    ----------
    engine: one batch executor (``forecast_batch`` + ``time_steps``)
        or a sequence of replicas (see
        :class:`~repro.serve.pool.EngineWorkerPool`; a single engine is
        shared by all ``workers`` replicas).
    workers: replica-pool width.  The default (``None``) runs one
        replica per given engine — a single engine reproduces the
        single-engine deployment exactly; a single engine with
        ``workers=N`` is shared by all N replicas.
    router: pool routing policy — a :class:`~repro.serve.pool.Router`
        or a name (``"round-robin"`` | ``"least-outstanding"`` |
        ``"key-affinity"``).  With the result cache enabled the server
        keys every request by its content digest, so
        ``"key-affinity"`` keeps duplicate scenarios on one replica.
    max_batch, max_wait: per-replica scheduler flush policy
        (:class:`MicroBatchScheduler`).
    max_queue: per-replica outstanding-request bound; beyond it
        :meth:`submit` raises
        :class:`~repro.serve.pool.PoolSaturated`.
    cache_bytes: result-cache budget; 0 disables caching.
    ocean, verifier: hybrid-run dependencies; required only when
        :meth:`submit_hybrid` is used.
    fallback_workers: thread-pool width for out-of-band work (hybrid
        runs and their solver fallbacks).
    warm_plans: compile each engine's inference plan for ``max_batch``
        at startup so saturated micro-batches replay a captured plan
        (bitwise-identical to eager, just faster and allocation-free).
        The default (``None``) warms exactly when every engine supports
        ``compile`` — i.e. real
        :class:`~repro.workflow.engine.ForecastEngine` replicas.
    backend, mp_context, fabric: replica execution tier —
        ``backend="process"`` runs each replica's engine in a child
        process behind shared-memory transport, escaping the GIL;
        ``backend="host"`` runs it on a remote rank behind the
        :mod:`repro.hpc.fabric` descriptor transport (``fabric``
        selects ``"socket"`` wire or the deterministic ``"sim"``
        fabric).  See :class:`~repro.serve.pool.EngineWorkerPool` and
        ``docs/serving.md``.  Default stays ``"thread"``.
    serve_reduced: route batches to installed accuracy-gated
        reduced-precision plan variants (off by default — results stay
        bitwise-identical unless explicitly opted in; see
        :meth:`~repro.workflow.engine.ForecastEngine.compile_reduced`).
    autostart: ``False`` makes every replica scheduler manual — no
        worker threads; callers drive batching explicitly through
        :meth:`flush`.  The deterministic mode the scenario harness's
        virtual clock replays traces in.

    Thread safety: every public method may be called concurrently from
    any number of client threads.
    """

    def __init__(self, engine, max_batch: int = 8, max_wait: float = 0.005,
                 cache_bytes: int = 0,
                 ocean: Optional[RomsLikeModel] = None,
                 verifier: Optional[Verifier] = None,
                 fallback_workers: int = 2,
                 workers: Optional[int] = None,
                 router: Union[str, Router] = "least-outstanding",
                 max_queue: int = 32,
                 warm_plans: Optional[bool] = None,
                 backend: str = "thread", mp_context: str = "spawn",
                 fabric: str = "socket", serve_reduced: bool = False,
                 autostart: bool = True):
        if warm_plans is None:
            candidates = engine if isinstance(engine, (list, tuple)) \
                else [engine]
            warm_plans = all(hasattr(e, "compile") for e in candidates)
        self.pool = EngineWorkerPool(engine, replicas=workers,
                                     max_batch=max_batch, max_wait=max_wait,
                                     max_queue=max_queue, router=router,
                                     warm_plans=warm_plans,
                                     backend=backend, mp_context=mp_context,
                                     fabric=fabric,
                                     serve_reduced=serve_reduced,
                                     autostart=autostart)
        self.cache = ForecastCache(cache_bytes) if cache_bytes > 0 else None
        self.ocean = ocean
        self.verifier = verifier
        # two pools so a hybrid run blocking on its own fallbacks can
        # never deadlock: runs (and cache fills) on one, solver
        # fallbacks on the other
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, int(fallback_workers)),
            thread_name_prefix="serve-run")
        self._solver_pool = ThreadPoolExecutor(
            max_workers=max(1, int(fallback_workers)),
            thread_name_prefix="serve-solver")
        # in-flight dedup: identical requests that arrive before the
        # first result lands follow one leader instead of each taking
        # an engine batch slot
        self._inflight: Dict[str, ServedFuture] = {}
        self._inflight_lock = threading.Lock()
        self.deduped_requests = 0
        self._autoscaler: Optional[AutoScaler] = None

    @property
    def scheduler(self) -> MicroBatchScheduler:
        """Replica 0's scheduler — *the* scheduler of a ``workers=1``
        deployment (kept for single-engine introspection; pool-wide
        numbers live in :meth:`metrics`)."""
        return self.pool.workers[0].scheduler

    # -- plain forecasts ------------------------------------------------
    def submit(self, reference: FieldWindow,
               route_key: Optional[str] = None) -> ServedFuture:
        """Queue one forecast; cache hits complete immediately.

        ``route_key`` overrides the pool routing key (the content
        digest by default): under ``"key-affinity"`` it pins a whole
        request *stream* — e.g. every request for one basin — to a
        replica, while the result cache stays keyed by content, so
        locality and dedup compose.

        Raises :class:`~repro.serve.pool.PoolSaturated` (with a
        ``retry_after`` hint) when admission control sheds the request.
        """
        if self.cache is None:
            # content digests are not free: only computed when the
            # routing policy actually reads keys
            key = route_key if route_key is not None else (
                window_key(reference) if self.pool.router.uses_keys
                else None)
            return self.pool.submit(reference, key=key)
        key = window_key(reference)
        cached = self.cache.get(key)
        if cached is not None:
            future = ServedFuture(request_id=-1)
            future.cache_hit = True
            future.batch_size = 0
            future.queue_seconds = 0.0
            future.latency_seconds = 0.0
            future.engine_version = cached.engine_version
            future._complete(cached)
            return future
        with self._inflight_lock:
            leader = self._inflight.get(key)
            if leader is not None:
                # identical request already queued: follow it instead
                # of occupying another engine batch slot
                self.deduped_requests += 1
                follower = ServedFuture(request_id=-1)
                follower.cache_hit = True
                leader.add_done_callback(
                    lambda fut: self._follow(follower, fut))
                return follower
            future = self.pool.submit(
                reference, key=route_key if route_key is not None else key)
            self._inflight[key] = future
        # settle the cache the moment the micro-batch lands — a done
        # callback, so no pool thread sits blocked per miss
        future.add_done_callback(lambda fut: self._settle(key, fut))
        return future

    @staticmethod
    def _follow(follower: ServedFuture, leader: ServedFuture) -> None:
        try:
            result = leader.result(timeout=0)
        except BaseException as exc:     # noqa: BLE001 — mirror the leader
            follower._fail(exc)
            return
        # private copy: leader and follower consumers mutate freely;
        # the follower is pinned to the leader's engine version (its
        # result IS the leader's result)
        follower.engine_version = leader.engine_version
        if isinstance(result, ForecastResult):
            copy = ForecastResult(
                result.fields.copy(), 0.0, result.episodes,
                engine_version=leader.engine_version)
        else:
            copy = result.copy()
            copy.engine_version = leader.engine_version
        follower._complete(copy)

    def _settle(self, key: str, future: ServedFuture) -> None:
        try:
            result = future.result(timeout=0)
            # label the cached entry with the version that computed it;
            # a request pinned to an outgoing version must not settle
            # into the cache after deploy() already invalidated it —
            # that would serve the old weights as hits indefinitely
            result.engine_version = future.engine_version
            if future.engine_version == self.pool.current_version:
                self.cache.put(key, result)
        except Exception:        # noqa: BLE001 — a failed request caches nothing
            pass
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)

    def forecast(self, reference: FieldWindow) -> ForecastResult:
        """Synchronous plain forecast."""
        future = self.submit(reference)
        if self.pool._manual:
            self.flush()
        return future.result()

    # -- gradient requests ----------------------------------------------
    def submit_sensitivity(self, request: GradientRequest,
                           route_key: Optional[str] = None) -> ServedFuture:
        """Queue one sensitivity request; cache hits complete immediately.

        The adjoint analogue of :meth:`submit`: the future resolves to
        a :class:`~repro.workflow.sensitivity.SensitivityResult` whose
        gradients are bitwise-identical to a direct
        :meth:`~repro.workflow.engine.ForecastEngine.sensitivity_batch`
        call on the micro-batch the request landed in.  Caching and
        in-flight dedup key on :func:`~repro.serve.cache.gradient_key`
        (window digest + diagnostic + ``wrt`` + observation digest +
        storm parameters), a disjoint namespace from forecast keys.

        Raises
        ------
        NotImplementedError
            on process/host backends — the backward pass needs the
            autograd graph in the serving process (the exception text
            carries the supported alternatives).
        PoolSaturated
            when admission control sheds the request, as for
            :meth:`submit`.
        """
        if self.cache is None:
            key = route_key if route_key is not None else (
                gradient_key(request) if self.pool.router.uses_keys
                else None)
            return self.pool.submit_gradient(request, key=key)
        key = gradient_key(request)
        cached = self.cache.get(key)
        if cached is not None:
            future = ServedFuture(request_id=-1)
            future.cache_hit = True
            future.batch_size = 0
            future.queue_seconds = 0.0
            future.latency_seconds = 0.0
            future.engine_version = cached.engine_version
            future._complete(cached)
            return future
        with self._inflight_lock:
            leader = self._inflight.get(key)
            if leader is not None:
                self.deduped_requests += 1
                follower = ServedFuture(request_id=-1)
                follower.cache_hit = True
                leader.add_done_callback(
                    lambda fut: self._follow(follower, fut))
                return follower
            future = self.pool.submit_gradient(
                request, key=route_key if route_key is not None else key)
            self._inflight[key] = future
        future.add_done_callback(lambda fut: self._settle(key, fut))
        return future

    def sensitivity(self, request: GradientRequest) -> SensitivityResult:
        """Synchronous sensitivity query (see :meth:`submit_sensitivity`)."""
        future = self.submit_sensitivity(request)
        if self.pool._manual:
            self.flush()
        return future.result()

    def flush(self) -> int:
        """Drain every replica's backlog inline (manual servers —
        ``autostart=False``); returns the number of requests served.
        Cache fills and dedup followers settle before this returns,
        because completion callbacks run on the flushing thread."""
        return self.pool.flush()

    # -- ensembles ------------------------------------------------------
    def submit_ensemble(self, reference: FieldWindow, n_members: int = 8,
                        wet=None, **kwargs) -> "Future[EnsembleForecast]":
        """Run an IC-perturbation ensemble through the replica pool.

        The members are sharded across the pool's batch slots;
        ``kwargs`` forward to
        :class:`~repro.workflow.ensemble.EnsembleForecaster`.
        """
        ens = EnsembleForecaster(self.pool, n_members=n_members,
                                 **kwargs)
        return self._pool.submit(ens.forecast, reference, wet)

    # -- hybrid runs ----------------------------------------------------
    def submit_hybrid(self, reference: FieldWindow,
                      fallback_states: Sequence[ShallowWaterState],
                      threshold: Optional[float] = None
                      ) -> "Future[Tuple[FieldWindow, WorkflowReport]]":
        """Run a verifier-gated hybrid scenario out-of-band.

        The scenario's surrogate passes go through the replica pool
        (they coalesce with every other pending request); verification
        and any solver fallbacks run on the worker pool, away from the
        batch loop.
        """
        if self.ocean is None or self.verifier is None:
            raise ValueError(
                "hybrid serving needs the server constructed with "
                "ocean= and verifier=")
        workflow = HybridWorkflow(self.pool, self.ocean, self.verifier,
                                  fallback_pool=self._solver_pool)
        return self._pool.submit(workflow.run, reference, fallback_states,
                                 threshold)

    # -- operations -----------------------------------------------------
    def deploy(self, model_or_checkpoint,
               source: Optional[str] = None,
               keep_cache: bool = False) -> EngineVersion:
        """Hot-swap a new model through the pool with zero downtime.

        Accepts, in order of preference:

        * a batch executor (``forecast_batch`` + ``time_steps``, e.g. a
          :class:`~repro.workflow.engine.ForecastEngine` already wrapped
          around the new weights) — used as-is;
        * a checkpoint path (``str`` / ``Path``) — restored into a
          *fresh* model of the live model's class and config
          (:func:`~repro.train.checkpoint.load_model_like`), then
          wrapped via :meth:`ForecastEngine.with_model`, so the live
          model is never mutated;
        * a bare model — wrapped via ``with_model`` likewise.

        The pool rolls the new :class:`~repro.serve.pool.EngineVersion`
        replica-by-replica (surge, drain, retire): capacity never
        drops, in-flight requests finish bitwise-identical on the
        version that admitted them, and a failed warmup (or a
        checkpoint that does not load) raises with serving untouched.
        On success the result cache is invalidated — its entries were
        computed by the outgoing weights — unless ``keep_cache``.
        """
        if hasattr(model_or_checkpoint, "forecast_batch") \
                and hasattr(model_or_checkpoint, "time_steps"):
            engine = model_or_checkpoint
            source = source or f"deploy({type(engine).__name__})"
        else:
            template = next(
                (w.engine for w in self.pool.workers
                 if hasattr(w.engine, "with_model")), None)
            if template is None:
                raise ValueError(
                    "deploying a bare model or checkpoint needs a "
                    "ForecastEngine-backed pool; pass an engine instead")
            if isinstance(model_or_checkpoint, (str, Path)):
                path = model_or_checkpoint
                model = load_model_like(path, template.model)
                source = source or f"checkpoint:{path}"
            else:
                model = model_or_checkpoint
                source = source or f"model:{type(model).__name__}"
            engine = template.with_model(model)
        version = self.pool.deploy(engine, source=source)
        if self.cache is not None and not keep_cache:
            self.cache.clear()
        # new arrivals must not follow an old-version in-flight leader;
        # the leaders themselves finish normally (their own clients are
        # correctly pinned to the version that admitted them) and their
        # _settle pops are tolerant of the missing entries
        with self._inflight_lock:
            self._inflight.clear()
        return version

    def enable_autoscaling(self, **knobs) -> AutoScaler:
        """Attach a load-adaptive :class:`~repro.serve.autoscale.AutoScaler`
        to the pool (``knobs`` forward to its constructor — including
        ``interval`` for the background tick thread) and start it.
        Idempotent per server: the previous scaler is stopped first.
        The scaler is stopped automatically on :meth:`close`.
        """
        if self._autoscaler is not None:
            self._autoscaler.close()
        self._autoscaler = AutoScaler(self.pool, **knobs)
        self._autoscaler.start()
        return self._autoscaler

    # -- observability --------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        """Pool-wide occupancy/latency/shed (incl. ``plan_batches``,
        the micro-batches that replayed a compiled plan,
        ``engine_version``/``deploys``/``scale_events`` from the
        control plane) plus cache effectiveness."""
        out = self.pool.metrics.summary()
        out["deduped_requests"] = self.deduped_requests
        if self.cache is not None:
            out.update({
                "cache_hits": self.cache.stats.hits,
                "cache_misses": self.cache.stats.misses,
                "cache_hit_rate": self.cache.stats.hit_rate,
                "cache_evictions": self.cache.stats.evictions,
                "cache_resident_bytes": self.cache.resident_bytes,
            })
        return out

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if self._autoscaler is not None:
            self._autoscaler.close()
        self._pool.shutdown(wait=True)
        self._solver_pool.shutdown(wait=True)
        self.pool.close()

    def __enter__(self) -> "ForecastServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
