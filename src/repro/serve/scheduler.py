"""Dynamic micro-batching scheduler over the batched forecast engine.

PR 1 made the inference core batch-generic
(:meth:`~repro.workflow.engine.ForecastEngine.forecast_batch`); this
module turns *independent incoming requests* into those batches.  A
:class:`MicroBatchScheduler` keeps a FIFO queue of pending forecast
requests and flushes a micro-batch to the engine whenever

* the queue reaches ``max_batch`` pending requests ("full"), or
* ``max_wait`` seconds have elapsed since the oldest pending request
  arrived ("timeout"), or
* a client forces it ("flush" / "close").

Batching changes *which requests share a forward*, never the numbers:
a request's result is bitwise-identical to calling
``engine.forecast_batch`` directly on the micro-batch it landed in
(the scheduler literally makes that call), and request→result pairing
is preserved no matter how arrivals interleave.

Two drive modes:

* **threaded** (``autostart=True``, the serving default): a daemon
  worker owns the flush policy; clients just :meth:`submit` and wait
  on the returned :class:`ServedFuture`.
* **manual** (``autostart=False``, for deterministic tests and traces):
  no worker runs; the caller advances the queue with :meth:`step` /
  :meth:`flush`.

Gradient requests (:meth:`MicroBatchScheduler.submit_gradient`) ride
the same queue and flush policy: requests sharing a
(diagnostic, ``wrt``) signature coalesce into one
``engine.sensitivity_batch`` call, and never mix with forward
micro-batches (see ``docs/differentiation.md``).

The scheduler also *is* a batch executor (``forecast_batch`` /
``time_steps``), so :class:`~repro.workflow.ensemble.EnsembleForecaster`
and :class:`~repro.workflow.hybrid.HybridWorkflow` accept it anywhere
they accept a :class:`~repro.workflow.forecast.SurrogateForecaster` —
served and direct calls share one code path.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..workflow.engine import FieldWindow, ForecastResult
from ..workflow.sensitivity import GradientRequest

__all__ = ["ServedFuture", "BatchRecord", "RequestRecord", "ServeMetrics",
           "MicroBatchScheduler"]


class ServedFuture:
    """Completion handle for one scheduled forecast request.

    ``result()`` blocks until the micro-batch containing the request
    has run, then returns its :class:`ForecastResult` (or re-raises the
    engine's exception).  After completion the placement metadata
    (``batch_index``, ``batch_size``, ``queue_seconds``,
    ``latency_seconds``) records where the request landed;
    ``worker_id`` and ``engine_version`` additionally record which
    replica admitted it — and which :class:`~repro.serve.pool.EngineVersion`
    it is pinned to — when the request went through an
    :class:`~repro.serve.pool.EngineWorkerPool`.
    """

    def __init__(self, request_id: int):
        self.request_id = request_id
        self.worker_id: Optional[int] = None
        self.engine_version: Optional[int] = None
        self.batch_index: Optional[int] = None
        self.batch_size: Optional[int] = None
        self.queue_seconds: Optional[float] = None
        self.latency_seconds: Optional[float] = None
        self.cache_hit = False
        self._event = threading.Event()
        self._result: Optional[ForecastResult] = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List = []
        self._cb_lock = threading.Lock()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ForecastResult:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not served within {timeout}s")
        if self._exception is not None:
            raise self._exception
        return self._result

    def add_done_callback(self, fn) -> None:
        """Run ``fn(self)`` when the request completes (immediately if
        it already has).  Callbacks run on the completing thread and
        must be cheap; exceptions they raise are swallowed."""
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        self._invoke(fn)

    def _invoke(self, fn) -> None:
        try:
            fn(self)
        except Exception:        # noqa: BLE001 — callbacks must not kill the worker
            pass

    # -- completion (scheduler-side) -----------------------------------
    def _finish(self) -> None:
        with self._cb_lock:
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._invoke(fn)

    def _complete(self, result: ForecastResult) -> None:
        self._result = result
        self._finish()

    def _fail(self, exc: BaseException) -> None:
        self._exception = exc
        self._finish()


@dataclass
class _Request:
    """Queue entry: the window, its future, and its arrival time.

    ``kind`` is "forecast" or "gradient"; gradient entries carry their
    full :class:`~repro.workflow.sensitivity.GradientRequest` so the
    flush can batch compatible requests into one backward pass.
    """

    window: FieldWindow
    future: ServedFuture
    enqueued_at: float
    kind: str = "forecast"
    grad: Optional[GradientRequest] = None

    @property
    def signature(self) -> tuple:
        """Batch-compatibility key: only requests sharing a signature
        may share an engine call (one forward, or one backward with a
        single diagnostic/wrt configuration)."""
        if self.kind == "gradient":
            return ("gradient", self.grad.diagnostic, self.grad.wrt)
        return ("forecast",)


@dataclass(frozen=True)
class BatchRecord:
    """One executed micro-batch, for occupancy accounting and audits."""

    index: int
    size: int
    request_ids: Tuple[int, ...]
    seconds: float               # engine.forecast_batch wall-clock
    trigger: str                 # "full" | "timeout" | "flush" | "close"
    failed: bool = False         # engine raised; its futures carry the error
    compiled: bool = False       # served by a compiled inference plan
    #: batch size of the plan bucket that served it (= ``size`` on an
    #: exact hit, larger when the batch padded up); ``None`` when eager
    plan_batch: Optional[int] = None
    #: served by an accuracy-gated reduced-precision plan variant
    #: (only possible with ``serve_reduced`` routing on)
    reduced: bool = False
    #: "forecast" (engine.forecast_batch) or "gradient"
    #: (engine.sensitivity_batch) — gradient batches feed the
    #: ``grad_batches`` / ``backward_seconds`` counters
    kind: str = "forecast"


@dataclass(frozen=True)
class RequestRecord:
    """Per-request serving latency decomposition."""

    request_id: int
    batch_index: int
    queue_seconds: float         # enqueue → batch execution start
    latency_seconds: float       # enqueue → result available


@dataclass
class ServeMetrics:
    """Aggregated serving metrics: occupancy and latency.

    ``mean_occupancy`` is the request-coalescing figure of merit — it
    stays at 1.0 when every forward serves one request (no batching
    win) and approaches ``max_batch`` at saturating offered load.
    """

    batches: List[BatchRecord] = field(default_factory=list)
    requests: List[RequestRecord] = field(default_factory=list)
    #: cumulative IPC overhead [s] when the executor runs out of
    #: process (:class:`~repro.serve.procpool.ProcessWorker`): batch
    #: round-trip wall-clock minus the child-reported engine time.
    #: Stays 0.0 for in-process executors.
    ipc_wait_s: float = 0.0
    #: cumulative bytes marshalled through the shared-memory transport
    #: (request fields out + result fields back); 0 for in-process.
    marshal_bytes: int = 0
    #: cumulative network overhead [s] when the executor runs behind a
    #: fabric endpoint (:class:`~repro.serve.hostpool.HostWorker`):
    #: batch round-trip wall-clock minus remote-reported engine time.
    net_wait_s: float = 0.0
    #: cumulative bytes framed onto the fabric wire (request frames
    #: out + result frames back); 0 off the host backend.
    frame_bytes: int = 0
    #: deepest request/response pipeline the host transport reached
    #: (≥ 2 means the network hop genuinely overlapped with compute).
    inflight_depth: int = 0

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def n_failed_batches(self) -> int:
        return sum(b.failed for b in self.batches)

    @property
    def plan_batches(self) -> int:
        """Micro-batches served by a compiled inference plan (plan-cache
        hits at the granularity metrics are kept at)."""
        return sum(b.compiled for b in self.batches)

    @property
    def reduced_batches(self) -> int:
        """Micro-batches served by an accuracy-gated reduced-precision
        plan variant (``serve_reduced`` routing); 0 when the knob is
        off — the default, bitwise-exact configuration."""
        return sum(b.reduced for b in self.batches)

    @property
    def grad_batches(self) -> int:
        """Micro-batches that ran the adjoint path
        (``engine.sensitivity_batch``) instead of a forward."""
        return sum(1 for b in self.batches if b.kind == "gradient")

    @property
    def backward_seconds(self) -> float:
        """Cumulative wall-clock spent in gradient micro-batches
        (forward + backward; the adjoint analogue of
        ``engine_seconds``)."""
        return sum(b.seconds for b in self.batches if b.kind == "gradient")

    @property
    def padded_rows(self) -> int:
        """Pad rows added by batch-shape bucketing (a partial batch
        replaying a larger plan computes ``plan_batch - size`` wasted
        rows)."""
        return sum(b.plan_batch - b.size for b in self.batches
                   if b.plan_batch is not None and b.plan_batch > b.size)

    @property
    def bucket_pad_fraction(self) -> float:
        """Padded rows / rows actually computed — how much forward
        compute the bucket choice wastes.  0.0 means every micro-batch
        hit a plan of exactly its size (or ran eager)."""
        computed = sum(b.plan_batch if b.plan_batch is not None else b.size
                       for b in self.batches)
        return self.padded_rows / computed if computed else 0.0

    def bucket_hits(self) -> Dict[int, int]:
        """Micro-batches served per plan bucket (plan batch size →
        count); eager batches are not counted."""
        hist: Dict[int, int] = {}
        for b in self.batches:
            if b.plan_batch is not None:
                hist[b.plan_batch] = hist.get(b.plan_batch, 0) + 1
        return dict(sorted(hist.items()))

    @property
    def mean_occupancy(self) -> float:
        if not self.batches:
            return float("nan")
        return self.n_requests / self.n_batches

    @property
    def max_occupancy(self) -> int:
        return max((b.size for b in self.batches), default=0)

    def occupancy_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for b in self.batches:
            hist[b.size] = hist.get(b.size, 0) + 1
        return dict(sorted(hist.items()))

    def latency_percentile(self, q: float) -> float:
        if not self.requests:
            return float("nan")
        return float(np.percentile(
            [r.latency_seconds for r in self.requests], q))

    def queue_percentile(self, q: float) -> float:
        if not self.requests:
            return float("nan")
        return float(np.percentile(
            [r.queue_seconds for r in self.requests], q))

    def summary(self) -> Dict[str, float]:
        return {
            "requests": self.n_requests,
            "batches": self.n_batches,
            "failed_batches": self.n_failed_batches,
            "plan_batches": self.plan_batches,
            "bucket_pad_fraction": self.bucket_pad_fraction,
            "mean_occupancy": self.mean_occupancy,
            "max_occupancy": self.max_occupancy,
            "latency_p50_ms": 1e3 * self.latency_percentile(50),
            "latency_p95_ms": 1e3 * self.latency_percentile(95),
            "queue_p50_ms": 1e3 * self.queue_percentile(50),
            "engine_seconds": sum(b.seconds for b in self.batches),
            "ipc_wait_s": self.ipc_wait_s,
            "marshal_bytes": self.marshal_bytes,
            "net_wait_s": self.net_wait_s,
            "frame_bytes": self.frame_bytes,
            "inflight_depth": self.inflight_depth,
            "reduced_batches": self.reduced_batches,
            "grad_batches": self.grad_batches,
            "backward_seconds": self.backward_seconds,
        }


class MicroBatchScheduler:
    """Coalesce concurrent forecast requests into engine micro-batches.

    Parameters
    ----------
    engine: any batch executor with ``forecast_batch`` and
        ``time_steps`` (a :class:`~repro.workflow.engine.ForecastEngine`
        or :class:`~repro.workflow.forecast.SurrogateForecaster`).
    max_batch: flush as soon as this many requests are pending.
    max_wait: flush at most this many seconds after the oldest pending
        request arrived — the tail-latency bound a lone request pays
        for the chance of sharing its forward.
    autostart: start the worker thread (threaded mode).  With
        ``False`` the caller drives the queue via :meth:`step` /
        :meth:`flush` (manual mode — deterministic, thread-free).
    warm_plans: compile the engine's inference plans for the whole
        **bucket set** of ``max_batch`` at startup (requires an engine
        exposing ``compile``, i.e. a
        :class:`~repro.workflow.engine.ForecastEngine` or a
        :class:`~repro.serve.procpool.ProcessWorker` proxying one) —
        every power of two up to ``max_batch`` plus ``max_batch``
        itself, per :func:`~repro.tensor.plan_passes.plan_buckets`.
        After warmup **every** micro-batch replays a compiled plan: a
        full batch hits its exact plan, a timeout/flush partial batch
        zero-pads into the nearest larger bucket and its outputs slice
        back (bitwise-identical to the unpadded eager run, at the cost
        of up to just-under-2× padded rows — watch
        ``ServeMetrics.bucket_pad_fraction``).  Engines without
        ``compile_buckets`` warm ``max_batch`` only, and engines with
        ``bucket_partial=False`` restore the old behaviour of running
        non-compiled sizes eagerly.
    """

    def __init__(self, engine, max_batch: int = 8,
                 max_wait: float = 0.005, autostart: bool = True,
                 warm_plans: bool = False):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        if warm_plans:
            if not hasattr(engine, "compile"):
                raise ValueError(
                    "warm_plans=True needs an engine with compile(); "
                    f"{type(engine).__name__} has none")
            if hasattr(engine, "compile_buckets"):
                engine.compile_buckets(self.max_batch)
            else:
                engine.compile(self.max_batch)
        self.metrics = ServeMetrics()
        self._queue: Deque[_Request] = deque()
        self._lock = threading.Lock()
        self._pending = threading.Condition(self._lock)
        self._mesh: Optional[Dict[str, tuple]] = None
        self._next_id = 0
        self._n_batches = 0
        self._closed = False
        self._worker: Optional[threading.Thread] = None
        if autostart:
            self._worker = threading.Thread(
                target=self._serve_loop, name="microbatch-scheduler",
                daemon=True)
            self._worker.start()

    # -- batch-executor protocol ---------------------------------------
    @property
    def time_steps(self) -> int:
        return self.engine.time_steps

    @property
    def pending(self) -> int:
        """Requests queued but not yet flushed into a micro-batch —
        the instantaneous backlog the control plane watches."""
        with self._lock:
            return len(self._queue)

    def forecast_batch(self, references: Sequence[FieldWindow]
                       ) -> List[ForecastResult]:
        """Submit N windows and wait for all results (executor protocol).

        In threaded mode the windows coalesce with any other pending
        traffic; in manual mode the queue is flushed inline so the call
        cannot deadlock.  Must not be called from the worker thread.
        """
        futures = [self.submit(r) for r in references]
        if self._worker is None:
            self.flush()
        return [f.result() for f in futures]

    def forecast(self, reference: FieldWindow) -> ForecastResult:
        """Synchronous single-request convenience wrapper."""
        return self.forecast_batch([reference])[0]

    # -- client side ----------------------------------------------------
    def submit(self, reference: FieldWindow) -> ServedFuture:
        """Enqueue one forecast request; returns immediately.

        Requests are validated here (episode length, shared mesh) so a
        malformed request fails alone instead of poisoning the
        micro-batch it would have joined.
        """
        return self._enqueue(reference, "forecast", None)

    def submit_gradient(self, request: GradientRequest) -> ServedFuture:
        """Enqueue one sensitivity request; returns immediately.

        The future resolves to a
        :class:`~repro.workflow.sensitivity.SensitivityResult`.
        Gradient requests coalesce with each other exactly like
        forecasts do, but only with requests sharing their
        (diagnostic, wrt) signature — a micro-batch is always one
        engine call — and never with forward requests.

        Raises ``NotImplementedError`` when the executor behind the
        scheduler has no ``sensitivity_batch`` — the backward pass
        needs the autograd graph in-process, which the process/host
        proxy executors do not transport.
        """
        if not hasattr(self.engine, "sensitivity_batch"):
            raise NotImplementedError(
                "gradient requests need an in-process autograd graph, "
                f"but this scheduler's executor ({type(self.engine).__name__}) "
                "does not expose sensitivity_batch(); serve gradients "
                "from a thread-backend pool (EngineWorkerPool(..., "
                "backend='thread')) or call "
                "ForecastEngine.sensitivity_batch directly")
        return self._enqueue(request.window, "gradient", request)

    def _enqueue(self, reference: FieldWindow, kind: str,
                 grad: Optional[GradientRequest]) -> ServedFuture:
        T = self.time_steps
        if reference.T != T:
            raise ValueError(
                f"window length {reference.T} != model time_steps {T}")
        shapes = {var: getattr(reference, var).shape
                  for var in ("u3", "v3", "w3", "zeta")}
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if self._mesh is None:
                self._mesh = shapes
            elif shapes != self._mesh:
                bad = next(v for v in shapes
                           if shapes[v] != self._mesh[v])
                raise ValueError(
                    "all requests of one scheduler must share one mesh; "
                    f"got {bad} {shapes[bad]} != {self._mesh[bad]}")
            future = ServedFuture(self._next_id)
            self._next_id += 1
            self._queue.append(_Request(reference, future,
                                        time.perf_counter(),
                                        kind=kind, grad=grad))
            self._pending.notify_all()
        return future

    # -- manual drive ---------------------------------------------------
    def step(self, trigger: str = "flush") -> int:
        """Run ONE micro-batch (≤ ``max_batch``) from the queue head.

        Returns the number of requests served (0 if the queue is
        empty).  This is the manual-mode scheduling quantum; tests use
        it to realise arbitrary arrival/flush interleavings
        deterministically.
        """
        with self._lock:
            batch = self._pop_batch_locked()
        if not batch:
            return 0
        self._run_batch(batch, trigger)
        return len(batch)

    def flush(self) -> int:
        """Drain the whole queue now; returns requests served."""
        total = 0
        while True:
            n = self.step("flush")
            if n == 0:
                return total
            total += n

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Stop accepting requests, serve the backlog, join the worker.

        Every queued request is drained **or failed** before this
        returns — nothing is left pending, so the executor behind the
        scheduler may be torn down immediately afterwards.  The
        guarantee holds even when the executor itself is broken: a
        process-backed executor whose child died mid-flush raises on
        every remaining micro-batch, which *fails* those futures
        (:meth:`_run_batch` catches the error per batch) instead of
        hanging their waiters.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._pending.notify_all()
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        # manual mode (or anything the worker left behind on shutdown)
        while True:
            with self._lock:
                batch = self._pop_batch_locked()
            if not batch:
                break
            self._run_batch(batch, "close")

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- scheduling core ------------------------------------------------
    def _pop_batch_locked(self) -> List[_Request]:
        """Pop the next micro-batch: up to ``max_batch`` requests from
        the queue head that share the head's batch signature — FIFO
        order is preserved, a signature change just ends the batch
        early (the next :meth:`step` picks the rest up)."""
        if not self._queue:
            return []
        sig = self._queue[0].signature
        out: List[_Request] = []
        while self._queue and len(out) < self.max_batch \
                and self._queue[0].signature == sig:
            out.append(self._queue.popleft())
        return out

    def _serve_loop(self) -> None:
        while True:
            with self._pending:
                while not self._queue and not self._closed:
                    self._pending.wait()
                if not self._queue:
                    return          # closed and drained
                # oldest pending request fixes the flush deadline
                deadline = self._queue[0].enqueued_at + self.max_wait
                trigger = "timeout"
                while len(self._queue) < self.max_batch:
                    if self._closed:
                        trigger = "close"
                        break
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._pending.wait(remaining)
                else:
                    trigger = "full"
                batch = self._pop_batch_locked()
            self._run_batch(batch, trigger)

    def _run_batch(self, batch: List[_Request], trigger: str) -> None:
        kind = batch[0].kind
        start = time.perf_counter()
        failure: Optional[BaseException] = None
        try:
            if kind == "gradient":
                grads = [r.grad for r in batch]
                results = self.engine.sensitivity_batch(
                    [g.window for g in grads],
                    wrt=grads[0].wrt, diagnostic=grads[0].diagnostic,
                    observations=[g.observation for g in grads],
                    storms=[g.storm for g in grads])
            else:
                results = self.engine.forecast_batch(
                    [r.window for r in batch])
        except BaseException as exc:     # noqa: BLE001 — worker must survive
            failure = exc
        seconds = time.perf_counter() - start
        done = time.perf_counter()
        compiled = failure is None and bool(results) and \
            getattr(results[0], "compiled", False)
        plan_batch = getattr(results[0], "plan_batch", None) \
            if compiled else None
        reduced = failure is None and bool(results) and \
            getattr(results[0], "reduced", False)
        transport = getattr(self.engine, "transport_stats", None)
        if transport is not None:
            # process/host-backed executors keep cumulative counters;
            # mirror whichever this transport reports (absolute, not
            # incremental) into the metrics log
            try:
                stats = transport()
                if "ipc_wait_s" in stats:
                    self.metrics.ipc_wait_s = float(stats["ipc_wait_s"])
                if "marshal_bytes" in stats:
                    self.metrics.marshal_bytes = \
                        int(stats["marshal_bytes"])
                if "net_wait_s" in stats:
                    self.metrics.net_wait_s = float(stats["net_wait_s"])
                if "frame_bytes" in stats:
                    self.metrics.frame_bytes = int(stats["frame_bytes"])
                if "inflight_depth" in stats:
                    self.metrics.inflight_depth = max(
                        self.metrics.inflight_depth,
                        int(stats["inflight_depth"]))
            except Exception:    # noqa: BLE001 — metrics must not fail a batch
                pass
        with self._lock:
            index = self._n_batches
            self._n_batches += 1
            self.metrics.batches.append(BatchRecord(
                index=index, size=len(batch),
                request_ids=tuple(r.future.request_id for r in batch),
                seconds=seconds, trigger=trigger,
                failed=failure is not None, compiled=compiled,
                plan_batch=plan_batch, reduced=reduced, kind=kind))
            for req in batch:
                self.metrics.requests.append(RequestRecord(
                    request_id=req.future.request_id, batch_index=index,
                    queue_seconds=start - req.enqueued_at,
                    latency_seconds=done - req.enqueued_at))
        if failure is not None:
            for req in batch:
                req.future._fail(failure)
            return
        for req, res in zip(batch, results):
            fut = req.future
            fut.batch_index = index
            fut.batch_size = len(batch)
            fut.queue_seconds = start - req.enqueued_at
            fut.latency_seconds = done - req.enqueued_at
            fut._complete(res)
