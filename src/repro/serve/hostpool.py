"""Host-backed execution tier: descriptor frames over the fabric.

:mod:`repro.serve.procpool` escapes the GIL on one host — descriptors
through shared memory, a pipe for control.  The next hop is a replica
on a *different* host, where there is no ``/dev/shm`` to share, only a
wire.  This module adds that tier: a :class:`HostWorker` presents the
same batch-executor surface as :class:`~repro.serve.procpool.ProcessWorker`
(``forecast_batch`` / ``compile`` / ``plan_stats`` / ``on_death`` /
``close``), but its engine lives behind a
:mod:`repro.hpc.fabric` endpoint and every batch travels as one
length-prefixed descriptor frame (the same ``(shape, dtype, offset)``
triples the shm tier uses, packed contiguously so a batch is one
``sendall``, not a syscall per array).

Two interchangeable fabrics, selected per worker:

* ``fabric="sim"`` — the remote "rank" is a daemon thread in this
  process serving a :class:`~repro.hpc.fabric.SimEndpoint` pair, with
  all wire bytes accounted through a
  :class:`~repro.hpc.mpi.SimComm`.  Deterministic, no processes, and
  the engine is still rebuilt from the *pickled* payload — the same
  serialization path a real remote host would run, so bitwise
  equivalence is tested honestly.
* ``fabric="socket"`` — a spawned child process connected over TCP
  loopback (token handshake, ``TCP_NODELAY``): actual wire
  serialization with measurable bytes-on-wire, standing in for a
  remote host.

The perf substance over the shm tier is **pipelining**: the network
hop adds latency shm never had, so :meth:`HostWorker.submit_batch`
returns immediately with a handle and a reaper thread matches
responses to requests by sequence number — batch N+1 is packed and on
the wire while the remote computes batch N.  ``inflight_depth``
records the deepest overlap actually achieved; ``net_wait_s`` and
``frame_bytes`` make the hop's cost visible through
``ServeMetrics``/``PoolMetrics``.

Failure model: the remote sends heartbeat frames between batches; the
reaper raises :class:`HostWorkerDied` (a
:class:`~repro.serve.procpool.ProcessWorkerDied` subclass, so the
pool's retire path and every existing ``except`` clause work
unchanged) when the connection drops, a frame fails to parse, the
child process exits, or the heartbeat deadline lapses — failing every
in-flight handle instead of hanging it, and firing ``on_death``
exactly once.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..hpc.fabric import (FabricError, FabricTimeout, FrameError,
                          SocketEndpoint, accept_loopback, connect_loopback,
                          listen_loopback, pack_frame, sim_pair, unpack_frame)
from ..workflow.engine import FieldWindow, ForecastResult
from .procpool import ProcessWorkerDied, ProcessWorkerError

__all__ = ["HostWorker", "HostWorkerError", "HostWorkerDied"]

_VARS = ("u3", "v3", "w3", "zeta")


class HostWorkerError(ProcessWorkerError):
    """A request failed on the remote host; the remote traceback is in
    the message.  The host worker is still alive."""


class HostWorkerDied(ProcessWorkerDied):
    """The remote host (or the link to it) died: connection dropped,
    frame corruption, child exit, or heartbeat deadline lapsed.
    Raised on every in-flight handle and every request after it."""


# ----------------------------------------------------------------------
# remote side (thread for fabric="sim", child process for "socket")
# ----------------------------------------------------------------------
def _build_engine(payload: dict):
    """Rebuild a ForecastEngine from an unpickled worker payload —
    the exact weights plus every shipped (and reduced) plan."""
    from ..workflow.engine import CompiledForward, ForecastEngine

    engine = ForecastEngine(
        payload["model"], payload["normalizer"],
        payload["boundary_width"],
        optimize_plans=payload.get("optimize_plans", True),
        bucket_partial=payload.get("bucket_partial", True),
        serve_reduced=payload.get("serve_reduced", False))
    for plan in payload["plans"].values():
        key = plan.slots[plan.inputs[0]].shape
        engine._plans[key] = CompiledForward(plan, engine._arena)
    for plan in payload.get("reduced", {}).values():
        key = plan.slots[plan.inputs[0]].shape
        engine._reduced[key] = CompiledForward(plan, engine._arena)
    return engine


def _serve_endpoint(ep, engine, heartbeat_s: float) -> None:
    """Serve descriptor frames on ``ep`` until stop/disconnect.

    One request at a time, in arrival order — pipelining is the
    *client's* overlap of marshalling and wire time with this loop's
    compute.  A heartbeat thread keeps frames flowing between batches
    so the client's deadline detector can tell "slow" from "dead".
    Endpoint sends are atomic (the endpoint locks internally), so the
    heartbeat never interleaves into a result frame.
    """
    stop_hb = threading.Event()

    def _heartbeat() -> None:
        interval = max(heartbeat_s / 3.0, 0.01)
        while not stop_hb.wait(interval):
            try:
                ep.send_frame(pack_frame("hb", -1))
            except FabricError:
                return

    hb = None
    if heartbeat_s > 0:
        hb = threading.Thread(target=_heartbeat, daemon=True,
                              name="hostworker-heartbeat")
        hb.start()
    try:
        ep.send_frame(pack_frame("ready", -1, {
            "pid": os.getpid(),
            "time_steps": engine.time_steps,
            "compiled": sorted(engine.compiled_batches)}))
        while True:
            try:
                raw = ep.recv_frame(timeout=None)
            except FabricError:
                break               # client gone: clean up and exit
            try:
                frame = unpack_frame(raw)
            except FrameError as exc:
                # framing is lost — report once and hang up
                try:
                    ep.send_frame(pack_frame(
                        "err", -1, {"trace": f"frame rejected: {exc}"}))
                except FabricError:
                    pass
                break
            if frame.op == "stop":
                break
            try:
                if frame.op == "batch":
                    n = frame.meta["n"]
                    refs = [FieldWindow(*frame.arrays[4 * i:4 * i + 4])
                            for i in range(n)]
                    t0 = time.perf_counter()
                    results = engine.forecast_batch(refs)
                    batch_seconds = time.perf_counter() - t0
                    del refs        # release frame-buffer views
                    out = [getattr(r.fields, var) for r in results
                           for var in _VARS]
                    ep.send_frame(pack_frame("result", frame.seq, {
                        "n": len(results),
                        "batch_seconds": batch_seconds,
                        "secs": [r.inference_seconds for r in results],
                        "compiled": [r.compiled for r in results],
                        "plan_batches": [r.plan_batch for r in results],
                        "reduced": [r.reduced for r in results],
                    }, out))
                elif frame.op == "compile":
                    engine.compile(frame.meta["batch"])
                    ep.send_frame(pack_frame(
                        "ok", frame.seq,
                        {"compiled": engine.compiled_batches}))
                elif frame.op == "compile_buckets":
                    engine.compile_buckets(
                        frame.meta.get("max_batch"),
                        histogram=frame.meta.get("histogram"))
                    ep.send_frame(pack_frame(
                        "ok", frame.seq,
                        {"compiled": engine.compiled_batches}))
                elif frame.op == "plan_stats":
                    ep.send_frame(pack_frame(
                        "ok", frame.seq, {"stats": engine.plan_stats()}))
                else:
                    ep.send_frame(pack_frame(
                        "err", frame.seq,
                        {"trace": f"unknown op {frame.op!r}"}))
            except FabricError:
                break
            except Exception:  # noqa: BLE001 — report, keep serving
                # Exception only: KeyboardInterrupt/SystemExit must
                # propagate so the child can actually be stopped
                import traceback
                try:
                    ep.send_frame(pack_frame(
                        "err", frame.seq,
                        {"trace": traceback.format_exc()}))
                except FabricError:
                    break
    finally:
        stop_hb.set()
        if hb is not None:
            hb.join(timeout=1.0)
        ep.close()


def _host_main(port: int, token: str, payload_bytes: bytes,
               heartbeat_s: float) -> None:
    """Child-process entry point for ``fabric="socket"``: connect back
    to the parent's loopback listener, rebuild the engine from the
    payload, serve until stop or disconnect."""
    ep = connect_loopback(port, token)
    try:
        engine = _build_engine(pickle.loads(payload_bytes))
    except BaseException:  # noqa: BLE001 — surface the build failure
        import traceback
        try:
            ep.send_frame(pack_frame("err", -1,
                                     {"trace": traceback.format_exc()}))
        except FabricError:
            pass
        ep.close()
        return
    _serve_endpoint(ep, engine, heartbeat_s)


# ----------------------------------------------------------------------
# client side
# ----------------------------------------------------------------------
class _Handle:
    """A pending request: resolved (or failed) by the reaper thread.

    ``result()`` blocks like a future; the batch stays attributable to
    its sequence number however deep the pipeline runs.
    """

    __slots__ = ("seq", "op", "t0", "_event", "_value", "_error")

    def __init__(self, seq: int, op: str):
        self.seq = seq
        self.op = op
        self.t0 = time.perf_counter()
        self._event = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise HostWorkerError(
                f"no response to {self.op} (seq {self.seq}) within "
                f"{timeout}s")
        if self._error is not None:
            raise self._error
        return self._value

    def _complete(self, value) -> None:
        self._value = value
        self._event.set()

    def _fail(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()


class HostWorker:
    """A batch executor whose engine runs behind a fabric endpoint.

    Drop-in sibling of :class:`~repro.serve.procpool.ProcessWorker`:
    the same executor protocol, so
    :class:`~repro.serve.pool.EngineWorkerPool` runs ``backend="host"``
    without touching the scheduler, router, or deploy machinery — and
    additionally :meth:`submit_batch` for pipelined use (multiple
    batches in flight over one connection).

    Parameters
    ----------
    engine: the :class:`~repro.workflow.engine.ForecastEngine` to
        replicate to the remote rank (model, normalizer, plans are
        pickled across **once**, at spawn).
    fabric: ``"socket"`` (spawned child over TCP loopback — real wire)
        or ``"sim"`` (in-process deterministic fabric).
    warm_batches: batch sizes whose compiled plans ship with the
        payload.
    heartbeat_s: remote heartbeat period; ``0`` disables heartbeats
        (and deadline-based death detection with them).
    death_timeout: seconds of radio silence before the worker is
        declared dead (default ``4 × heartbeat_s``).
    serve_reduced: route to installed reduced-precision plan variants
        on the remote engine (accuracy-gated, not bitwise).
    request_timeout: optional per-request ceiling for the synchronous
        calls (``forecast_batch``/``compile``/``plan_stats``).
    """

    def __init__(self, engine, fabric: str = "socket",
                 warm_batches: Sequence[int] = (),
                 mp_context: str = "spawn", spawn_timeout: float = 120.0,
                 on_death: Optional[Callable[["HostWorker"], None]] = None,
                 request_timeout: Optional[float] = None,
                 heartbeat_s: float = 2.0,
                 death_timeout: Optional[float] = None,
                 serve_reduced: bool = False):
        if fabric not in ("socket", "sim"):
            raise ValueError(
                f"unknown fabric {fabric!r}: expected 'socket' or 'sim'")
        for attr in ("model", "normalizer", "boundary_width"):
            if not hasattr(engine, attr):
                raise TypeError(
                    "backend='host' needs a ForecastEngine-like "
                    f"executor with .{attr}; {type(engine).__name__} "
                    "has none")
        self.engine = engine
        self.fabric = fabric
        self.on_death = on_death
        self.request_timeout = request_timeout
        self.heartbeat_s = float(heartbeat_s)
        self.death_timeout = float(death_timeout) if death_timeout \
            is not None else 4.0 * self.heartbeat_s

        self._state_lock = threading.Lock()
        self._pending: Dict[int, _Handle] = {}
        self._seq = 0
        self._closed = False
        self._dead = False
        self._death_notified = False
        self._death_reason = ""

        # transport counters (read by scheduler/pool metrics)
        self.batches = 0
        self.net_wait_s = 0.0
        self.frame_bytes = 0
        self.inflight_depth = 0

        warm = sorted({int(b) for b in warm_batches}
                      | set(getattr(engine, "compiled_batches", None) or []))
        plans = {b: engine.compile(b).plan for b in warm}
        self._compiled = set(warm)
        reduced = {}
        if hasattr(engine, "_reduced"):
            with engine._plan_lock:
                reduced = {k[0]: cf.plan
                           for k, cf in engine._reduced.items()}
        payload = pickle.dumps({
            "model": engine.model,
            "normalizer": engine.normalizer,
            "boundary_width": engine.boundary_width,
            "optimize_plans": getattr(engine, "optimize_plans", True),
            "bucket_partial": getattr(engine, "bucket_partial", True),
            "serve_reduced": bool(serve_reduced),
            "plans": plans,
            "reduced": reduced,
        }, protocol=pickle.HIGHEST_PROTOCOL)
        self.payload_bytes = len(payload)

        t0 = time.perf_counter()
        self._proc = None
        self._remote_ep = None
        if fabric == "sim":
            self._ep, self._remote_ep = sim_pair()
            self.comm = self._ep.comm
            # the remote rank rebuilds its engine from the *pickled*
            # payload, exactly as a real remote host would
            remote_engine = _build_engine(pickle.loads(payload))
            self._serve_thread = threading.Thread(
                target=_serve_endpoint,
                args=(self._remote_ep, remote_engine, self.heartbeat_s),
                daemon=True, name="hostworker-sim-rank")
            self._serve_thread.start()
        else:
            listener, port, token = listen_loopback()
            ctx = get_context(mp_context)
            self._proc = ctx.Process(
                target=_host_main,
                args=(port, token, payload, self.heartbeat_s),
                name="hostworker-child", daemon=True)
            self._proc.start()
            try:
                self._ep = accept_loopback(listener, token,
                                           timeout=spawn_timeout)
            except BaseException:
                listener.close()
                self._kill_child()
                raise
            finally:
                listener.close()

        try:
            info = self._handshake(spawn_timeout)
        except BaseException:
            self.close()
            raise
        self.pid = info["pid"]
        self._time_steps = info["time_steps"]
        self._compiled.update(info["compiled"])
        self.spawn_seconds = time.perf_counter() - t0
        self._last_seen = time.perf_counter()

        self._reaper = threading.Thread(target=self._reap, daemon=True,
                                        name="hostworker-reaper")
        self._reaper.start()

    def _handshake(self, timeout: float) -> dict:
        deadline = time.perf_counter() + timeout
        while True:
            remaining = max(deadline - time.perf_counter(), 0.01)
            raw = self._ep.recv_frame(timeout=remaining)
            frame = unpack_frame(raw)
            if frame.op == "hb":
                continue
            if frame.op == "err":
                raise HostWorkerError(
                    f"remote engine failed to start:\n"
                    f"{frame.meta.get('trace', '')}")
            if frame.op != "ready":
                raise HostWorkerError(f"bad handshake: {frame.op!r}")
            return frame.meta

    # -- executor protocol ---------------------------------------------
    @property
    def time_steps(self) -> int:
        return self._time_steps

    @property
    def alive(self) -> bool:
        if self._dead or self._closed:
            return False
        if self._proc is not None and not self._proc.is_alive():
            return False
        return True

    @property
    def compiled_batches(self) -> List[int]:
        """Batch sizes the remote engine holds a compiled plan for."""
        with self._state_lock:
            return sorted(self._compiled)

    def submit_batch(self, references: Sequence[FieldWindow]) -> _Handle:
        """Send one micro-batch and return immediately with a handle.

        This is the pipelined path: several submitted batches may be
        in flight over the one connection, matched back to their
        handles by sequence number.  ``handle.result()`` blocks for
        that batch alone; a dead worker fails every outstanding handle
        with :class:`HostWorkerDied` instead of hanging it.
        """
        references = list(references)
        if not references:
            done = _Handle(-1, "batch")
            done._complete([])
            return done
        arrays = [np.ascontiguousarray(getattr(r, var))
                  for r in references for var in _VARS]
        handle, data = self._register(
            "batch", {"n": len(references)}, arrays)
        self._send(data)
        return handle

    def forecast_batch(self, references: Sequence[FieldWindow]
                       ) -> List[ForecastResult]:
        """Marshal one micro-batch to the remote rank and wait.

        Bitwise-identical to ``self.engine.forecast_batch`` — the
        remote runs the same code on bit-equal (pickled) weights.
        Raises :class:`HostWorkerDied` if the remote dies under the
        batch, failing the caller instead of hanging it.
        """
        return self.submit_batch(references).result(
            timeout=self.request_timeout)

    def compile(self, batch: int) -> None:
        """Have the remote engine compile (or confirm) a plan for
        ``batch`` episodes; plans shipped at spawn are installed."""
        batch = int(batch)
        with self._state_lock:
            if batch in self._compiled:
                return
        handle, data = self._register("compile", {"batch": batch}, ())
        self._send(data)
        meta, _ = handle.result(timeout=self.request_timeout)
        with self._state_lock:
            self._compiled.update(meta["compiled"])

    def compile_buckets(self, max_batch: Optional[int] = None,
                        histogram=None) -> None:
        """Have the remote engine compile a bucket set (canonical for
        ``max_batch``, or histogram-tuned — see
        :meth:`~repro.workflow.engine.ForecastEngine.compile_buckets`)."""
        from ..tensor.plan_passes import plan_buckets
        if histogram is None and max_batch is not None:
            with self._state_lock:
                if set(plan_buckets(int(max_batch))) <= self._compiled:
                    return
        meta_req = {"max_batch": None if max_batch is None
                    else int(max_batch)}
        if histogram is not None:
            meta_req["histogram"] = dict(histogram) \
                if isinstance(histogram, dict) else list(histogram)
        handle, data = self._register("compile_buckets", meta_req, ())
        self._send(data)
        meta, _ = handle.result(timeout=self.request_timeout)
        with self._state_lock:
            self._compiled.update(meta["compiled"])

    def plan_stats(self) -> Dict[str, object]:
        """The remote engine's plan/arena counters plus this side's
        transport counters; degrades to transport-only when dead."""
        stats: Dict[str, object] = {}
        if self.alive:
            try:
                handle, data = self._register("plan_stats", {}, ())
                self._send(data)
                meta, _ = handle.result(timeout=self.request_timeout)
                stats = dict(meta["stats"])
            except ProcessWorkerError:
                stats = {}
        stats["transport"] = self.transport_stats()
        return stats

    def transport_stats(self) -> Dict[str, object]:
        """Wire counters (``net_wait_s``, ``frame_bytes``,
        ``inflight_depth``, spawn cost) — the observable overhead of
        the host tier."""
        with self._state_lock:
            return {
                "backend": "host",
                "fabric": self.fabric,
                "pid": getattr(self, "pid", None),
                "alive": self.alive,
                "batches": self.batches,
                "net_wait_s": self.net_wait_s,
                "frame_bytes": self.frame_bytes,
                "inflight_depth": self.inflight_depth,
                "payload_bytes": self.payload_bytes,
                "spawn_seconds": getattr(self, "spawn_seconds", None),
            }

    def segment_names(self) -> List[str]:
        """The host tier holds no shared-memory segments (that is the
        point); provided for pool bookkeeping uniformity."""
        return []

    # -- transport internals --------------------------------------------
    def _ensure_alive(self) -> None:
        if self._closed:
            raise RuntimeError("host worker is closed")
        if self._dead:
            raise HostWorkerDied(
                f"host worker pid {getattr(self, 'pid', '?')} is dead"
                + (f": {self._death_reason}" if self._death_reason else ""))

    def _register(self, op: str, meta: dict, arrays):
        with self._state_lock:
            self._ensure_alive()
            seq = self._seq
            self._seq += 1
        data = pack_frame(op, seq, meta, arrays)
        handle = _Handle(seq, op)
        with self._state_lock:
            self._ensure_alive()
            self._pending[seq] = handle
            depth = sum(1 for h in self._pending.values()
                        if h.op == "batch")
            if depth > self.inflight_depth:
                self.inflight_depth = depth
            self.frame_bytes += len(data)
        return handle, data

    def _send(self, data: bytes) -> None:
        try:
            self._ep.send_frame(data)
        except FabricError as exc:
            self._mark_dead(f"send failed: {exc}")
            raise HostWorkerDied(
                f"host worker pid {getattr(self, 'pid', '?')} died "
                f"({exc})") from exc

    def _reap(self) -> None:
        """Reaper thread: match response frames to pending handles,
        watch heartbeats and child liveness, fail everything on
        death."""
        tick = max(min(self.heartbeat_s / 2.0, 0.2), 0.02) \
            if self.heartbeat_s > 0 else 0.2
        while True:
            try:
                raw = self._ep.recv_frame(timeout=tick)
            except FabricTimeout:
                if self._closed:
                    return
                if self._check_liveness():
                    return
                continue
            except FrameError as exc:
                self._mark_dead(f"corrupt frame: {exc}")
                return
            except FabricError:
                if self._closed:
                    return
                self._mark_dead("connection closed")
                return
            self._last_seen = time.perf_counter()
            try:
                frame = unpack_frame(raw)
            except FrameError as exc:
                self._mark_dead(f"corrupt frame: {exc}")
                return
            if frame.op == "hb":
                continue
            if frame.op == "err" and frame.seq < 0:
                self._mark_dead(
                    f"remote fatal error:\n{frame.meta.get('trace', '')}")
                return
            self._resolve(frame, len(raw))

    def _check_liveness(self) -> bool:
        """True if the worker was just declared dead."""
        if self._proc is not None and not self._proc.is_alive():
            self._mark_dead(
                f"child exited (exitcode {self._proc.exitcode})")
            return True
        if self.heartbeat_s > 0 and \
                time.perf_counter() - self._last_seen > self.death_timeout:
            self._mark_dead(
                f"no heartbeat within {self.death_timeout:.2f}s")
            return True
        return False

    def _resolve(self, frame, raw_len: int) -> None:
        with self._state_lock:
            handle = self._pending.pop(frame.seq, None)
        if handle is None:
            return                          # stale/unknown seq: drop
        if frame.op == "err":
            handle._fail(HostWorkerError(
                f"host worker pid {self.pid} failed {handle.op}:\n"
                f"{frame.meta.get('trace', '')}"))
            return
        if handle.op == "batch":
            meta = frame.meta
            results = []
            for i in range(meta["n"]):
                fields = FieldWindow(*(a.copy() for a in
                                       frame.arrays[4 * i:4 * i + 4]))
                results.append(ForecastResult(
                    fields, meta["secs"][i],
                    compiled=meta["compiled"][i],
                    plan_batch=meta["plan_batches"][i],
                    reduced=meta["reduced"][i]))
            elapsed = time.perf_counter() - handle.t0
            with self._state_lock:
                self.batches += 1
                self.net_wait_s += max(
                    elapsed - meta["batch_seconds"], 0.0)
                self.frame_bytes += raw_len
            handle._complete(results)
        else:
            with self._state_lock:
                self.frame_bytes += raw_len
            handle._complete((frame.meta,
                              [a.copy() for a in frame.arrays]))

    def _mark_dead(self, reason: str) -> None:
        with self._state_lock:
            if self._dead:
                return
            self._dead = True
            self._death_reason = reason
            pending = list(self._pending.values())
            self._pending.clear()
        exc = HostWorkerDied(
            f"host worker pid {getattr(self, 'pid', '?')} died: {reason}")
        for handle in pending:
            handle._fail(exc)
        self._ep.close()
        self._kill_child()
        if self.on_death is not None and not self._death_notified:
            self._death_notified = True
            try:
                self.on_death(self)
            except Exception:  # noqa: BLE001 — observer must not break us
                pass

    def _kill_child(self) -> None:
        if self._proc is None:
            return
        if self._proc.is_alive():
            self._proc.terminate()

    def kill(self) -> None:
        """Kill the remote rank abruptly (test hook): ``SIGKILL`` to
        the socket child, endpoint teardown for the sim fabric — the
        fault the reaper must then detect and surface."""
        if self._proc is not None:
            self._proc.kill()
        elif self._remote_ep is not None:
            self._remote_ep.close()

    # -- lifecycle ------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop the remote rank (graceful, then ``terminate``, then
        ``kill`` for the socket child), close the endpoint and fail any
        handle still outstanding.  Idempotent and safe after death."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        if not self._dead:
            try:
                self._ep.send_frame(pack_frame("stop", -1))
            except FabricError:
                pass
        if self._proc is not None:
            self._proc.join(timeout)
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout)
            if self._proc.is_alive():
                self._proc.kill()
                self._proc.join(timeout)
        self._ep.close()
        if self._remote_ep is not None:
            self._remote_ep.close()
        reaper = getattr(self, "_reaper", None)
        if reaper is not None and reaper is not threading.current_thread():
            reaper.join(timeout)
        with self._state_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        if pending:
            exc = HostWorkerDied(
                f"host worker pid {getattr(self, 'pid', '?')} closed "
                "with requests in flight")
            for handle in pending:
                handle._fail(exc)
        if self._proc is not None:
            try:
                self._proc.close()
            except ValueError:
                pass    # child stuck past every kill deadline: leak the
                        # handle rather than raise out of close()

    def __enter__(self) -> "HostWorker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
