"""Process-backed execution tier: escape the GIL with shared memory.

A threaded :class:`~repro.serve.pool.EngineWorkerPool` scales to
exactly one core on the pure-NumPy backend: every numpy-Python
dispatch between kernels holds the GIL, so two threaded replicas are
*slower* than one (``BENCH_serving.json`` measured 0.93×).  The
compiled plans of :mod:`repro.tensor.plan` are the unlock — replay is
a flat sequence of raw-``np.ndarray`` kernel steps over one
offset-packed arena, exactly the shape of work that can move into a
worker *process*.

This module adds that tier under the existing in-process control
plane:

* a :class:`ProcessWorker` owns a child process which, **once at
  spawn**, receives the pickled model weights plus the engine's
  compiled :class:`~repro.tensor.plan.ExecutionPlan`\\ s (steps travel
  by kernel name and rebind from the registry; constants travel by
  value, bit-exact);
* the child rebuilds a :class:`~repro.workflow.engine.ForecastEngine`
  whose :class:`~repro.tensor.plan.BufferArena` blob lives inside a
  ``multiprocessing.shared_memory`` segment (:class:`ShmArena`), so
  plan replay writes its intermediates into shared memory;
* each request batch is marshalled as ``(shape, dtype, offset)``
  **descriptors** into a per-worker shared-memory request segment, and
  results come back the same way through a child-owned response
  segment — the control pipe only ever carries tiny descriptor
  tuples, never a pickled field array;
* the parent-side :class:`ProcessWorker` presents the same
  ``forecast_batch``/``time_steps`` executor interface the
  :class:`~repro.serve.scheduler.MicroBatchScheduler` already drives,
  so the whole router/admission/version/autoscale control plane works
  unchanged with ``backend="process"``.

Results are **bitwise-identical** to the in-process engine: the child
runs the *same* ``ForecastEngine.forecast_batch`` code on bit-equal
weights (pickling preserves float bits), compiled and eager paths
alike, so any batch composition any routing policy produces matches
the direct call exactly.

Failure model: the child's liveness is watched through its process
**sentinel** — a worker that dies mid-flush surfaces as a
:class:`ProcessWorkerDied` on the in-flight batch (failing its
futures, never hanging them) and an ``on_death`` notification the pool
uses to retire the worker.  Shared-memory lifecycle is strict: every
segment is unlinked exactly once — by its creating side on graceful
shutdown, by the parent on abnormal child death (segment names are
deterministic per worker, so the parent can always find them).
"""

from __future__ import annotations

import os
import pickle
import secrets
import threading
import time
import traceback
from multiprocessing import connection, get_context, shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..tensor.plan import BufferArena, ExecutionPlan
from ..workflow.engine import FieldWindow, ForecastResult

__all__ = [
    "ProcessWorker",
    "ProcessWorkerError",
    "ProcessWorkerDied",
    "ShmArena",
]

_ALIGN = 64


class ProcessWorkerError(RuntimeError):
    """A request failed inside the worker process; the remote traceback
    is carried in the message.  The child is still alive — subsequent
    batches proceed normally."""


class ProcessWorkerDied(ProcessWorkerError):
    """The worker's child process died (crash, OOM-kill, ``kill -9``).

    Raised for the in-flight batch and every batch after it; the
    worker's ``on_death`` hook fires once so the pool can retire the
    replica instead of routing more traffic at a corpse.
    """


# ----------------------------------------------------------------------
# shared-memory arena
# ----------------------------------------------------------------------
class ShmArena(BufferArena):
    """A :class:`~repro.tensor.plan.BufferArena` whose blobs live in
    one ``multiprocessing.shared_memory`` segment.

    The free-list reuse semantics are inherited unchanged; only fresh
    allocation differs — blobs are carved from the segment by a bump
    pointer (64-byte aligned).  Demand beyond the segment's capacity
    falls back to ordinary heap arrays, honestly counted in
    ``heap_allocations``, so an undersized segment degrades instead of
    failing.

    :meth:`destroy` unlinks the segment; creating and destroying are
    this process's responsibility (the worker child), with the parent
    unlinking by name only after abnormal death.
    """

    def __init__(self, nbytes: int, name: Optional[str] = None):
        super().__init__()
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(int(nbytes), 1), name=name)
        self.capacity = self.shm.size
        self.heap_allocations = 0
        self._offset = 0
        self._bump_lock = threading.Lock()

    def _alloc(self, nbytes: int) -> np.ndarray:
        with self._bump_lock:
            aligned = -(-nbytes // _ALIGN) * _ALIGN
            if self._offset + aligned <= self.capacity:
                off = self._offset
                self._offset += aligned
                return np.frombuffer(self.shm.buf, np.uint8,
                                     count=nbytes, offset=off)
            self.heap_allocations += 1
        return np.empty(nbytes, np.uint8)

    def stats(self) -> Dict[str, int]:
        out = super().stats()
        with self._bump_lock:
            out.update({"shm_bytes": self.capacity,
                        "shm_used": self._offset,
                        "heap_allocations": self.heap_allocations})
        return out

    def destroy(self) -> str:
        """Drop the free-list, unlink and close the segment; returns
        the segment name.  Unlink happens first — it cannot fail on
        exported views, while close might, and the mapping dies with
        the process anyway."""
        with self._lock:
            self._free.clear()
        name = self.shm.name
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass
        try:
            self.shm.close()
        except BufferError:
            pass        # views still alive; process exit reclaims them
        return name


# ----------------------------------------------------------------------
# descriptor marshalling
# ----------------------------------------------------------------------
#: one array descriptor: (shape, dtype-str, byte offset into segment)
_Desc = Tuple[Tuple[int, ...], str, int]


def _measure(arrays: Sequence[np.ndarray]) -> int:
    total = 0
    for a in arrays:
        total += -(-a.nbytes // _ALIGN) * _ALIGN
    return total


def _write(seg: shared_memory.SharedMemory, offset: int,
           arr: np.ndarray) -> Tuple[_Desc, int]:
    """Copy ``arr`` into the segment at ``offset``; returns its
    descriptor and the next (aligned) offset."""
    view = np.frombuffer(seg.buf, dtype=arr.dtype, count=arr.size,
                         offset=offset).reshape(arr.shape)
    np.copyto(view, arr)
    del view
    return ((tuple(arr.shape), arr.dtype.str, offset),
            offset + -(-arr.nbytes // _ALIGN) * _ALIGN)


def _read(seg: shared_memory.SharedMemory, desc: _Desc,
          copy: bool) -> np.ndarray:
    shape, dtype, offset = desc
    count = 1
    for s in shape:
        count *= s
    view = np.frombuffer(seg.buf, dtype=np.dtype(dtype), count=count,
                         offset=offset).reshape(shape)
    return view.copy() if copy else view


class _Segment:
    """One grow-by-replacement shared-memory segment with
    deterministic generation names (``{token}-{tag}{gen}``).

    The owner creates generations as demand grows and unlinks the
    superseded one immediately (POSIX keeps live mappings valid);
    the peer attaches by the name it reads from each message.  The
    deterministic naming is what lets the *parent* clean up a dead
    child's segments: it can enumerate every name the child can
    possibly have created.
    """

    def __init__(self, token: str, tag: str):
        self.token = token
        self.tag = tag
        self.gen = -1
        self.shm: Optional[shared_memory.SharedMemory] = None

    @property
    def name(self) -> Optional[str]:
        return self.shm.name if self.shm is not None else None

    def ensure(self, nbytes: int) -> shared_memory.SharedMemory:
        if self.shm is not None and self.shm.size >= nbytes:
            return self.shm
        grown = max(nbytes, 2 * self.shm.size if self.shm else nbytes)
        self.destroy()
        self.gen += 1
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(grown, 1),
            name=f"{self.token}-{self.tag}{self.gen}")
        return self.shm

    def destroy(self) -> None:
        if self.shm is None:
            return
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass
        try:
            self.shm.close()
        except BufferError:
            pass
        self.shm = None


def _unlink_by_name(name: str) -> bool:
    """Best-effort unlink of a segment this process did not create."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
    seg.close()
    return True


class _Attached:
    """Peer-side cache of the remote end's current segment."""

    def __init__(self):
        self.shm: Optional[shared_memory.SharedMemory] = None

    def get(self, name: str) -> shared_memory.SharedMemory:
        if self.shm is not None and self.shm.name == name:
            return self.shm
        self.close()
        self.shm = shared_memory.SharedMemory(name=name)
        return self.shm

    def close(self) -> None:
        if self.shm is not None:
            try:
                self.shm.close()
            except BufferError:
                pass
            self.shm = None


# ----------------------------------------------------------------------
# child process
# ----------------------------------------------------------------------
def _child_main(conn, payload_bytes: bytes) -> None:
    """Worker-process entry point.

    Receives the engine description ONCE (weights + compiled plans),
    rebuilds the engine with its arena in shared memory, then serves
    descriptor-marshalled batches until ``stop`` or parent EOF.  Every
    segment this process created is unlinked on the way out.
    """
    # imports here, not at module top: under the spawn start method the
    # child imports this module fresh, and the engine import pulls in
    # the full kernel registry the unpickled plans rebind against
    from ..workflow.engine import CompiledForward, ForecastEngine

    payload = pickle.loads(payload_bytes)
    token = payload["token"]
    engine = ForecastEngine(
        payload["model"], payload["normalizer"],
        payload["boundary_width"],
        optimize_plans=payload.get("optimize_plans", True),
        bucket_partial=payload.get("bucket_partial", True),
        serve_reduced=payload.get("serve_reduced", False))
    plans: Dict[int, ExecutionPlan] = payload["plans"]
    reduced_plans: Dict[int, ExecutionPlan] = payload.get("reduced", {})
    arena_bytes = max(
        [p.arena_total for p in plans.values()] + [payload["arena_hint"]])
    arena = ShmArena(arena_bytes, name=f"{token}-arena")
    engine._arena = arena
    for plan in plans.values():
        key = plan.slots[plan.inputs[0]].shape
        engine._plans[key] = CompiledForward(plan, arena)
    for plan in reduced_plans.values():
        key = plan.slots[plan.inputs[0]].shape
        engine._reduced[key] = CompiledForward(plan, arena)

    response = _Segment(token, "r")
    request = _Attached()
    conn.send(("ready", {"pid": os.getpid(), "arena": arena.shm.name,
                         "time_steps": engine.time_steps,
                         "compiled": sorted(plans)}))
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break               # parent gone: clean up and exit
            op = msg[0]
            if op == "stop":
                break
            try:
                if op == "batch":
                    _, req_name, descs = msg
                    seg = request.get(req_name)
                    refs = [FieldWindow(*(_read(seg, d, copy=False)
                                          for d in wdescs))
                            for wdescs in descs]
                    t0 = time.perf_counter()
                    results = engine.forecast_batch(refs)
                    batch_seconds = time.perf_counter() - t0
                    del refs        # release request-segment views
                    arrays = [getattr(r.fields, var) for r in results
                              for var in ("u3", "v3", "w3", "zeta")]
                    seg = response.ensure(_measure(arrays))
                    offset, out_descs = 0, []
                    for r in results:
                        wdescs = []
                        for var in ("u3", "v3", "w3", "zeta"):
                            d, offset = _write(seg, offset,
                                               getattr(r.fields, var))
                            wdescs.append(d)
                        out_descs.append(tuple(wdescs))
                    conn.send(("ok", seg.name, out_descs, batch_seconds,
                               [r.inference_seconds for r in results],
                               [r.compiled for r in results],
                               [r.plan_batch for r in results],
                               [r.reduced for r in results]))
                elif op == "compile":
                    engine.compile(msg[1])
                    conn.send(("ok", engine.compiled_batches))
                elif op == "compile_buckets":
                    engine.compile_buckets(
                        msg[1], histogram=msg[2] if len(msg) > 2 else None)
                    conn.send(("ok", engine.compiled_batches))
                elif op == "plan_stats":
                    conn.send(("ok", engine.plan_stats()))
                else:
                    conn.send(("err", f"unknown op {op!r}"))
            except BaseException:        # noqa: BLE001 — report, keep serving
                try:
                    conn.send(("err", traceback.format_exc()))
                except (BrokenPipeError, OSError):
                    break
    finally:
        engine.clear_plans()      # retire executors → views back to arena
        arena.destroy()
        response.destroy()
        request.close()
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# parent-side handle
# ----------------------------------------------------------------------
class ProcessWorker:
    """A batch executor whose engine runs in a child process.

    Drop-in for a :class:`~repro.workflow.engine.ForecastEngine` where
    the serving stack is concerned (``forecast_batch`` / ``time_steps``
    / ``compile`` / ``compile_buckets`` / ``plan_stats``), which is
    exactly what lets
    :class:`~repro.serve.pool.EngineWorkerPool` run ``backend="process"``
    without touching the scheduler, router, or deploy machinery.

    Parameters
    ----------
    engine: the :class:`~repro.workflow.engine.ForecastEngine` to
        replicate into the child (its model, normalizer and boundary
        configuration are pickled across **once**, at spawn).
    warm_batches: batch sizes whose compiled plans ship with the
        payload — compiled on the parent engine first (replicas sharing
        one engine share the trace), so the child starts warm without
        ever tracing.
    mp_context: multiprocessing start method (default ``"spawn"`` —
        safe with the parent's scheduler threads; ``"fork"`` starts
        faster but inherits the whole parent address space).
    spawn_timeout: seconds to wait for the child's ready handshake.
    on_death: callback invoked exactly once, with this worker, when the
        child process is found dead.
    request_timeout: optional per-batch ceiling [s]; ``None`` trusts
        the sentinel (a hung-but-alive child is not detectable without
        a timeout, a dead one always is).

    Thread safety: all public methods serialise on one lock (the
    transport is a single request/response channel); the scheduler
    drives one batch at a time anyway.
    """

    def __init__(self, engine, warm_batches: Sequence[int] = (),
                 mp_context: str = "spawn", spawn_timeout: float = 120.0,
                 on_death: Optional[Callable[["ProcessWorker"], None]] = None,
                 request_timeout: Optional[float] = None,
                 serve_reduced: bool = False):
        for attr in ("model", "normalizer", "boundary_width"):
            if not hasattr(engine, attr):
                raise TypeError(
                    "backend='process' needs a ForecastEngine-like "
                    f"executor with .{attr}; {type(engine).__name__} "
                    "has none")
        self.engine = engine
        self.on_death = on_death
        self.request_timeout = request_timeout
        self._token = f"repro-{secrets.token_hex(4)}"
        self._lock = threading.Lock()
        self._closed = False
        self._dead = False
        self._death_notified = False

        # transport counters (read by scheduler/pool metrics)
        self.ipc_wait_s = 0.0
        self.marshal_bytes = 0
        self.batches = 0

        # ship every plan the parent engine already holds (a deploy()
        # warms the new engine before surging replicas — those sizes
        # must reach the children) plus the explicitly requested sizes
        warm = sorted({int(b) for b in warm_batches}
                      | set(getattr(engine, "compiled_batches", None) or []))
        plans = {b: engine.compile(b).plan for b in warm}
        self._compiled = set(warm)
        reduced = {}
        if hasattr(engine, "_reduced"):
            with engine._plan_lock:
                reduced = {k[0]: cf.plan
                           for k, cf in engine._reduced.items()}
        payload = pickle.dumps({
            "token": self._token,
            "model": engine.model,
            "normalizer": engine.normalizer,
            "boundary_width": engine.boundary_width,
            # plan-handling knobs mirror the parent engine so the child
            # buckets partial batches (and optimises any plan it traces
            # itself) exactly the way the in-process tier would
            "optimize_plans": getattr(engine, "optimize_plans", True),
            "bucket_partial": getattr(engine, "bucket_partial", True),
            # route to the (gated, shipped) reduced variants on request
            "serve_reduced": bool(serve_reduced),
            "reduced": reduced,
            "plans": plans,
            "arena_hint": max((p.arena_total for p in plans.values()),
                              default=0),
        }, protocol=pickle.HIGHEST_PROTOCOL)
        self.payload_bytes = len(payload)

        t0 = time.perf_counter()
        ctx = get_context(mp_context)
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(target=_child_main,
                                 args=(child_conn, payload),
                                 name=f"procworker-{self._token}",
                                 daemon=True)
        self._proc.start()
        child_conn.close()
        self._request = _Segment(self._token, "q")
        self._response = _Attached()
        self._last_res_gen = -1
        self._arena_name = f"{self._token}-arena"
        try:
            msg = self._recv(timeout=spawn_timeout)
        except BaseException:
            self.close()
            raise
        if msg[0] != "ready":
            self.close()
            raise ProcessWorkerError(f"bad handshake: {msg!r}")
        info = msg[1]
        self.pid = info["pid"]
        self._time_steps = info["time_steps"]
        self.spawn_seconds = time.perf_counter() - t0

    # -- executor protocol ---------------------------------------------
    @property
    def time_steps(self) -> int:
        return self._time_steps

    @property
    def alive(self) -> bool:
        return not self._dead and not self._closed \
            and self._proc.is_alive()

    @property
    def compiled_batches(self) -> List[int]:
        """Batch sizes the child holds a compiled plan for."""
        return sorted(self._compiled)

    def forecast_batch(self, references: Sequence[FieldWindow]
                       ) -> List[ForecastResult]:
        """Marshal one micro-batch to the child and wait for results.

        Bitwise-identical to ``self.engine.forecast_batch`` (the child
        runs the same code on bit-equal weights).  Raises
        :class:`ProcessWorkerDied` if the child dies under the batch —
        the caller's futures fail instead of hanging.
        """
        references = list(references)
        if not references:
            return []
        with self._lock:
            self._ensure_alive()
            t0 = time.perf_counter()
            arrays = [getattr(r, var) for r in references
                      for var in ("u3", "v3", "w3", "zeta")]
            need = _measure(arrays)
            seg = self._request.ensure(need)
            offset, descs = 0, []
            for r in references:
                wdescs = []
                for var in ("u3", "v3", "w3", "zeta"):
                    d, offset = _write(seg, offset, getattr(r, var))
                    wdescs.append(d)
                descs.append(tuple(wdescs))
            self.marshal_bytes += need
            self._send(("batch", seg.name, descs))
            msg = self._recv(timeout=self.request_timeout)
            if msg[0] == "err":
                raise ProcessWorkerError(
                    f"worker pid {self.pid} failed a batch:\n{msg[1]}")
            _, res_name, out_descs, batch_seconds, secs, compiled, \
                plan_batches, reduced = msg
            res_seg = self._attach_response(res_name)
            results = []
            for wdescs, sec, comp, pb, rd in zip(out_descs, secs,
                                                 compiled, plan_batches,
                                                 reduced):
                fields = FieldWindow(*(_read(res_seg, d, copy=True)
                                       for d in wdescs))
                results.append(ForecastResult(fields, sec, compiled=comp,
                                              plan_batch=pb, reduced=rd))
                self.marshal_bytes += sum(
                    getattr(fields, v).nbytes
                    for v in ("u3", "v3", "w3", "zeta"))
            self.ipc_wait_s += max(
                time.perf_counter() - t0 - batch_seconds, 0.0)
            self.batches += 1
        return results

    def compile(self, batch: int) -> None:
        """Have the child compile (or confirm) a plan for ``batch``
        episodes; plans shipped at spawn are already installed."""
        batch = int(batch)
        with self._lock:
            if batch in self._compiled:
                return
            self._ensure_alive()
            self._send(("compile", batch))
            msg = self._recv(timeout=self.request_timeout)
            if msg[0] == "err":
                raise ProcessWorkerError(
                    f"compile({batch}) failed in worker:\n{msg[1]}")
            self._compiled.update(msg[1])

    def compile_buckets(self, max_batch: Optional[int] = None,
                        histogram=None) -> None:
        """Have the child compile a bucket set — the canonical
        :func:`~repro.tensor.plan_passes.plan_buckets` set for
        ``max_batch``, or a histogram-tuned one (see
        :meth:`~repro.workflow.engine.ForecastEngine.compile_buckets`)
        — so its partial micro-batches pad into compiled buckets
        instead of running eager."""
        from ..tensor.plan_passes import plan_buckets
        with self._lock:
            if histogram is None and max_batch is not None and \
                    set(plan_buckets(int(max_batch))) <= self._compiled:
                return
            self._ensure_alive()
            if histogram is None:
                self._send(("compile_buckets", int(max_batch)))
            else:
                hist = dict(histogram) if isinstance(histogram, dict) \
                    else list(histogram)
                self._send(("compile_buckets",
                            None if max_batch is None else int(max_batch),
                            hist))
            msg = self._recv(timeout=self.request_timeout)
            if msg[0] == "err":
                raise ProcessWorkerError(
                    f"compile_buckets({max_batch}) failed in worker:\n"
                    f"{msg[1]}")
            self._compiled.update(msg[1])

    def plan_stats(self) -> Dict[str, object]:
        """The child engine's plan/arena counters plus this side's
        transport counters; degrades to transport-only when dead."""
        with self._lock:
            if self.alive:
                try:
                    self._send(("plan_stats",))
                    msg = self._recv(timeout=self.request_timeout)
                    stats = dict(msg[1]) if msg[0] == "ok" else {}
                except ProcessWorkerError:
                    stats = {}
            else:
                stats = {}
            stats["transport"] = self._transport_locked()
        return stats

    def transport_stats(self) -> Dict[str, object]:
        """IPC/marshalling counters (``ipc_wait_s``, ``marshal_bytes``,
        spawn cost) — the observable overhead of the process tier."""
        with self._lock:
            return self._transport_locked()

    def _transport_locked(self) -> Dict[str, object]:
        return {
            "backend": "process",
            "pid": self.pid if hasattr(self, "pid") else None,
            "alive": self.alive,
            "batches": self.batches,
            "ipc_wait_s": self.ipc_wait_s,
            "marshal_bytes": self.marshal_bytes,
            "payload_bytes": self.payload_bytes,
            "spawn_seconds": getattr(self, "spawn_seconds", None),
        }

    def segment_names(self) -> List[str]:
        """Names of every shared-memory segment this worker pair may
        currently own (request, response, arena) — the set that must
        be gone after :meth:`close`."""
        names = [self._arena_name]
        if self._request.name:
            names.append(self._request.name)
        for gen in range(self._last_res_gen + 1):
            names.append(f"{self._token}-r{gen}")
        return names

    # -- transport internals --------------------------------------------
    def _ensure_alive(self) -> None:
        if self._closed:
            raise RuntimeError("process worker is closed")
        if self._dead:
            raise ProcessWorkerDied(
                f"worker pid {getattr(self, 'pid', '?')} is dead")

    def _send(self, msg) -> None:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            self._mark_dead()
            raise ProcessWorkerDied(
                f"worker pid {getattr(self, 'pid', '?')} died "
                "(pipe closed)") from exc

    def _recv(self, timeout: Optional[float] = None):
        deadline = None if timeout is None else \
            time.perf_counter() + timeout
        while True:
            remaining = None if deadline is None else \
                max(deadline - time.perf_counter(), 0.0)
            ready = connection.wait([self._conn, self._proc.sentinel],
                                    timeout=remaining)
            if self._conn in ready:
                try:
                    return self._conn.recv()
                except (EOFError, OSError) as exc:
                    self._mark_dead()
                    raise ProcessWorkerDied(
                        f"worker pid {getattr(self, 'pid', '?')} died "
                        "(EOF on control pipe)") from exc
            if self._proc.sentinel in ready:
                self._mark_dead()
                raise ProcessWorkerDied(
                    f"worker pid {getattr(self, 'pid', '?')} died "
                    f"(exitcode {self._proc.exitcode})")
            if not ready:
                raise ProcessWorkerError(
                    f"worker pid {getattr(self, 'pid', '?')} did not "
                    f"respond within {timeout}s")

    def _attach_response(self, name: str) -> shared_memory.SharedMemory:
        # track the child's response generation so abnormal-death
        # cleanup can enumerate every segment it may have created
        if name.startswith(f"{self._token}-r"):
            try:
                self._last_res_gen = max(self._last_res_gen,
                                         int(name.rsplit("-r", 1)[1]))
            except ValueError:
                pass
        return self._response.get(name)

    def _mark_dead(self) -> None:
        if self._dead:
            return
        self._dead = True
        self._response.close()
        self._cleanup_child_segments()
        if self.on_death is not None and not self._death_notified:
            self._death_notified = True
            try:
                self.on_death(self)
            except Exception:  # noqa: BLE001 — observer must not break IPC
                pass

    def _cleanup_child_segments(self) -> None:
        """Unlink segments the dead child can no longer unlink itself
        (its names are deterministic: the arena plus every response
        generation up to one past the last seen)."""
        _unlink_by_name(self._arena_name)
        for gen in range(self._last_res_gen + 2):
            _unlink_by_name(f"{self._token}-r{gen}")

    # -- lifecycle ------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop the child (graceful, then ``terminate``, then ``kill``)
        and unlink every shared-memory segment of the pair.  Idempotent
        and safe after child death."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not self._dead and self._proc.is_alive():
                try:
                    self._conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        self._proc.join(timeout)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout)
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout)
        with self._lock:
            self._response.close()
            self._request.destroy()
            # graceful children unlink their own segments; after an
            # abnormal exit these names still exist and fall to us
            self._cleanup_child_segments()
            try:
                self._conn.close()
            except OSError:
                pass
        # a terminated child cannot run its resource_tracker
        # unregistrations; the unlinks above did the actual cleanup
        self._proc.close()

    def __enter__(self) -> "ProcessWorker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
