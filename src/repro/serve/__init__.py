"""Serving subsystem: micro-batching, caching, sharding, front door.

Turns independent incoming forecast requests into the batched
forwards of :class:`~repro.workflow.engine.ForecastEngine` — the layer
that converts per-call speed into system throughput:

- :mod:`repro.serve.scheduler` — request queue + dynamic micro-batching
  under a ``max_batch``/``max_wait`` policy, with occupancy/latency
  metrics;
- :mod:`repro.serve.cache` — keyed LRU cache of completed forecasts;
- :mod:`repro.serve.pool` — N engine replicas behind pluggable routing
  (round-robin, least-outstanding, key-affinity sharding) with bounded
  queues, explicit shed-with-retry-after backpressure, and the
  control plane: a dynamic worker set plus zero-downtime versioned
  deploys (``EngineWorkerPool.deploy``);
- :mod:`repro.serve.procpool` — the ``backend="process"`` execution
  tier: each replica's engine in a child process (weights + compiled
  plans shipped once, arena in shared memory, per-batch traffic as
  shared-memory descriptors), escaping the GIL the thread backend
  serialises on;
- :mod:`repro.serve.hostpool` — the ``backend="host"`` execution
  tier: each replica's engine on a remote rank behind the
  :mod:`repro.hpc.fabric` descriptor transport (socket wire or
  deterministic sim fabric), with pipelined request/response framing
  and heartbeat-based death detection;
- :mod:`repro.serve.autoscale` — load-adaptive ``AutoScaler`` growing
  and shrinking the live worker count between bounds;
- :mod:`repro.serve.server` — routes plain, gradient, ensemble, and
  hybrid requests through the replica pool (a single-engine deployment
  is the pool of 1) and fronts the operations API (``deploy``,
  ``enable_autoscaling``).

Gradient requests (``ForecastServer.submit_sensitivity``) ride the
same scheduler/pool/cache machinery as forecasts on the thread
backend; see ``docs/differentiation.md``.

See ``docs/architecture.md`` for how the pieces compose and
``docs/serving.md`` for the tuning guide (including the Operations
section).
"""

from .autoscale import AutoScaler, LoadSample, ScaleEvent
from .cache import ForecastCache, ForecastCacheStats, gradient_key, window_key
from .pool import (
    DeploymentError,
    EngineVersion,
    EngineWorkerPool,
    KeyAffinityRouter,
    LeastOutstandingRouter,
    PoolEvent,
    PoolMetrics,
    PoolSaturated,
    RoundRobinRouter,
    Router,
)
from .hostpool import (
    HostWorker,
    HostWorkerDied,
    HostWorkerError,
)
from .procpool import (
    ProcessWorker,
    ProcessWorkerDied,
    ProcessWorkerError,
    ShmArena,
)
from .scheduler import (
    BatchRecord,
    MicroBatchScheduler,
    RequestRecord,
    ServedFuture,
    ServeMetrics,
)
from .server import ForecastServer

__all__ = [
    "MicroBatchScheduler",
    "ServedFuture",
    "ServeMetrics",
    "BatchRecord",
    "RequestRecord",
    "ForecastCache",
    "ForecastCacheStats",
    "window_key",
    "gradient_key",
    "EngineWorkerPool",
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingRouter",
    "KeyAffinityRouter",
    "PoolMetrics",
    "PoolSaturated",
    "PoolEvent",
    "EngineVersion",
    "DeploymentError",
    "ProcessWorker",
    "ProcessWorkerError",
    "ProcessWorkerDied",
    "ShmArena",
    "HostWorker",
    "HostWorkerError",
    "HostWorkerDied",
    "AutoScaler",
    "LoadSample",
    "ScaleEvent",
    "ForecastServer",
]
