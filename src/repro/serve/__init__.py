"""Serving subsystem: micro-batching, result caching, front door.

Turns independent incoming forecast requests into the batched
forwards of :class:`~repro.workflow.engine.ForecastEngine` — the layer
that converts per-call speed into system throughput:

- :mod:`repro.serve.scheduler` — request queue + dynamic micro-batching
  under a ``max_batch``/``max_wait`` policy, with occupancy/latency
  metrics;
- :mod:`repro.serve.cache` — keyed LRU cache of completed forecasts;
- :mod:`repro.serve.server` — routes plain, ensemble, and hybrid
  requests through one shared engine.
"""

from .cache import ForecastCache, ForecastCacheStats, window_key
from .scheduler import (
    BatchRecord,
    MicroBatchScheduler,
    RequestRecord,
    ServedFuture,
    ServeMetrics,
)
from .server import ForecastServer

__all__ = [
    "MicroBatchScheduler",
    "ServedFuture",
    "ServeMetrics",
    "BatchRecord",
    "RequestRecord",
    "ForecastCache",
    "ForecastCacheStats",
    "window_key",
    "ForecastServer",
]
